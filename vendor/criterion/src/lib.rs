//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace's benches
//! use — `criterion_group!`/`criterion_main!`, `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `Bencher::iter`, `Throughput`, `BenchmarkId`, `black_box` — over a
//! simple wall-clock sampler: each benchmark is warmed up, then timed
//! over a fixed number of samples, and the median/min/max per-iteration
//! times are printed (plus derived throughput when configured).
//!
//! When the binary is invoked with `--test` (as `cargo test` does for
//! `harness = false` bench targets), every benchmark runs exactly one
//! iteration so the suite stays fast.

// The determinism contract (clippy.toml disallowed lists) exempts
// vendored stubs: a bench harness measures real elapsed time.
#![allow(clippy::disallowed_methods, clippy::disallowed_types)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput basis for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
    test_mode: bool,
}

impl Bencher<'_> {
    /// Runs `routine` repeatedly and records per-iteration timings.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.samples.push(Duration::from_nanos(1));
            return;
        }
        // Warm-up: run a few iterations untimed and estimate cost so
        // very fast routines get batched per sample.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < Duration::from_millis(50) && warm_iters < 1_000_000 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));
        // Aim for ~2ms per sample, clamped to keep totals bounded.
        self.iters_per_sample = ((2_000_000 / per_iter.max(1)) as u64).clamp(1, 1_000_000);
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples
                .push(elapsed / u32::try_from(self.iters_per_sample).unwrap_or(u32::MAX));
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn format_rate(per_second: f64, unit: &str) -> String {
    if per_second >= 1e9 {
        format!("{:.2} G{unit}/s", per_second / 1e9)
    } else if per_second >= 1e6 {
        format!("{:.2} M{unit}/s", per_second / 1e6)
    } else if per_second >= 1e3 {
        format!("{:.2} K{unit}/s", per_second / 1e3)
    } else {
        format!("{per_second:.1} {unit}/s")
    }
}

fn run_one(
    full_name: &str,
    sample_count: usize,
    throughput: Option<Throughput>,
    test_mode: bool,
    f: &mut dyn FnMut(&mut Bencher<'_>),
) {
    let mut samples = Vec::new();
    let mut bencher = Bencher {
        samples: &mut samples,
        iters_per_sample: 1,
        sample_count,
        test_mode,
    };
    f(&mut bencher);
    if test_mode {
        println!("test-mode {full_name}: ok");
        return;
    }
    let mut ns: Vec<f64> = samples.iter().map(|d| d.as_nanos() as f64).collect();
    if ns.is_empty() {
        println!("{full_name}: no samples recorded");
        return;
    }
    ns.sort_by(|a, b| a.total_cmp(b));
    let median = ns[ns.len() / 2];
    let min = ns[0];
    let max = ns[ns.len() - 1];
    let mut line = format!(
        "{full_name}: time [{} {} {}]",
        format_ns(min),
        format_ns(median),
        format_ns(max)
    );
    if let Some(t) = throughput {
        let (amount, unit) = match t {
            Throughput::Bytes(b) => (b as f64, "B"),
            Throughput::Elements(e) => (e as f64, "elem"),
        };
        if median > 0.0 {
            line.push_str(&format!(
                ", thrpt {}",
                format_rate(amount * 1e9 / median, unit)
            ));
        }
    }
    println!("{line}");
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Upstream-compatible no-op (we only measure wall-clock time).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(
            &full,
            self.sample_size,
            self.throughput,
            self.criterion.test_mode,
            &mut f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(
            &full,
            self.sample_size,
            self.throughput,
            self.criterion.test_mode,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (upstream requires this; here it is a no-op).
    pub fn finish(self) {}
}

/// Benchmark driver, handed to each `criterion_group!` function.
pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            sample_size: 20,
        }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        run_one(name, self.sample_size, None, self.test_mode, &mut f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut samples = Vec::new();
        let mut b = Bencher {
            samples: &mut samples,
            iters_per_sample: 1,
            sample_count: 3,
            test_mode: false,
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert_eq!(samples.len(), 3);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut samples = Vec::new();
        let mut b = Bencher {
            samples: &mut samples,
            iters_per_sample: 1,
            sample_count: 50,
            test_mode: true,
        };
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert_eq!(samples.len(), 1);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::from_parameter(64).id, "64");
        assert_eq!(BenchmarkId::new("scan", 8).id, "scan/8");
    }
}
