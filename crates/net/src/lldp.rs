//! LLDP frames for controller topology discovery.
//!
//! The LiveSec controller floods LLDP probes out of every switch port;
//! when a probe sent from switch A port *i* is reported back (via
//! packet-in) by switch B port *j*, the controller learns the logical
//! link A.i ↔ B.j (paper §III-C.1). Only the two TLVs needed for that
//! are modeled: chassis id (the datapath id) and port id.

use serde::{Deserialize, Serialize};

/// A minimal LLDP frame: chassis id + port id.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct LldpFrame {
    /// The emitting switch's datapath id (chassis-id TLV).
    pub chassis_id: u64,
    /// The emitting port number (port-id TLV).
    pub port_id: u32,
}

impl LldpFrame {
    /// On-wire length of this frame body (chassis-id TLV + port-id TLV
    /// + TTL TLV + end TLV, as a minimal LLDPDU).
    pub const WIRE_LEN: usize = 24;

    /// Creates a discovery probe.
    pub fn new(chassis_id: u64, port_id: u32) -> Self {
        LldpFrame {
            chassis_id,
            port_id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carries_origin() {
        let f = LldpFrame::new(42, 7);
        assert_eq!(f.chassis_id, 42);
        assert_eq!(f.port_id, 7);
    }
}
