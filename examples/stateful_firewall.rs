//! Stateful firewall end to end: a legitimate HTTP transfer is tracked,
//! reported established, and fast-passed around the firewall hairpin —
//! while a SYN flood from rotating source ports trips the conntrack
//! half-open threshold, earns its source a switch-level drop rule, and
//! stops reaching the firewall entirely.
//!
//! Run with: `cargo run --release --example stateful_firewall`

use livesec_services::{FirewallEngine, FwAction, ServiceElement};
use livesec_suite::prelude::*;
use livesec_workloads::SynFlood;

type Fw = ServiceElement<FirewallEngine>;

fn main() {
    // Steer all TCP through a stateful firewall that admits established
    // connections and watches for half-open floods.
    let mut policy = PolicyTable::allow_all();
    policy.push(
        PolicyRule::named("fw")
            .proto(6)
            .chain(vec![ServiceType::Firewall]),
    );

    let mut b = CampusBuilder::new(23, 3).with_policy(policy);
    let server = b.add_gateway_with_app(0, HttpServer::new());
    // A silent victim: the flood's probes are never answered, so each
    // one leaves a half-open entry in the firewall's conntrack.
    let victim = b.add_user(0, IdleApp);
    let fw = b.add_service_element(
        1,
        ServiceElement::new(
            FirewallEngine::new(Vec::new(), FwAction::AllowEstablished)
                .with_syn_flood_threshold(12),
        ),
    );
    let client = b.add_user(
        2,
        HttpClient::new(server.ip, 100_000)
            .with_max_requests(15)
            .with_think_time(SimDuration::from_millis(50)),
    );
    let flood = b.add_user(
        2,
        SynFlood::new(victim.ip, 80).with_interval(SimDuration::from_millis(5)),
    );
    let mut campus = b.finish();
    campus.world.run_for(SimDuration::from_secs(5));

    // Walk the monitor for the stateful-enforcement narrative.
    let c = campus.controller();
    for e in c.monitor().events() {
        match &e.kind {
            EventKind::ConnEstablished { flow } => {
                println!("[{}] connection {flow} reported ESTABLISHED", e.at);
            }
            EventKind::FastPassInstalled { flow } => {
                println!("[{}] fast-pass installed for {flow}", e.at);
            }
            EventKind::ConnClosed { flow } => {
                println!("[{}] connection {flow} closed, fast-pass torn down", e.at);
            }
            EventKind::SynFloodDetected { src, attack } => {
                println!("[{}] SYN FLOOD from {src} detected ({attack})", e.at);
            }
            EventKind::FlowBlocked {
                reason, at_dpid, ..
            } => {
                println!("[{}] blocked at ingress switch {at_dpid} ({reason})", e.at);
            }
            _ => {}
        }
    }

    let s = c.conntrack_stats();
    println!("\nconntrack: {s:?}");
    assert!(s.established >= 1, "the HTTP connection established");
    assert!(s.fastpass_installed >= 1, "the transfer was fast-passed");
    assert!(s.syn_floods >= 1, "the flood tripped the threshold");
    assert!(
        c.monitor().of_tag("syn_flood_detected").count() >= 1,
        "the detection reached the event log"
    );

    // The drop rule is installed in the attacker's ingress switch: a
    // source-wide entry with an empty action list.
    let drops = campus
        .switch(2)
        .table()
        .iter()
        .filter(|entry| entry.actions.is_empty())
        .count();
    assert!(drops >= 1, "the ingress switch holds the drop rule");
    println!("ingress switch holds {drops} drop entr(y/ies)");

    // The flood kept probing, but past the block the firewall stopped
    // seeing it: the flood stops counting.
    let sent = campus.world.node::<Host<SynFlood>>(flood.node).app().syns;
    let seen = campus
        .world
        .node::<Host<Fw>>(fw.node)
        .app()
        .counters()
        .processed_packets;
    println!("flood sent {sent} probes; the firewall inspected only {seen}");
    assert!(sent > 400, "the flood kept running");
    assert!(
        seen < u64::from(sent) / 4,
        "the block cut the flood off early"
    );

    // Meanwhile the legitimate transfer finished untouched.
    let done = campus
        .world
        .node::<Host<HttpClient>>(client.node)
        .app()
        .completed;
    assert_eq!(done, 15, "the legitimate client finished every transfer");
    println!("legitimate client completed {done}/15 transfers alongside the flood");
}
