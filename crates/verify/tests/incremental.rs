//! Incremental-verification equivalence: [`audit_delta`] must agree
//! with the full [`audit`] on every class a delta touches.
//!
//! Two directions, over live campus snapshots (clean and
//! deliberately corrupted so real violations exist):
//!
//! - **Soundness**: every violation the scoped audit reports also
//!   appears in the full audit (scoping never invents findings).
//! - **Completeness on touched classes**: every full-audit violation
//!   whose witness packet is covered by some delta cube — plus every
//!   structural violation, which scoping never skips — appears in
//!   the scoped audit.

use livesec_net::Ipv4Net;
use livesec_openflow::Match;
use livesec_sim::SimDuration;
use livesec_verify::{audit, audit_delta, RuleDelta, Snapshot};
use livesec_workloads::{CampusScenario, ScenarioConfig};
use proptest::prelude::*;
use std::net::Ipv4Addr;
use std::sync::OnceLock;

/// Three snapshots: a clean converged campus, one whose epochs were
/// advanced out from under its fast-passes (stale-fastpass
/// violations), and one with a forged block covering traffic the
/// dataplane still delivers (blocked-reachable violations).
fn snapshots() -> &'static Vec<Snapshot> {
    static SNAPS: OnceLock<Vec<Snapshot>> = OnceLock::new();
    SNAPS.get_or_init(|| {
        let mut s = CampusScenario::build(ScenarioConfig::default());
        s.campus.world.run_for(SimDuration::from_secs(3));
        let clean = Snapshot::of_campus(&s.campus);

        let mut stale = clean.clone();
        stale.epochs.0 += 1;

        // Forge a block over a flow whose path is installed and
        // delivering: the dataplane now provably violates it.
        let mut blocked = clean.clone();
        let forged = blocked.flows.iter().find_map(|f| {
            let src = blocked.host_of(f.key.dl_src)?;
            Some((src.dpid, Match::exact_any_port(&f.key)))
        });
        if let Some(b) = forged {
            blocked.blocks.push(b);
        }
        vec![clean, stale, blocked]
    })
}

fn arb_cube() -> impl Strategy<Value = Match> {
    (
        proptest::option::of((0u32..24, 24u8..=32)),
        proptest::option::of((0u32..24, 24u8..=32)),
        proptest::option::of(prop_oneof![Just(6u8), Just(17u8), Just(1u8)]),
        proptest::option::of(prop_oneof![Just(80u16), Just(22), Just(23), Just(20_000)]),
    )
        .prop_map(|(src, dst, proto, port)| {
            let mut m = Match::any();
            if let Some((v, len)) = src {
                m = m.with_nw_src(Ipv4Net::new(Ipv4Addr::from(0x0a00_0000 | v), len));
            }
            if let Some((v, len)) = dst {
                m = m.with_nw_dst(Ipv4Net::new(Ipv4Addr::from(0x0a00_0000 | v), len));
            }
            if let Some(p) = proto {
                m = m.with_nw_proto(p);
            }
            if let Some(p) = port {
                m = m.with_tp_dst(p);
            }
            m
        })
}

proptest! {
    #[test]
    fn scoped_audit_agrees_with_full_audit_on_touched_classes(
        snap_idx in 0usize..3,
        cubes in proptest::collection::vec(arb_cube(), 1..4),
    ) {
        let snap = &snapshots()[snap_idx];
        let deltas: Vec<RuleDelta> =
            cubes.into_iter().map(RuleDelta::network_wide).collect();

        let full = audit(snap);
        let scoped = audit_delta(snap, &deltas);
        let full_strs: Vec<String> = full.iter().map(|v| v.to_string()).collect();
        let scoped_strs: Vec<String> = scoped.iter().map(|v| v.to_string()).collect();

        // Soundness: scoping never invents a violation.
        for s in &scoped_strs {
            prop_assert!(full_strs.contains(s), "scoped-only violation: {s}");
        }

        // Completeness on touched classes: a full-audit violation
        // whose witness a delta cube covers (or with no witness at
        // all — structural) must survive scoping.
        for v in &full {
            let touched = match v.witness() {
                None => true,
                Some(w) => deltas
                    .iter()
                    .any(|d| d.matcher.matches(w.in_port, &w.key)),
            };
            if touched {
                let s = v.to_string();
                prop_assert!(
                    scoped_strs.contains(&s),
                    "touched violation dropped by scoping: {s}"
                );
            }
        }
    }

    /// The universal delta is the full audit, verbatim.
    #[test]
    fn universal_delta_is_the_full_audit(snap_idx in 0usize..3) {
        let snap = &snapshots()[snap_idx];
        let mut full: Vec<String> = audit(snap).iter().map(|v| v.to_string()).collect();
        let mut scoped: Vec<String> = audit_delta(snap, &[RuleDelta::network_wide(Match::any())])
            .iter()
            .map(|v| v.to_string())
            .collect();
        full.sort();
        scoped.sort();
        prop_assert_eq!(full, scoped);
    }
}

/// The corrupted snapshots really do produce violations — otherwise
/// the equivalence property above would be vacuous on findings.
#[test]
fn corrupted_snapshots_have_findings() {
    let snaps = snapshots();
    assert!(
        !audit(&snaps[1]).is_empty() || snaps[1].fastpasses.is_empty(),
        "stale-epoch snapshot should violate fast-pass freshness"
    );
    assert!(
        !audit(&snaps[2]).is_empty(),
        "forged-block snapshot should violate blocked-unreachable"
    );
}
