//! Ethernet framing: header, EtherType and 802.1Q VLAN tags.

use crate::mac::MacAddr;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The EtherType of an Ethernet frame.
///
/// Only the values LiveSec actually switches on get named variants;
/// everything else round-trips through [`EtherType::Other`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum EtherType {
    /// IPv4 (`0x0800`).
    Ipv4,
    /// ARP (`0x0806`).
    Arp,
    /// 802.1Q VLAN tag (`0x8100`); only appears on the wire, never as a
    /// payload type.
    Vlan,
    /// LLDP (`0x88cc`), used for controller topology discovery.
    Lldp,
    /// Any other EtherType.
    Other(u16),
}

impl EtherType {
    /// The numeric EtherType value.
    pub const fn as_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Vlan => 0x8100,
            EtherType::Lldp => 0x88cc,
            EtherType::Other(v) => v,
        }
    }
}

impl From<u16> for EtherType {
    fn from(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            0x8100 => EtherType::Vlan,
            0x88cc => EtherType::Lldp,
            other => EtherType::Other(other),
        }
    }
}

impl From<EtherType> for u16 {
    fn from(t: EtherType) -> u16 {
        t.as_u16()
    }
}

impl fmt::Display for EtherType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EtherType::Ipv4 => write!(f, "ipv4"),
            EtherType::Arp => write!(f, "arp"),
            EtherType::Vlan => write!(f, "vlan"),
            EtherType::Lldp => write!(f, "lldp"),
            EtherType::Other(v) => write!(f, "0x{v:04x}"),
        }
    }
}

/// An 802.1Q VLAN tag (VID + priority).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct VlanTag {
    /// VLAN identifier, 0..=4095.
    pub vid: u16,
    /// 802.1p priority code point, 0..=7.
    pub pcp: u8,
}

impl VlanTag {
    /// Creates a tag with the given VID and priority 0.
    ///
    /// # Panics
    ///
    /// Panics if `vid > 4095`.
    pub fn new(vid: u16) -> Self {
        assert!(vid <= 0x0fff, "VLAN id {vid} out of range");
        VlanTag { vid, pcp: 0 }
    }

    /// The 16-bit tag control information field.
    pub fn tci(&self) -> u16 {
        ((self.pcp as u16) << 13) | (self.vid & 0x0fff)
    }

    /// Parses a tag from the TCI field.
    pub fn from_tci(tci: u16) -> Self {
        VlanTag {
            vid: tci & 0x0fff,
            pcp: (tci >> 13) as u8,
        }
    }
}

/// An Ethernet II header, optionally VLAN-tagged.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct EthernetHeader {
    /// Destination MAC address.
    pub dst: MacAddr,
    /// Source MAC address.
    pub src: MacAddr,
    /// 802.1Q tag, if present.
    pub vlan: Option<VlanTag>,
    /// EtherType of the payload (after the VLAN tag if tagged).
    pub ethertype: EtherType,
}

impl EthernetHeader {
    /// Creates an untagged header.
    pub fn new(src: MacAddr, dst: MacAddr, ethertype: EtherType) -> Self {
        EthernetHeader {
            dst,
            src,
            vlan: None,
            ethertype,
        }
    }

    /// The on-wire length of this header in bytes (14, or 18 if tagged).
    pub fn wire_len(&self) -> usize {
        if self.vlan.is_some() {
            18
        } else {
            14
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ethertype_roundtrip() {
        for v in [0x0800u16, 0x0806, 0x8100, 0x88cc, 0x1234] {
            assert_eq!(EtherType::from(v).as_u16(), v);
        }
    }

    #[test]
    fn named_variants() {
        assert_eq!(EtherType::from(0x0800), EtherType::Ipv4);
        assert_eq!(EtherType::from(0x0806), EtherType::Arp);
        assert_eq!(EtherType::from(0x88cc), EtherType::Lldp);
        assert_eq!(EtherType::from(0x9999), EtherType::Other(0x9999));
    }

    #[test]
    fn vlan_tci_roundtrip() {
        let tag = VlanTag { vid: 123, pcp: 5 };
        assert_eq!(VlanTag::from_tci(tag.tci()), tag);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn vlan_rejects_large_vid() {
        let _ = VlanTag::new(4096);
    }

    #[test]
    fn wire_len() {
        let mut h = EthernetHeader::new(MacAddr::ZERO, MacAddr::BROADCAST, EtherType::Ipv4);
        assert_eq!(h.wire_len(), 14);
        h.vlan = Some(VlanTag::new(7));
        assert_eq!(h.wire_len(), 18);
    }
}
