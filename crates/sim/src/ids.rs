//! Identifiers for simulation entities.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a node (switch, host, service element, controller) in a
/// [`crate::World`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a `NodeId` from a raw index previously obtained via
    /// [`NodeId::index`]. Passing an index not issued by the same world
    /// yields an id that simply doesn't resolve.
    pub const fn from_index(i: usize) -> Self {
        NodeId(i as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A port number local to a node. Port numbering is the node's own
/// business; switches conventionally start at 1, matching OpenFlow.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct PortId(pub u32);

impl PortId {
    /// The raw port number.
    pub const fn number(self) -> u32 {
        self.0
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u32> for PortId {
    fn from(v: u32) -> Self {
        PortId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_index_roundtrip() {
        let id = NodeId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "n7");
    }

    #[test]
    fn port_id_display() {
        assert_eq!(PortId(3).to_string(), "p3");
        assert_eq!(PortId::from(9).number(), 9);
    }
}
