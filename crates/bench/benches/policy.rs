//! `policy`: the declarative-policy toolchain under load — delta
//! compilation latency against a realistically sized rulebook, and
//! incremental-vs-full audit cost on a 1000-switch campus snapshot
//! (DESIGN.md §14).
//!
//! Two halves:
//!
//! - **Compile**: a ~200-rule `.lsp` program is compiled from
//!   scratch, then one rule is edited and the delta path runs —
//!   `diff` of the two tables plus `apply_delta` of the script. The
//!   claim is that recompiling the *edit* costs a small fraction of
//!   recompiling the *program*.
//! - **Audit**: a synthetic 1000-switch snapshot (one delivered flow
//!   and two exact-match entries per switch, a block every fifth
//!   switch) is audited in full and via [`livesec_verify::audit_delta`]
//!   scoped to single-rule cubes. The **work ratio** — auditable
//!   items total vs. items a single-rule delta touches — is exact and
//!   deterministic, and the ≥10× acceptance floor is asserted on it;
//!   wall-clock times are recorded alongside but never asserted, so a
//!   loaded CI host cannot flake the gate.
//!
//! Run modes: default = 3 timed passes; `--smoke` = 1 pass (CI);
//! `--test` = tiny topology, no JSON.

use livesec_net::{FlowKey, MacAddr};
use livesec_openflow::{Action, FlowEntry, Match, OutPort};
use livesec_policy::{compile, diff};
use livesec_verify::{audit, audit_delta, EcIndex, RuleDelta, Snapshot};
use livesec_verify::{FlowView, HostInfo, SwitchState};
use serde::Serialize;
use std::net::Ipv4Addr;
use std::time::Instant;

/// Access switches in the synthetic campus.
const SWITCHES: u64 = 1_000;
/// Rules in the compile-bench program.
const RULES: usize = 200;
/// Single-rule deltas measured per pass.
const DELTAS: usize = 100;

fn host_mac(i: u64) -> MacAddr {
    MacAddr::from_u64(0x02_0000_0000 + i)
}

fn host_ip(i: u64) -> Ipv4Addr {
    Ipv4Addr::from(0x0a00_0000 + i as u32)
}

/// One delivered flow per switch: host A (port 2) talks to host B
/// (port 3) on the same switch over exact-match entries, plus a
/// telnet block every fifth switch. Every item is clean by
/// construction, so audit time is tracing cost, not violation
/// formatting.
fn build_snapshot(switches: u64) -> Snapshot {
    let mut snap = Snapshot {
        switches: Vec::new(),
        hosts: Vec::new(),
        elements: Vec::new(),
        blocks: Vec::new(),
        flows: Vec::new(),
        fastpasses: Vec::new(),
        epochs: (0, 0),
        shards: Vec::new(),
        quarantined: Vec::new(),
    };
    for d in 1..=switches {
        let (a, b) = (host_mac(2 * d), host_mac(2 * d + 1));
        let key = FlowKey {
            vlan: None,
            dl_src: a,
            dl_dst: b,
            dl_type: 0x0800,
            nw_src: host_ip(2 * d),
            nw_dst: host_ip(2 * d + 1),
            nw_proto: 6,
            tp_src: 40_000,
            tp_dst: 80,
        };
        snap.hosts.push(HostInfo {
            mac: a,
            ip: key.nw_src,
            dpid: d,
            port: 2,
        });
        snap.hosts.push(HostInfo {
            mac: b,
            ip: key.nw_dst,
            dpid: d,
            port: 3,
        });
        snap.switches.push(SwitchState {
            dpid: d,
            uplink: Some(1),
            n_ports: 4,
            entries: vec![
                FlowEntry::new(
                    Match::exact_any_port(&key),
                    vec![Action::Output(OutPort::Physical(3))],
                    10,
                ),
                FlowEntry::new(
                    Match::exact_any_port(&key.reversed()),
                    vec![Action::Output(OutPort::Physical(2))],
                    10,
                ),
            ],
            degraded: false,
        });
        snap.flows.push(FlowView {
            key,
            chain: Vec::new(),
            blocked: false,
        });
        if d % 5 == 0 {
            snap.blocks
                .push((d, Match::any().with_nw_proto(6).with_tp_dst(2323)));
        }
    }
    snap
}

/// The cube a single-rule edit touches: one destination host, one
/// port — what `apply_policy_delta` reports for a host-scoped rule.
fn single_rule_cube(d: u64) -> Match {
    Match::any()
        .with_nw_dst(livesec_net::Ipv4Net::host(host_ip(2 * d + 1)))
        .with_nw_proto(6)
        .with_tp_dst(80)
}

/// A `.lsp` rulebook with `n` port-disjoint rules.
fn rulebook(n: usize, flipped: Option<usize>) -> String {
    let mut src = String::from("chain scrub = [ ids, protoid ]\n");
    for i in 0..n {
        let verdict = match (i % 3, Some(i) == flipped) {
            (_, true) => "deny",
            (0, _) => "allow",
            (1, _) => "via scrub",
            _ => "deny",
        };
        src.push_str(&format!(
            "rule r{i}: proto tcp port {} {verdict}\n",
            1000 + i
        ));
    }
    src.push_str("default allow\n");
    src
}

#[derive(Serialize)]
struct CompileResult {
    rules: usize,
    /// From-scratch compile of the edited program, nanoseconds.
    compile_full_ns: u64,
    /// `diff(old_table, new_table)` — the edit script, nanoseconds.
    diff_ns: u64,
    /// Applying the script to the old table, nanoseconds.
    apply_ns: u64,
    /// Deltas in the script (1 for the single-rule edit).
    script_len: usize,
}

#[derive(Serialize)]
struct AuditResult {
    switches: u64,
    auditable_items: usize,
    /// Full audit wall time, nanoseconds (mean over passes).
    full_audit_ns: u64,
    /// Scoped audit wall time for a single-rule delta, nanoseconds
    /// (mean over `deltas_measured` distinct deltas).
    delta_audit_ns: u64,
    /// full / delta wall-clock ratio — recorded, not asserted.
    wall_speedup: f64,
    /// auditable_items / mean items touched per single-rule delta.
    /// Deterministic; the ≥10× acceptance floor is asserted on this.
    work_ratio: f64,
    deltas_measured: usize,
}

#[derive(Serialize)]
struct BenchReport {
    bench: &'static str,
    model: &'static str,
    passes: u32,
    compile: CompileResult,
    audit: AuditResult,
}

fn bench_compile(passes: u32) -> CompileResult {
    let old_src = rulebook(RULES, None);
    let new_src = rulebook(RULES, Some(RULES / 2));
    let old = compile(&old_src).expect("rulebook compiles").table;

    let (mut full_ns, mut diff_ns, mut apply_ns) = (0u64, 0u64, 0u64);
    let mut script_len = 0usize;
    for _ in 0..passes {
        // livesec-lint: allow(wall-clock, reason = "bench harness timing")
        let t0 = Instant::now();
        let new = compile(&new_src).expect("edited rulebook compiles").table;
        full_ns += t0.elapsed().as_nanos() as u64;

        // livesec-lint: allow(wall-clock, reason = "bench harness timing")
        let t0 = Instant::now();
        let script = diff(&old, &new);
        diff_ns += t0.elapsed().as_nanos() as u64;
        script_len = script.len();

        let mut migrated = old.clone();
        // livesec-lint: allow(wall-clock, reason = "bench harness timing")
        let t0 = Instant::now();
        for d in &script {
            migrated.apply_delta(d);
        }
        apply_ns += t0.elapsed().as_nanos() as u64;
        assert_eq!(migrated, new, "delta script must converge");
    }
    let p = u64::from(passes);
    CompileResult {
        rules: RULES,
        compile_full_ns: full_ns / p,
        diff_ns: diff_ns / p,
        apply_ns: apply_ns / p,
        script_len,
    }
}

fn bench_audit(switches: u64, deltas: usize, passes: u32) -> AuditResult {
    let snap = build_snapshot(switches);
    let idx = EcIndex::build(&snap);
    let total = idx.total_items();

    // The deterministic half: how much of the snapshot does a
    // single-rule delta actually touch?
    let mut touched_total = 0usize;
    for i in 0..deltas {
        let d = 1 + (i as u64 * 7) % switches;
        let scope = idx.touched(&[RuleDelta::network_wide(single_rule_cube(d))]);
        assert!(
            !scope.is_empty(),
            "delta cube for switch {d} missed its flow"
        );
        touched_total += scope.len();
    }
    let mean_touched = touched_total as f64 / deltas as f64;
    let work_ratio = total as f64 / mean_touched;

    // The wall-clock half, recorded for the report.
    let mut full_ns = 0u64;
    for _ in 0..passes {
        // livesec-lint: allow(wall-clock, reason = "bench harness timing")
        let t0 = Instant::now();
        let violations = audit(&snap);
        full_ns += t0.elapsed().as_nanos() as u64;
        assert!(violations.is_empty(), "synthetic snapshot must audit clean");
    }
    let mut delta_ns = 0u64;
    for _ in 0..passes {
        for i in 0..deltas {
            let d = 1 + (i as u64 * 7) % switches;
            let scoped = [RuleDelta::network_wide(single_rule_cube(d))];
            // livesec-lint: allow(wall-clock, reason = "bench harness timing")
            let t0 = Instant::now();
            let violations = audit_delta(&snap, &scoped);
            delta_ns += t0.elapsed().as_nanos() as u64;
            assert!(violations.is_empty(), "scoped audit must be clean too");
        }
    }
    let full_mean = full_ns / u64::from(passes);
    let delta_mean = delta_ns / (u64::from(passes) * deltas as u64);
    AuditResult {
        switches,
        auditable_items: total,
        full_audit_ns: full_mean,
        delta_audit_ns: delta_mean,
        wall_speedup: full_mean as f64 / delta_mean.max(1) as f64,
        work_ratio,
        deltas_measured: deltas,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--test") {
        // Under `cargo test`: prove the harness runs, keep the
        // recorded artifact untouched.
        let audit = bench_audit(50, 10, 1);
        assert!(audit.work_ratio >= 10.0);
        let compile = bench_compile(1);
        assert_eq!(compile.script_len, 1);
        println!("test-mode policy bench: ok");
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let passes = if smoke { 1 } else { 3 };

    let compile = bench_compile(passes);
    println!(
        "compile: {} rules from scratch {:.2} ms | diff {:.1} µs + apply {:.1} µs \
         ({} delta)",
        compile.rules,
        compile.compile_full_ns as f64 / 1e6,
        compile.diff_ns as f64 / 1e3,
        compile.apply_ns as f64 / 1e3,
        compile.script_len,
    );

    let audit = bench_audit(SWITCHES, DELTAS, passes);
    println!(
        "audit: {} items | full {:.2} ms, single-rule delta {:.1} µs \
         ({:.0}x wall, {:.0}x work ratio; floor 10x)",
        audit.auditable_items,
        audit.full_audit_ns as f64 / 1e6,
        audit.delta_audit_ns as f64 / 1e3,
        audit.wall_speedup,
        audit.work_ratio,
    );
    assert!(
        audit.work_ratio >= 10.0,
        "incremental audit work ratio below the acceptance floor: {:.1}x",
        audit.work_ratio
    );

    let report = BenchReport {
        bench: "policy",
        model: "work_ratio is exact (auditable items / items touched by a single-rule \
                delta) and carries the 10x acceptance floor; wall-clock numbers are \
                recorded for context but never asserted",
        passes,
        compile,
        audit,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_policy.json");
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(path, json).expect("write BENCH_policy.json");
    println!("wrote {path}");
}
