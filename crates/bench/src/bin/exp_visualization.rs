//! E6/E7 — regenerates the Figure 7 ("normal network environment")
//! and Figure 8 ("network events") WebUI views, plus the replay check.
//!
//! `--phase normal` prints only Figure 7; `--phase events` only
//! Figure 8; default prints both plus the narrative summary.

use livesec_bench::viz;

fn main() {
    let phase = std::env::args()
        .skip_while(|a| a != "--phase")
        .nth(1)
        .unwrap_or_else(|| "both".to_owned());
    let r = viz::run(42);

    if phase == "normal" || phase == "both" {
        println!("--- Figure 7: normal network environment ---");
        print!("{}", r.normal);
    }
    if phase == "events" || phase == "both" {
        println!("--- Figure 8: network events ---");
        print!("{}", r.events);
    }
    if phase == "both" {
        println!("--- narrative ---");
        println!("user left:            {}", r.narrative.user_left);
        println!("ssh identified:       {}", r.narrative.ssh_seen);
        println!("bittorrent identified:{}", r.narrative.bittorrent_seen);
        println!("attack detected:      {}", r.narrative.attack_detected);
        println!("attack blocked:       {}", r.narrative.attack_blocked);
        println!(
            "events recorded: {} (replayable via Monitor::replay)",
            r.monitor.len()
        );
        println!("--- service-aware statistics (completed flows) ---");
        for (app, t) in &r.app_traffic {
            println!(
                "{:>14}: {:>4} flows {:>10} packets {:>12} bytes",
                app, t.flows, t.packets, t.bytes
            );
        }
    }
}
