//! Micro-benchmark of the conntrack subsystem and the fast-pass saving.
//!
//! Two questions, measured separately:
//!
//! * Table mechanics at production scale — insert, lookup, and
//!   timer-wheel expiry over a 100 000-entry [`ConnTable`].
//! * The per-packet saving of the established-flow fast-pass: the
//!   hairpin path (three switch-table traversals plus the service
//!   element's tracker update per packet) against the fast-pass path
//!   (two traversals, no tracker). The ratio is the real per-packet
//!   saving behind EXPERIMENTS.md's SE-inspected-byte reduction.
//!
//! Simulated clocks only: every timestamp comes from a monotonic
//! nanosecond counter, never the wall clock (DESIGN.md §6).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use livesec_conntrack::{ConnKey, ConnTable};
use livesec_net::{FlowKey, MacAddr, TcpFlags};
use livesec_openflow::{Action, FlowEntry, FlowTable, Match, OutPort};

const N_CONNS: u64 = 100_000;
/// One simulated microsecond between observations: a 100k-entry table
/// spans 100 ms of simulated traffic, well inside every idle timeout.
const STEP: u64 = 1_000;

fn key(f: u64) -> FlowKey {
    FlowKey {
        vlan: None,
        dl_src: MacAddr::from_u64(0xa00_0000 + f),
        dl_dst: MacAddr::from_u64(0xb00_0000 + f % 64),
        dl_type: 0x0800,
        nw_src: format!(
            "10.{}.{}.{}",
            1 + f / 65_025,
            1 + (f / 255) % 255,
            1 + f % 255
        )
        .parse()
        .unwrap(),
        nw_dst: "10.0.255.254".parse().unwrap(),
        nw_proto: 6,
        tp_src: 10_000 + (f % 50_000) as u16,
        tp_dst: 80,
    }
}

/// A table with `n` established connections, observed at `STEP`-spaced
/// simulated timestamps starting from `t0`.
fn filled(n: u64, t0: u64) -> (ConnTable, u64) {
    let mut table = ConnTable::new().with_capacity(2 * n as usize);
    let mut now = t0;
    for f in 0..n {
        let k = key(f);
        table.observe(&k, Some(TcpFlags::SYN), &[], sim(now));
        now += STEP;
        table.observe(
            &k.reversed(),
            Some(TcpFlags::SYN | TcpFlags::ACK),
            &[],
            sim(now),
        );
        now += STEP;
    }
    (table, now)
}

fn sim(nanos: u64) -> livesec_sim::SimTime {
    livesec_sim::SimTime::from_nanos(nanos)
}

fn bench_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("conntrack_table");
    g.sample_size(60);

    // Insert: a fresh SYN against a table already holding 100k flows.
    let (mut table, mut now) = filled(N_CONNS, 0);
    let mut f = N_CONNS;
    g.bench_function("insert_100k", |b| {
        b.iter(|| {
            now += STEP;
            f += 1;
            black_box(table.observe(&key(f), Some(TcpFlags::SYN), &[], sim(now)))
        })
    });

    // Lookup: canonicalization plus map probe, cycling the 100k keys.
    let (table, _) = filled(N_CONNS, 0);
    let mut f = 0u64;
    g.bench_function("lookup_100k", |b| {
        b.iter(|| {
            f += 1;
            black_box(table.get(&ConnKey::of(&key(f % N_CONNS))))
        })
    });

    // Expire: one timer-wheel sweep over the full table. Jumping far
    // past every idle timeout makes each iteration drain whatever the
    // previous left, so the cost amortizes to sweep + eviction work.
    let (mut table, end) = filled(N_CONNS, 0);
    let mut horizon = end;
    g.bench_function("expire_sweep_100k", |b| {
        b.iter(|| {
            horizon += 120_000_000_000; // +120 simulated seconds
            black_box(table.expire(sim(horizon)).len())
        })
    });

    g.finish();
}

/// An exact-match steering entry forwarding `key` out a port.
fn steer(k: &FlowKey, priority: u16) -> FlowEntry {
    FlowEntry::new(
        Match::exact_any_port(k),
        vec![Action::Output(OutPort::Physical(2))],
        priority,
    )
}

fn bench_per_packet(c: &mut Criterion) {
    let mut g = c.benchmark_group("conntrack_per_packet");
    g.sample_size(200);

    let k = key(7);

    // Hairpin: ingress steer, the service element's switch, egress —
    // three table traversals — plus the tracker update the firewall
    // performs on every inspected packet.
    let mut tables: Vec<FlowTable> = (0..3)
        .map(|_| {
            let mut t = FlowTable::new();
            t.insert(steer(&k, 100));
            t
        })
        .collect();
    let (mut track, start) = filled(1, 0);
    let mut now = start;
    g.bench_function("hairpin_packet", |b| {
        b.iter(|| {
            now += STEP;
            for t in &mut tables {
                black_box(t.lookup(1, &k, now));
            }
            black_box(track.observe(&k, Some(TcpFlags::PSH | TcpFlags::ACK), &[0u8; 4], sim(now)))
        })
    });

    // Fast-pass: the two on-path switches forward directly on the
    // higher-priority entry; no service element, no tracker update.
    let mut tables: Vec<FlowTable> = (0..2)
        .map(|_| {
            let mut t = FlowTable::new();
            t.insert(steer(&k, 100));
            t.insert(steer(&k, 150));
            t
        })
        .collect();
    let mut now = start;
    g.bench_function("fastpass_packet", |b| {
        b.iter(|| {
            now += STEP;
            for t in &mut tables {
                black_box(t.lookup(1, &k, now));
            }
        })
    });

    g.finish();
}

criterion_group!(benches, bench_table, bench_per_packet);
criterion_main!(benches);
