//! E8 — Figure 3: interactive policy enforcement.
//!
//! Demonstrates the full §IV-A loop on a minimal network: a user's web
//! flow is steered through an intrusion-detection element (the 4-entry
//! steering program), the element reports an attack, and the
//! controller blocks the flow at its ingress switch.

use livesec::deploy::CampusBuilder;
use livesec::monitor::EventKind;
use livesec::policy::{PolicyRule, PolicyTable};
use livesec_services::{IdsEngine, ServiceElement, ServiceType, SignatureEngine};
use livesec_sim::{SimDuration, SimTime};
use livesec_switch::Host;
use livesec_workloads::{AttackClient, TcpEchoServer};

/// Timeline of the enforcement loop.
#[derive(Clone, Debug)]
pub struct PolicyDemoResult {
    /// When the flow was admitted and steered.
    pub flow_started: Option<SimTime>,
    /// When the element reported the attack.
    pub attack_detected: Option<SimTime>,
    /// When the drop rule landed at the ingress switch.
    pub flow_blocked: Option<SimTime>,
    /// Detection-to-block reaction time.
    pub reaction: Option<SimDuration>,
    /// Attack packets that reached the victim after the block landed
    /// (should be ~0, bounded by in-flight packets).
    pub leaked_after_block: u32,
    /// Attack packets the victim saw in total.
    pub victim_received: u32,
    /// Packets the attacker sent in total.
    pub attacker_sent: u32,
    /// Steering entries installed across switches for the flow.
    pub steering_entries: usize,
}

/// Runs E8.
pub fn run(seed: u64) -> PolicyDemoResult {
    let mut policy = PolicyTable::allow_all();
    policy.push(
        PolicyRule::named("ids-web")
            .dst_port(80)
            .chain(vec![ServiceType::IntrusionDetection]),
    );
    let mut b = CampusBuilder::new(seed, 3).with_policy(policy);
    let victim = b.add_gateway_with_app(0, TcpEchoServer::new());
    b.add_service_element(2, ServiceElement::new(IdsEngine::engine()));
    let attacker = b.add_user(
        1,
        AttackClient::new(victim.ip, 10).with_interval(SimDuration::from_millis(10)),
    );
    let mut campus = b.finish();
    campus.world.run_for(SimDuration::from_secs(4));

    let c = campus.controller();
    let mut result = PolicyDemoResult {
        flow_started: None,
        attack_detected: None,
        flow_blocked: None,
        reaction: None,
        leaked_after_block: 0,
        victim_received: 0,
        attacker_sent: 0,
        steering_entries: 0,
    };
    for e in c.monitor().events() {
        match &e.kind {
            EventKind::FlowStart { chain, .. } if !chain.is_empty() => {
                result.flow_started.get_or_insert(e.at);
            }
            EventKind::AttackDetected { .. } => {
                result.attack_detected.get_or_insert(e.at);
            }
            EventKind::FlowBlocked { .. } => {
                result.flow_blocked.get_or_insert(e.at);
            }
            _ => {}
        }
    }
    result.reaction = match (result.attack_detected, result.flow_blocked) {
        (Some(d), Some(b)) if b >= d => Some(b.since(d)),
        _ => None,
    };
    result.victim_received = campus
        .world
        .node::<Host<TcpEchoServer>>(victim.node)
        .app()
        .echoed as u32;
    result.attacker_sent = campus
        .world
        .node::<Host<AttackClient>>(attacker.node)
        .app()
        .sent;
    result.steering_entries = campus
        .as_switches
        .iter()
        .map(|&sw| {
            campus
                .world
                .node::<livesec_switch::AsSwitch>(sw)
                .table()
                .len()
        })
        .sum();
    let _ = ServiceElement::<SignatureEngine>::new(IdsEngine::engine()); // keep type alive for docs
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enforcement_loop_completes_quickly() {
        let r = run(23);
        assert!(r.flow_started.is_some());
        assert!(r.attack_detected.is_some());
        assert!(r.flow_blocked.is_some());
        let reaction = r.reaction.expect("block after detection");
        assert!(
            reaction < SimDuration::from_millis(5),
            "reaction {reaction}"
        );
        assert!(
            r.victim_received < r.attacker_sent / 2,
            "most attack traffic never reached the victim: {r:?}"
        );
    }
}
