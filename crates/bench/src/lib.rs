#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]
#![warn(clippy::disallowed_methods, clippy::disallowed_types)]

//! Experiment harness for the LiveSec reproduction.
//!
//! One module per experiment of the paper's evaluation (§V), as
//! indexed in `DESIGN.md`:
//!
//! | id | module | paper artifact |
//! |----|--------|----------------|
//! | E1 | [`access`] | §V-B.1 access throughput (OvS vs Pantou) |
//! | E2 | [`scaling`] | §V-B.1 SE scaling (421 → 827 Mbps → NIC cap) |
//! | E3 | [`aggregate`] | §V-B.1 aggregate capacity (8 Gbps IDS / 2 Gbps proto-id) |
//! | E4 | [`balance_exp`] | §V-B.2 load-balance deviation (≤5% for min-load) |
//! | E5 | [`latency`] | §V-B.3 latency overhead (≈ +10%) |
//! | E6/E7 | [`viz`] | Figures 7–8 WebUI frames and event replay |
//! | E8 | [`policy_demo`] | Figure 3 interactive policy enforcement |
//! | E10 | [`ablation`] | design-choice ablations (ours) |
//! | E11 | [`baseline`] | traditional gateway middlebox vs LiveSec (Fig. 1 vs Fig. 2) |
//!
//! Each module exposes a `run` function returning a plain result
//! struct; the `src/bin/exp_*.rs` binaries print the paper-style
//! tables, and `benches/experiments.rs` wraps reduced versions in
//! Criterion for regression tracking.

pub mod ablation;
pub mod access;
pub mod aggregate;
pub mod balance_exp;
pub mod baseline;
pub mod latency;
pub mod policy_demo;
pub mod scaling;
pub mod viz;

use livesec_sim::format_bps;

/// Prints a two-column result row, `label` then a bit rate.
pub fn print_rate_row(label: &str, bps: f64) {
    println!("{label:<44} {:>14}", format_bps(bps));
}

/// Prints a section header for an experiment table.
pub fn print_header(exp: &str, title: &str) {
    println!();
    println!("=== {exp}: {title} ===");
}

/// Relative error helper used by experiment self-checks.
pub fn rel_err(measured: f64, expected: f64) -> f64 {
    (measured - expected).abs() / expected
}
