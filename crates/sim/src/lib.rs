#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]
#![warn(clippy::disallowed_methods, clippy::disallowed_types)]

//! A deterministic discrete-event network simulator.
//!
//! This crate is the substrate on which the LiveSec reproduction runs:
//! it stands in for the physical FIT-building network of the paper
//! (Open vSwitch servers, Gigabit Ethernet core, OpenWrt Wi-Fi APs).
//!
//! Design points:
//!
//! * **Deterministic.** Single-threaded event loop over a binary heap
//!   keyed by `(time, sequence)`; all randomness flows from one seeded
//!   [`rand::rngs::StdRng`]. The same seed always reproduces the same
//!   run, event for event.
//! * **Integer time.** [`SimTime`]/[`SimDuration`] count nanoseconds in
//!   `u64`, so there is no floating-point drift in the schedule.
//! * **Realistic links.** Each [`LinkSpec`] models transmission rate,
//!   propagation delay and a bounded FIFO egress queue with tail drop —
//!   the three properties the paper's throughput, latency and
//!   load-balance experiments depend on.
//! * **Out-of-band control channel.** [`Ctx::send_control`] models the
//!   OpenFlow secure channel between switches and the controller with
//!   its own latency, independent of the data plane.
//!
//! # Example
//!
//! ```rust
//! use livesec_sim::prelude::*;
//!
//! let mut world = World::new(42);
//! // ... add nodes, connect links ...
//! let stats = world.run_for(SimDuration::from_secs(1));
//! assert_eq!(stats.end, SimTime::from_nanos(1_000_000_000));
//! ```

pub mod fault;
pub mod ids;
pub mod link;
pub mod metrics;
pub mod node;
pub mod tap;
pub mod time;
pub mod world;

pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use ids::{NodeId, PortId};
pub use link::LinkSpec;
pub use metrics::{format_bps, LatencySummary, ThroughputMeter};
pub use node::{Ctx, Node};
pub use tap::Tap;
pub use time::{SimDuration, SimTime};
pub use world::{Kernel, PortCounters, RunStats, World};

/// Convenient glob-import surface: `use livesec_sim::prelude::*;`.
pub mod prelude {
    pub use crate::fault::{FaultEvent, FaultKind, FaultPlan};
    pub use crate::ids::{NodeId, PortId};
    pub use crate::link::LinkSpec;
    pub use crate::metrics::{format_bps, LatencySummary, ThroughputMeter};
    pub use crate::node::{Ctx, Node};
    pub use crate::tap::Tap;
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::world::{Kernel, PortCounters, RunStats, World};
}
