//! The centralized ARP/DHCP directory proxy (paper §III-C.2).
//!
//! Broadcasting ARP and DHCP through the legacy fabric would load
//! every link and make every AS switch re-handle the broadcast, so
//! LiveSec resolves both centrally: the controller answers ARP
//! requests from its global location table, and this module's lease
//! allocator backs a DHCP server behind the same packet-in path.

use livesec_net::{DhcpMessage, DhcpMsgType, Ipv4Net, MacAddr};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// A deterministic DHCP lease allocator over an address pool.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirectoryProxy {
    pool: Ipv4Net,
    /// First host index handed out (skips network/gateway addresses).
    next_index: u32,
    leases: BTreeMap<MacAddr, Ipv4Addr>,
}

impl DirectoryProxy {
    /// Creates a proxy leasing from `pool`, starting at host index
    /// `first_index` (use it to reserve low addresses for static
    /// assignment).
    pub fn new(pool: Ipv4Net, first_index: u32) -> Self {
        DirectoryProxy {
            pool,
            next_index: first_index,
            leases: BTreeMap::new(),
        }
    }

    /// The lease currently held by `mac`, if any.
    pub fn lease_of(&self, mac: MacAddr) -> Option<Ipv4Addr> {
        self.leases.get(&mac).copied()
    }

    /// Number of active leases.
    pub fn lease_count(&self) -> usize {
        self.leases.len()
    }

    /// Allocates (or returns the existing) lease for `mac`; `None` if
    /// the pool is exhausted.
    pub fn allocate(&mut self, mac: MacAddr) -> Option<Ipv4Addr> {
        if let Some(ip) = self.leases.get(&mac) {
            return Some(*ip);
        }
        let host_bits = 32 - self.pool.prefix_len() as u32;
        let capacity: u64 = if host_bits >= 32 {
            u64::MAX
        } else {
            1u64 << host_bits
        };
        if u64::from(self.next_index) >= capacity.saturating_sub(1) {
            return None; // keep the broadcast address out of the pool
        }
        let ip = self.pool.nth(self.next_index);
        self.next_index += 1;
        self.leases.insert(mac, ip);
        Some(ip)
    }

    /// Handles one client DHCP message, producing the server reply (or
    /// `None` when the pool is exhausted or the message needs no
    /// reply).
    pub fn handle(&mut self, msg: &DhcpMessage) -> Option<DhcpMessage> {
        match msg.kind {
            DhcpMsgType::Discover => {
                let lease = self.allocate(msg.chaddr)?;
                Some(DhcpMessage::offer(msg, lease))
            }
            DhcpMsgType::Request => {
                // Honor the requested address if it matches our lease.
                match self.leases.get(&msg.chaddr) {
                    Some(ip) if *ip == msg.yiaddr => Some(DhcpMessage::ack(msg)),
                    _ => Some(DhcpMessage {
                        kind: DhcpMsgType::Nak,
                        ..*msg
                    }),
                }
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(v: u64) -> MacAddr {
        MacAddr::from_u64(v)
    }

    fn proxy() -> DirectoryProxy {
        DirectoryProxy::new("10.0.0.0/24".parse().unwrap(), 10)
    }

    #[test]
    fn allocation_is_deterministic_and_stable() {
        let mut p = proxy();
        let a = p.allocate(mac(1)).unwrap();
        let b = p.allocate(mac(2)).unwrap();
        assert_eq!(a, "10.0.0.10".parse::<Ipv4Addr>().unwrap());
        assert_eq!(b, "10.0.0.11".parse::<Ipv4Addr>().unwrap());
        assert_eq!(p.allocate(mac(1)), Some(a), "same MAC keeps its lease");
        assert_eq!(p.lease_count(), 2);
    }

    #[test]
    fn full_dora_exchange() {
        let mut p = proxy();
        let d = DhcpMessage::discover(7, mac(1));
        let offer = p.handle(&d).unwrap();
        assert_eq!(offer.kind, DhcpMsgType::Offer);
        let req = DhcpMessage::request(&offer);
        let ack = p.handle(&req).unwrap();
        assert_eq!(ack.kind, DhcpMsgType::Ack);
        assert_eq!(ack.yiaddr, offer.yiaddr);
        assert_eq!(p.lease_of(mac(1)), Some(offer.yiaddr));
    }

    #[test]
    fn request_for_foreign_address_nacked() {
        let mut p = proxy();
        let mut req = DhcpMessage::discover(7, mac(1));
        req.kind = DhcpMsgType::Request;
        req.yiaddr = "10.0.0.200".parse().unwrap();
        let reply = p.handle(&req).unwrap();
        assert_eq!(reply.kind, DhcpMsgType::Nak);
    }

    #[test]
    fn pool_exhaustion() {
        // /30 pool: 4 addresses, indices 1..=2 usable (skip bcast).
        let mut p = DirectoryProxy::new("10.0.0.0/30".parse().unwrap(), 1);
        assert!(p.allocate(mac(1)).is_some());
        assert!(p.allocate(mac(2)).is_some());
        assert_eq!(p.allocate(mac(3)), None, "pool exhausted");
        // Existing lease still answered.
        assert!(p.allocate(mac(1)).is_some());
    }

    #[test]
    fn offer_replies_preserve_xid() {
        let mut p = proxy();
        let d = DhcpMessage::discover(0xfeed, mac(4));
        let offer = p.handle(&d).unwrap();
        assert_eq!(offer.xid, 0xfeed);
        assert_eq!(offer.chaddr, mac(4));
    }
}
