//! Minimal DHCP messages.
//!
//! The paper (§III-C.2) routes ARP *and DHCP* resolution through a
//! dedicated directory proxy instead of broadcasting through the legacy
//! core. We model the four-message DORA exchange with just enough
//! fields for the proxy to hand out deterministic leases.

use crate::mac::MacAddr;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// The DHCP message type option (option 53).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum DhcpMsgType {
    /// Client broadcast looking for servers.
    Discover,
    /// Server offer of a lease.
    Offer,
    /// Client request for the offered lease.
    Request,
    /// Server acknowledgement: lease granted.
    Ack,
    /// Server refusal.
    Nak,
}

/// A DHCP message, carried in UDP 68→67 / 67→68.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct DhcpMessage {
    /// Message type.
    pub kind: DhcpMsgType,
    /// Transaction id chosen by the client.
    pub xid: u32,
    /// Client hardware address.
    pub chaddr: MacAddr,
    /// "Your" address: the offered/assigned lease (zero in Discover).
    pub yiaddr: Ipv4Addr,
}

impl DhcpMessage {
    /// Nominal on-wire length of a BOOTP-framed DHCP message.
    pub const WIRE_LEN: usize = 300;

    /// Client port (bootpc).
    pub const CLIENT_PORT: u16 = 68;
    /// Server port (bootps).
    pub const SERVER_PORT: u16 = 67;

    /// Builds a client Discover.
    pub fn discover(xid: u32, chaddr: MacAddr) -> Self {
        DhcpMessage {
            kind: DhcpMsgType::Discover,
            xid,
            chaddr,
            yiaddr: Ipv4Addr::UNSPECIFIED,
        }
    }

    /// Builds the server Offer answering `discover` with `lease`.
    pub fn offer(discover: &DhcpMessage, lease: Ipv4Addr) -> Self {
        DhcpMessage {
            kind: DhcpMsgType::Offer,
            xid: discover.xid,
            chaddr: discover.chaddr,
            yiaddr: lease,
        }
    }

    /// Builds the client Request accepting `offer`.
    pub fn request(offer: &DhcpMessage) -> Self {
        DhcpMessage {
            kind: DhcpMsgType::Request,
            ..*offer
        }
    }

    /// Builds the server Ack confirming `request`.
    pub fn ack(request: &DhcpMessage) -> Self {
        DhcpMessage {
            kind: DhcpMsgType::Ack,
            ..*request
        }
    }

    /// Encodes the message into the compact byte form carried as a UDP
    /// payload in the simulator (15 bytes: kind, xid, chaddr, yiaddr).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(15);
        out.push(match self.kind {
            DhcpMsgType::Discover => 1,
            DhcpMsgType::Offer => 2,
            DhcpMsgType::Request => 3,
            DhcpMsgType::Ack => 5,
            DhcpMsgType::Nak => 6,
        });
        out.extend_from_slice(&self.xid.to_be_bytes());
        out.extend_from_slice(&self.chaddr.octets());
        out.extend_from_slice(&self.yiaddr.octets());
        out
    }

    /// Decodes a message previously produced by [`DhcpMessage::encode`].
    /// Returns `None` for malformed input.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 15 {
            return None;
        }
        let kind = match bytes[0] {
            1 => DhcpMsgType::Discover,
            2 => DhcpMsgType::Offer,
            3 => DhcpMsgType::Request,
            5 => DhcpMsgType::Ack,
            6 => DhcpMsgType::Nak,
            _ => return None,
        };
        let xid = u32::from_be_bytes(bytes[1..5].try_into().ok()?);
        let chaddr = MacAddr::new(bytes[5..11].try_into().ok()?);
        let yiaddr = Ipv4Addr::new(bytes[11], bytes[12], bytes[13], bytes[14]);
        Some(DhcpMessage {
            kind,
            xid,
            chaddr,
            yiaddr,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let msg = DhcpMessage {
            kind: DhcpMsgType::Offer,
            xid: 0xdead_beef,
            chaddr: MacAddr::from_u64(0x0016_3e00_0001),
            yiaddr: "10.0.1.44".parse().unwrap(),
        };
        assert_eq!(DhcpMessage::decode(&msg.encode()), Some(msg));
        assert_eq!(DhcpMessage::decode(b"short"), None);
        assert_eq!(DhcpMessage::decode(&[9; 15]), None);
    }

    #[test]
    fn dora_exchange_threads_xid_and_lease() {
        let mac = MacAddr::from_u64(0x42);
        let lease: Ipv4Addr = "10.0.0.99".parse().unwrap();
        let d = DhcpMessage::discover(7, mac);
        assert_eq!(d.yiaddr, Ipv4Addr::UNSPECIFIED);
        let o = DhcpMessage::offer(&d, lease);
        let r = DhcpMessage::request(&o);
        let a = DhcpMessage::ack(&r);
        assert_eq!(a.kind, DhcpMsgType::Ack);
        assert_eq!(a.xid, 7);
        assert_eq!(a.chaddr, mac);
        assert_eq!(a.yiaddr, lease);
    }
}
