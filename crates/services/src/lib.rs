#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]
#![warn(clippy::disallowed_methods, clippy::disallowed_types)]

//! VM-based security service elements.
//!
//! The Network-Periphery layer of LiveSec hosts *service elements*
//! (SEs): virtual machines that provide security services off the data
//! path. The controller steers selected flows through them by
//! rewriting destination MACs; the SE inspects the traffic, sends it
//! back, and reports results to the controller over a magic-tagged UDP
//! control channel (paper §III-D.1).
//!
//! This crate provides:
//!
//! * [`SeMessage`] — the SE ↔ controller control protocol: periodic
//!   `Online` messages carrying service type and load (CPU, memory,
//!   packets/s), and `Event` reports carrying detection results, plus
//!   the certification token the paper's §III-D.1 suggests.
//! * [`AhoCorasick`] — a from-scratch multi-pattern matcher, the core
//!   of the payload-scanning engines.
//! * Inspection engines: [`IdsEngine`] (the Snort substitute),
//!   [`ProtoIdEngine`] (the L7-filter substitute), [`FirewallEngine`],
//!   [`VirusScanEngine`] and [`ContentInspectionEngine`].
//! * [`ServiceElement`] — the host [`App`](livesec_switch::App) that
//!   wraps any engine with the paper's bypass-mode forwarding and a
//!   token-bucket capacity model (default 500 Mbps, the paper's
//!   measured per-VM rate), so throughput caps and queueing emerge
//!   from the model.

pub mod aho;
pub mod element;
pub mod engines;
pub mod msg;
pub mod rules;

pub use aho::AhoCorasick;
pub use element::{SeCounters, ServiceElement};
pub use engines::{
    ContentInspectionEngine, Finding, FirewallEngine, FwAction, FwRule, IdsEngine, IdsRule,
    Inspector, ProtoIdEngine, Severity, SignatureEngine, StateMatch, VirusScanEngine,
};
pub use msg::{SeMessage, ServiceType, Verdict, SE_CONTROL_MAC, SE_CONTROL_PORT};
pub use rules::{parse_rules, RuleParseError};

/// Convenient glob-import surface: `use livesec_services::prelude::*;`.
pub mod prelude {
    pub use crate::aho::AhoCorasick;
    pub use crate::element::{SeCounters, ServiceElement};
    pub use crate::engines::{
        ContentInspectionEngine, Finding, FirewallEngine, FwAction, FwRule, IdsEngine, IdsRule,
        Inspector, ProtoIdEngine, Severity, SignatureEngine, StateMatch, VirusScanEngine,
    };
    pub use crate::msg::{SeMessage, ServiceType, Verdict, SE_CONTROL_MAC, SE_CONTROL_PORT};
    pub use crate::rules::{parse_rules, RuleParseError};
}
