//! ICMP messages (echo request/reply).
//!
//! The paper's latency evaluation (§V-B.3) pings from a user to an
//! Internet server; these types carry that workload.

use serde::{Deserialize, Serialize};

/// The ICMP message type.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum IcmpType {
    /// Echo reply (0).
    EchoReply,
    /// Destination unreachable (3).
    Unreachable,
    /// Echo request (8).
    EchoRequest,
    /// Any other type.
    Other(u8),
}

impl IcmpType {
    /// The numeric type value.
    pub const fn as_u8(self) -> u8 {
        match self {
            IcmpType::EchoReply => 0,
            IcmpType::Unreachable => 3,
            IcmpType::EchoRequest => 8,
            IcmpType::Other(v) => v,
        }
    }
}

impl From<u8> for IcmpType {
    fn from(v: u8) -> Self {
        match v {
            0 => IcmpType::EchoReply,
            3 => IcmpType::Unreachable,
            8 => IcmpType::EchoRequest,
            other => IcmpType::Other(other),
        }
    }
}

/// An ICMP message (echo-style header plus opaque data length).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct IcmpMessage {
    /// Message type.
    pub kind: IcmpType,
    /// Identifier (echo id).
    pub ident: u16,
    /// Sequence number.
    pub seq: u16,
    /// Length of the echo data carried (bytes, not materialized).
    pub data_len: u16,
}

impl IcmpMessage {
    /// On-wire length of the ICMP echo header.
    pub const HEADER_LEN: usize = 8;

    /// Builds an echo request.
    pub fn echo_request(ident: u16, seq: u16, data_len: u16) -> Self {
        IcmpMessage {
            kind: IcmpType::EchoRequest,
            ident,
            seq,
            data_len,
        }
    }

    /// Builds the echo reply matching `request`.
    pub fn reply_to(request: &IcmpMessage) -> Self {
        IcmpMessage {
            kind: IcmpType::EchoReply,
            ..*request
        }
    }

    /// Total on-wire length (header + data).
    pub fn wire_len(&self) -> usize {
        Self::HEADER_LEN + self.data_len as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_roundtrip() {
        for v in [0u8, 3, 8, 42] {
            assert_eq!(IcmpType::from(v).as_u8(), v);
        }
    }

    #[test]
    fn reply_preserves_ident_and_seq() {
        let req = IcmpMessage::echo_request(77, 3, 56);
        let rep = IcmpMessage::reply_to(&req);
        assert_eq!(rep.kind, IcmpType::EchoReply);
        assert_eq!(rep.ident, 77);
        assert_eq!(rep.seq, 3);
        assert_eq!(rep.data_len, 56);
    }

    #[test]
    fn wire_len() {
        assert_eq!(IcmpMessage::echo_request(1, 1, 56).wire_len(), 64);
    }
}
