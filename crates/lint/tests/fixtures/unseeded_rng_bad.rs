// Fixture: unseeded randomness the unseeded-rng rule must flag.

pub fn jitter() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen_range(0..100)
}

pub fn seed_from_os() -> u64 {
    let mut rng = StdRng::from_entropy();
    rng.next_u64()
}

pub fn coin() -> bool {
    rand::random()
}
