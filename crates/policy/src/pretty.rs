//! The canonical pretty-printer.
//!
//! `pretty` emits one fixed formatting of a program: clauses in
//! canonical order, one declaration per line, normalized prefixes and
//! rate units. Canonical text is a fixpoint — `parse(pretty(p))`
//! pretty-prints back to the same string — which is what the
//! round-trip proptests pin down.

use crate::ast::{
    proto_keyword, service_keyword, Decl, DeclKind, Endpoint, Member, Program, Verdict,
};
use std::fmt::Write as _;

/// Pretty-prints a whole program, one declaration per line (with a
/// trailing newline when non-empty).
pub fn pretty(program: &Program) -> String {
    let mut out = String::new();
    for decl in &program.decls {
        out.push_str(&pretty_decl(decl));
        out.push('\n');
    }
    out
}

fn pretty_decl(decl: &Decl) -> String {
    let mut s = String::new();
    match &decl.kind {
        DeclKind::Group { name, members } => {
            let _ = write!(s, "group {name} = {{");
            for (i, m) in members.iter().enumerate() {
                let sep = if i == 0 { " " } else { ", " };
                match m {
                    Member::Mac(mac) => {
                        let _ = write!(s, "{sep}{mac}");
                    }
                    Member::Net(net) => {
                        let _ = write!(s, "{sep}{net}");
                    }
                }
            }
            s.push_str(" }");
        }
        DeclKind::Chain { name, services } => {
            let _ = write!(s, "chain {name} = [");
            for (i, svc) in services.iter().enumerate() {
                let sep = if i == 0 { " " } else { ", " };
                let _ = write!(s, "{sep}{}", service_keyword(*svc));
            }
            s.push_str(" ]");
        }
        DeclKind::Tenant { name, net } => {
            let _ = write!(s, "tenant {name} {net}");
        }
        DeclKind::Rule(r) => {
            let _ = write!(s, "rule {}:", r.name);
            if let Some(ep) = &r.from {
                let _ = write!(s, " from {}", pretty_endpoint(ep));
            }
            if let Some(ep) = &r.to {
                let _ = write!(s, " to {}", pretty_endpoint(ep));
            }
            if let Some(p) = r.proto {
                match proto_keyword(p) {
                    Some(kw) => {
                        let _ = write!(s, " proto {kw}");
                    }
                    None => {
                        let _ = write!(s, " proto {p}");
                    }
                }
            }
            if let Some(p) = r.port {
                let _ = write!(s, " port {p}");
            }
            if let Some(t) = &r.tenant {
                let _ = write!(s, " tenant {t}");
            }
            let _ = write!(s, " {}", pretty_verdict(&r.verdict));
        }
        DeclKind::Default { verdict } => {
            let _ = write!(s, "default {}", pretty_verdict(verdict));
        }
        DeclKind::OnApp { app, block } => {
            let action = if *block { "block" } else { "allow" };
            let _ = write!(s, "on app {app} {action}");
        }
    }
    s
}

fn pretty_endpoint(ep: &Endpoint) -> String {
    match ep {
        Endpoint::Name(n) => n.clone(),
        Endpoint::Net(net) => net.to_string(),
        Endpoint::Mac(mac) => mac.to_string(),
    }
}

fn pretty_verdict(v: &Verdict) -> String {
    match v {
        Verdict::Allow => "allow".to_owned(),
        Verdict::Deny => "deny".to_owned(),
        Verdict::Via(chain) => format!("via {chain}"),
        Verdict::Limit { bps } => {
            // Canonical unit: the largest that divides the rate.
            let (n, unit) = if *bps > 0 && bps % 1_000_000_000 == 0 {
                (bps / 1_000_000_000, "gbps")
            } else if *bps > 0 && bps % 1_000_000 == 0 {
                (bps / 1_000_000, "mbps")
            } else if *bps > 0 && bps % 1_000 == 0 {
                (bps / 1_000, "kbps")
            } else {
                (*bps, "bps")
            };
            format!("limit {n} {unit}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn canonical_text_is_a_fixpoint() {
        let src = "\
group eng = { 0a:0b:0c:0d:0e:01, 10.1.0.0/24 }
chain web = [ ids, protoid ]
tenant lab 10.2.0.0/16
rule web-ids: from eng proto tcp port 80 via web
rule capped: from 10.9.0.0/24 limit 10 mbps
default allow
on app bittorrent block
";
        let (prog, diags) = parse(src);
        assert!(diags.is_empty(), "{diags:?}");
        let printed = pretty(&prog);
        assert_eq!(printed, src);
        let (reparsed, rediags) = parse(&printed);
        assert!(rediags.is_empty());
        assert_eq!(pretty(&reparsed), printed);
    }

    #[test]
    fn normalizes_on_the_way_in() {
        // Host bits masked, clauses reordered, units folded.
        let (prog, diags) =
            parse("rule r: port 80 from 10.1.2.3/16 proto 6 limit 2000 kbps\ngroup g = {}\n");
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(
            pretty(&prog),
            "rule r: from 10.1.0.0/16 proto tcp port 80 limit 2 mbps\ngroup g = { }\n"
        );
    }
}
