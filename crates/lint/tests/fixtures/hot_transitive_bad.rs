//! BAD: the allocation lives in a helper the configured hot root
//! calls, not in the root itself. v2 checked only the functions named
//! in the hot table, so extracting a helper silently lost coverage;
//! v3 derives the hot set transitively from the seed roots.

fn hot(x: u32) -> u32 {
    helper(x)
}

fn helper(x: u32) -> u32 {
    let buf = vec![x; 4];
    buf.len() as u32
}
