#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

//! The `livesec-lint` binary: lint the workspace, print findings,
//! exit nonzero when any unannotated violation remains.
//!
//! ```text
//! livesec-lint [ROOT]
//! ```
//!
//! With no argument the workspace root is located by walking up from
//! the current directory to the first `Cargo.toml` containing
//! `[workspace]`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "-h" || a == "--help") {
        println!("usage: livesec-lint [ROOT]");
        println!("Determinism & invariant static analysis for the LiveSec workspace.");
        println!("Exits 1 when any unannotated finding remains (see DESIGN.md §6).");
        return ExitCode::SUCCESS;
    }
    let root = match args.first() {
        Some(p) => PathBuf::from(p),
        None => {
            let cwd = std::env::current_dir().expect("cwd");
            match livesec_lint::walk::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "livesec-lint: no workspace root found above {}",
                        cwd.display()
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    match livesec_lint::lint_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("livesec-lint: workspace clean (0 findings)");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                // Report paths relative to the root for stable output.
                let rel = f.path.strip_prefix(&root).unwrap_or(&f.path);
                println!(
                    "{}:{}: [{}] {}",
                    rel.display(),
                    f.finding.line,
                    f.finding.rule.name(),
                    f.finding.message
                );
            }
            eprintln!("livesec-lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("livesec-lint: {e}");
            ExitCode::FAILURE
        }
    }
}
