//! E5 — regenerates the §V-B.3 latency measurement
//! (LiveSec adds ≈10% average RTT over the legacy network).

use livesec_bench::latency;
use livesec_bench::print_header;

fn main() {
    print_header("E5", "ping RTT to an Internet server (paper: ~+10%)");
    let r = latency::run(17, 200);
    println!("baseline (legacy only)     mean RTT: {}", r.baseline_rtt);
    println!("LiveSec (IDS steering)     mean RTT: {}", r.livesec_rtt);
    println!(
        "LiveSec first ping (setup)      RTT: {}",
        r.livesec_first_rtt
    );
    println!(
        "overhead: {:+.1}%   loss: {:.2}%",
        r.overhead * 100.0,
        r.livesec_loss * 100.0
    );

    let u = latency::run_unsteered(17, 200);
    println!();
    println!("ablation - AS layer only (no SE detour):");
    println!("LiveSec unsteered          mean RTT: {}", u.livesec_rtt);
    println!("overhead: {:+.1}%", u.overhead * 100.0);
}
