//! Taint dataflow for the wire-taint rule, inter-procedural since v3.
//!
//! The lattice is a 64-bit mask per value: bit 63 (`WIRE`) means
//! *attacker-influenced* — read off the wire or derived from something
//! that was — and bits `0..48` mean *depends on parameter i* of the
//! enclosing function. The param bits are what make per-function
//! summaries composable: a helper's summary says "my return carries
//! whatever param 0 carries", and the caller substitutes the actual
//! argument's mask at the call site, so wire taint flows through
//! helpers without re-analyzing them (the PEPS-style decomposition
//! from the design notes).
//!
//! Taint enters through byte-reader method calls (`u8()`/`u16()`/...),
//! `from_be_bytes`-family constructors, and `&[u8]` parameters (in the
//! diagnostic pass). It propagates through let bindings, casts,
//! arithmetic, projections, ordinary method calls, and *resolved*
//! calls via the [`Oracle`]; it is killed by sanitizers
//! (`min`/`clamp`, `checked_*`/`saturating_*`, `try_into`/`try_from`)
//! and by any comparison mentioning the variable (a bounds guard).
//!
//! Alongside taint, a parallel *sub* mask tracks values produced by an
//! unguarded subtraction involving a parameter — the underflow shape
//! behind LS202's cross-function slice-index check.
//!
//! The walk is a single forward pass per function in source order.
//! Branch environments are not re-merged: once a guard sanitizes a
//! variable it stays clean for the rest of the function. That trades
//! missed flows for near-zero false positives, the right trade for a
//! CI gate.

use crate::ast::{BinOp, Block, Expr, FnItem, Stmt};
use std::collections::BTreeMap;

/// The attacker-influence bit of a taint mask.
pub const WIRE: u64 = 1 << 63;

/// The parameter-dependence bits of a taint mask (params 0..48;
/// functions with more parameters than that lose precision, not
/// soundness, past the cap).
pub const PARAM_MASK: u64 = (1 << 48) - 1;

/// Mask bit for parameter `i` (zero past the cap).
pub fn param_bit(i: usize) -> u64 {
    if i < 48 {
        1 << i
    } else {
        0
    }
}

/// Iterator over the set parameter-bit positions of a mask.
pub(crate) fn iter_bits(mask: u64) -> impl Iterator<Item = usize> {
    (0..48).filter(move |i| mask & (1 << i) != 0)
}

/// What kind of dangerous operation a tainted value reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SinkKind {
    /// Allocation sized by the tainted value (`Vec::with_capacity`,
    /// `reserve`, `resize`, `vec![x; n]`).
    Capacity,
    /// Slice/array indexing with a tainted index or range bound
    /// (including `split_at`).
    Index,
    /// Amplifying arithmetic (`*`, `<<`) on a tainted operand.
    Arith,
}

impl SinkKind {
    /// Dense index for per-kind summary slots.
    pub fn idx(self) -> usize {
        match self {
            SinkKind::Capacity => 0,
            SinkKind::Index => 1,
            SinkKind::Arith => 2,
        }
    }

    /// All kinds, in `idx` order.
    pub const ALL: [SinkKind; 3] = [SinkKind::Capacity, SinkKind::Index, SinkKind::Arith];

    /// Human description of the sink position for call-site messages.
    pub fn describe(self) -> &'static str {
        match self {
            SinkKind::Capacity => "an allocation size",
            SinkKind::Index => "a slice index",
            SinkKind::Arith => "amplifying arithmetic",
        }
    }
}

/// One tainted-value-reaches-sink event.
#[derive(Clone, Debug)]
pub struct TaintSink {
    /// 1-based line of the sink expression.
    pub line: u32,
    /// Sink classification.
    pub kind: SinkKind,
    /// Short description of the flow for the diagnostic message.
    pub what: String,
    /// Taint mask of the value that reached the sink. Diagnostics
    /// require the [`WIRE`] bit; summaries keep the param bits.
    pub mask: u64,
}

/// A function's composable taint behavior, computed once bottom-up
/// and substituted at every call site.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TaintSummary {
    /// Mask of the return value: [`WIRE`] when the fn reads wire bytes
    /// into its result itself, plus a param bit per parameter whose
    /// taint reaches the return.
    pub ret_mask: u64,
    /// Param bits whose value feeds an *unguarded subtraction* in the
    /// return — calling this with an unbounded argument yields an
    /// underflow-prone result (LS202's cross-function shape).
    pub ret_sub: u64,
    /// Per [`SinkKind::idx`] slot: param bits that reach such a sink
    /// inside this function (or transitively in its callees).
    pub sink_params: [u64; 3],
}

impl TaintSummary {
    /// Joins `other` into `self`; returns whether anything changed.
    /// Join is bitwise-or, so SCC fixpoints are monotone and
    /// terminate.
    pub fn join(&mut self, other: &TaintSummary) -> bool {
        let before = *self;
        self.ret_mask |= other.ret_mask;
        self.ret_sub |= other.ret_sub;
        for (slot, v) in self.sink_params.iter_mut().zip(other.sink_params) {
            *slot |= v;
        }
        before != *self
    }
}

/// A resolved callee, as the oracle hands it to the walker.
#[derive(Debug)]
pub struct CalleeInfo<'a> {
    /// The callee's taint summary.
    pub taint: &'a TaintSummary,
    /// Whether the callee's param 0 is a `self` receiver.
    pub has_self: bool,
    /// Callee name, for diagnostics.
    pub name: &'a str,
}

/// Resolves call expressions to callee summaries. The intra-procedural
/// pass uses [`NoOracle`]; the workspace analysis wires in the call
/// graph.
pub trait Oracle {
    /// Summary for the unique callee of `e`, when known.
    fn resolve(&self, e: &Expr) -> Option<CalleeInfo<'_>>;
}

/// An oracle that resolves nothing — v2-equivalent intra-procedural
/// analysis.
#[derive(Debug)]
pub struct NoOracle;

impl Oracle for NoOracle {
    fn resolve(&self, _e: &Expr) -> Option<CalleeInfo<'_>> {
        None
    }
}

/// Result of one function's taint pass.
#[derive(Debug)]
pub struct FnFlow {
    /// Every sink some non-zero mask reached.
    pub sinks: Vec<TaintSink>,
    /// Join of return-position masks.
    pub ret_mask: u64,
    /// Join of return-position sub masks.
    pub ret_sub: u64,
}

/// Byte-reader methods whose results are wire-controlled.
const READER_METHODS: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "read_u8", "read_u16",
    "read_u32", "read_u64",
];

/// Constructor fns whose results are wire-controlled.
const BYTES_CTORS: &[&str] = &["from_be_bytes", "from_le_bytes", "from_ne_bytes"];

/// Methods that *kill* taint: their result is bounded regardless of
/// the input (`n.min(remaining)`, `n.checked_mul(k)?`, ...).
fn is_sanitizer(name: &str) -> bool {
    name == "min"
        || name == "clamp"
        || name == "try_into"
        || name == "try_from"
        || name.starts_with("checked_")
        || name.starts_with("saturating_")
}

/// Methods whose result is a property of local state, not of wire
/// bytes: lengths and cursor positions are what guards compare
/// against, so they must read as clean.
fn is_clean_query(name: &str) -> bool {
    matches!(
        name,
        "len"
            | "is_empty"
            | "remaining"
            | "capacity"
            | "count"
            | "position"
            | "is_some"
            | "is_none"
    )
}

/// Methods that panic or allocate when fed an oversized argument.
fn arg_sink(name: &str) -> Option<SinkKind> {
    match name {
        "reserve" | "reserve_exact" | "resize" | "with_capacity" => Some(SinkKind::Capacity),
        "split_at" | "split_at_mut" => Some(SinkKind::Index),
        _ => None,
    }
}

/// Per-variable state: (taint mask, sub mask).
type Env = BTreeMap<String, (u64, u64)>;

/// Runs the full taint pass over one function. `seed_wire` seeds
/// `&[u8]` parameters with [`WIRE`] (the diagnostic pass); the summary
/// pass seeds param bits only, so `ret_mask & WIRE` means the function
/// is intrinsically a wire source. Every parameter always carries its
/// param bit, which is what summary extraction reads back.
pub fn function_flow(f: &FnItem, oracle: &dyn Oracle, seed_wire: bool) -> FnFlow {
    let mut flow = Flow {
        oracle,
        sinks: Vec::new(),
        ret_mask: 0,
        ret_sub: 0,
    };
    let Some(body) = &f.body else {
        return FnFlow {
            sinks: flow.sinks,
            ret_mask: 0,
            ret_sub: 0,
        };
    };
    let mut env: Env = BTreeMap::new();
    for (i, p) in f.params.iter().enumerate() {
        let mut mask = param_bit(i);
        if seed_wire && p.ty.is_byte_slice() {
            mask |= WIRE;
        }
        env.insert(p.name.clone(), (mask, 0));
    }
    flow.block(body, &mut env, true);
    FnFlow {
        ret_mask: flow.ret_mask,
        ret_sub: flow.ret_sub & PARAM_MASK,
        sinks: flow.sinks,
    }
}

/// Backward-compatible v2 entry point: intra-procedural, wire-seeded,
/// returning only the sinks an attacker-influenced value reached.
pub fn wire_taint_sinks(f: &FnItem) -> Vec<TaintSink> {
    function_flow(f, &NoOracle, true)
        .sinks
        .into_iter()
        .filter(|s| s.mask & WIRE != 0)
        .collect()
}

/// Extracts a callee-composable summary from one function, given the
/// summaries already computed for *its* callees.
pub fn summarize_fn(f: &FnItem, oracle: &dyn Oracle) -> TaintSummary {
    let flow = function_flow(f, oracle, false);
    let mut s = TaintSummary {
        ret_mask: flow.ret_mask,
        ret_sub: flow.ret_sub,
        sink_params: [0; 3],
    };
    for sink in &flow.sinks {
        s.sink_params[sink.kind.idx()] |= sink.mask & PARAM_MASK;
    }
    s
}

/// The argument expression standing in for callee parameter `p`.
pub(crate) fn arg_for_param<'e>(
    p: usize,
    recv: Option<&'e Expr>,
    args: &'e [Expr],
    has_self: bool,
) -> Option<&'e Expr> {
    match (recv, has_self) {
        (Some(r), true) => {
            if p == 0 {
                Some(r)
            } else {
                args.get(p - 1)
            }
        }
        _ => args.get(p),
    }
}

struct Flow<'a> {
    oracle: &'a dyn Oracle,
    sinks: Vec<TaintSink>,
    ret_mask: u64,
    ret_sub: u64,
}

impl Flow<'_> {
    fn block(&mut self, b: &Block, env: &mut Env, tail: bool) {
        let last = b.stmts.len().saturating_sub(1);
        for (i, stmt) in b.stmts.iter().enumerate() {
            match stmt {
                Stmt::Let {
                    name,
                    pat_idents,
                    init,
                    else_block,
                    ..
                } => {
                    let mut masks = (0, 0);
                    if let Some(e) = init {
                        self.expr(e, env);
                        masks = (self.taint_of(e, env), self.sub_of(e, env));
                    }
                    if let Some(n) = name {
                        env.insert(n.clone(), masks);
                    } else {
                        for id in pat_idents {
                            env.insert(id.clone(), masks);
                        }
                    }
                    if let Some(eb) = else_block {
                        self.block(eb, env, false);
                    }
                }
                Stmt::Expr { expr, semi } => {
                    self.expr(expr, env);
                    if tail && i == last && !*semi {
                        self.ret_mask |= self.taint_of(expr, env);
                        self.ret_sub |= self.sub_of(expr, env);
                    }
                }
                Stmt::Item(_) | Stmt::Empty => {}
            }
        }
    }

    /// Applies the callee's param-to-sink summary at a call site:
    /// every argument whose mask reaches a sink inside the callee is
    /// recorded as a sink *here*, carrying the argument's mask. This
    /// is how LS301 reports the caller's line when the dangerous
    /// allocation lives two helpers down.
    fn callee_arg_sinks(
        &mut self,
        info: &CalleeInfo<'_>,
        recv: Option<&Expr>,
        args: &[Expr],
        line: u32,
        env: &Env,
    ) {
        for kind in SinkKind::ALL {
            let pmask = info.taint.sink_params[kind.idx()];
            if pmask == 0 {
                continue;
            }
            let mut mask = 0u64;
            for p in iter_bits(pmask) {
                if let Some(a) = arg_for_param(p, recv, args, info.has_self) {
                    mask |= self.taint_of(a, env);
                }
            }
            if mask != 0 {
                self.sinks.push(TaintSink {
                    line,
                    kind,
                    what: format!(
                        "wire-tainted argument reaches {} inside `{}`",
                        kind.describe(),
                        info.name
                    ),
                    mask,
                });
            }
        }
    }

    /// One forward pass over an expression tree: detects sinks with
    /// the current environment, applies guard sanitization, and tracks
    /// assignments.
    fn expr(&mut self, e: &Expr, env: &mut Env) {
        match e {
            Expr::Path { .. } | Expr::Lit { .. } | Expr::Continue { .. } | Expr::Opaque { .. } => {}
            Expr::Call { callee, args, line } => {
                // `Vec::with_capacity(n)` and friends as a free call.
                if let Expr::Path { segs, .. } = callee.as_ref() {
                    if let Some(kind) = segs.last().and_then(|s| arg_sink(s)) {
                        let mask = args.first().map_or(0, |a| self.taint_of(a, env));
                        if mask != 0 {
                            self.sinks.push(TaintSink {
                                line: *line,
                                kind,
                                what: format!("wire-tainted value sizes `{}`", segs.join("::")),
                                mask,
                            });
                        }
                    }
                }
                let oracle = self.oracle;
                if let Some(info) = oracle.resolve(e) {
                    self.callee_arg_sinks(&info, None, args, *line, env);
                }
                self.expr(callee, env);
                for a in args {
                    self.expr(a, env);
                }
            }
            Expr::MethodCall {
                recv,
                name,
                args,
                line,
                ..
            } => {
                if let Some(kind) = arg_sink(name) {
                    let mask = args.first().map_or(0, |a| self.taint_of(a, env));
                    if mask != 0 {
                        self.sinks.push(TaintSink {
                            line: *line,
                            kind,
                            what: format!("wire-tainted value flows into `.{name}()`"),
                            mask,
                        });
                    }
                }
                let oracle = self.oracle;
                if let Some(info) = oracle.resolve(e) {
                    self.callee_arg_sinks(&info, Some(recv), args, *line, env);
                }
                // Closure arguments over a tainted receiver bind their
                // params to the receiver's mask (`opt.map(|n| ...)` —
                // the v2 walker lost taint here).
                let rmask = self.taint_of(recv, env);
                let rsub = self.sub_of(recv, env);
                self.expr(recv, env);
                for a in args {
                    if let Expr::Closure { params, .. } = a {
                        if rmask != 0 || rsub != 0 {
                            for p in params {
                                env.insert(p.clone(), (rmask, rsub));
                            }
                        }
                    }
                    self.expr(a, env);
                }
            }
            Expr::Field { recv, .. } => self.expr(recv, env),
            Expr::Index { recv, index, line } => {
                self.expr(recv, env);
                self.expr(index, env);
                let mask = self.index_taint(index, env);
                if mask != 0 {
                    self.sinks.push(TaintSink {
                        line: *line,
                        kind: SinkKind::Index,
                        what: format!("wire-tainted index `{}`", describe(index)),
                        mask,
                    });
                }
            }
            Expr::Unary { expr, .. } | Expr::Cast { expr, .. } | Expr::Try { expr, .. } => {
                self.expr(expr, env)
            }
            Expr::Binary { op, lhs, rhs, line } => {
                self.expr(lhs, env);
                self.expr(rhs, env);
                if op.is_comparison() {
                    // A bounds guard: every variable this comparison
                    // mentions is clean from here on.
                    sanitize_mentions(lhs, env);
                    sanitize_mentions(rhs, env);
                } else if matches!(op, BinOp::Mul | BinOp::Shl) {
                    let mask = self.taint_of(lhs, env) | self.taint_of(rhs, env);
                    if mask != 0 {
                        self.sinks.push(TaintSink {
                            line: *line,
                            kind: SinkKind::Arith,
                            what: format!(
                                "wire-tainted operand in amplifying `{}`",
                                if *op == BinOp::Mul { "*" } else { "<<" }
                            ),
                            mask,
                        });
                    }
                }
            }
            Expr::Assign { op, lhs, rhs, line } => {
                self.expr(rhs, env);
                // `v[i] = x` is still an index sink on the left side.
                if let Expr::Index { recv, index, .. } = lhs.as_ref().unwrapped() {
                    self.expr(recv, env);
                    self.expr(index, env);
                    let mask = self.index_taint(index, env);
                    if mask != 0 {
                        self.sinks.push(TaintSink {
                            line: *line,
                            kind: SinkKind::Index,
                            what: format!("wire-tainted index `{}`", describe(index)),
                            mask,
                        });
                    }
                }
                if let Expr::Path { segs, .. } = lhs.as_ref().unwrapped() {
                    if segs.len() == 1 {
                        let mut masks = (self.taint_of(rhs, env), self.sub_of(rhs, env));
                        if op.is_some() {
                            let prev = env.get(&segs[0]).copied().unwrap_or((0, 0));
                            masks.0 |= prev.0;
                            masks.1 |= prev.1;
                        }
                        env.insert(segs[0].clone(), masks);
                    }
                }
            }
            Expr::Range { lo, hi, .. } => {
                if let Some(l) = lo {
                    self.expr(l, env);
                }
                if let Some(h) = hi {
                    self.expr(h, env);
                }
            }
            Expr::If {
                cond, then, else_, ..
            } => {
                self.expr(cond, env);
                self.block(then, env, false);
                if let Some(el) = else_ {
                    self.expr(el, env);
                }
            }
            Expr::While { cond, body, .. } => {
                self.expr(cond, env);
                self.block(body, env, false);
            }
            Expr::Loop { body, .. } => self.block(body, env, false),
            Expr::For {
                pat_idents,
                iter,
                body,
                ..
            } => {
                self.expr(iter, env);
                let masks = (self.taint_of(iter, env), 0);
                for id in pat_idents {
                    env.insert(id.clone(), masks);
                }
                self.block(body, env, false);
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                self.expr(scrutinee, env);
                let t = self.taint_of(scrutinee, env);
                for arm in arms {
                    // Pattern bindings over a tainted scrutinee are
                    // tainted (`match r.u16()? { n => ... }`).
                    if t != 0 {
                        for id in &arm.pat_idents {
                            env.insert(id.clone(), (t, 0));
                        }
                    }
                    if let Some(g) = &arm.guard {
                        self.expr(g, env);
                    }
                    self.expr(&arm.body, env);
                }
            }
            Expr::Block { block, .. } => self.block(block, env, false),
            Expr::Closure { body, .. } => self.expr(body, env),
            Expr::MacroCall { name, args, .. } => {
                // `vec![elem; n]` allocates n elements.
                if name == "vec" && args.len() == 2 {
                    if let Some(n) = args.get(1) {
                        let mask = self.taint_of(n, env);
                        if mask != 0 {
                            self.sinks.push(TaintSink {
                                line: e.line(),
                                kind: SinkKind::Capacity,
                                what: "wire-tainted length sizes `vec![_; n]`".to_string(),
                                mask,
                            });
                        }
                    }
                }
                for a in args {
                    self.expr(a, env);
                }
            }
            Expr::StructLit { fields, base, .. } => {
                for (_, v) in fields {
                    self.expr(v, env);
                }
                if let Some(b) = base {
                    self.expr(b, env);
                }
            }
            Expr::Tuple { elems, .. } | Expr::Array { elems, .. } => {
                for el in elems {
                    self.expr(el, env);
                }
            }
            Expr::Return { value, .. } => {
                if let Some(v) = value {
                    self.expr(v, env);
                    self.ret_mask |= self.taint_of(v, env);
                    self.ret_sub |= self.sub_of(v, env);
                }
            }
            Expr::Break { value, .. } => {
                if let Some(v) = value {
                    self.expr(v, env);
                }
            }
        }
    }

    /// Pure taint valuation of an expression under the environment.
    fn taint_of(&self, e: &Expr, env: &Env) -> u64 {
        match e {
            Expr::Path { segs, .. } => {
                if segs.len() == 1 {
                    env.get(&segs[0]).map_or(0, |&(t, _)| t)
                } else {
                    0
                }
            }
            Expr::Lit { .. } | Expr::Continue { .. } | Expr::Opaque { .. } => 0,
            Expr::MethodCall {
                recv, name, args, ..
            } => {
                if is_sanitizer(name) || is_clean_query(name) {
                    return 0;
                }
                if READER_METHODS.contains(&name.as_str()) {
                    return WIRE;
                }
                if let Some(info) = self.oracle.resolve(e) {
                    return self.summary_ret(&info, Some(recv), args, env).0;
                }
                self.taint_of(recv, env) | args.iter().fold(0, |m, a| m | self.taint_of(a, env))
            }
            Expr::Call { callee, args, .. } => {
                if let Expr::Path { segs, .. } = callee.as_ref() {
                    if let Some(last) = segs.last() {
                        if BYTES_CTORS.contains(&last.as_str()) {
                            return WIRE;
                        }
                        if is_sanitizer(last) {
                            return 0;
                        }
                    }
                }
                if let Some(info) = self.oracle.resolve(e) {
                    return self.summary_ret(&info, None, args, env).0;
                }
                args.iter().fold(0, |m, a| m | self.taint_of(a, env))
            }
            Expr::Field { recv, .. } | Expr::Index { recv, .. } => self.taint_of(recv, env),
            Expr::Unary { expr, .. } | Expr::Cast { expr, .. } | Expr::Try { expr, .. } => {
                self.taint_of(expr, env)
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                if op.is_comparison() {
                    0
                } else {
                    self.taint_of(lhs, env) | self.taint_of(rhs, env)
                }
            }
            Expr::Assign { .. } => 0,
            Expr::Range { lo, hi, .. } => {
                lo.as_deref().map_or(0, |e| self.taint_of(e, env))
                    | hi.as_deref().map_or(0, |e| self.taint_of(e, env))
            }
            // Control-flow expressions: coarse — the join of every
            // tainted variable mentioned inside (the guard pass has
            // already sanitized anything a comparison bounded).
            Expr::If { .. }
            | Expr::While { .. }
            | Expr::Loop { .. }
            | Expr::For { .. }
            | Expr::Match { .. }
            | Expr::Block { .. } => env
                .iter()
                .filter(|(var, &(t, _))| t != 0 && e.mentions(var))
                .fold(0, |m, (_, &(t, _))| m | t),
            Expr::Closure { .. } => 0,
            Expr::MacroCall { .. } => 0,
            Expr::StructLit { fields, .. } => {
                fields.iter().fold(0, |m, (_, v)| m | self.taint_of(v, env))
            }
            Expr::Tuple { elems, .. } | Expr::Array { elems, .. } => {
                elems.iter().fold(0, |m, el| m | self.taint_of(el, env))
            }
            Expr::Return { .. } | Expr::Break { .. } => 0,
        }
    }

    /// Sub-risk valuation: the param bits flowing through an unguarded
    /// subtraction into this value. Tracked only through direct
    /// arithmetic and *resolved* calls; unresolved calls reset to
    /// zero, trading recall for a near-zero false-positive rate.
    fn sub_of(&self, e: &Expr, env: &Env) -> u64 {
        match e {
            Expr::Path { segs, .. } if segs.len() == 1 => env.get(&segs[0]).map_or(0, |&(_, s)| s),
            Expr::Path { .. } => 0,
            Expr::Binary { op, lhs, rhs, .. } => match op {
                BinOp::Sub => {
                    ((self.taint_of(lhs, env) | self.taint_of(rhs, env)) & PARAM_MASK)
                        | self.sub_of(lhs, env)
                        | self.sub_of(rhs, env)
                }
                _ if op.is_comparison() => 0,
                BinOp::Rem | BinOp::BitAnd | BinOp::Div => 0,
                _ => self.sub_of(lhs, env) | self.sub_of(rhs, env),
            },
            Expr::MethodCall {
                recv, name, args, ..
            } => {
                if is_sanitizer(name) || is_clean_query(name) {
                    return 0;
                }
                if let Some(info) = self.oracle.resolve(e) {
                    return self.summary_ret(&info, Some(recv), args, env).1;
                }
                0
            }
            Expr::Call { args, .. } => {
                if let Some(info) = self.oracle.resolve(e) {
                    return self.summary_ret(&info, None, args, env).1;
                }
                0
            }
            Expr::Unary { expr, .. } | Expr::Cast { expr, .. } | Expr::Try { expr, .. } => {
                self.sub_of(expr, env)
            }
            // Control-flow tails: any unguarded subtraction of a
            // param-dependent value inside counts (guards inside have
            // already sanitized their variables by scan order).
            Expr::If { .. } | Expr::Match { .. } | Expr::Block { .. } => {
                let mut m = 0u64;
                e.walk(&mut |x| {
                    if let Expr::Binary {
                        op: BinOp::Sub,
                        lhs,
                        rhs,
                        ..
                    } = x
                    {
                        m |= (self.taint_of(lhs, env) | self.taint_of(rhs, env)) & PARAM_MASK;
                    }
                });
                m
            }
            _ => 0,
        }
    }

    /// Composes a callee summary at a call site: maps the callee's
    /// param bits back through the actual arguments, keeping the
    /// intrinsic WIRE bit. Returns (taint mask, sub mask) of the call
    /// result.
    fn summary_ret(
        &self,
        info: &CalleeInfo<'_>,
        recv: Option<&Expr>,
        args: &[Expr],
        env: &Env,
    ) -> (u64, u64) {
        let mut t = info.taint.ret_mask & WIRE;
        let mut s = 0u64;
        for p in iter_bits(info.taint.ret_mask & PARAM_MASK) {
            if let Some(a) = arg_for_param(p, recv, args, info.has_self) {
                t |= self.taint_of(a, env);
                s |= self.sub_of(a, env);
            }
        }
        for p in iter_bits(info.taint.ret_sub) {
            if let Some(a) = arg_for_param(p, recv, args, info.has_self) {
                s |= self.taint_of(a, env) & PARAM_MASK;
                // A sub over an unconditionally-tainted-free but
                // locally-bound variable still underflows; record the
                // risk even when the arg mask is clean but unguarded
                // variables appear (handled by the LS202 rule, which
                // owns the guarded-set).
                s |= self.sub_of(a, env);
            }
        }
        (t, s)
    }

    /// Index-position taint: a literal index is always fine; a range
    /// is dangerous when either bound is tainted.
    fn index_taint(&self, index: &Expr, env: &Env) -> u64 {
        match index.unwrapped() {
            Expr::Lit { .. } => 0,
            Expr::Range { lo, hi, .. } => {
                lo.as_deref().map_or(0, |e| self.taint_of(e, env))
                    | hi.as_deref().map_or(0, |e| self.taint_of(e, env))
            }
            other => self.taint_of(other, env),
        }
    }
}

/// Marks every simple variable mentioned by a comparison operand as
/// clean: the comparison is (or feeds) a bounds guard.
fn sanitize_mentions(e: &Expr, env: &mut Env) {
    e.walk(&mut |x| {
        if let Expr::Path { segs, .. } = x {
            if segs.len() == 1 {
                if let Some(m) = env.get_mut(&segs[0]) {
                    *m = (0, 0);
                }
            }
        }
    });
}

/// Short rendering of an index expression for diagnostics.
fn describe(e: &Expr) -> String {
    match e.unwrapped() {
        Expr::Path { segs, .. } => segs.join("::"),
        Expr::Binary { .. } => "arithmetic over wire values".to_string(),
        Expr::Range { .. } => "range with wire-derived bound".to_string(),
        _ => "wire-derived value".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::for_each_fn;
    use crate::parser::parse;

    fn sinks_of(src: &str) -> Vec<TaintSink> {
        let file = parse(src);
        assert!(file.recoveries.is_empty(), "{:?}", file.recoveries);
        let mut out = Vec::new();
        for_each_fn(&file, &mut |f, _| out.extend(wire_taint_sinks(f)));
        out
    }

    fn summary_of(src: &str, name: &str) -> TaintSummary {
        let file = parse(src);
        assert!(file.recoveries.is_empty(), "{:?}", file.recoveries);
        let mut out = None;
        for_each_fn(&file, &mut |f, _| {
            if f.name == name {
                out = Some(summarize_fn(f, &NoOracle));
            }
        });
        out.expect("fn present")
    }

    #[test]
    fn flags_tainted_capacity() {
        let s = sinks_of(
            "fn f(r: &mut Reader) -> Vec<u8> {\n\
             let n = r.u32() as usize;\n\
             Vec::with_capacity(n) }",
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].kind, SinkKind::Capacity);
        assert_eq!(s[0].line, 3);
    }

    #[test]
    fn min_remaining_sanitizes() {
        let s = sinks_of(
            "fn f(r: &mut Reader) -> Vec<u8> {\n\
             let n = (r.u32() as usize).min(r.remaining());\n\
             Vec::with_capacity(n) }",
        );
        assert!(s.is_empty(), "{s:?}");
    }

    #[test]
    fn comparison_guard_sanitizes() {
        let s = sinks_of(
            "fn f(r: &mut Reader, buf: &[u8]) -> u8 {\n\
             let n = r.u16() as usize;\n\
             if n >= buf.len() { return 0; }\n\
             buf[n] }",
        );
        assert!(s.is_empty(), "{s:?}");
    }

    #[test]
    fn unguarded_index_from_slice_param() {
        let s = sinks_of(
            "fn f(buf: &[u8], out: &mut [u8]) -> u8 {\n\
             let i = buf[1] as usize;\n\
             out[i] }",
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].kind, SinkKind::Index);
    }

    #[test]
    fn from_be_bytes_is_source_and_range_is_sink() {
        let s = sinks_of(
            "fn f(buf: &[u8]) -> &[u8] {\n\
             let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;\n\
             &buf[4..4 + len] }",
        );
        assert_eq!(s.len(), 1, "{s:?}");
        assert_eq!(s[0].kind, SinkKind::Index);
    }

    #[test]
    fn amplifying_mul_is_flagged_checked_is_not() {
        let s = sinks_of("fn f(r: &mut Reader) -> usize { r.u16() as usize * 8 }");
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].kind, SinkKind::Arith);
        let ok =
            sinks_of("fn f(r: &mut Reader) -> Option<usize> { (r.u16() as usize).checked_mul(8) }");
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn vec_macro_length_is_capacity_sink() {
        let s =
            sinks_of("fn f(r: &mut Reader) -> Vec<u8> { let n = r.u32() as usize; vec![0u8; n] }");
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].kind, SinkKind::Capacity);
    }

    #[test]
    fn closure_params_inherit_receiver_taint() {
        let s = sinks_of(
            "fn f(r: &mut Reader) -> Option<Vec<u8>> {\n\
             let n = r.u32();\n\
             Some(n).map(|len| Vec::with_capacity(len as usize)) }",
        );
        assert_eq!(s.len(), 1, "{s:?}");
        assert_eq!(s[0].kind, SinkKind::Capacity);
    }

    #[test]
    fn summary_param_to_return_and_sink() {
        let s = summary_of(
            "fn grow(n: usize, extra: usize) -> Vec<u8> { Vec::with_capacity(n) }",
            "grow",
        );
        assert_eq!(s.sink_params[SinkKind::Capacity.idx()], param_bit(0));
        assert_eq!(s.sink_params[SinkKind::Capacity.idx()] & param_bit(1), 0);
    }

    #[test]
    fn summary_ret_mask_tracks_params_and_wire() {
        let s = summary_of("fn id(x: usize) -> usize { x }", "id");
        assert_eq!(s.ret_mask, param_bit(0));
        let w = summary_of("fn read(r: &mut Reader) -> u32 { r.u32() }", "read");
        assert_eq!(w.ret_mask & WIRE, WIRE);
    }

    #[test]
    fn summary_ret_sub_unguarded_vs_guarded() {
        let s = summary_of("fn prev(i: usize) -> usize { i - 1 }", "prev");
        assert_eq!(s.ret_sub, param_bit(0));
        let g = summary_of(
            "fn prev(i: usize) -> usize { if i == 0 { 0 } else { i - 1 } }",
            "prev",
        );
        assert_eq!(g.ret_sub, 0, "guarded subtraction must not leak");
    }

    #[test]
    fn oracle_composes_wire_taint_through_helper() {
        struct One(TaintSummary);
        impl Oracle for One {
            fn resolve(&self, e: &Expr) -> Option<CalleeInfo<'_>> {
                match e {
                    Expr::Call { callee, .. } => match callee.unwrapped() {
                        Expr::Path { segs, .. } if segs.last().is_some_and(|s| s == "grow") => {
                            Some(CalleeInfo {
                                taint: &self.0,
                                has_self: false,
                                name: "grow",
                            })
                        }
                        _ => None,
                    },
                    _ => None,
                }
            }
        }
        let helper = summary_of(
            "fn grow(n: usize) -> Vec<u8> { Vec::with_capacity(n) }",
            "grow",
        );
        let file = parse(
            "fn f(r: &mut Reader) -> Vec<u8> {\n\
             let n = r.u32() as usize;\n\
             grow(n) }",
        );
        let mut sinks = Vec::new();
        for_each_fn(&file, &mut |f, _| {
            sinks.extend(
                function_flow(f, &One(helper), true)
                    .sinks
                    .into_iter()
                    .filter(|s| s.mask & WIRE != 0),
            );
        });
        assert_eq!(sinks.len(), 1, "{sinks:?}");
        assert_eq!(sinks[0].kind, SinkKind::Capacity);
        assert_eq!(sinks[0].line, 3, "reported at the call site");
    }
}
