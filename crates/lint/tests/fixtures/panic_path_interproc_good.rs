//! GOOD twin of `panic_path_interproc_bad.rs`: the same helper
//! shapes, but every caller bounds-checks before the call, and the
//! subtracting helper guards its own argument.

fn prev(i: usize) -> usize {
    if i == 0 {
        return 0;
    }
    i - 1
}

fn prev2(i: usize) -> usize {
    prev(i)
}

fn last(v: &[u8]) -> u8 {
    if v.is_empty() {
        return 0;
    }
    let len = v.len();
    v[prev2(len)]
}

fn get_at(v: &[u8], i: usize) -> u8 {
    if i < v.len() {
        v[i]
    } else {
        0
    }
}

fn pick(v: &[u8], i: usize) -> u8 {
    get_at(v, i)
}
