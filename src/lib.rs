#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]
#![warn(clippy::disallowed_methods, clippy::disallowed_types)]

//! Meta-crate for the LiveSec reproduction workspace.
//!
//! This crate exists to host the runnable [examples](https://github.com/)
//! under `examples/` and the cross-crate integration tests under `tests/`.
//! It re-exports the member crates under short names so that examples can
//! write `use livesec_suite::prelude::*;`.
//!
//! The actual library surface lives in the member crates:
//!
//! * [`livesec_net`] — packet formats and flow keys
//! * [`livesec_sim`] — the discrete-event network simulator
//! * [`livesec_openflow`] — the OpenFlow-1.0-style protocol subset
//! * [`livesec_switch`] — dataplane elements (AS switches, legacy switches, hosts)
//! * [`livesec_services`] — VM-based security service elements
//! * [`livesec_conntrack`] — stateful connection tracking
//! * [`livesec`] — the LiveSec controller (the paper's contribution)
//! * [`livesec_workloads`] — synthetic traffic generators and scenarios
//! * [`livesec_verify`] — header-space invariant verifier for the emitted dataplane

pub use livesec;
pub use livesec_conntrack;
pub use livesec_net;
pub use livesec_openflow;
pub use livesec_services;
pub use livesec_sim;
pub use livesec_switch;
pub use livesec_verify;
pub use livesec_workloads;

/// Convenience re-exports for examples and integration tests.
pub mod prelude {
    pub use livesec::prelude::*;
    pub use livesec_net::prelude::*;
    pub use livesec_openflow::prelude::*;
    pub use livesec_services::prelude::*;
    pub use livesec_switch::prelude::*;
    pub use livesec_workloads::prelude::*;
}
