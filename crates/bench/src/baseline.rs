//! E11 — baseline comparison (ours): the traditional architecture of
//! the paper's Figure 1 (one high-performance middlebox at the
//! gateway) versus LiveSec's Figure 2 (elements distributed over the
//! Access-Switching layer).
//!
//! The paper's motivation claims the traditional design is a "single
//! point of performance bottleneck" while LiveSec's capacity rises
//! linearly with the number of elements. This experiment sweeps
//! offered load and reports scrubbed throughput for both designs; the
//! traditional curve flattens at one element's capacity while LiveSec
//! keeps pace with demand — crossing over as soon as demand exceeds
//! one box.

use livesec::balance::LoadBalancer;
use livesec::deploy::CampusBuilder;
use livesec::policy::{PolicyRule, PolicyTable};
use livesec_services::{IdsEngine, ServiceElement, ServiceType};
use livesec_sim::{LinkSpec, SimDuration};
use livesec_switch::Host;
use livesec_workloads::{HttpClient, HttpServer};

/// The architecture under test.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Design {
    /// One middlebox at the gateway scrubs everything (Figure 1).
    TraditionalGatewayMiddlebox,
    /// One element per demand unit, spread over the switches
    /// (Figure 2).
    LiveSecDistributed,
}

/// One measurement point.
#[derive(Clone, Copy, Debug)]
pub struct BaselinePoint {
    /// The design measured.
    pub design: Design,
    /// Number of concurrent client/server pairs (demand units).
    pub demand_pairs: usize,
    /// Number of service elements deployed.
    pub n_elements: usize,
    /// Aggregate scrubbed goodput, bits per second.
    pub goodput_bps: f64,
}

/// Runs one point: `demand_pairs` client/server pairs, scrubbed by
/// either a single gateway middlebox or one distributed element per
/// pair.
pub fn run(design: Design, demand_pairs: usize, seed: u64, window: SimDuration) -> BaselinePoint {
    let n_elements = match design {
        Design::TraditionalGatewayMiddlebox => 1,
        Design::LiveSecDistributed => demand_pairs,
    };
    // Element switches first, then a pair of switches per demand unit.
    let n_switches = n_elements + 2 * demand_pairs;
    let mut policy = PolicyTable::allow_all();
    policy.push(
        PolicyRule::named("scrub-web")
            .dst_port(80)
            .chain(vec![ServiceType::IntrusionDetection]),
    );
    let mut big = LinkSpec::gigabit();
    big.queue_bytes = 32 * 1024 * 1024;
    let mut b = CampusBuilder::with_legacy_tiers_uplink(seed, n_switches, 0, big)
        .with_policy(policy)
        .with_balancer(LoadBalancer::min_load())
        .with_user_link(big)
        .with_se_link(big);

    for e in 0..n_elements {
        // Traditional: the one box sits at switch 0 (the gateway edge);
        // LiveSec: one element per switch.
        b.add_service_element(
            e,
            ServiceElement::new(IdsEngine::engine())
                .with_capacity_bps(crate::scaling::PAPER_PER_VM_BPS)
                .with_per_packet_overhead(SimDuration::ZERO)
                .with_max_backlog(SimDuration::from_millis(400)),
        );
    }
    let mut clients = Vec::with_capacity(demand_pairs);
    for p in 0..demand_pairs {
        let server = b.add_user(n_elements + 2 * p + 1, HttpServer::new());
        let client = b.add_user(
            n_elements + 2 * p,
            HttpClient::new(server.ip, 1_000_000)
                .with_start_delay(SimDuration::from_millis(900 + 7 * p as u64)),
        );
        clients.push(client);
    }
    let mut campus = b.finish();
    campus.world.run_for(SimDuration::from_millis(1800));
    let sum = |campus: &livesec::deploy::Campus| -> u64 {
        clients
            .iter()
            .map(|c| {
                campus
                    .world
                    .node::<Host<HttpClient>>(c.node)
                    .app()
                    .bytes_received
            })
            .sum()
    };
    let before = sum(&campus);
    campus.world.run_for(window);
    let after = sum(&campus);
    BaselinePoint {
        design,
        demand_pairs,
        n_elements,
        goodput_bps: ((after - before) * 8) as f64 / window.as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traditional_flattens_while_livesec_scales() {
        let window = SimDuration::from_millis(300);
        let trad = run(Design::TraditionalGatewayMiddlebox, 4, 5, window);
        let live = run(Design::LiveSecDistributed, 4, 5, window);
        // One box caps near its 421 Mbps capacity.
        assert!(
            trad.goodput_bps < 500_000_000.0,
            "traditional capped: {}",
            trad.goodput_bps
        );
        // Four distributed elements serve ~4x that.
        assert!(
            live.goodput_bps > trad.goodput_bps * 2.5,
            "LiveSec scales past the single box: {} vs {}",
            live.goodput_bps,
            trad.goodput_bps
        );
    }
}
