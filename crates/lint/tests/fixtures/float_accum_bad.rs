// Fixture: float accumulation the float-accum rule must flag.

pub fn mean_bps(samples: &[u64]) -> f64 {
    let mut total = 0.0;
    for s in samples {
        total += *s as f64;
    }
    total / samples.len() as f64
}

pub fn load_sum(loads: &[f64]) -> f64 {
    loads.iter().sum::<f64>()
}

pub fn smoothed(prev: f32, sample: f32) -> f32 {
    let mut v = prev;
    v += 0.1 * sample;
    v
}
