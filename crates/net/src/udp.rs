//! UDP datagrams.

use crate::packet::Payload;
use serde::{Deserialize, Serialize};

/// A UDP datagram.
///
/// Besides carrying ordinary traffic, UDP is the substrate of LiveSec's
/// service-element control channel: SE daemons wrap their messages in
/// magic-tagged UDP datagrams that the controller intercepts (paper
/// §III-D.1).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct UdpDatagram {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Application payload.
    pub payload: Payload,
}

impl UdpDatagram {
    /// On-wire length of the UDP header.
    pub const HEADER_LEN: usize = 8;

    /// Creates a datagram.
    pub fn new(src_port: u16, dst_port: u16, payload: Payload) -> Self {
        UdpDatagram {
            src_port,
            dst_port,
            payload,
        }
    }

    /// Total on-wire length (header + payload).
    pub fn wire_len(&self) -> usize {
        Self::HEADER_LEN + self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_len_includes_header() {
        let d = UdpDatagram::new(5000, 53, Payload::Synthetic(64));
        assert_eq!(d.wire_len(), 72);
    }

    #[test]
    fn empty_payload() {
        let d = UdpDatagram::new(1, 2, Payload::Empty);
        assert_eq!(d.wire_len(), UdpDatagram::HEADER_LEN);
    }
}
