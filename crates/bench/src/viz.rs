//! E6/E7 — Figures 7 and 8: visualization frames and event replay.
//!
//! Runs the campus scenario and captures the WebUI frames the paper
//! screenshots: the "normal network environment" (Figure 7: five
//! wireless users, four browsing, one on SSH, low load) and the
//! "network events" view (Figure 8: a user left, a browser turned
//! into a BitTorrent downloader driving link load up, and a malicious
//! access was detected and blocked).

use livesec::monitor::{Monitor, UiFrame};
use livesec_sim::{SimDuration, SimTime};
use livesec_workloads::{CampusScenario, ScenarioConfig};

/// The result of the visualization run.
#[derive(Debug)]
pub struct VizResult {
    /// Frame captured during the normal phase (Figure 7).
    pub normal: UiFrame,
    /// Frame captured after the scripted events (Figure 8).
    pub events: UiFrame,
    /// The full event history (for replay).
    pub monitor: Monitor,
    /// Scenario handles for cross-checking.
    pub narrative: Narrative,
    /// §IV-C service-aware statistics at the end of the run.
    pub app_traffic: Vec<(String, livesec::TrafficTally)>,
}

/// The Figure-8 narrative extracted from the event log.
#[derive(Clone, Debug, Default)]
pub struct Narrative {
    /// The leaver departed.
    pub user_left: bool,
    /// BitTorrent was identified.
    pub bittorrent_seen: bool,
    /// SSH was identified.
    pub ssh_seen: bool,
    /// An attack was detected.
    pub attack_detected: bool,
    /// The attack flow was blocked.
    pub attack_blocked: bool,
}

/// Runs the scenario and captures the two figure frames.
pub fn run(seed: u64) -> VizResult {
    let mut s = CampusScenario::build(ScenarioConfig {
        seed,
        torrent_at: SimDuration::from_secs(4),
        attack_after_requests: 40,
        ..ScenarioConfig::default()
    });
    s.campus.world.run_for(SimDuration::from_secs(9));

    let monitor = s.campus.controller().monitor().clone();
    let app_traffic = s.campus.controller().app_traffic();
    let normal = monitor.frame(SimTime::from_nanos(3_000_000_000));
    let events = monitor.frame(SimTime::from_nanos(9_000_000_000));

    let mut narrative = Narrative::default();
    for e in monitor.events() {
        use livesec::monitor::EventKind::*;
        match &e.kind {
            UserLeave { mac } if *mac == s.leaver.mac => narrative.user_left = true,
            AppIdentified { app, .. } if app == "bittorrent" => {
                narrative.bittorrent_seen = true;
            }
            AppIdentified { app, .. } if app == "ssh" => narrative.ssh_seen = true,
            AttackDetected { .. } => narrative.attack_detected = true,
            FlowBlocked { .. } => narrative.attack_blocked = true,
            _ => {}
        }
    }

    VizResult {
        normal,
        events,
        monitor,
        narrative,
        app_traffic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figures_seven_and_eight_reproduce() {
        let r = run(42);
        // Figure 7: users present and browsing/ssh identified.
        assert!(r.normal.users.len() >= 6, "{:?}", r.normal.users.len());
        assert!(
            r.normal.alerts.is_empty(),
            "no attacks yet: {:?}",
            r.normal.alerts
        );
        // Figure 8: narrative complete.
        assert!(r.narrative.user_left, "leaver departed");
        assert!(r.narrative.bittorrent_seen, "bittorrent identified");
        assert!(r.narrative.ssh_seen, "ssh identified");
        assert!(r.narrative.attack_detected, "attack detected");
        assert!(r.narrative.attack_blocked, "attack blocked");
        assert!(!r.events.alerts.is_empty(), "alerts visible in frame");
        // The leaver is gone from the later frame.
        assert!(r.events.users.len() < r.normal.users.len() + 2);
        // Replay yields the same frames.
        let replayed = r.monitor.frame(r.events.at);
        assert_eq!(replayed, r.events);
    }
}
