//! E10 — design-choice ablation sweeps (see DESIGN.md).

use livesec_bench::ablation;
use livesec_bench::print_header;

fn main() {
    print_header("E10a", "steering chain length vs ping RTT");
    for row in ablation::chain_length_latency(31) {
        println!("chain of {}: mean RTT {}", row.chain_len, row.rtt);
    }

    print_header("E10b", "SE report interval vs min-load balance quality");
    for row in ablation::report_interval_balance(31) {
        println!(
            "interval {:>10}: max deviation {:.1}%",
            row.interval.to_string(),
            row.max_deviation * 100.0
        );
    }

    print_header("E10c", "control-channel latency vs flow-setup cost");
    for row in ablation::control_latency_setup(33) {
        println!(
            "control latency {:>10}: first ping {} | steady {}",
            row.control_latency.to_string(),
            row.first_rtt,
            row.steady_rtt
        );
    }
}
