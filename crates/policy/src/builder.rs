//! Deployment glue: load a `.lsp` file straight into a campus build.

use crate::compile::{compile, CompiledPolicy};
use crate::diag::Diag;
use livesec::deploy::CampusBuilder;

/// Extension for [`CampusBuilder`]: compile `.lsp` source and install
/// the resulting table before the campus finishes building.
pub trait PolicyText: Sized {
    /// Compiles `src` and installs the table. `Err` carries the
    /// compiler diagnostics; warnings are discarded (compile
    /// separately with [`compile`] to inspect them).
    fn with_policy_text(self, src: &str) -> Result<Self, Vec<Diag>>;
}

impl PolicyText for CampusBuilder {
    fn with_policy_text(self, src: &str) -> Result<Self, Vec<Diag>> {
        let CompiledPolicy { table, .. } = compile(src)?;
        Ok(self.with_policy(table))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accepts_policy_text() {
        let campus = CampusBuilder::new(7, 4)
            .with_policy_text("rule no-telnet: proto tcp port 23 deny\ndefault allow\n")
            .expect("compiles")
            .finish();
        let _ = campus;
    }

    #[test]
    fn builder_rejects_broken_policy_text() {
        let err = CampusBuilder::new(7, 4)
            .with_policy_text("rule r: via missing\n")
            .unwrap_err();
        assert!(!err.is_empty());
    }
}
