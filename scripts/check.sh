#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass before merge.
#
#   ./scripts/check.sh
#
# Runs the release build, the full test suite, clippy with warnings
# denied, and the formatting check, stopping at the first failure.

set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release
# Static analysis v3 (DESIGN.md §6, §13): workspace call graph +
# inter-procedural summaries — determinism (LS1xx), panic paths
# (LS2xx) through helpers, wire-input taint (LS301) across calls,
# transitive hot-path allocation (LS401), and the concurrency family
# (LS501 shared state, LS502 lock order, LS503 unordered reduction);
# zero unannotated findings allowed. The JSON finding stream is
# archived for diffing across PRs, the full-workspace pass must stay
# under its 5 s wall-time budget, and a second run must reproduce
# LINT.json byte-for-byte (the analysis is deterministic by design).
echo "==> cargo run -q -p livesec-lint --release -- --json"
# Warm the per-package build first: `cargo run -p` resolves features
# per package and can recompile even after a workspace build, and the
# 5 s budget is for the *analysis*, not the compiler.
cargo build -q -p livesec-lint --release
lint_start=$(date +%s%N)
cargo run -q -p livesec-lint --release -- --json | tee LINT.json
lint_elapsed_ms=$(( ($(date +%s%N) - lint_start) / 1000000 ))
echo "    livesec-lint wall time: ${lint_elapsed_ms} ms"
if [ "$lint_elapsed_ms" -ge 5000 ]; then
    echo "livesec-lint exceeded its 5 s budget (${lint_elapsed_ms} ms)" >&2
    exit 1
fi
test -s LINT.json
cargo run -q -p livesec-lint --release -- --json > LINT2.json
cmp LINT.json LINT2.json || {
    echo "livesec-lint output is not deterministic across runs" >&2
    exit 1
}
rm -f LINT2.json
# The last LINT.json line is the graph summary
# ({"findings":..,"files":..,"fns":..,"edges":..,"hot_fns":..});
# prepend the measured wall time and archive as the lint bench.
lint_summary=$(tail -n 1 LINT.json)
printf '{"wall_ms":%s,%s\n' "$lint_elapsed_ms" "${lint_summary#\{}" > BENCH_lint.json
test -s BENCH_lint.json
# Header-space invariant verifier (DESIGN.md §8): snapshot the
# emitted flow tables of the baseline scenario and prove the eight
# dataplane invariants (blocked-unreachable, no loops, no blackholes,
# waypoint enforcement, fast-pass freshness, no silent shadowing,
# exactly-one-shard coverage, quarantine isolation).
run cargo run -q -p livesec-verify --release -- --scenario baseline
run cargo test -q
# Seeded chaos soak: the campus under scheduled partitions, crashes,
# and frame corruption over fixed seeds — zero panics, clean
# health-stat invariants, byte-identical same-seed histories.
run cargo test -q --test chaos --test reconciliation
# Sharded control plane (DESIGN.md §9): the golden-trace gate — a
# 1-shard plane byte-identical to the plain controller, shards 1/2/4
# identical modulo shard tags — plus ring properties, cross-shard
# handoff, and mid-attack shard failover with a clean merged audit.
run cargo test -q --test determinism --test shard_ring --test shard_handoff --test shard_failover
# Scale-out smoke bench: 100k packet-ins partitioned over 1/2/4/8
# shards; must clear >=3x throughput at 4 shards and (re)write
# BENCH_shards.json.
run cargo bench -q -p livesec-bench --bench shard_scaling -- --smoke
test -s BENCH_shards.json
# Forwarding accountability (DESIGN.md §11): each dataplane fault kind
# (rule tamper, silent misforward, packet injection) is detected,
# localized to exactly the compromised switch, quarantined, and traffic
# re-steered — at 1 and 4 shards, honest switches never blamed.
run cargo test -q --test accountability
# Post-quarantine dataplane must audit clean, quarantine isolation
# (invariant 8) included.
run cargo run -q -p livesec-verify --release -- --scenario tamper-quarantine
# Accountability hot paths: attestation tagging + detector replay;
# (re)writes BENCH_accountability.json, every forged attestation caught.
run cargo bench -q -p livesec-bench --bench accountability -- --smoke
test -s BENCH_accountability.json
# Declarative policy (DESIGN.md §14): the .lsp compiler's own suites
# (parser recovery, shadow analysis, delta-convergence proptests) plus
# the incremental-verification agreement tests.
run cargo test -q -p livesec-policy
run cargo test -q -p livesec-verify
# Delta-path equivalence gate: applying compiled deltas mid-traffic
# must equal the wholesale recompile byte-for-byte (tables and
# filtered histories), spare untouched warm cache classes, and pass
# the scoped incremental audit on the returned cubes.
run cargo test -q --test policy_delta
# Policy end-to-end: load .lsp, run traffic, live-edit the policy,
# apply the delta script, audit incrementally.
run cargo run -q --release --example policy
# Delta-compile + incremental-audit smoke bench: the single-rule delta
# on a 1000-switch campus must clear the >=10x work-ratio floor and
# (re)write BENCH_policy.json.
run cargo bench -q -p livesec-bench --bench policy -- --smoke
test -s BENCH_policy.json
# Stateful-enforcement end-to-end: SYN flood detected by conntrack,
# source-wide drop installed at the ingress, flood stops counting —
# while a legitimate fast-passed transfer completes alongside.
run cargo run -q --release --example stateful_firewall
# Accountability end-to-end: mid-attack rule tamper -> detect,
# localize, quarantine, re-steer, then release and rejoin.
run cargo run -q --release --example accountability
run cargo clippy --workspace -- -D warnings
run cargo fmt --check

echo "==> all checks passed"
