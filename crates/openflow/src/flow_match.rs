//! The OpenFlow 1.0 match structure.

use livesec_net::{ArpPacket, Body, EtherType, FlowKey, Ipv4Net, MacAddr, Packet};
use serde::{Deserialize, Serialize};
use std::fmt;

/// How a match constrains the VLAN tag.
///
/// OpenFlow 1.0 treats "untagged" as a matchable value
/// (`OFP_VLAN_NONE`), distinct from wildcarding the field.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum VlanMatch {
    /// Match only untagged frames.
    Untagged,
    /// Match frames tagged with this VID.
    Tagged(u16),
}

impl VlanMatch {
    /// The VLAN value of a flow key, as a `VlanMatch`.
    pub fn of_key(vlan: Option<u16>) -> Self {
        match vlan {
            None => VlanMatch::Untagged,
            Some(vid) => VlanMatch::Tagged(vid),
        }
    }

    /// Whether a flow key's VLAN value satisfies this constraint.
    pub fn accepts(self, vlan: Option<u16>) -> bool {
        self == Self::of_key(vlan)
    }
}

/// An OpenFlow 1.0 match: the physical ingress port plus the paper's
/// 9-tuple, each field either exact (`Some`) or wildcarded (`None`).
/// IP addresses support CIDR prefixes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub struct Match {
    /// Ingress port constraint.
    pub in_port: Option<u32>,
    /// Source MAC constraint.
    pub dl_src: Option<MacAddr>,
    /// Destination MAC constraint.
    pub dl_dst: Option<MacAddr>,
    /// VLAN constraint.
    pub dl_vlan: Option<VlanMatch>,
    /// EtherType constraint.
    pub dl_type: Option<u16>,
    /// Source IP prefix constraint.
    pub nw_src: Option<Ipv4Net>,
    /// Destination IP prefix constraint.
    pub nw_dst: Option<Ipv4Net>,
    /// IP protocol constraint (ARP opcode for ARP, per OF 1.0).
    pub nw_proto: Option<u8>,
    /// Source transport port constraint.
    pub tp_src: Option<u16>,
    /// Destination transport port constraint.
    pub tp_dst: Option<u16>,
}

impl Match {
    /// The match that wildcards every field (matches everything).
    pub fn any() -> Self {
        Match::default()
    }

    /// An exact match on ingress port and all nine key fields.
    ///
    /// This is the entry shape LiveSec installs for end-to-end routing
    /// and service steering (paper §III-C.3, §IV-A).
    pub fn exact(in_port: u32, key: &FlowKey) -> Self {
        Match {
            in_port: Some(in_port),
            dl_src: Some(key.dl_src),
            dl_dst: Some(key.dl_dst),
            dl_vlan: Some(VlanMatch::of_key(key.vlan)),
            dl_type: Some(key.dl_type),
            nw_src: Some(Ipv4Net::host(key.nw_src)),
            nw_dst: Some(Ipv4Net::host(key.nw_dst)),
            nw_proto: Some(key.nw_proto),
            tp_src: Some(key.tp_src),
            tp_dst: Some(key.tp_dst),
        }
    }

    /// Like [`Match::exact`] but wildcarding the ingress port.
    pub fn exact_any_port(key: &FlowKey) -> Self {
        Match {
            in_port: None,
            ..Match::exact(0, key)
        }
    }

    /// Sets the ingress port constraint.
    pub fn with_in_port(mut self, port: u32) -> Self {
        self.in_port = Some(port);
        self
    }

    /// Sets the destination MAC constraint.
    pub fn with_dl_dst(mut self, mac: MacAddr) -> Self {
        self.dl_dst = Some(mac);
        self
    }

    /// Sets the source MAC constraint.
    pub fn with_dl_src(mut self, mac: MacAddr) -> Self {
        self.dl_src = Some(mac);
        self
    }

    /// Sets the EtherType constraint.
    pub fn with_dl_type(mut self, t: u16) -> Self {
        self.dl_type = Some(t);
        self
    }

    /// Sets the IP protocol constraint.
    pub fn with_nw_proto(mut self, p: u8) -> Self {
        self.nw_proto = Some(p);
        self
    }

    /// Sets the source IP prefix constraint. A `/0` prefix accepts
    /// every address, so it normalizes to the wildcard.
    pub fn with_nw_src(mut self, net: Ipv4Net) -> Self {
        self.nw_src = (net.prefix_len() > 0).then_some(net);
        self
    }

    /// Sets the destination IP prefix constraint. A `/0` prefix
    /// accepts every address, so it normalizes to the wildcard.
    pub fn with_nw_dst(mut self, net: Ipv4Net) -> Self {
        self.nw_dst = (net.prefix_len() > 0).then_some(net);
        self
    }

    /// Sets the destination transport port constraint.
    pub fn with_tp_dst(mut self, p: u16) -> Self {
        self.tp_dst = Some(p);
        self
    }

    /// Sets the source transport port constraint.
    pub fn with_tp_src(mut self, p: u16) -> Self {
        self.tp_src = Some(p);
        self
    }

    /// Whether a packet that arrived on `in_port` with header fields
    /// `key` satisfies this match.
    pub fn matches(&self, in_port: u32, key: &FlowKey) -> bool {
        if let Some(p) = self.in_port {
            if p != in_port {
                return false;
            }
        }
        if let Some(m) = self.dl_src {
            if m != key.dl_src {
                return false;
            }
        }
        if let Some(m) = self.dl_dst {
            if m != key.dl_dst {
                return false;
            }
        }
        if let Some(v) = self.dl_vlan {
            if !v.accepts(key.vlan) {
                return false;
            }
        }
        if let Some(t) = self.dl_type {
            if t != key.dl_type {
                return false;
            }
        }
        if let Some(n) = self.nw_src {
            if !n.contains(key.nw_src) {
                return false;
            }
        }
        if let Some(n) = self.nw_dst {
            if !n.contains(key.nw_dst) {
                return false;
            }
        }
        if let Some(p) = self.nw_proto {
            if p != key.nw_proto {
                return false;
            }
        }
        if let Some(p) = self.tp_src {
            if p != key.tp_src {
                return false;
            }
        }
        if let Some(p) = self.tp_dst {
            if p != key.tp_dst {
                return false;
            }
        }
        true
    }

    /// Whether every packet matched by `other` is also matched by
    /// `self` (used for non-strict flow deletion, per OF 1.0).
    pub fn subsumes(&self, other: &Match) -> bool {
        fn field<T: PartialEq>(a: &Option<T>, b: &Option<T>) -> bool {
            match (a, b) {
                (None, _) => true,
                (Some(_), None) => false,
                (Some(x), Some(y)) => x == y,
            }
        }
        let nets = |a: &Option<Ipv4Net>, b: &Option<Ipv4Net>| match (a, b) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(x), Some(y)) => x.contains_net(y),
        };
        field(&self.in_port, &other.in_port)
            && field(&self.dl_src, &other.dl_src)
            && field(&self.dl_dst, &other.dl_dst)
            && field(&self.dl_vlan, &other.dl_vlan)
            && field(&self.dl_type, &other.dl_type)
            && nets(&self.nw_src, &other.nw_src)
            && nets(&self.nw_dst, &other.nw_dst)
            && field(&self.nw_proto, &other.nw_proto)
            && field(&self.tp_src, &other.tp_src)
            && field(&self.tp_dst, &other.tp_dst)
    }

    /// Whether the nine header fields are all exact with host-precision
    /// IPs (the ingress port may still be wildcarded). Such entries are
    /// eligible for the flow table's hash fast-path.
    pub fn is_exact_headers(&self) -> bool {
        self.dl_src.is_some()
            && self.dl_dst.is_some()
            && self.dl_vlan.is_some()
            && self.dl_type.is_some()
            && self.nw_src.is_some_and(|n| n.prefix_len() == 32)
            && self.nw_dst.is_some_and(|n| n.prefix_len() == 32)
            && self.nw_proto.is_some()
            && self.tp_src.is_some()
            && self.tp_dst.is_some()
    }

    /// For a header-exact match, the [`FlowKey`] it pins down.
    pub fn exact_key(&self) -> Option<FlowKey> {
        if !self.is_exact_headers() {
            return None;
        }
        Some(FlowKey {
            vlan: match self.dl_vlan.expect("checked") {
                VlanMatch::Untagged => None,
                VlanMatch::Tagged(v) => Some(v),
            },
            dl_src: self.dl_src.expect("checked"),
            dl_dst: self.dl_dst.expect("checked"),
            dl_type: self.dl_type.expect("checked"),
            nw_src: self.nw_src.expect("checked").addr(),
            nw_dst: self.nw_dst.expect("checked").addr(),
            nw_proto: self.nw_proto.expect("checked"),
            tp_src: self.tp_src.expect("checked"),
            tp_dst: self.tp_dst.expect("checked"),
        })
    }

    /// Canonicalizes constraints that accept everything: a `/0` IP
    /// prefix matches every address, so `Some(0.0.0.0/0)` is the
    /// wildcard wearing a concrete-looking residue. Two matches that
    /// accept the same packets must compare (and hash) equal for the
    /// verifier's header-space algebra, so the builders, the codec
    /// decoder, and [`Match::intersect`] all route through here.
    #[must_use]
    pub fn normalized(mut self) -> Self {
        if self.nw_src.is_some_and(|n| n.prefix_len() == 0) {
            self.nw_src = None;
        }
        if self.nw_dst.is_some_and(|n| n.prefix_len() == 0) {
            self.nw_dst = None;
        }
        self
    }

    /// The match accepting exactly the packets accepted by both `self`
    /// and `other`, or `None` when no packet satisfies both.
    ///
    /// Field-wise meet is exact here because every field constraint is
    /// an interval (a point or a CIDR prefix): two prefixes are either
    /// nested or disjoint, so the intersection of two matches is again
    /// a single match.
    pub fn intersect(&self, other: &Match) -> Option<Match> {
        fn meet<T: PartialEq + Copy>(a: Option<T>, b: Option<T>) -> Result<Option<T>, ()> {
            match (a, b) {
                (None, x) | (x, None) => Ok(x),
                (Some(x), Some(y)) if x == y => Ok(Some(x)),
                _ => Err(()),
            }
        }
        fn meet_net(a: Option<Ipv4Net>, b: Option<Ipv4Net>) -> Result<Option<Ipv4Net>, ()> {
            match (a, b) {
                (None, x) | (x, None) => Ok(x),
                (Some(x), Some(y)) if x.contains_net(&y) => Ok(Some(y)),
                (Some(x), Some(y)) if y.contains_net(&x) => Ok(Some(x)),
                _ => Err(()),
            }
        }
        let a = self.normalized();
        let b = other.normalized();
        let met = Match {
            in_port: meet(a.in_port, b.in_port).ok()?,
            dl_src: meet(a.dl_src, b.dl_src).ok()?,
            dl_dst: meet(a.dl_dst, b.dl_dst).ok()?,
            dl_vlan: meet(a.dl_vlan, b.dl_vlan).ok()?,
            dl_type: meet(a.dl_type, b.dl_type).ok()?,
            nw_src: meet_net(a.nw_src, b.nw_src).ok()?,
            nw_dst: meet_net(a.nw_dst, b.nw_dst).ok()?,
            nw_proto: meet(a.nw_proto, b.nw_proto).ok()?,
            tp_src: meet(a.tp_src, b.tp_src).ok()?,
            tp_dst: meet(a.tp_dst, b.tp_dst).ok()?,
        };
        Some(met)
    }

    /// Whether some packet satisfies both matches.
    pub fn overlaps(&self, other: &Match) -> bool {
        self.intersect(other).is_some()
    }

    /// Whether every packet matched by `other` is also matched by
    /// `self` — [`Match::subsumes`] under its header-space name, but
    /// insensitive to `/0`-prefix residue on either side.
    pub fn covers(&self, other: &Match) -> bool {
        self.normalized().subsumes(&other.normalized())
    }
}

impl fmt::Display for Match {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        if let Some(p) = self.in_port {
            parts.push(format!("in_port={p}"));
        }
        if let Some(m) = self.dl_src {
            parts.push(format!("dl_src={m}"));
        }
        if let Some(m) = self.dl_dst {
            parts.push(format!("dl_dst={m}"));
        }
        if let Some(v) = self.dl_vlan {
            parts.push(match v {
                VlanMatch::Untagged => "vlan=none".to_owned(),
                VlanMatch::Tagged(vid) => format!("vlan={vid}"),
            });
        }
        if let Some(t) = self.dl_type {
            parts.push(format!("dl_type=0x{t:04x}"));
        }
        if let Some(n) = self.nw_src {
            parts.push(format!("nw_src={n}"));
        }
        if let Some(n) = self.nw_dst {
            parts.push(format!("nw_dst={n}"));
        }
        if let Some(p) = self.nw_proto {
            parts.push(format!("nw_proto={p}"));
        }
        if let Some(p) = self.tp_src {
            parts.push(format!("tp_src={p}"));
        }
        if let Some(p) = self.tp_dst {
            parts.push(format!("tp_dst={p}"));
        }
        if parts.is_empty() {
            write!(f, "<any>")
        } else {
            write!(f, "{}", parts.join(","))
        }
    }
}

/// Builds the table-lookup key for a packet, per OpenFlow 1.0: IPv4
/// packets use their real header fields; ARP packets map the opcode to
/// `nw_proto` and the protocol addresses to `nw_src`/`nw_dst`. LLDP and
/// unknown EtherTypes yield `None` (always sent to the controller).
pub fn lookup_key(pkt: &Packet) -> Option<FlowKey> {
    match &pkt.body {
        Body::Ipv4(_) => FlowKey::of(pkt),
        Body::Arp(ArpPacket { op, spa, tpa, .. }) => Some(FlowKey {
            vlan: pkt.eth.vlan.map(|t| t.vid),
            dl_src: pkt.eth.src,
            dl_dst: pkt.eth.dst,
            dl_type: EtherType::Arp.as_u16(),
            nw_src: *spa,
            nw_dst: *tpa,
            nw_proto: op.as_u16() as u8,
            tp_src: 0,
            tp_dst: 0,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use livesec_net::PacketBuilder;

    fn key() -> FlowKey {
        FlowKey {
            vlan: None,
            dl_src: MacAddr::from_u64(1),
            dl_dst: MacAddr::from_u64(2),
            dl_type: 0x0800,
            nw_src: "10.0.0.1".parse().unwrap(),
            nw_dst: "10.0.0.2".parse().unwrap(),
            nw_proto: 6,
            tp_src: 555,
            tp_dst: 80,
        }
    }

    #[test]
    fn any_matches_everything() {
        assert!(Match::any().matches(3, &key()));
    }

    #[test]
    fn exact_matches_only_same_key() {
        let m = Match::exact(1, &key());
        assert!(m.matches(1, &key()));
        assert!(!m.matches(2, &key()), "wrong in_port");
        let mut other = key();
        other.tp_dst = 81;
        assert!(!m.matches(1, &other));
    }

    #[test]
    fn vlan_untagged_vs_tagged() {
        let mut k = key();
        let m = Match {
            dl_vlan: Some(VlanMatch::Untagged),
            ..Match::any()
        };
        assert!(m.matches(1, &k));
        k.vlan = Some(7);
        assert!(!m.matches(1, &k));
        let m7 = Match {
            dl_vlan: Some(VlanMatch::Tagged(7)),
            ..Match::any()
        };
        assert!(m7.matches(1, &k));
        k.vlan = Some(8);
        assert!(!m7.matches(1, &k));
    }

    #[test]
    fn prefix_matching() {
        let m = Match::any().with_nw_dst("10.0.0.0/24".parse().unwrap());
        assert!(m.matches(1, &key()));
        let mut far = key();
        far.nw_dst = "10.0.1.2".parse().unwrap();
        assert!(!m.matches(1, &far));
    }

    #[test]
    fn subsumption_rules() {
        let wide = Match::any().with_dl_type(0x0800);
        let narrow = Match::exact(1, &key());
        assert!(Match::any().subsumes(&wide));
        assert!(wide.subsumes(&narrow));
        assert!(!narrow.subsumes(&wide));
        assert!(narrow.subsumes(&narrow));

        let cidr_wide = Match::any().with_nw_dst("10.0.0.0/8".parse().unwrap());
        let cidr_narrow = Match::any().with_nw_dst("10.1.0.0/16".parse().unwrap());
        assert!(cidr_wide.subsumes(&cidr_narrow));
        assert!(!cidr_narrow.subsumes(&cidr_wide));
    }

    #[test]
    fn exact_headers_and_key_roundtrip() {
        let m = Match::exact(1, &key());
        assert!(m.is_exact_headers());
        assert_eq!(m.exact_key(), Some(key()));

        let m2 = Match::exact_any_port(&key());
        assert!(m2.is_exact_headers());
        assert_eq!(m2.in_port, None);

        let wild = Match::any().with_dl_type(0x0800);
        assert!(!wild.is_exact_headers());
        assert_eq!(wild.exact_key(), None);

        let cidr = Match {
            nw_src: Some("10.0.0.0/24".parse().unwrap()),
            ..Match::exact(1, &key())
        };
        assert!(!cidr.is_exact_headers());
    }

    #[test]
    fn lookup_key_ipv4_and_arp() {
        let ip_pkt = PacketBuilder::tcp(MacAddr::from_u64(1), MacAddr::from_u64(2))
            .ips("10.0.0.1".parse().unwrap(), "10.0.0.2".parse().unwrap())
            .ports(555, 80)
            .build();
        assert_eq!(lookup_key(&ip_pkt), Some(key()));

        let arp = livesec_net::packet::arp_frame(ArpPacket::request(
            MacAddr::from_u64(1),
            "10.0.0.1".parse().unwrap(),
            "10.0.0.2".parse().unwrap(),
        ));
        let k = lookup_key(&arp).unwrap();
        assert_eq!(k.dl_type, 0x0806);
        assert_eq!(k.nw_proto, 1); // ARP request opcode
        assert_eq!(k.nw_src, "10.0.0.1".parse::<std::net::Ipv4Addr>().unwrap());

        let lldp = livesec_net::packet::lldp_frame(
            MacAddr::from_u64(3),
            livesec_net::LldpFrame::new(1, 2),
        );
        assert_eq!(lookup_key(&lldp), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Match::any().to_string(), "<any>");
        let m = Match::any().with_in_port(3).with_tp_dst(80);
        assert_eq!(m.to_string(), "in_port=3,tp_dst=80");
    }
}
