//! Offline spanning-tree computation for the legacy layer.
//!
//! The paper relies on STP (or ECMP) in the Legacy-Switching network to
//! keep redundant physical topologies loop-free (§III-C.1), so that the
//! Access-Switching layer's abstract two-hop routing is never affected
//! by physical loops. Rather than simulating BPDU exchange, we compute
//! the converged tree directly — deterministically equivalent to what
//! STP settles on — and mark the ports STP would put in the discarding
//! state.

use std::collections::HashMap;

/// A legacy-layer topology: switches and the links between them.
///
/// Node keys are caller-chosen identifiers (e.g. simulator node
/// indices). Links to hosts/AS switches need not be included — only
/// switch-to-switch links can form loops.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    links: Vec<(u64, u32, u64, u32)>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Adds a switch-to-switch link `a.port_a ↔ b.port_b`.
    pub fn add_link(&mut self, a: u64, port_a: u32, b: u64, port_b: u32) {
        self.links.push((a, port_a, b, port_b));
    }

    /// The links added so far.
    pub fn links(&self) -> &[(u64, u32, u64, u32)] {
        &self.links
    }
}

struct UnionFind {
    parent: HashMap<u64, u64>,
}

impl UnionFind {
    fn new() -> Self {
        UnionFind {
            parent: HashMap::new(),
        }
    }

    fn find(&mut self, x: u64) -> u64 {
        let p = *self.parent.entry(x).or_insert(x);
        if p == x {
            return x;
        }
        let root = self.find(p);
        self.parent.insert(x, root);
        root
    }

    fn union(&mut self, a: u64, b: u64) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        // Lower id wins as root — mirrors STP's lowest-bridge-id rule.
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent.insert(hi, lo);
        true
    }
}

/// Computes the set of `(switch, port)` pairs STP would block.
///
/// Links are considered in insertion order (deterministic); the first
/// links that connect new components form the tree, every later
/// redundant link is blocked at **both** endpoints.
pub fn compute_spanning_tree(topology: &Topology) -> Vec<(u64, u32)> {
    let mut uf = UnionFind::new();
    let mut blocked = Vec::new();
    for &(a, pa, b, pb) in &topology.links {
        if !uf.union(a, b) {
            blocked.push((a, pa));
            blocked.push((b, pb));
        }
    }
    blocked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_topology_blocks_nothing() {
        let mut t = Topology::new();
        t.add_link(1, 1, 2, 1);
        t.add_link(2, 2, 3, 1);
        assert!(compute_spanning_tree(&t).is_empty());
    }

    #[test]
    fn triangle_blocks_one_link() {
        let mut t = Topology::new();
        t.add_link(1, 1, 2, 1);
        t.add_link(2, 2, 3, 1);
        t.add_link(3, 2, 1, 2); // closes the loop
        let blocked = compute_spanning_tree(&t);
        assert_eq!(blocked, vec![(3, 2), (1, 2)]);
    }

    #[test]
    fn parallel_links_second_blocked() {
        let mut t = Topology::new();
        t.add_link(1, 1, 2, 1);
        t.add_link(1, 2, 2, 2); // parallel redundancy
        let blocked = compute_spanning_tree(&t);
        assert_eq!(blocked, vec![(1, 2), (2, 2)]);
    }

    #[test]
    fn full_mesh_of_four() {
        let mut t = Topology::new();
        let mut port = HashMap::new();
        let mut next_port = |n: u64| -> u32 {
            let e = port.entry(n).or_insert(0u32);
            *e += 1;
            *e
        };
        for a in 1..=4u64 {
            for b in (a + 1)..=4u64 {
                let pa = next_port(a);
                let pb = next_port(b);
                t.add_link(a, pa, b, pb);
            }
        }
        // 6 links, 4 nodes → tree keeps 3, blocks 3 (both ends each).
        let blocked = compute_spanning_tree(&t);
        assert_eq!(blocked.len(), 6);
    }

    #[test]
    fn disconnected_components_both_spanned() {
        let mut t = Topology::new();
        t.add_link(1, 1, 2, 1);
        t.add_link(10, 1, 11, 1);
        t.add_link(11, 2, 10, 2); // loop in second component
        let blocked = compute_spanning_tree(&t);
        assert_eq!(blocked, vec![(11, 2), (10, 2)]);
    }
}
