//! Property tests: match semantics, flow-table lookup vs a naive
//! model, and message-codec round-trips.

use livesec_net::{FlowKey, Ipv4Net, MacAddr};
use livesec_openflow::{
    codec, Action, FlowEntry, FlowModCommand, FlowTable, HeaderClass, Match, MatchSet, OfMessage,
    OutPort, PacketInReason, VlanMatch,
};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    // A small MAC universe makes wildcard/exact collisions likely.
    (0u64..8).prop_map(MacAddr::from_u64)
}

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    (0u32..16).prop_map(|v| Ipv4Addr::from(0x0a00_0000 | v))
}

prop_compose! {
    fn arb_key()(
        dl_src in arb_mac(),
        dl_dst in arb_mac(),
        vlan in proptest::option::of(0u16..4),
        nw_src in arb_ip(),
        nw_dst in arb_ip(),
        nw_proto in prop_oneof![Just(6u8), Just(17u8), Just(1u8)],
        tp_src in 0u16..4,
        tp_dst in 0u16..4,
    ) -> FlowKey {
        FlowKey {
            vlan,
            dl_src,
            dl_dst,
            dl_type: 0x0800,
            nw_src,
            nw_dst,
            nw_proto,
            tp_src,
            tp_dst,
        }
    }
}

prop_compose! {
    fn arb_match()(
        in_port in proptest::option::of(1u32..4),
        dl_src in proptest::option::of(arb_mac()),
        dl_dst in proptest::option::of(arb_mac()),
        dl_vlan in proptest::option::of(prop_oneof![
            Just(VlanMatch::Untagged),
            (0u16..4).prop_map(VlanMatch::Tagged),
        ]),
        dl_type in proptest::option::of(Just(0x0800u16)),
        nw_src in proptest::option::of((arb_ip(), 24u8..=32).prop_map(|(ip, l)| Ipv4Net::new(ip, l))),
        nw_dst in proptest::option::of((arb_ip(), 24u8..=32).prop_map(|(ip, l)| Ipv4Net::new(ip, l))),
        nw_proto in proptest::option::of(prop_oneof![Just(6u8), Just(17u8)]),
        tp_src in proptest::option::of(0u16..4),
        tp_dst in proptest::option::of(0u16..4),
    ) -> Match {
        Match { in_port, dl_src, dl_dst, dl_vlan, dl_type, nw_src, nw_dst, nw_proto, tp_src, tp_dst }
    }
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (1u32..8).prop_map(|p| Action::Output(OutPort::Physical(p))),
        Just(Action::Output(OutPort::Flood)),
        Just(Action::Output(OutPort::Controller)),
        Just(Action::Output(OutPort::InPort)),
        arb_mac().prop_map(Action::SetDlSrc),
        arb_mac().prop_map(Action::SetDlDst),
        arb_ip().prop_map(Action::SetNwSrc),
        arb_ip().prop_map(Action::SetNwDst),
        any::<u16>().prop_map(Action::SetTpSrc),
        any::<u16>().prop_map(Action::SetTpDst),
        (0u16..4096).prop_map(Action::SetVlan),
        Just(Action::StripVlan),
    ]
}

proptest! {
    /// If `a` subsumes `b`, everything `b` matches, `a` matches.
    #[test]
    fn subsumption_is_sound(a in arb_match(), b in arb_match(), key in arb_key(), in_port in 1u32..4) {
        if a.subsumes(&b) && b.matches(in_port, &key) {
            prop_assert!(a.matches(in_port, &key));
        }
    }

    #[test]
    fn subsumption_is_reflexive_and_any_is_top(m in arb_match()) {
        prop_assert!(m.subsumes(&m));
        prop_assert!(Match::any().subsumes(&m));
    }

    #[test]
    fn exact_match_key_roundtrip(key in arb_key(), in_port in 1u32..4) {
        let m = Match::exact(in_port, &key);
        prop_assert!(m.matches(in_port, &key));
        prop_assert_eq!(m.exact_key(), Some(key));
    }

    /// FlowTable::lookup agrees with a naive linear model.
    #[test]
    fn table_lookup_matches_naive_model(
        entries in proptest::collection::vec((arb_match(), 0u16..4, 1u32..4), 0..12),
        probes in proptest::collection::vec((arb_key(), 1u32..4), 0..12),
    ) {
        let mut table = FlowTable::new();
        let mut model: Vec<(Match, u16, u32, usize)> = Vec::new();
        for (i, (m, prio, out)) in entries.iter().enumerate() {
            table.insert(FlowEntry::new(
                *m,
                vec![Action::Output(OutPort::Physical(*out))],
                *prio,
            ));
            // OpenFlow ADD replaces identical (match, priority).
            model.retain(|(em, ep, _, _)| !(em == m && ep == prio));
            model.push((*m, *prio, *out, i));
        }
        prop_assert_eq!(table.len(), model.len());
        for (key, in_port) in probes {
            let expected = model
                .iter()
                .filter(|(m, _, _, _)| m.matches(in_port, &key))
                .max_by(|a, b| (a.1, std::cmp::Reverse(a.3)).cmp(&(b.1, std::cmp::Reverse(b.3))))
                .map(|(_, _, out, _)| *out);
            let got = table.peek(in_port, &key).map(|e| match e.actions[0] {
                Action::Output(OutPort::Physical(p)) => p,
                _ => unreachable!("entries only output"),
            });
            prop_assert_eq!(got, expected);
        }
    }

    /// Timeout eviction never loses or duplicates entries.
    #[test]
    fn expiry_conserves_entries(
        keys in proptest::collection::vec(arb_key(), 1..10),
        idle in proptest::collection::vec(proptest::option::of(1u64..100), 1..10),
    ) {
        let mut table = FlowTable::new();
        let mut inserted = 0usize;
        for (key, idle) in keys.iter().zip(idle.iter()) {
            let mut e = FlowEntry::new(Match::exact(1, key), vec![], 1);
            e.idle_timeout = *idle;
            if table.insert_at(e, 0) == livesec_openflow::InsertOutcome::Added {
                inserted += 1;
            }
        }
        let evicted = table.expire(1_000).len();
        prop_assert_eq!(evicted + table.len(), inserted);
        // A second sweep finds nothing new.
        prop_assert!(table.expire(1_000).is_empty());
    }

    /// Every message the codec can produce decodes to itself.
    #[test]
    fn codec_roundtrip_flow_mod(
        m in arb_match(),
        actions in proptest::collection::vec(arb_action(), 0..6),
        prio in any::<u16>(),
        idle in proptest::option::of(any::<u64>()),
        hard in proptest::option::of(any::<u64>()),
        cookie in any::<u64>(),
        notify in any::<bool>(),
        xid in any::<u32>(),
    ) {
        let msg = OfMessage::FlowMod {
            command: FlowModCommand::Add,
            matcher: m,
            priority: prio,
            actions,
            idle_timeout: idle,
            hard_timeout: hard,
            cookie,
            notify_removed: notify,
        };
        let (back, back_xid) = codec::decode(&codec::encode(&msg, xid)).unwrap();
        prop_assert_eq!(back, msg);
        prop_assert_eq!(back_xid, xid);
    }

    #[test]
    fn codec_roundtrip_packet_in(data in proptest::collection::vec(any::<u8>(), 0..256), port in any::<u32>()) {
        let msg = OfMessage::PacketIn {
            in_port: port,
            reason: PacketInReason::NoMatch,
            data,
        };
        let (back, _) = codec::decode(&codec::encode(&msg, 1)).unwrap();
        prop_assert_eq!(back, msg);
    }

    /// The meet is the AND of the operands: `a ∩ b` matches a packet
    /// exactly when both do, and a `None` meet means no packet
    /// satisfies both.
    #[test]
    fn intersection_is_the_meet(
        a in arb_match(),
        b in arb_match(),
        key in arb_key(),
        in_port in 1u32..4,
    ) {
        let both = a.matches(in_port, &key) && b.matches(in_port, &key);
        match a.intersect(&b) {
            Some(i) => {
                prop_assert_eq!(i.matches(in_port, &key), both);
                // The meet sits below both operands.
                prop_assert!(a.covers(&i));
                prop_assert!(b.covers(&i));
            }
            None => prop_assert!(!both),
        }
    }

    #[test]
    fn intersection_is_commutative_and_idempotent(a in arb_match(), b in arb_match()) {
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        prop_assert_eq!(a.intersect(&a), Some(a.normalized()));
        prop_assert_eq!(a.intersect(&Match::any()), Some(a.normalized()));
    }

    /// `covers` is sound against concrete packets and agrees with
    /// `overlaps` on the easy direction.
    #[test]
    fn covers_is_sound(a in arb_match(), b in arb_match(), key in arb_key(), in_port in 1u32..4) {
        if a.covers(&b) {
            if b.matches(in_port, &key) {
                prop_assert!(a.matches(in_port, &key));
            }
            prop_assert!(a.overlaps(&b));
        }
    }

    /// Normalization never changes which packets a match accepts.
    #[test]
    fn normalization_preserves_semantics(m in arb_match(), key in arb_key(), in_port in 1u32..4) {
        prop_assert_eq!(m.normalized().matches(in_port, &key), m.matches(in_port, &key));
    }

    /// Difference-of-cubes subtraction is set difference: after
    /// `D = a - b`, a packet is in `D` exactly when `a` matches it
    /// and `b` does not; and any witness `D` extracts really is in
    /// `D`.
    #[test]
    fn header_class_subtraction_is_set_difference(
        a in arb_match(),
        b in arb_match(),
        key in arb_key(),
        in_port in 1u32..4,
    ) {
        let mut d = HeaderClass::of(a);
        d.subtract(&b);
        let expected = a.matches(in_port, &key) && !b.matches(in_port, &key);
        prop_assert_eq!(d.contains(in_port, &key), expected);
        if let Some((wp, wk)) = d.witness() {
            prop_assert!(d.contains(wp, &wk));
            prop_assert!(a.matches(wp, &wk));
            prop_assert!(!b.matches(wp, &wk));
        } else {
            // No witness claims emptiness: the sampled packet must
            // not be in the difference either.
            prop_assert!(!expected);
        }
    }

    /// Subtracting a region and re-adding the removed overlap
    /// recovers the original coverage: `(a - b) ∪ (a ∩ b) = a`.
    #[test]
    fn subtract_then_readd_recovers_coverage(
        a in arb_match(),
        b in arb_match(),
        key in arb_key(),
        in_port in 1u32..4,
    ) {
        let mut s = MatchSet::of(a);
        s.subtract(&b);
        if let Some(i) = a.intersect(&b) {
            s.add(i);
        }
        prop_assert_eq!(s.contains(in_port, &key), a.matches(in_port, &key));
    }

    #[test]
    fn codec_never_panics_on_corruption(
        m in arb_match(),
        pos_seed in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let mut bytes = codec::encode(&OfMessage::add_flow(m, vec![], 5), 9);
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= flip;
        let _ = codec::decode(&bytes);
    }
}
