//! Distributed load balancing (the paper's §IV-B / §V-B.2): many users'
//! web flows are dispatched over four IDS replicas; compare the four
//! dispatch algorithms' load deviation.
//!
//! Run with: `cargo run --release --example load_balancing`

use livesec::balance::{HashDispatch, LeastQueue, MinLoad, RoundRobin};
use livesec_suite::prelude::*;

fn deviation(per_se: &[u64]) -> f64 {
    let mean = per_se.iter().sum::<u64>() as f64 / per_se.len() as f64;
    per_se
        .iter()
        .map(|&x| (x as f64 - mean).abs() / mean.max(1.0))
        .fold(0.0, f64::max)
}

fn run_with(balancer: LoadBalancer, label: &str) {
    let n_se = 4;
    let mut policy = PolicyTable::allow_all();
    policy.push(
        PolicyRule::named("ids-web")
            .dst_port(80)
            .chain(vec![ServiceType::IntrusionDetection]),
    );
    let mut b = CampusBuilder::new(11, 2 + n_se)
        .with_policy(policy)
        .with_balancer(balancer)
        .configure_controller(|c| c.set_flow_idle_timeout(SimDuration::from_millis(400)));
    let server = b.add_gateway_with_app(0, HttpServer::new());
    let mut elements = Vec::new();
    for s in 0..n_se {
        elements.push(
            b.add_service_element(
                2 + s,
                ServiceElement::new(IdsEngine::engine())
                    .with_report_interval(SimDuration::from_millis(25)),
            ),
        );
    }
    for u in 0..16u64 {
        b.add_user(
            1,
            HttpClient::new(server.ip, if u % 3 == 0 { 150_000 } else { 40_000 })
                .with_think_time(SimDuration::from_millis(20 + u * 5))
                .with_start_delay(SimDuration::from_millis(900 + 5 * u))
                .with_rotating_ports()
                .with_src_port(41_000 + (u as u16) * 131),
        );
    }
    let mut campus = b.finish();
    campus.world.run_for(SimDuration::from_secs(5));

    type IdsSe = ServiceElement<SignatureEngine>;
    let per_se: Vec<u64> = elements
        .iter()
        .map(|h| {
            campus
                .world
                .node::<Host<IdsSe>>(h.node)
                .app()
                .counters()
                .processed_packets
        })
        .collect();
    println!(
        "{label:<12} deviation {:>5.1}%   per-element packets {:?}",
        deviation(&per_se) * 100.0,
        per_se
    );
}

fn main() {
    println!("load deviation across 4 IDS replicas, 16 users (paper: min-load <=5%):");
    run_with(LoadBalancer::new(RoundRobin::new(), Grain::Flow), "polling");
    run_with(LoadBalancer::new(HashDispatch::new(), Grain::Flow), "hash");
    run_with(LoadBalancer::new(LeastQueue::new(), Grain::Flow), "queuing");
    run_with(LoadBalancer::new(MinLoad::new(), Grain::Flow), "min-load");
}
