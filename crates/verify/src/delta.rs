//! Incremental verification: re-audit only the equivalence classes a
//! rule delta touches.
//!
//! The full [`crate::audit`] re-traces every flow, block, and flow
//! entry in the snapshot. After a policy delta the controller knows
//! exactly which header-space cubes changed, and a cube that
//! intersects nothing an item matches cannot change that item's
//! verdict — so [`EcIndex`] precomputes one cube per auditable item
//! (the flow's exact headers in both directions, the block's matcher,
//! the entry's matcher) and [`EcIndex::touched`] selects the items
//! any delta cube overlaps. Overlap is conservative: it is a superset
//! of "the delta covers this item's witness", which is what makes
//! [`audit_delta`]'s verdicts agree with the full audit on every
//! touched class (the equivalence proptest pins this down).

use crate::invariants::{audit_scoped, AuditScope, Violation};
use crate::snapshot::Snapshot;
use livesec_openflow::Match;

/// One changed region of header space, as reported by the policy
/// delta compiler (`Controller::apply_policy_delta` returns these
/// cubes) or hand-built for a targeted re-audit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RuleDelta {
    /// The header cube the change covers.
    pub matcher: Match,
    /// Restrict to one switch's entries and blocks (`None` = the
    /// whole network; flows always audit network-wide).
    pub dpid: Option<u64>,
}

impl RuleDelta {
    /// A delta touching `matcher` everywhere.
    pub fn network_wide(matcher: Match) -> Self {
        RuleDelta {
            matcher,
            dpid: None,
        }
    }

    /// A delta touching `matcher` on one switch only.
    pub fn at(dpid: u64, matcher: Match) -> Self {
        RuleDelta {
            matcher,
            dpid: Some(dpid),
        }
    }
}

/// A persistent index from auditable snapshot items to the header
/// cubes they occupy. Build once per snapshot, then resolve any
/// number of deltas against it.
#[derive(Clone, Debug)]
pub struct EcIndex {
    /// Per flow: its exact-header cube, forward and reverse.
    flow_cubes: Vec<(Match, Match)>,
    /// Per block: `(dpid, matcher)`.
    block_cubes: Vec<(u64, Match)>,
    /// Per entry: `(switch index, entry index, dpid, matcher)`.
    entry_cubes: Vec<(usize, usize, u64, Match)>,
}

impl EcIndex {
    /// Indexes every auditable item of the snapshot.
    pub fn build(snap: &Snapshot) -> Self {
        let flow_cubes = snap
            .flows
            .iter()
            .map(|f| {
                (
                    Match::exact_any_port(&f.key),
                    Match::exact_any_port(&f.key.reversed()),
                )
            })
            .collect();
        let block_cubes = snap.blocks.iter().map(|(d, m)| (*d, *m)).collect();
        let entry_cubes = snap
            .switches
            .iter()
            .enumerate()
            .flat_map(|(si, sw)| {
                sw.entries
                    .iter()
                    .enumerate()
                    .map(move |(j, e)| (si, j, sw.dpid, e.matcher))
            })
            .collect();
        EcIndex {
            flow_cubes,
            block_cubes,
            entry_cubes,
        }
    }

    /// Total indexed items (the denominator of the work ratio).
    pub fn total_items(&self) -> usize {
        self.flow_cubes.len() + self.block_cubes.len() + self.entry_cubes.len()
    }

    /// The audit scope the deltas touch: every item whose cube
    /// overlaps some delta cube (entries and blocks additionally
    /// filtered by the delta's switch pin, when it has one).
    pub fn touched(&self, deltas: &[RuleDelta]) -> AuditScope {
        let flows = self
            .flow_cubes
            .iter()
            .enumerate()
            .filter(|(_, (fwd, rev))| {
                deltas
                    .iter()
                    .any(|d| d.matcher.overlaps(fwd) || d.matcher.overlaps(rev))
            })
            .map(|(i, _)| i)
            .collect();
        let blocks = self
            .block_cubes
            .iter()
            .enumerate()
            .filter(|(_, (dpid, m))| {
                deltas
                    .iter()
                    .any(|d| d.dpid.is_none_or(|p| p == *dpid) && d.matcher.overlaps(m))
            })
            .map(|(i, _)| i)
            .collect();
        let entries = self
            .entry_cubes
            .iter()
            .filter(|(_, _, dpid, m)| {
                deltas
                    .iter()
                    .any(|d| d.dpid.is_none_or(|p| p == *dpid) && d.matcher.overlaps(m))
            })
            .map(|(si, j, _, _)| (*si, *j))
            .collect();
        AuditScope {
            flows,
            blocks,
            entries,
        }
    }
}

/// Audits only the equivalence classes `deltas` touch (plus the
/// always-on structural invariants). Agrees with the full
/// [`crate::audit`] on every touched class; violations confined to
/// untouched classes are by definition unaffected by the delta and
/// are skipped.
pub fn audit_delta(snap: &Snapshot, deltas: &[RuleDelta]) -> Vec<Violation> {
    audit_scoped(snap, &EcIndex::build(snap).touched(deltas))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit;
    use livesec_sim::SimDuration;
    use livesec_workloads::{CampusScenario, ScenarioConfig};

    fn strings(vs: &[Violation]) -> Vec<String> {
        let mut out: Vec<String> = vs.iter().map(|v| v.to_string()).collect();
        out.sort();
        out
    }

    fn live_snapshot() -> Snapshot {
        let mut s = CampusScenario::build(ScenarioConfig::default());
        s.campus.world.run_for(SimDuration::from_secs(3));
        Snapshot::of_campus(&s.campus)
    }

    #[test]
    fn universal_delta_reproduces_the_full_audit() {
        let snap = live_snapshot();
        let full = audit(&snap);
        let scoped = audit_delta(&snap, &[RuleDelta::network_wide(Match::any())]);
        assert_eq!(strings(&full), strings(&scoped));
    }

    #[test]
    fn disjoint_delta_touches_nothing() {
        let snap = live_snapshot();
        let idx = EcIndex::build(&snap);
        assert!(idx.total_items() > 0);
        // Campus traffic lives in 10.0.0.0/8; a cube over 203.0.113/24
        // touches no flow, and no entry except wildcards.
        let delta = RuleDelta::network_wide(
            Match::any()
                .with_nw_src("203.0.113.0/24".parse().unwrap())
                .with_nw_dst("203.0.113.0/24".parse().unwrap())
                .with_tp_dst(9999),
        );
        let scope = idx.touched(&[delta]);
        assert!(scope.flows.is_empty(), "{:?}", scope.flows);
        assert!(scope.len() < idx.total_items());
    }
}
