//! Offline stand-in for `serde`.
//!
//! The workspace must build without network access, so instead of the
//! real `serde` this crate provides a small Value-tree serialization
//! framework with the same spelling at use sites:
//!
//! - `#[derive(Serialize, Deserialize)]` (re-exported from the
//!   companion `serde_derive` proc-macro crate),
//! - `Serialize`/`Deserialize` traits, here defined as conversions to
//!   and from an in-memory [`Value`] tree,
//! - `#[serde(skip)]` and `#[serde(with = "module")]` field attributes
//!   (the only ones this workspace uses).
//!
//! `serde_json` (also vendored) renders a [`Value`] to JSON text and
//! parses it back. Enum values use serde's externally-tagged layout so
//! JSON output looks the way the real stack would print it (for
//! example `"AttackDetected"` or `{"FlowStart": {...}}`), which the
//! monitoring tests grep for.
//!
//! Unordered maps (`HashMap`/`HashSet`) are serialized in sorted order
//! so that equal values always produce byte-identical output — the
//! determinism golden-trace test depends on that property.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;
use std::net::Ipv4Addr;

pub use serde_derive::{Deserialize, Serialize};

/// A serialized value: the intermediate tree between Rust data and a
/// concrete format such as JSON.
///
/// Map keys are full [`Value`]s (not just strings) because the
/// monitoring layer serializes maps keyed by tuples and MAC addresses;
/// formats decide how to render non-string keys.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    Map(Vec<(Value, Value)>),
}

/// Total order over values, used to sort `HashMap`/`HashSet` contents
/// into a canonical serialization order. `F64` uses `total_cmp`.
pub fn value_cmp(a: &Value, b: &Value) -> Ordering {
    fn rank(v: &Value) -> u8 {
        match v {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::I64(_) => 2,
            Value::U64(_) => 3,
            Value::F64(_) => 4,
            Value::Str(_) => 5,
            Value::Seq(_) => 6,
            Value::Map(_) => 7,
        }
    }
    match (a, b) {
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::I64(x), Value::I64(y)) => x.cmp(y),
        (Value::U64(x), Value::U64(y)) => x.cmp(y),
        (Value::I64(x), Value::U64(y)) => {
            if *x < 0 {
                Ordering::Less
            } else {
                (*x as u64).cmp(y)
            }
        }
        (Value::U64(x), Value::I64(y)) => {
            if *y < 0 {
                Ordering::Greater
            } else {
                x.cmp(&(*y as u64))
            }
        }
        (Value::F64(x), Value::F64(y)) => x.total_cmp(y),
        (Value::Str(x), Value::Str(y)) => x.cmp(y),
        (Value::Seq(x), Value::Seq(y)) => seq_cmp(x, y),
        (Value::Map(x), Value::Map(y)) => {
            for ((ka, va), (kb, vb)) in x.iter().zip(y.iter()) {
                let c = value_cmp(ka, kb);
                if c != Ordering::Equal {
                    return c;
                }
                let c = value_cmp(va, vb);
                if c != Ordering::Equal {
                    return c;
                }
            }
            x.len().cmp(&y.len())
        }
        _ => rank(a).cmp(&rank(b)),
    }
}

fn seq_cmp(x: &[Value], y: &[Value]) -> Ordering {
    for (a, b) in x.iter().zip(y.iter()) {
        let c = value_cmp(a, b);
        if c != Ordering::Equal {
            return c;
        }
    }
    x.len().cmp(&y.len())
}

/// Deserialization error: a human-readable description of the first
/// mismatch between the value tree and the target type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Conversion out of a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Helpers used by the generated code in `serde_derive`.
// ---------------------------------------------------------------------------

fn type_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
        Value::Str(_) => "string",
        Value::Seq(_) => "sequence",
        Value::Map(_) => "map",
    }
}

/// Expects `v` to be a map, in service of deserializing `what`.
pub fn expect_map<'a>(v: &'a Value, what: &str) -> Result<&'a [(Value, Value)], DeError> {
    match v {
        Value::Map(m) => Ok(m),
        other => Err(DeError::custom(format!(
            "expected map for {what}, found {}",
            type_name(other)
        ))),
    }
}

/// Expects `v` to be a sequence, in service of deserializing `what`.
pub fn expect_seq<'a>(v: &'a Value, what: &str) -> Result<&'a [Value], DeError> {
    match v {
        Value::Seq(s) => Ok(s),
        other => Err(DeError::custom(format!(
            "expected sequence for {what}, found {}",
            type_name(other)
        ))),
    }
}

/// Finds the entry named `name` in a string-keyed map.
pub fn get_field<'a>(m: &'a [(Value, Value)], name: &str) -> Result<&'a Value, DeError> {
    m.iter()
        .find(|(k, _)| matches!(k, Value::Str(s) if s == name))
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::custom(format!("missing field `{name}`")))
}

/// Deserializes the field `name` out of a string-keyed map.
pub fn de_field<T: Deserialize>(m: &[(Value, Value)], name: &str) -> Result<T, DeError> {
    T::from_value(get_field(m, name)?).map_err(|e| DeError::custom(format!("field `{name}`: {e}")))
}

/// Deserializes element `i` of a sequence.
pub fn de_index<T: Deserialize>(s: &[Value], i: usize) -> Result<T, DeError> {
    let v = s
        .get(i)
        .ok_or_else(|| DeError::custom(format!("missing tuple element {i}")))?;
    T::from_value(v).map_err(|e| DeError::custom(format!("element {i}: {e}")))
}

/// Splits an externally-tagged enum value into `(variant_name,
/// payload)`: `"A"` → `("A", None)`, `{"B": x}` → `("B", Some(x))`.
pub fn variant_parts<'a>(
    v: &'a Value,
    what: &str,
) -> Result<(&'a str, Option<&'a Value>), DeError> {
    match v {
        Value::Str(s) => Ok((s, None)),
        Value::Map(m) if m.len() == 1 => match &m[0] {
            (Value::Str(tag), payload) => Ok((tag, Some(payload))),
            _ => Err(DeError::custom(format!(
                "enum {what}: variant tag must be a string"
            ))),
        },
        other => Err(DeError::custom(format!(
            "expected enum {what} (string or single-entry map), found {}",
            type_name(other)
        ))),
    }
}

/// Asserts a unit variant carries no payload.
pub fn no_payload(p: Option<&Value>, variant: &str) -> Result<(), DeError> {
    match p {
        None => Ok(()),
        Some(Value::Null) => Ok(()),
        Some(_) => Err(DeError::custom(format!(
            "unit variant `{variant}` carries unexpected data"
        ))),
    }
}

/// Extracts the payload a data-carrying variant requires.
pub fn need_payload<'a>(p: Option<&'a Value>, variant: &str) -> Result<&'a Value, DeError> {
    p.ok_or_else(|| DeError::custom(format!("variant `{variant}` is missing its data")))
}

// ---------------------------------------------------------------------------
// Primitive and std impls.
// ---------------------------------------------------------------------------

macro_rules! signed_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| DeError::custom("integer out of range"))?,
                    Value::F64(f) if f.fract() == 0.0 => *f as i64,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected integer, found {}",
                            type_name(other)
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    DeError::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

signed_impls!(i8, i16, i32, i64, isize);

macro_rules! unsigned_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: u64 = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) => u64::try_from(*n)
                        .map_err(|_| DeError::custom("negative integer for unsigned type"))?,
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected integer, found {}",
                            type_name(other)
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    DeError::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

unsigned_impls!(u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!(
                "expected bool, found {}",
                type_name(other)
            ))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::I64(n) => Ok(*n as f64),
            Value::U64(n) => Ok(*n as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(DeError::custom(format!(
                "expected number, found {}",
                type_name(other)
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!(
                "expected string, found {}",
                type_name(other)
            ))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        expect_seq(v, "Vec")?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| DeError::custom(format!("expected array of {N} elements, found {got}")))
    }
}

macro_rules! tuple_impls {
    ($(($($idx:tt $name:ident),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let s = expect_seq(v, "tuple")?;
                Ok(($(de_index::<$name>(s, $idx)?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl Serialize for Ipv4Addr {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for Ipv4Addr {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => s
                .parse()
                .map_err(|_| DeError::custom(format!("invalid IPv4 address `{s}`"))),
            other => Err(DeError::custom(format!(
                "expected IPv4 address string, found {}",
                type_name(other)
            ))),
        }
    }
}

fn map_to_value<'a, K, V, I>(iter: I) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    Value::Map(iter.map(|(k, v)| (k.to_value(), v.to_value())).collect())
}

fn map_from_value<K: Deserialize, V: Deserialize>(v: &Value) -> Result<Vec<(K, V)>, DeError> {
    match v {
        Value::Map(m) => m
            .iter()
            .map(|(k, v)| Ok((K::from_value(k)?, V::from_value(v)?)))
            .collect(),
        // Non-string-keyed maps render to JSON as arrays of pairs and
        // parse back as sequences; accept that shape too.
        Value::Seq(s) => s
            .iter()
            .map(|pair| {
                let p = expect_seq(pair, "map entry")?;
                if p.len() != 2 {
                    return Err(DeError::custom("map entry must be a [key, value] pair"));
                }
                Ok((K::from_value(&p[0])?, V::from_value(&p[1])?))
            })
            .collect(),
        other => Err(DeError::custom(format!(
            "expected map, found {}",
            type_name(other)
        ))),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(map_from_value::<K, V>(v)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(Value, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_value(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| value_cmp(&a.0, &b.0));
        Value::Map(entries)
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(map_from_value::<K, V>(v)?.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        expect_seq(v, "BTreeSet")?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        let mut items: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        items.sort_by(value_cmp);
        Value::Seq(items)
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        expect_seq(v, "HashSet")?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u16::from_value(&42u16.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        let arr: [u8; 6] = [1, 2, 3, 4, 5, 6];
        assert_eq!(<[u8; 6]>::from_value(&arr.to_value()).unwrap(), arr);
    }

    #[test]
    fn hashmap_serializes_sorted() {
        let mut m = HashMap::new();
        for i in (0..32u64).rev() {
            m.insert(i, i * 2);
        }
        let v = m.to_value();
        let Value::Map(entries) = v else { panic!() };
        let keys: Vec<_> = entries.iter().map(|(k, _)| k.clone()).collect();
        let mut sorted = keys.clone();
        sorted.sort_by(value_cmp);
        assert_eq!(keys, sorted);
    }

    #[test]
    fn tuple_keyed_map_roundtrips() {
        let mut m = BTreeMap::new();
        m.insert((1u64, 2u32), (3u64, 4u64));
        let back: BTreeMap<(u64, u32), (u64, u64)> = BTreeMap::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn ipv4_roundtrips() {
        let ip: Ipv4Addr = "10.1.2.3".parse().unwrap();
        assert_eq!(Ipv4Addr::from_value(&ip.to_value()).unwrap(), ip);
    }

    #[test]
    fn variant_helpers() {
        let unit = Value::Str("A".into());
        assert_eq!(variant_parts(&unit, "E").unwrap(), ("A", None));
        let tagged = Value::Map(vec![(Value::Str("B".into()), Value::U64(9))]);
        let (tag, payload) = variant_parts(&tagged, "E").unwrap();
        assert_eq!(tag, "B");
        assert_eq!(payload, Some(&Value::U64(9)));
    }
}
