#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass before merge.
#
#   ./scripts/check.sh
#
# Runs the release build, the full test suite, clippy with warnings
# denied, and the formatting check, stopping at the first failure.

set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release
run cargo test -q
run cargo clippy --workspace -- -D warnings
run cargo fmt --check

echo "==> all checks passed"
