//! E11 — traditional gateway middlebox vs LiveSec's distributed
//! elements under growing demand (the paper's Figure 1 vs Figure 2
//! motivation, quantified).

use livesec_bench::baseline::{self, Design};
use livesec_bench::print_header;
use livesec_sim::{format_bps, SimDuration};

fn main() {
    print_header(
        "E11",
        "scrubbed throughput vs demand: traditional (1 box) vs LiveSec (distributed)",
    );
    println!(
        "{:>8} {:>18} {:>18} {:>8}",
        "pairs", "traditional", "livesec", "ratio"
    );
    let window = SimDuration::from_millis(500);
    for pairs in [1usize, 2, 4, 8] {
        let trad = baseline::run(Design::TraditionalGatewayMiddlebox, pairs, 5, window);
        let live = baseline::run(Design::LiveSecDistributed, pairs, 5, window);
        println!(
            "{:>8} {:>18} {:>18} {:>7.1}x",
            pairs,
            format_bps(trad.goodput_bps),
            format_bps(live.goodput_bps),
            live.goodput_bps / trad.goodput_bps
        );
    }
}
