//! IPv4 prefix (CIDR) utilities.
//!
//! The standard library's [`std::net::Ipv4Addr`] is used for addresses;
//! this module adds the prefix type needed for work-zone policies and
//! the controller's directory proxy.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// An IPv4 network in CIDR notation, e.g. `10.1.0.0/16`.
///
/// ```rust
/// use livesec_net::Ipv4Net;
/// let net: Ipv4Net = "10.1.0.0/16".parse().unwrap();
/// assert!(net.contains("10.1.200.3".parse().unwrap()));
/// assert!(!net.contains("10.2.0.1".parse().unwrap()));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ipv4Net {
    addr: Ipv4Addr,
    prefix_len: u8,
}

impl Ipv4Net {
    /// Creates a network from a base address and prefix length.
    ///
    /// The host bits of `addr` are masked off, so
    /// `Ipv4Net::new(10.1.2.3, 16)` is the network `10.1.0.0/16`.
    ///
    /// # Panics
    ///
    /// Panics if `prefix_len > 32`.
    pub fn new(addr: Ipv4Addr, prefix_len: u8) -> Self {
        assert!(prefix_len <= 32, "prefix length {prefix_len} out of range");
        let masked = u32::from(addr) & Self::mask_bits(prefix_len);
        Ipv4Net {
            addr: Ipv4Addr::from(masked),
            prefix_len,
        }
    }

    /// The /32 network containing exactly `addr`.
    pub fn host(addr: Ipv4Addr) -> Self {
        Ipv4Net::new(addr, 32)
    }

    /// The /0 network containing every address.
    pub fn any() -> Self {
        Ipv4Net::new(Ipv4Addr::UNSPECIFIED, 0)
    }

    /// The (masked) network base address.
    pub fn addr(&self) -> Ipv4Addr {
        self.addr
    }

    /// The prefix length in bits.
    pub fn prefix_len(&self) -> u8 {
        self.prefix_len
    }

    /// Returns `true` if `ip` falls inside this network.
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        u32::from(ip) & Self::mask_bits(self.prefix_len) == u32::from(self.addr)
    }

    /// Returns `true` if every address of `other` is also in `self`.
    pub fn contains_net(&self, other: &Ipv4Net) -> bool {
        self.prefix_len <= other.prefix_len && self.contains(other.addr)
    }

    /// Returns the `i`-th host address within the network (0-based from
    /// the network address). Useful for deterministic address assignment
    /// in simulations.
    ///
    /// # Panics
    ///
    /// Panics if `i` does not fit in the host part.
    pub fn nth(&self, i: u32) -> Ipv4Addr {
        let host_bits = 32 - self.prefix_len as u32;
        assert!(
            host_bits == 32 || u64::from(i) < (1u64 << host_bits),
            "host index {i} out of range for /{}",
            self.prefix_len
        );
        Ipv4Addr::from(u32::from(self.addr) | i)
    }

    fn mask_bits(prefix_len: u8) -> u32 {
        if prefix_len == 0 {
            0
        } else {
            u32::MAX << (32 - prefix_len as u32)
        }
    }
}

impl fmt::Display for Ipv4Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.prefix_len)
    }
}

impl fmt::Debug for Ipv4Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ipv4Net({self})")
    }
}

/// Error returned when parsing a malformed CIDR string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNetError {
    input: String,
}

impl fmt::Display for ParseNetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid CIDR syntax: {:?}", self.input)
    }
}

impl std::error::Error for ParseNetError {}

impl FromStr for Ipv4Net {
    type Err = ParseNetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseNetError {
            input: s.to_owned(),
        };
        let (addr, len) = s.split_once('/').ok_or_else(err)?;
        let addr: Ipv4Addr = addr.parse().map_err(|_| err())?;
        let len: u8 = len.parse().map_err(|_| err())?;
        if len > 32 {
            return Err(err());
        }
        Ok(Ipv4Net::new(addr, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_host_bits() {
        let net = Ipv4Net::new("10.1.2.3".parse().unwrap(), 16);
        assert_eq!(net.addr(), "10.1.0.0".parse::<Ipv4Addr>().unwrap());
        assert_eq!(net.to_string(), "10.1.0.0/16");
    }

    #[test]
    fn contains_boundaries() {
        let net: Ipv4Net = "192.168.4.0/22".parse().unwrap();
        assert!(net.contains("192.168.4.0".parse().unwrap()));
        assert!(net.contains("192.168.7.255".parse().unwrap()));
        assert!(!net.contains("192.168.8.0".parse().unwrap()));
        assert!(!net.contains("192.168.3.255".parse().unwrap()));
    }

    #[test]
    fn zero_prefix_contains_everything() {
        let any = Ipv4Net::any();
        assert!(any.contains("0.0.0.0".parse().unwrap()));
        assert!(any.contains("255.255.255.255".parse().unwrap()));
    }

    #[test]
    fn host_net_is_exact() {
        let h = Ipv4Net::host("10.0.0.7".parse().unwrap());
        assert!(h.contains("10.0.0.7".parse().unwrap()));
        assert!(!h.contains("10.0.0.8".parse().unwrap()));
    }

    #[test]
    fn net_containment() {
        let big: Ipv4Net = "10.0.0.0/8".parse().unwrap();
        let small: Ipv4Net = "10.1.0.0/16".parse().unwrap();
        assert!(big.contains_net(&small));
        assert!(!small.contains_net(&big));
        assert!(big.contains_net(&big));
    }

    #[test]
    fn nth_addresses() {
        let net: Ipv4Net = "10.0.0.0/24".parse().unwrap();
        assert_eq!(net.nth(0), "10.0.0.0".parse::<Ipv4Addr>().unwrap());
        assert_eq!(net.nth(42), "10.0.0.42".parse::<Ipv4Addr>().unwrap());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn nth_out_of_range_panics() {
        let net: Ipv4Net = "10.0.0.0/24".parse().unwrap();
        let _ = net.nth(256);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("10.0.0.0".parse::<Ipv4Net>().is_err());
        assert!("10.0.0.0/33".parse::<Ipv4Net>().is_err());
        assert!("banana/8".parse::<Ipv4Net>().is_err());
    }
}
