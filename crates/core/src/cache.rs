//! The flow-setup fast path's decision cache.
//!
//! Flow setup is the controller's hot path: every packet-in of an
//! unknown flow costs a policy lookup, a balancer pick per chained
//! service, and two [`crate::routing::compile_path`] runs (forward and
//! reverse). Production traffic repeats itself — the same 9-tuple
//! reappears as soon as its entries idle out — so the
//! [`DecisionCache`] memoizes the *pure* part of that work, keyed by
//! the canonical [`FlowKey`], and replays it when nothing the decision
//! depended on has changed.
//!
//! Staleness is tracked two ways:
//!
//! * **Epochs** — a policy epoch (bumped on any policy-table edit) and
//!   a topology epoch (bumped when a switch joins, a link is
//!   discovered, an uplink changes, or a port goes down). Every entry
//!   records the epochs it was compiled under; a lookup under newer
//!   epochs lazily evicts the entry. Epoch bumps are O(1) no matter
//!   how many entries exist.
//! * **MAC index** — every entry is indexed by the MACs it involves
//!   (source, destination, and each service element). Host migration,
//!   host departure, and SE failure invalidate exactly the affected
//!   entries.
//!
//! The balancer is deliberately *not* epoch-tracked: its picks depend
//! on live load figures, so the controller re-runs the pick loop on
//! every hit and reuses the cached programs only when the picks land
//! on the same elements. That keeps the cache transparent — with the
//! cache on or off, the same sequence of balancer calls and monitor
//! events is produced (the golden-trace determinism test locks this
//! down) — while still skipping the compile work on the common path.

use crate::monitor::FastPathStats;
use crate::routing::SteeringProgram;
use livesec_net::{FlowKey, MacAddr};
use livesec_openflow::Match;
use livesec_services::ServiceType;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

/// A memoized flow-setup decision, in replayable form.
#[derive(Clone, Debug, PartialEq)]
pub enum CachedDecision {
    /// Policy denied the flow; `rule` names the matching rule.
    Deny {
        /// The policy rule that matched, if a specific one did.
        rule: Option<String>,
    },
    /// The flow is admitted — possibly through an empty chain (plain
    /// allow) — with these compiled steering programs.
    Steer {
        /// The policy chain, before balancing (a pick may be skipped
        /// under fail-open, so this is not the installed chain).
        services: Vec<ServiceType>,
        /// The elements the balancer picked when the entry was
        /// compiled, in chain order.
        elements: Vec<MacAddr>,
        /// The compiled forward-direction program. Shared, so a cache
        /// hit clones a pointer, not the program.
        forward: Rc<SteeringProgram>,
        /// The compiled reverse-direction program.
        reverse: Rc<SteeringProgram>,
    },
}

#[derive(Clone, Debug)]
struct Entry {
    decision: CachedDecision,
    /// Where the flow enters (dpid, port) — programs match on the
    /// ingress port, so a packet arriving elsewhere is a different
    /// setup problem.
    ingress: (u64, u32),
    policy_epoch: u64,
    topo_epoch: u64,
}

/// Memoizes flow-setup decisions keyed by canonical [`FlowKey`].
///
/// See the module docs for the invalidation model. All operations are
/// O(1) in the number of cached entries (epoch bumps especially).
#[derive(Debug, Default)]
pub struct DecisionCache {
    entries: HashMap<FlowKey, Entry>,
    by_mac: HashMap<MacAddr, HashSet<FlowKey>>,
    policy_epoch: u64,
    topo_epoch: u64,
    hits: u64,
    misses: u64,
    invalidations: u64,
    insertions: u64,
}

impl DecisionCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The MACs an entry must be indexed under.
    fn macs_of(key: &FlowKey, decision: &CachedDecision) -> Vec<MacAddr> {
        let mut macs = vec![key.dl_src, key.dl_dst];
        if let CachedDecision::Steer { elements, .. } = decision {
            macs.extend_from_slice(elements);
        }
        macs
    }

    /// Looks up the cached decision for `key` entering at `ingress`.
    ///
    /// A stale entry (older epoch, or a different ingress point) is
    /// evicted on the spot and reported as a miss.
    pub fn lookup(&mut self, key: &FlowKey, ingress: (u64, u32)) -> Option<CachedDecision> {
        match self.entries.get(key) {
            Some(e)
                if e.policy_epoch == self.policy_epoch
                    && e.topo_epoch == self.topo_epoch
                    && e.ingress == ingress =>
            {
                self.hits += 1;
                Some(e.decision.clone())
            }
            Some(_) => {
                self.evict(key);
                self.misses += 1;
                None
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Memoizes `decision` for `key`, replacing any previous entry.
    pub fn insert(&mut self, key: FlowKey, ingress: (u64, u32), decision: CachedDecision) {
        self.remove_silent(&key);
        for mac in Self::macs_of(&key, &decision) {
            self.by_mac.entry(mac).or_default().insert(key);
        }
        self.entries.insert(
            key,
            Entry {
                decision,
                ingress,
                policy_epoch: self.policy_epoch,
                topo_epoch: self.topo_epoch,
            },
        );
        self.insertions += 1;
    }

    /// Drops the entry for `key` (counted as an invalidation), e.g.
    /// when a revalidated balancer pick no longer matches it.
    pub fn remove(&mut self, key: &FlowKey) {
        self.evict(key);
    }

    /// Drops every entry involving `mac` — host migration or
    /// departure, or a service element going offline.
    pub fn invalidate_mac(&mut self, mac: MacAddr) {
        let Some(keys) = self.by_mac.get(&mac) else {
            return;
        };
        for key in keys.clone() {
            self.evict(&key);
        }
    }

    /// Drops every entry whose flow (in either direction) falls inside
    /// the header-space `cube` — the surgical counterpart of
    /// [`DecisionCache::note_policy_change`], used when a policy delta
    /// touches only some header classes.
    ///
    /// Unlike an epoch bump this leaves unrelated warm entries intact;
    /// the reverse direction is included because a cached steer
    /// decision compiles programs for both directions of the flow.
    pub fn invalidate_class(&mut self, cube: &Match) {
        let mut stale: Vec<FlowKey> = self
            .entries
            .iter()
            .filter(|(key, e)| {
                cube.matches(e.ingress.1, key) || cube.matches(e.ingress.1, &key.reversed())
            })
            .map(|(key, _)| *key)
            .collect();
        // HashMap iteration order must not leak into eviction order.
        stale.sort_unstable();
        for key in &stale {
            self.evict(key);
        }
    }

    /// Notes a policy-table change: every cached decision may now be
    /// wrong, so the policy epoch advances and old entries lazily
    /// evict on their next lookup.
    pub fn note_policy_change(&mut self) {
        self.policy_epoch += 1;
    }

    /// Notes a topology change (switch join, link discovery, uplink
    /// change, port down): compiled programs may route differently
    /// now.
    pub fn note_topology_change(&mut self) {
        self.topo_epoch += 1;
    }

    /// Drops everything (counted as invalidations).
    pub fn clear(&mut self) {
        self.invalidations += self.entries.len() as u64;
        self.entries.clear();
        self.by_mac.clear();
    }

    /// Number of cached entries (including not-yet-evicted stale
    /// ones).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// This cache's share of the fast-path counters (the controller
    /// fills in the batching figures).
    pub fn stats(&self) -> FastPathStats {
        FastPathStats {
            hits: self.hits,
            misses: self.misses,
            invalidations: self.invalidations,
            insertions: self.insertions,
            entries: self.entries.len() as u64,
            ..FastPathStats::default()
        }
    }

    fn evict(&mut self, key: &FlowKey) {
        if self.remove_silent(key) {
            self.invalidations += 1;
        }
    }

    fn remove_silent(&mut self, key: &FlowKey) -> bool {
        let Some(entry) = self.entries.remove(key) else {
            return false;
        };
        for mac in Self::macs_of(key, &entry.decision) {
            if let Some(set) = self.by_mac.get_mut(&mac) {
                set.remove(key);
                if set.is_empty() {
                    self.by_mac.remove(&mac);
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(src: u64, dst: u64, tp_src: u16) -> FlowKey {
        FlowKey {
            vlan: None,
            dl_src: MacAddr::from_u64(src),
            dl_dst: MacAddr::from_u64(dst),
            dl_type: 0x0800,
            nw_src: "10.0.0.1".parse().unwrap(),
            nw_dst: "10.0.0.2".parse().unwrap(),
            nw_proto: 6,
            tp_src,
            tp_dst: 80,
        }
    }

    fn steer(elements: &[u64]) -> CachedDecision {
        CachedDecision::Steer {
            services: vec![ServiceType::IntrusionDetection; elements.len()],
            elements: elements.iter().map(|m| MacAddr::from_u64(*m)).collect(),
            forward: Rc::new(SteeringProgram::default()),
            reverse: Rc::new(SteeringProgram::default()),
        }
    }

    #[test]
    fn miss_then_insert_then_hit() {
        let mut c = DecisionCache::new();
        let k = key(1, 2, 1000);
        assert_eq!(c.lookup(&k, (1, 2)), None);
        c.insert(k, (1, 2), steer(&[0xfe]));
        assert_eq!(c.lookup(&k, (1, 2)), Some(steer(&[0xfe])));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions, s.entries), (1, 1, 1, 1));
    }

    #[test]
    fn different_ingress_is_a_miss_and_evicts() {
        let mut c = DecisionCache::new();
        let k = key(1, 2, 1000);
        c.insert(k, (1, 2), steer(&[]));
        assert_eq!(c.lookup(&k, (1, 3)), None);
        assert!(c.is_empty());
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn policy_epoch_invalidates_lazily() {
        let mut c = DecisionCache::new();
        let k = key(1, 2, 1000);
        c.insert(k, (1, 2), CachedDecision::Deny { rule: None });
        c.note_policy_change();
        assert_eq!(c.len(), 1, "eviction is lazy");
        assert_eq!(c.lookup(&k, (1, 2)), None);
        assert!(c.is_empty());
        // A decision cached under the new epoch hits again.
        c.insert(k, (1, 2), CachedDecision::Deny { rule: None });
        assert!(c.lookup(&k, (1, 2)).is_some());
    }

    #[test]
    fn topology_epoch_invalidates_lazily() {
        let mut c = DecisionCache::new();
        let k = key(1, 2, 1000);
        c.insert(k, (1, 2), steer(&[0xfe]));
        c.note_topology_change();
        assert_eq!(c.lookup(&k, (1, 2)), None);
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn mac_invalidation_hits_src_dst_and_elements() {
        let mut c = DecisionCache::new();
        let ka = key(1, 2, 1000);
        let kb = key(3, 4, 2000);
        let kc = key(5, 6, 3000);
        c.insert(ka, (1, 2), steer(&[0xfe]));
        c.insert(kb, (1, 2), steer(&[0xfe]));
        c.insert(kc, (1, 2), steer(&[0xff]));
        // The shared element takes out the first two entries only.
        c.invalidate_mac(MacAddr::from_u64(0xfe));
        assert_eq!(c.len(), 1);
        assert!(c.lookup(&kc, (1, 2)).is_some());
        // A destination MAC invalidates too.
        c.invalidate_mac(MacAddr::from_u64(6));
        assert!(c.is_empty());
        assert_eq!(c.stats().invalidations, 3);
        // Unknown MACs are a no-op.
        c.invalidate_mac(MacAddr::from_u64(0xabc));
        assert_eq!(c.stats().invalidations, 3);
    }

    #[test]
    fn class_invalidation_spares_unrelated_warm_entries() {
        let mut c = DecisionCache::new();
        let telnet = {
            let mut k = key(1, 2, 1000);
            k.tp_dst = 23;
            k
        };
        let web = key(3, 4, 2000);
        c.insert(telnet, (1, 2), steer(&[0xfe]));
        c.insert(web, (1, 2), steer(&[0xff]));
        // A cube over port 23 evicts only the telnet entry.
        c.invalidate_class(&Match::any().with_tp_dst(23));
        assert_eq!(c.lookup(&telnet, (1, 2)), None);
        assert_eq!(
            c.lookup(&web, (1, 2)),
            Some(steer(&[0xff])),
            "unrelated warm entry must survive a scoped invalidation"
        );
        let s = c.stats();
        assert_eq!((s.hits, s.invalidations), (1, 1));
    }

    #[test]
    fn class_invalidation_covers_the_reverse_direction() {
        let mut c = DecisionCache::new();
        let k = key(1, 2, 1000); // tp_src 1000 -> tp_dst 80
        c.insert(k, (1, 2), steer(&[]));
        // A cube matching the flow's *reverse* direction (dst port
        // 1000) still takes the entry out: the cached programs cover
        // both directions.
        c.invalidate_class(&Match::any().with_tp_dst(1000));
        assert_eq!(c.lookup(&k, (1, 2)), None);
    }

    #[test]
    fn reinsert_replaces_without_double_counting() {
        let mut c = DecisionCache::new();
        let k = key(1, 2, 1000);
        c.insert(k, (1, 2), steer(&[0xfe]));
        c.insert(k, (1, 2), steer(&[0xff]));
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(&k, (1, 2)), Some(steer(&[0xff])));
        // The old element's index entry is gone.
        c.invalidate_mac(MacAddr::from_u64(0xfe));
        assert_eq!(c.len(), 1);
        c.invalidate_mac(MacAddr::from_u64(0xff));
        assert!(c.is_empty());
    }

    #[test]
    fn clear_counts_everything() {
        let mut c = DecisionCache::new();
        c.insert(key(1, 2, 1), (1, 2), steer(&[]));
        c.insert(key(1, 2, 2), (1, 2), steer(&[]));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats().invalidations, 2);
    }
}
