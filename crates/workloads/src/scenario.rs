//! The paper's campus scenario (Figures 6–8).
//!
//! Builds the deployment of §V-B.4: OvS switches plus one OF Wi-Fi AP,
//! intrusion-detection and protocol-identification service elements,
//! five wireless users (four browsing, one on SSH), and the scripted
//! events of Figure 8 — a user leaving, a browser turning into a
//! BitTorrent downloader, and a user hitting a malicious site.

use crate::apps::{AttackClient, HttpClient, HttpServer, SshSession, TcpEchoServer};
use livesec::deploy::{Campus, CampusBuilder, SeHandle, UserHandle};
use livesec::policy::{PolicyRule, PolicyTable};
use livesec_net::{Packet, Payload, TcpFlags};
use livesec_services::{IdsEngine, ProtoIdEngine, ServiceElement, ServiceType};
use livesec_sim::{FaultKind, FaultPlan, SimDuration};
use livesec_switch::{App, HostIo};
use std::net::Ipv4Addr;

/// An application that does nothing at all (pure traffic sink).
///
/// Unlike [`livesec::deploy::NullApp`] this lives here so workloads
/// tests can reference it without the core crate's builder.
#[derive(Debug, Default, Clone, Copy)]
pub struct IdleApp;

impl App for IdleApp {}

/// A user who browses the web until `switch_at`, then starts a
/// BitTorrent download (Figure 8's behavioural change).
#[derive(Debug)]
pub struct WebThenTorrent {
    server: Ipv4Addr,
    switch_at: SimDuration,
    start_delay: SimDuration,
    torrenting: bool,
    handshake_sent: bool,
    bt_rate_bps: u64,
    /// Web requests issued during the browsing phase.
    pub web_requests: u32,
    /// Torrent pieces sent during the download phase.
    pub pieces: u64,
}

impl WebThenTorrent {
    /// Creates the user; browsing begins after 1 s, torrenting at
    /// `switch_at` (measured from simulation start).
    pub fn new(server: Ipv4Addr, switch_at: SimDuration) -> Self {
        WebThenTorrent {
            server,
            switch_at,
            start_delay: SimDuration::from_secs(1),
            torrenting: false,
            handshake_sent: false,
            bt_rate_bps: 30_000_000,
            web_requests: 0,
            pieces: 0,
        }
    }
}

impl App for WebThenTorrent {
    fn on_start(&mut self, io: &mut HostIo<'_, '_>) {
        io.set_timer(self.start_delay, 1);
    }

    fn on_timer(&mut self, io: &mut HostIo<'_, '_>, _token: u64) {
        if io.now().as_secs_f64() >= self.switch_at.as_secs_f64() {
            self.torrenting = true;
        }
        if !self.torrenting {
            self.web_requests += 1;
            io.send_tcp(
                self.server,
                40_100,
                80,
                self.web_requests,
                0,
                TcpFlags::PSH | TcpFlags::ACK,
                Payload::from(b"GET /size/2000 HTTP/1.1\r\nHost: x\r\n\r\n".as_ref()),
            );
            io.set_timer(SimDuration::from_millis(500), 1);
        } else {
            let payload: Payload = if self.handshake_sent {
                self.pieces += 1;
                Payload::Synthetic(1400)
            } else {
                self.handshake_sent = true;
                let mut hs = vec![0x13u8];
                hs.extend_from_slice(b"BitTorrent protocol");
                hs.resize(68, 0);
                Payload::from(hs)
            };
            io.send_tcp(
                self.server,
                40_101,
                6881,
                self.pieces as u32,
                0,
                TcpFlags::PSH | TcpFlags::ACK,
                payload,
            );
            // ~30 Mbps piece stream.
            let frame_bits = (1400u64 + 58) * 8;
            io.set_timer(
                SimDuration::from_nanos(frame_bits * 1_000_000_000 / self.bt_rate_bps),
                1,
            );
        }
    }

    fn on_packet(&mut self, _io: &mut HostIo<'_, '_>, _pkt: &Packet) {}
}

/// Scheduled control-plane faults for the campus scenario — the
/// deterministic chaos the robustness suite runs under.
///
/// The default plan partitions every AS switch's secure channel once
/// (staggered, each outage longer than both liveness timeouts so the
/// switch degrades *and* the controller deregisters it), corrupts a
/// few control frames right after each heal, and power-cycles one
/// switch mid-run.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Seed of the fault injector's corruption RNG.
    pub fault_seed: u64,
    /// When the first control-channel partition starts.
    pub partition_at: SimDuration,
    /// How long each partition lasts.
    pub partition_len: SimDuration,
    /// Delay between successive switches' partitions.
    pub partition_stagger: SimDuration,
    /// Index (into the builder's AS switches) of a switch to
    /// power-cycle, if any.
    pub crash_switch: Option<usize>,
    /// When the power cycle happens.
    pub crash_at: SimDuration,
    /// Control frames to corrupt from each switch right after its
    /// partition heals (exercises resynchronization through garbage).
    pub corrupt_frames: u32,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            fault_seed: 0xc4a05,
            partition_at: SimDuration::from_secs(5),
            partition_len: SimDuration::from_secs(4),
            partition_stagger: SimDuration::from_secs(6),
            crash_switch: Some(1),
            crash_at: SimDuration::from_secs(6),
            corrupt_frames: 2,
        }
    }
}

impl ChaosConfig {
    /// When the last scheduled fault has healed, given `n_switches` AS
    /// switches — run the world at least this long plus settling time
    /// to observe full recovery.
    pub fn last_heal(&self, n_switches: usize) -> SimDuration {
        let stagger = self.partition_stagger.as_nanos() * n_switches.saturating_sub(1) as u64;
        SimDuration::from_nanos(
            self.partition_at.as_nanos() + stagger + self.partition_len.as_nanos(),
        )
    }
}

/// Configuration of the campus scenario.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of wired OvS switches (the paper's figures show 3).
    pub n_ovs: usize,
    /// When the browsing user turns to BitTorrent.
    pub torrent_at: SimDuration,
    /// When the attacker turns malicious (benign requests before).
    pub attack_after_requests: u32,
    /// Location (ARP) timeout — short so a silent user "leaves"
    /// visibly within the run.
    pub arp_timeout: SimDuration,
    /// Switch-entry idle timeout. Shorter than a client's think time
    /// makes every request a fresh flow setup of the same key — the
    /// regime the decision cache exists for.
    pub flow_idle: SimDuration,
    /// Whether the controller memoizes flow-setup decisions. The cache
    /// is observably transparent — runs with it on and off produce the
    /// same event history — so this exists for A/B tests and benches.
    pub decision_cache: bool,
    /// Scheduled control-plane faults (`None` = fault-free run).
    pub chaos: Option<ChaosConfig>,
    /// Controller shards. `0` (the default) runs the plain unsharded
    /// controller; `n ≥ 1` wraps it into an n-shard
    /// [`livesec::ShardedControlPlane`] (so `1` exercises the plane
    /// itself against the single-controller baseline).
    pub shards: u32,
    /// Forwarding-attestation sampling modulus for every AS switch
    /// (`0` = attestations off, the default; `1` = attest every
    /// packet). Drives the accountability detector.
    pub attest_every: u64,
    /// Declarative policy source (`.lsp`) to compile and install in
    /// place of the built-in Figure-7 table. Compilation errors panic
    /// — scenario policies are static test inputs, not user data.
    pub policy_src: Option<&'static str>,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            seed: 42,
            n_ovs: 3,
            torrent_at: SimDuration::from_secs(4),
            attack_after_requests: 50,
            arp_timeout: SimDuration::from_secs(3),
            flow_idle: SimDuration::from_secs(1),
            decision_cache: true,
            chaos: None,
            shards: 0,
            attest_every: 0,
            policy_src: None,
        }
    }
}

/// The assembled Figure-7/8 campus.
#[derive(Debug)]
pub struct CampusScenario {
    /// The testbed (run `campus.world` to advance time).
    pub campus: Campus,
    /// Web-browsing wireless users.
    pub web_users: Vec<UserHandle>,
    /// The SSH user.
    pub ssh_user: UserHandle,
    /// The user who leaves mid-run (stops talking after a few
    /// requests; the ARP timeout then evicts them).
    pub leaver: UserHandle,
    /// The user who switches from web to BitTorrent.
    pub torrent_user: UserHandle,
    /// The user who accesses a malicious site.
    pub attacker: UserHandle,
    /// The SSH server host.
    pub ssh_server: UserHandle,
    /// Intrusion-detection elements.
    pub ids_elements: Vec<SeHandle>,
    /// Protocol-identification elements.
    pub protoid_elements: Vec<SeHandle>,
}

impl CampusScenario {
    /// Builds the scenario.
    pub fn build(cfg: ScenarioConfig) -> Self {
        // Policy: every TCP flow is protocol-identified; web flows
        // additionally pass intrusion detection first. A scenario can
        // swap in a declarative `.lsp` source instead.
        let policy = match cfg.policy_src {
            Some(src) => match livesec_policy::compile(src) {
                Ok(compiled) => compiled.table,
                Err(diags) => panic!("scenario policy does not compile: {diags:?}"),
            },
            None => {
                let mut policy = PolicyTable::allow_all();
                policy.push(
                    PolicyRule::named("web-ids-protoid")
                        .proto(6)
                        .dst_port(80)
                        .chain(vec![
                            ServiceType::IntrusionDetection,
                            ServiceType::ProtocolIdentification,
                        ]),
                );
                policy.push(
                    PolicyRule::named("tcp-protoid")
                        .proto(6)
                        .chain(vec![ServiceType::ProtocolIdentification]),
                );
                policy
            }
        };

        let arp_timeout = cfg.arp_timeout;
        let flow_idle = cfg.flow_idle;
        let decision_cache = cfg.decision_cache;
        let mut b = CampusBuilder::new(cfg.seed, cfg.n_ovs)
            .with_policy(policy)
            .configure_controller(move |c| {
                c.set_flow_idle_timeout(flow_idle);
                // Short location timeout so departures show up.
                c.set_arp_timeout(arp_timeout);
                // Link-load sampling for the Figure-8 utilization view.
                c.set_stats_polling(10);
                c.set_decision_cache(decision_cache);
            });
        if cfg.shards > 0 {
            b = b.with_shards(cfg.shards);
        }
        if cfg.attest_every > 0 {
            b = b.with_attestation(cfg.attest_every);
        }

        let gw = b.add_gateway_configured(0, HttpServer::new(), |h| {
            h.with_reannounce_interval(SimDuration::from_secs(1))
        });
        let ap = b.add_wifi_ap();

        // Service elements: 2 IDS + 2 proto-id, on the wired OvS.
        let ids_elements = vec![
            b.add_service_element(0, ServiceElement::new(IdsEngine::engine())),
            b.add_service_element(1, ServiceElement::new(IdsEngine::engine())),
        ];
        let protoid_elements = vec![
            b.add_service_element(1, ServiceElement::new(ProtoIdEngine::new())),
            b.add_service_element(2, ServiceElement::new(ProtoIdEngine::new())),
        ];

        // A wired SSH server for the SSH user.
        let ssh_server = b.add_user_with(2, TcpEchoServer::new(), |h| {
            h.with_reannounce_interval(SimDuration::from_secs(1))
        });

        // Hosts re-announce faster than the scenario's short ARP
        // timeout, so present users stay in the routing table.
        let announce = SimDuration::from_secs(1);

        // Five wireless users on the AP.
        let mut web_users = Vec::new();
        // Two steady browsers.
        for i in 0..2 {
            web_users.push(
                b.add_user_with(
                    ap,
                    HttpClient::new(gw.ip, 20_000)
                        .with_think_time(SimDuration::from_millis(400))
                        .with_src_port(41_000 + i as u16),
                    move |h| h.with_reannounce_interval(announce),
                ),
            );
        }
        // The leaver: a browser whose machine departs mid-run; the
        // controller notices via ARP timeout (paper §III-C.2).
        let depart_at =
            livesec_sim::SimTime::from_nanos(cfg.torrent_at.as_nanos().saturating_sub(500_000_000));
        let leaver = b.add_user_with(
            ap,
            HttpClient::new(gw.ip, 20_000)
                .with_think_time(SimDuration::from_millis(200))
                .with_src_port(41_100),
            move |h| {
                h.with_reannounce_interval(announce)
                    .with_departure_at(depart_at)
            },
        );
        // The web→BitTorrent user (torrents toward the gateway).
        let torrent_user =
            b.add_user_with(ap, WebThenTorrent::new(gw.ip, cfg.torrent_at), move |h| {
                h.with_reannounce_interval(announce)
            });
        // The SSH user.
        let ssh_user = b.add_user_with(ap, SshSession::new(ssh_server.ip), move |h| {
            h.with_reannounce_interval(announce)
        });
        // The attacker is a wired user browsing a malicious site.
        let attacker = b.add_user_with(
            1,
            AttackClient::new(gw.ip, cfg.attack_after_requests)
                .with_interval(SimDuration::from_millis(50)),
            move |h| h.with_reannounce_interval(announce),
        );

        let mut campus = b.finish();

        // Schedule the chaos plan against the finished topology: the
        // faults are ordinary simulator events, so a faulty run is
        // exactly as deterministic as a fault-free one.
        if let Some(chaos) = cfg.chaos {
            let mut plan = FaultPlan::new(chaos.fault_seed);
            let mut at = chaos.partition_at.as_nanos();
            for &sw in &campus.as_switches {
                plan.push(
                    livesec_sim::SimTime::from_nanos(at),
                    FaultKind::PartitionControl { node: sw },
                );
                let heal = at + chaos.partition_len.as_nanos();
                plan.push(
                    livesec_sim::SimTime::from_nanos(heal),
                    FaultKind::HealControl { node: sw },
                );
                if chaos.corrupt_frames > 0 {
                    plan.push(
                        livesec_sim::SimTime::from_nanos(heal),
                        FaultKind::CorruptControl {
                            node: sw,
                            count: chaos.corrupt_frames,
                        },
                    );
                }
                at += chaos.partition_stagger.as_nanos();
            }
            if let Some(idx) = chaos.crash_switch {
                if let Some(&sw) = campus.as_switches.get(idx) {
                    plan.push(
                        livesec_sim::SimTime::from_nanos(chaos.crash_at.as_nanos()),
                        FaultKind::CrashRestart { node: sw },
                    );
                }
            }
            campus.world.install_fault_plan(&plan);
        }

        CampusScenario {
            campus,
            web_users,
            ssh_user,
            leaver,
            torrent_user,
            attacker,
            ssh_server,
            ids_elements,
            protoid_elements,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use livesec::monitor::EventKind;

    #[test]
    fn declarative_policy_source_replaces_the_builtin_table() {
        // The `.lsp` equivalent of the built-in Figure-7 policy
        // lowers to the exact same table.
        let s = CampusScenario::build(ScenarioConfig {
            policy_src: Some(
                "chain web-chain = [ ids, protoid ]\n\
                 chain tcp-chain = [ protoid ]\n\
                 rule web-ids-protoid: proto tcp port 80 via web-chain\n\
                 rule tcp-protoid: proto tcp via tcp-chain\n\
                 default allow\n",
            ),
            ..ScenarioConfig::default()
        });
        let builtin = CampusScenario::build(ScenarioConfig::default());
        assert_eq!(
            s.campus.controller().policy(),
            builtin.campus.controller().policy()
        );
    }

    #[test]
    fn scenario_produces_the_figure_8_narrative() {
        let mut s = CampusScenario::build(ScenarioConfig {
            torrent_at: SimDuration::from_secs(3),
            attack_after_requests: 20,
            ..ScenarioConfig::default()
        });
        s.campus.world.run_for(SimDuration::from_secs(8));
        let c = s.campus.controller();
        let summary = c.monitor().summary();

        // Users and elements came up.
        assert!(summary.get("user_join").copied().unwrap_or(0) >= 8);
        assert_eq!(summary.get("se_online").copied(), Some(4));

        // Applications were identified (http from browsers, ssh,
        // bittorrent after the switch).
        let apps: std::collections::HashSet<String> = c
            .monitor()
            .of_tag("app_identified")
            .filter_map(|e| match &e.kind {
                EventKind::AppIdentified { app, .. } => Some(app.clone()),
                _ => None,
            })
            .collect();
        assert!(apps.contains("http"), "apps: {apps:?}");
        assert!(apps.contains("ssh"), "apps: {apps:?}");
        assert!(apps.contains("bittorrent"), "apps: {apps:?}");

        // The attack was detected and blocked.
        assert!(summary.get("attack_detected").copied().unwrap_or(0) >= 1);
        assert!(summary.get("flow_blocked").copied().unwrap_or(0) >= 1);

        // The leaver went quiet and was evicted by the ARP timeout.
        let left = c
            .monitor()
            .of_tag("user_leave")
            .any(|e| matches!(&e.kind, EventKind::UserLeave { mac } if *mac == s.leaver.mac));
        assert!(left, "leaver departed; summary: {summary:?}");
    }
}
