//! End-to-end policy-delta path (DESIGN.md §14): a live campus edits
//! its declarative policy mid-traffic through
//! `Controller::apply_policy_delta` and we check, against the
//! wholesale `set_policy` path, that
//!
//! - the delta run is observably equivalent (same event history, same
//!   final table),
//! - warm state in *untouched* header classes survives the edit
//!   (wholesale flushes everything; that is the delta path's reason
//!   to exist), and
//! - the incremental auditor, scoped to exactly the cubes the
//!   controller reports, passes once the edit settles.

use livesec_policy::compile_delta;
use livesec_sim::SimDuration;
use livesec_suite::prelude::*;
use livesec_verify::{audit_delta, RuleDelta, Snapshot, Violation};
use livesec_workloads::{CampusScenario, ScenarioConfig};

/// The built-in Figure-7 table, as declarative source.
const BASE: &str = "\
chain web-chain = [ ids, protoid ]
chain tcp-chain = [ protoid ]
rule web-ids-protoid: proto tcp port 80 via web-chain
rule tcp-protoid: proto tcp via tcp-chain
default allow
";

/// `BASE` plus a deny confined to an unused telnet-ish port: the edit
/// is real but no campus traffic lives in its header class.
const BASE_PLUS_TELNET_DENY: &str = "\
chain web-chain = [ ids, protoid ]
chain tcp-chain = [ protoid ]
rule telnet-deny: proto tcp port 2323 deny
rule web-ids-protoid: proto tcp port 80 via web-chain
rule tcp-protoid: proto tcp via tcp-chain
default allow
";

/// `BASE` with the web class denied outright — an edit squarely on
/// the campus's busiest class.
const BASE_WITH_WEB_DENY: &str = "\
chain web-chain = [ ids, protoid ]
chain tcp-chain = [ protoid ]
rule web-ids-protoid: proto tcp port 80 deny
rule tcp-protoid: proto tcp via tcp-chain
default allow
";

fn scenario() -> CampusScenario {
    CampusScenario::build(ScenarioConfig {
        policy_src: Some(BASE),
        ..ScenarioConfig::default()
    })
}

fn history(campus: &Campus) -> Vec<String> {
    campus
        .controller()
        .monitor()
        .events()
        .iter()
        .filter(|e| e.kind.tag() != "policy_delta_applied")
        .map(|e| format!("{e:?}"))
        .collect()
}

/// The same edit applied wholesale (`set_policy`) and as a compiled
/// delta script produces the same policy table and — once the
/// delta-path's own bookkeeping event is filtered out — the same
/// event history, byte for byte.
#[test]
fn delta_run_matches_wholesale_run() {
    let (deltas, compiled) = compile_delta(BASE, BASE_WITH_WEB_DENY).expect("compiles");
    assert!(!deltas.is_empty());

    let mut wholesale = scenario();
    wholesale.campus.world.run_for(SimDuration::from_secs(2));
    wholesale
        .campus
        .controller_mut()
        .set_policy(compiled.table.clone());
    wholesale.campus.world.run_for(SimDuration::from_secs(4));

    let mut delta = scenario();
    delta.campus.world.run_for(SimDuration::from_secs(2));
    let now = delta.campus.world.kernel().now();
    let cubes = delta
        .campus
        .controller_mut()
        .apply_policy_delta(now, &deltas);
    assert!(!cubes.is_empty());
    delta.campus.world.run_for(SimDuration::from_secs(4));

    assert_eq!(
        delta.campus.controller().policy(),
        wholesale.campus.controller().policy(),
        "delta script must converge on the wholesale table"
    );
    assert_eq!(
        history(&delta.campus),
        history(&wholesale.campus),
        "delta and wholesale edits must be observably equivalent"
    );
}

/// An edit confined to an idle header class leaves every warm cache
/// entry and fast-pass alone; a follow-up edit on the busy web class
/// does invalidate. This is the end-to-end form of the decision
/// cache's `invalidate_class` unit tests.
#[test]
fn untouched_classes_survive_a_scoped_edit() {
    let mut s = scenario();
    s.campus.world.run_for(SimDuration::from_secs(2));

    let warm = s.campus.controller().fast_path_stats();
    assert!(warm.entries > 0, "scenario should have warmed the cache");

    // Telnet deny: real rules change, empty traffic class.
    let (deltas, _) = compile_delta(BASE, BASE_PLUS_TELNET_DENY).expect("compiles");
    let now = s.campus.world.kernel().now();
    let cubes = s.campus.controller_mut().apply_policy_delta(now, &deltas);
    assert!(!cubes.is_empty());

    let after = s.campus.controller().fast_path_stats();
    assert_eq!(
        after.entries, warm.entries,
        "a telnet-only delta must not evict warm web entries"
    );
    assert_eq!(
        after.invalidations, warm.invalidations,
        "a telnet-only delta must not invalidate anything"
    );

    // The surviving entries stay warm while traffic keeps flowing.
    s.campus.world.run_for(SimDuration::from_secs(1));
    let later = s.campus.controller().fast_path_stats();
    assert!(
        later.entries >= after.entries,
        "surviving entries should not decay just because a delta ran"
    );

    // Now hit the busy class: port-80 cubes evict its entries.
    let (deltas, _) = compile_delta(BASE_PLUS_TELNET_DENY, BASE_WITH_WEB_DENY).expect("compiles");
    let now = s.campus.world.kernel().now();
    let cubes = s.campus.controller_mut().apply_policy_delta(now, &deltas);
    assert!(!cubes.is_empty());
    let hit = s.campus.controller().fast_path_stats();
    assert!(
        hit.invalidations > later.invalidations,
        "a web-class delta must invalidate the warm web entries"
    );
}

/// Audit the applied edit incrementally: hand the cubes the
/// controller reports straight to `audit_delta` and require a clean
/// verdict once in-flight traffic settles.
#[test]
fn applied_deltas_pass_the_incremental_audit() {
    let mut s = scenario();
    s.campus.world.run_for(SimDuration::from_secs(2));

    let (deltas, _) = compile_delta(BASE, BASE_WITH_WEB_DENY).expect("compiles");
    let now = s.campus.world.kernel().now();
    let cubes = s.campus.controller_mut().apply_policy_delta(now, &deltas);
    assert!(!cubes.is_empty());
    let scoped: Vec<RuleDelta> = cubes.into_iter().map(RuleDelta::network_wide).collect();

    // Like `audit_settled`, but scoped: old-policy state is allowed
    // to drain for a few windows before the verdict must be clean.
    let mut violations: Vec<Violation> = Vec::new();
    for _ in 0..30 {
        s.campus.world.run_for(SimDuration::from_millis(100));
        let snap = Snapshot::of_campus(&s.campus);
        violations = audit_delta(&snap, &scoped);
        if violations.is_empty() {
            break;
        }
    }
    assert!(
        violations.is_empty(),
        "incremental audit of the applied delta should settle clean: {violations:?}"
    );
}
