//! The delta compiler: `(old_table, new_table)` → the minimal,
//! deterministically ordered [`PolicyDelta`] edit script.
//!
//! Rule identity is the (unique) rule name. The diff keeps the
//! longest common subsequence of names as the stable backbone:
//! same-name rules inside it that changed content become `Replace`
//! (position preserved), everything else is removed then reinserted.
//! Emission order is fixed — removes by descending old index, inserts
//! by ascending final index, then `SetDefault` and `SetAppAction` —
//! so applying the script in order with plain index arithmetic
//! reproduces the new table exactly.

use livesec::policy::{PolicyDelta, PolicyTable};
use std::collections::{BTreeMap, BTreeSet};

/// Diffs two tables into an edit script. Applying every delta, in
/// order, to `old` yields a table equal to `new`; equal tables
/// produce an empty script.
pub fn diff(old: &PolicyTable, new: &PolicyTable) -> Vec<PolicyDelta> {
    let old_names: Vec<&str> = old.iter().map(|r| r.name.as_str()).collect();
    let new_names: Vec<&str> = new.iter().map(|r| r.name.as_str()).collect();
    let backbone = lcs(&old_names, &new_names);

    let mut deltas = Vec::new();

    // Removes: every old rule off the backbone, deepest index first
    // so earlier removals don't shift later ones.
    for name in old_names.iter().rev() {
        if !backbone.contains(name) {
            deltas.push(PolicyDelta::Remove {
                name: (*name).to_owned(),
            });
        }
    }

    // Replaces: backbone rules whose content changed.
    for rule in new.iter() {
        if backbone.contains(rule.name.as_str()) {
            if let Some(old_rule) = old.get(&rule.name) {
                if old_rule != rule {
                    deltas.push(PolicyDelta::Replace { rule: rule.clone() });
                }
            }
        }
    }

    // Inserts: everything off the backbone, at its final index in
    // ascending order — each lands exactly where `new` has it.
    for (i, rule) in new.iter().enumerate() {
        if !backbone.contains(rule.name.as_str()) {
            deltas.push(PolicyDelta::Insert {
                index: i,
                rule: rule.clone(),
            });
        }
    }

    if old.default_decision() != new.default_decision() {
        deltas.push(PolicyDelta::SetDefault {
            decision: new.default_decision().clone(),
        });
    }

    // App actions: removals then sets, each sorted by app name.
    let old_apps: BTreeMap<&str, _> = old
        .app_actions()
        .iter()
        .map(|(a, x)| (a.as_str(), *x))
        .collect();
    let new_apps: BTreeMap<&str, _> = new
        .app_actions()
        .iter()
        .map(|(a, x)| (a.as_str(), *x))
        .collect();
    for app in old_apps.keys() {
        if !new_apps.contains_key(app) {
            deltas.push(PolicyDelta::SetAppAction {
                app: (*app).to_owned(),
                action: None,
            });
        }
    }
    for (app, action) in &new_apps {
        if old_apps.get(app) != Some(action) {
            deltas.push(PolicyDelta::SetAppAction {
                app: (*app).to_owned(),
                action: Some(*action),
            });
        }
    }

    deltas
}

/// The set of names on a longest common subsequence of the two name
/// sequences (classic O(n·m) DP; names are unique per table, so the
/// set form loses nothing).
fn lcs<'a>(old: &[&'a str], new: &[&'a str]) -> BTreeSet<&'a str> {
    let (n, m) = (old.len(), new.len());
    // dp[i][j] = LCS length of old[i..] vs new[j..], flattened.
    let mut dp = vec![0u32; (n + 1) * (m + 1)];
    let idx = |i: usize, j: usize| i * (m + 1) + j;
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            dp[idx(i, j)] = if old[i] == new[j] {
                dp[idx(i + 1, j + 1)] + 1
            } else {
                dp[idx(i + 1, j)].max(dp[idx(i, j + 1)])
            };
        }
    }
    let mut keep = BTreeSet::new();
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if old[i] == new[j] {
            keep.insert(old[i]);
            i += 1;
            j += 1;
        } else if dp[idx(i + 1, j)] >= dp[idx(i, j + 1)] {
            i += 1;
        } else {
            j += 1;
        }
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use livesec::policy::{AppAction, PolicyDecision, PolicyRule};

    fn table(names: &[&str]) -> PolicyTable {
        let mut t = PolicyTable::allow_all();
        for n in names {
            t.push(PolicyRule::named(n).proto(6).deny());
        }
        t
    }

    fn apply_all(mut t: PolicyTable, deltas: &[PolicyDelta]) -> PolicyTable {
        for d in deltas {
            t.apply_delta(d);
        }
        t
    }

    #[test]
    fn equal_tables_diff_empty() {
        let t = table(&["a", "b", "c"]);
        assert!(diff(&t, &t.clone()).is_empty());
    }

    #[test]
    fn single_insert_is_one_delta() {
        let old = table(&["a", "c"]);
        let new = table(&["a", "b", "c"]);
        let deltas = diff(&old, &new);
        assert_eq!(deltas.len(), 1);
        assert!(matches!(&deltas[0], PolicyDelta::Insert { index: 1, rule } if rule.name == "b"));
        assert_eq!(apply_all(old, &deltas), new);
    }

    #[test]
    fn content_change_is_replace_not_churn() {
        let old = table(&["a", "b", "c"]);
        let mut new = table(&["a", "b", "c"]);
        new.replace_named(PolicyRule::named("b").proto(17).deny());
        let deltas = diff(&old, &new);
        assert_eq!(deltas.len(), 1);
        assert!(matches!(&deltas[0], PolicyDelta::Replace { rule } if rule.proto == Some(17)));
        assert_eq!(apply_all(old, &deltas), new);
    }

    #[test]
    fn reorder_removes_then_reinserts() {
        let old = table(&["a", "b", "c", "d"]);
        let new = table(&["d", "a", "b", "c"]);
        let deltas = diff(&old, &new);
        // LCS keeps a,b,c; d moves: one remove + one insert.
        assert_eq!(deltas.len(), 2);
        assert!(matches!(&deltas[0], PolicyDelta::Remove { name } if name == "d"));
        assert!(matches!(&deltas[1], PolicyDelta::Insert { index: 0, rule } if rule.name == "d"));
        assert_eq!(apply_all(old, &deltas), new);
    }

    #[test]
    fn defaults_and_app_actions_diff() {
        let mut old = table(&["a"]);
        old.on_app("bt", AppAction::Block);
        old.on_app("voip", AppAction::Allow);
        let mut new = table(&["a"]);
        new.set_default(PolicyDecision::Deny);
        new.on_app("bt", AppAction::Allow);
        let deltas = diff(&old, &new);
        assert_eq!(deltas.len(), 3, "{deltas:?}");
        assert!(matches!(
            &deltas[0],
            PolicyDelta::SetDefault {
                decision: PolicyDecision::Deny
            }
        ));
        assert!(matches!(
            &deltas[1],
            PolicyDelta::SetAppAction { app, action: None } if app == "voip"
        ));
        assert!(matches!(
            &deltas[2],
            PolicyDelta::SetAppAction {
                app,
                action: Some(AppAction::Allow)
            } if app == "bt"
        ));
        assert_eq!(apply_all(old, &deltas), new);
    }

    #[test]
    fn scrambled_edit_still_converges() {
        let old = table(&["a", "b", "c", "d", "e", "f"]);
        let mut new = table(&["f", "b", "x", "d", "a"]);
        new.replace_named(PolicyRule::named("d").proto(17).deny());
        let deltas = diff(&old, &new);
        assert_eq!(apply_all(old, &deltas), new);
    }
}
