// Fixture: integer aggregation with a single final float conversion —
// the pattern the metrics crate uses.

pub fn mean_bps(samples: &[u64]) -> f64 {
    let mut total: u64 = 0;
    for s in samples {
        total += *s;
    }
    (total * 8) as f64 / samples.len() as f64
}

pub fn total_nanos(samples: &[u64]) -> u64 {
    samples.iter().sum::<u64>()
}
