//! Deterministic fault injection: the [`FaultPlan`].
//!
//! A fault plan is a seed-driven schedule of control-plane and link
//! faults. Installing one into a [`crate::World`] enqueues each fault
//! as an ordinary simulation event, so fault runs are exactly as
//! deterministic as fault-free ones: the same seed and plan produce a
//! byte-identical event history.

use crate::ids::{NodeId, PortId};
use crate::time::SimTime;

/// A single scheduled fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Partition `node`'s control channel: control messages to and
    /// from it silently vanish until [`FaultKind::HealControl`].
    PartitionControl {
        /// The node whose secure channel is cut.
        node: NodeId,
    },
    /// Heal a control-channel partition installed earlier.
    HealControl {
        /// The node whose secure channel is restored.
        node: NodeId,
    },
    /// Take the data link attached to `(node, port)` down in both
    /// directions. Unlike [`crate::World::disconnect`] the link object
    /// survives and can come back with [`FaultKind::LinkUp`].
    LinkDown {
        /// Either endpoint of the link.
        node: NodeId,
        /// The port on that endpoint.
        port: PortId,
    },
    /// Bring a flapped link back up.
    LinkUp {
        /// The endpoint named in the matching [`FaultKind::LinkDown`].
        node: NodeId,
        /// The port on that endpoint.
        port: PortId,
    },
    /// Crash `node` and immediately restart it: the node's
    /// [`crate::Node::on_crash_restart`] hook runs, wiping whatever
    /// volatile state the node models (e.g. an OpenFlow flow table).
    CrashRestart {
        /// The node to crash.
        node: NodeId,
    },
    /// Corrupt the next `count` control messages sent *by* `node`
    /// (one random byte each, drawn from the plan's dedicated RNG).
    CorruptControl {
        /// The sender whose frames get mangled.
        node: NodeId,
        /// How many outgoing control messages to corrupt.
        count: u32,
    },
    /// Kill controller shard `shard` of the sharded control plane
    /// running at `node`: the plane's [`crate::Node::on_shard_down`]
    /// hook runs, and surviving shards adopt the dead shard's
    /// switches. A no-op on nodes that don't model shards.
    ShardDown {
        /// The node hosting the sharded control plane.
        node: NodeId,
        /// The shard to kill.
        shard: u32,
    },
    /// Tamper with one installed flow entry on `node`: the node's
    /// [`crate::Node::on_rule_tamper`] hook runs with a salt drawn
    /// from the dedicated fault RNG and silently rewrites an entry's
    /// actions behind the controller's back (no `FlowRemoved`, no
    /// error — the compromise is invisible at the control channel).
    RuleTamper {
        /// The switch whose table is tampered with.
        node: NodeId,
    },
    /// Put `node` into silent-misforward mode: its
    /// [`crate::Node::on_misforward`] hook runs and from then on the
    /// switch forwards matching packets out a wrong port *without*
    /// touching its flow table — the table still reads correct.
    /// Cleared by a [`FaultKind::CrashRestart`] (the compromise is
    /// volatile).
    SilentMisforward {
        /// The switch that starts misforwarding.
        node: NodeId,
    },
    /// Make `node` originate a frame the controller never admitted:
    /// its [`crate::Node::on_packet_inject`] hook runs with a salt
    /// from the fault RNG and emits a forged packet into the fabric.
    PacketInject {
        /// The switch that injects the packet.
        node: NodeId,
    },
}

/// A fault and the absolute simulated time at which it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic, seed-driven schedule of faults.
///
/// Build one with [`FaultPlan::new`] and [`FaultPlan::at`], then hand
/// it to [`crate::World::install_fault_plan`]. The `seed` drives only
/// the *corruption* RNG — it is deliberately separate from the world's
/// traffic RNG so enabling faults never perturbs the random choices an
/// otherwise-identical fault-free run would make.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Seed for the dedicated fault RNG (frame corruption).
    pub seed: u64,
    /// The scheduled faults, in whatever order they were added.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Creates an empty plan with the given corruption-RNG seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Schedules `kind` at absolute time `at` (builder style).
    #[must_use]
    pub fn at(mut self, at: SimTime, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at, kind });
        self
    }

    /// Schedules `kind` at absolute time `at` (in-place).
    pub fn push(&mut self, at: SimTime, kind: FaultKind) {
        self.events.push(FaultEvent { at, kind });
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The time of the last scheduled fault, if any.
    pub fn last_at(&self) -> Option<SimTime> {
        self.events.iter().map(|e| e.at).max()
    }

    /// Checks the plan for internal consistency.
    ///
    /// Today that means: every [`FaultKind::HealControl`] must have a
    /// [`FaultKind::PartitionControl`] for the same node scheduled at
    /// or before it — a heal with nothing to heal is almost certainly
    /// a typo'd node id, and silently ignoring it would hide the bug.
    /// [`crate::World::install_fault_plan`] calls this and panics on
    /// `Err`.
    pub fn validate(&self) -> Result<(), String> {
        for heal in &self.events {
            let FaultKind::HealControl { node } = heal.kind else {
                continue;
            };
            let matched = self.events.iter().any(|e| {
                e.kind == FaultKind::PartitionControl { node }
                    && e.at.as_nanos() <= heal.at.as_nanos()
            });
            if !matched {
                return Err(format!(
                    "HealControl for node {} at {:?} has no matching \
                     PartitionControl scheduled at or before it",
                    node.0, heal.at
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_in_order() {
        let plan = FaultPlan::new(9)
            .at(
                SimTime::from_nanos(5),
                FaultKind::PartitionControl { node: NodeId(1) },
            )
            .at(
                SimTime::from_nanos(9),
                FaultKind::HealControl { node: NodeId(1) },
            );
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
        assert_eq!(plan.last_at(), Some(SimTime::from_nanos(9)));
        assert_eq!(
            plan.events[0].kind,
            FaultKind::PartitionControl { node: NodeId(1) }
        );
    }

    #[test]
    fn empty_plan_reports_empty() {
        let plan = FaultPlan::new(0);
        assert!(plan.is_empty());
        assert_eq!(plan.last_at(), None);
    }

    #[test]
    fn heal_with_matching_partition_validates() {
        let plan = FaultPlan::new(1)
            .at(
                SimTime::from_nanos(5),
                FaultKind::PartitionControl { node: NodeId(3) },
            )
            .at(
                SimTime::from_nanos(9),
                FaultKind::HealControl { node: NodeId(3) },
            );
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn heal_without_partition_is_rejected() {
        let plan = FaultPlan::new(1).at(
            SimTime::from_nanos(9),
            FaultKind::HealControl { node: NodeId(3) },
        );
        let err = plan.validate().unwrap_err();
        assert!(err.contains("no matching PartitionControl"), "{err}");
    }

    #[test]
    fn heal_before_partition_is_rejected() {
        // The partition exists but fires *after* the heal: still a bug.
        let plan = FaultPlan::new(1)
            .at(
                SimTime::from_nanos(9),
                FaultKind::HealControl { node: NodeId(3) },
            )
            .at(
                SimTime::from_nanos(20),
                FaultKind::PartitionControl { node: NodeId(3) },
            );
        assert!(plan.validate().is_err());
    }

    #[test]
    fn heal_for_wrong_node_is_rejected() {
        let plan = FaultPlan::new(1)
            .at(
                SimTime::from_nanos(5),
                FaultKind::PartitionControl { node: NodeId(3) },
            )
            .at(
                SimTime::from_nanos(9),
                FaultKind::HealControl { node: NodeId(4) },
            );
        assert!(plan.validate().is_err());
    }
}
