//! Per-function summaries composed bottom-up over the call graph.
//!
//! Each function gets one [`Summary`]: its taint transfer (see
//! [`crate::dataflow::TaintSummary`]), a handful of behavioral flags
//! ("allocates", "reads wall clock", "iterates an unordered map",
//! "panics"), the parameter bits it uses as an unguarded slice index,
//! and the locks it acquires in first-acquisition order. Facts local
//! to a body are computed first; everything transitive is then
//! propagated callee-first over the SCC order from
//! [`crate::callgraph::CallGraph`], with a monotone fixpoint inside
//! each SCC so recursion terminates.
//!
//! The summaries are what make the v3 rules inter-procedural without
//! whole-program re-scans: LS301 substitutes taint summaries at call
//! sites, LS202 reads `ret_sub`/`idx_params`, LS401 walks the hot
//! closure, and LS502 compares lock sequences across functions.

use crate::ast::{Expr, File, FnItem};
use crate::callgraph::{file_fns, CallGraph};
use crate::dataflow::{
    self, arg_for_param, iter_bits, param_bit, CalleeInfo, Oracle, TaintSummary,
};
use crate::rules;
use std::collections::BTreeSet;

/// Methods that acquire a lock on a `Mutex`/`RwLock` receiver.
const LOCK_METHODS: &[&str] = &["lock", "read", "write", "try_lock", "try_read", "try_write"];

/// Cap on recorded lock ids per function; deeper sequences are
/// truncated (LS502 compares pairs, so the first few dominate).
const LOCK_CAP: usize = 16;

/// One function's composable behavior.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    /// Param-to-return / param-to-sink taint transfer.
    pub taint: TaintSummary,
    /// Allocates (directly or via a callee).
    pub allocates: bool,
    /// Reads the wall clock (directly or via a callee).
    pub wall_clock: bool,
    /// Iterates or mentions an unordered hash collection.
    pub unordered: bool,
    /// May panic explicitly (`unwrap`/`expect`/`panic!`-family).
    pub panics: bool,
    /// Param bits used as an unguarded slice index here or in a
    /// callee the param is forwarded to.
    pub idx_params: u64,
    /// Lock ids in first-acquisition order, with the acquiring line
    /// (call line when inherited from a callee).
    pub locks: Vec<(String, u32)>,
}

impl Summary {
    fn push_lock(&mut self, id: &str, line: u32) -> bool {
        if self.locks.len() >= LOCK_CAP || self.locks.iter().any(|(l, _)| l == id) {
            return false;
        }
        self.locks.push((id.to_string(), line));
        true
    }
}

/// [`Oracle`] backed by the call graph and the taint summaries
/// computed so far — the glue between `dataflow` and `callgraph`.
pub(crate) struct GraphOracle<'a> {
    pub graph: &'a CallGraph,
    pub node: usize,
    pub taints: &'a [TaintSummary],
}

impl Oracle for GraphOracle<'_> {
    fn resolve(&self, e: &Expr) -> Option<CalleeInfo<'_>> {
        let c = self.graph.resolve_unique(self.node, e)?;
        Some(CalleeInfo {
            taint: &self.taints[c],
            has_self: self.graph.nodes[c].has_self,
            name: &self.graph.nodes[c].name,
        })
    }
}

/// Computes every node's summary, bottom-up. `files` must be the same
/// slice the graph was built from.
pub(crate) fn compute(graph: &CallGraph, files: &[&File]) -> Vec<Summary> {
    let n = graph.nodes.len();
    let mut fns: Vec<Option<&FnItem>> = vec![None; n];
    for (fi, file) in files.iter().enumerate() {
        for (di, d) in file_fns(file).iter().enumerate() {
            fns[graph.node_id(fi, di)] = Some(d.f);
        }
    }

    let mut out: Vec<Summary> = vec![Summary::default(); n];
    for id in 0..n {
        if let Some(f) = fns[id] {
            own_facts(f, &mut out[id]);
        }
    }

    // Taint fixpoint: summaries join monotonically (bitwise-or), so
    // each SCC converges; single non-recursive nodes need one pass.
    let mut taints: Vec<TaintSummary> = vec![TaintSummary::default(); n];
    for comp in &graph.sccs {
        let single = comp.len() == 1 && !graph.callees[comp[0]].contains(&comp[0]);
        loop {
            let mut changed = false;
            for &v in comp {
                let Some(f) = fns[v] else { continue };
                let oracle = GraphOracle {
                    graph,
                    node: v,
                    taints: &taints,
                };
                let s = dataflow::summarize_fn(f, &oracle);
                changed |= taints[v].join(&s);
            }
            if single || !changed {
                break;
            }
        }
    }

    // Flags, index params, and lock sequences propagate over the same
    // order; lock/flag joins are monotone too (sets only grow).
    for comp in &graph.sccs {
        let single = comp.len() == 1 && !graph.callees[comp[0]].contains(&comp[0]);
        loop {
            let mut changed = false;
            for &v in comp {
                let Some(f) = fns[v] else { continue };
                changed |= flow_through_calls(graph, v, f, &mut out);
            }
            if single || !changed {
                break;
            }
        }
    }

    for (id, s) in out.iter_mut().enumerate() {
        s.taint = taints[id];
    }
    out
}

/// Facts visible in one body without looking at callees.
fn own_facts(f: &FnItem, s: &mut Summary) {
    s.idx_params = rules::unguarded_index_params(f);
    let Some(body) = &f.body else { return };
    for p in &f.params {
        if rules::is_unordered_ty(&p.ty) {
            s.unordered = true;
        }
    }
    body.walk_exprs(&mut |e| match e {
        Expr::Path { segs, .. } => {
            for seg in segs {
                if rules::WALL_CLOCK_IDENTS.contains(&seg.as_str()) {
                    s.wall_clock = true;
                }
                if seg == "HashMap" || seg == "HashSet" {
                    s.unordered = true;
                }
            }
        }
        Expr::MethodCall { name, generics, .. } => {
            if rules::HOT_ALLOC_METHODS.contains(&name.as_str()) {
                s.allocates = true;
            }
            if matches!(name.as_str(), "unwrap" | "expect") {
                s.panics = true;
            }
            if generics.iter().any(|g| g == "HashMap" || g == "HashSet") {
                s.unordered = true;
            }
        }
        Expr::Call { callee, .. } => {
            if let Expr::Path { segs, .. } = callee.unwrapped() {
                if segs.len() >= 2 {
                    let pair = (segs[segs.len() - 2].as_str(), segs[segs.len() - 1].as_str());
                    if rules::HOT_ALLOC_CTORS.contains(&pair) {
                        s.allocates = true;
                    }
                }
            }
        }
        Expr::MacroCall { name, .. } => {
            if rules::HOT_ALLOC_MACROS.contains(&name.as_str()) {
                s.allocates = true;
            }
            if matches!(
                name.as_str(),
                "panic"
                    | "unreachable"
                    | "todo"
                    | "unimplemented"
                    | "assert"
                    | "assert_eq"
                    | "assert_ne"
            ) {
                s.panics = true;
            }
        }
        _ => {}
    });
}

/// The lock id a receiver acquires through, when its declared type is
/// a lock: `self.a.lock()` → `a`, `mtx.write()` → `mtx`.
fn lock_id(graph: &CallGraph, node: usize, recv: &Expr) -> Option<String> {
    let is_lock = |t: &crate::ast::TypeRef| t.mentions("Mutex") || t.mentions("RwLock");
    match recv.unwrapped() {
        Expr::Path { segs, .. } if segs.len() == 1 => {
            let ty = graph.local_type(node, &segs[0])?;
            if is_lock(ty) {
                Some(segs[0].clone())
            } else {
                None
            }
        }
        Expr::Field {
            recv: inner, name, ..
        } => {
            let owner = graph.recv_type_head(node, inner)?;
            let ty = graph.field_type(&owner, name)?;
            if is_lock(ty) {
                Some(name.clone())
            } else {
                None
            }
        }
        _ => None,
    }
}

/// One propagation step for `node`: inherit flags, forwarded index
/// params, and lock sequences from resolved callees; record own lock
/// acquisitions in source order. Returns whether anything changed.
fn flow_through_calls(graph: &CallGraph, node: usize, f: &FnItem, out: &mut [Summary]) -> bool {
    let Some(body) = &f.body else { return false };
    let int_params: Vec<(usize, &str)> = f
        .params
        .iter()
        .enumerate()
        .filter(|(_, p)| rules::INT_TYPES.contains(&p.ty.text.as_str()))
        .map(|(i, p)| (i, p.name.as_str()))
        .collect();

    let mut guarded: BTreeSet<String> = BTreeSet::new();
    let mut flags = (false, false, false, false);
    let mut idx = 0u64;
    let mut locks: Vec<(String, u32)> = Vec::new();
    body.walk_exprs(&mut |e| {
        rules::note_panic_guards(e, &mut guarded);
        if let Expr::MethodCall {
            recv, name, line, ..
        } = e
        {
            if LOCK_METHODS.contains(&name.as_str()) {
                if let Some(id) = lock_id(graph, node, recv) {
                    locks.push((id, *line));
                }
            }
        }
        let Some(c) = graph.resolve_unique(node, e) else {
            return;
        };
        let callee = &out[c];
        flags.0 |= callee.allocates;
        flags.1 |= callee.wall_clock;
        flags.2 |= callee.unordered;
        flags.3 |= callee.panics;
        let (recv, args, line) = match e {
            Expr::Call { args, line, .. } => (None, args.as_slice(), *line),
            Expr::MethodCall {
                recv, args, line, ..
            } => (Some(recv.as_ref()), args.as_slice(), *line),
            _ => return,
        };
        for p in iter_bits(callee.idx_params) {
            let Some(a) = arg_for_param(p, recv, args, graph.nodes[c].has_self) else {
                continue;
            };
            if let Expr::Path { segs, .. } = a.unwrapped() {
                if segs.len() == 1 {
                    for &(i, name) in &int_params {
                        if segs[0] == name && !guarded.contains(name) {
                            idx |= param_bit(i);
                        }
                    }
                }
            }
        }
        for (id, _) in &callee.locks {
            locks.push((id.clone(), line));
        }
    });

    let s = &mut out[node];
    let mut changed = false;
    for (flag, v) in [
        (&mut s.allocates, flags.0),
        (&mut s.wall_clock, flags.1),
        (&mut s.unordered, flags.2),
        (&mut s.panics, flags.3),
    ] {
        if v && !*flag {
            *flag = true;
            changed = true;
        }
    }
    if idx & !s.idx_params != 0 {
        s.idx_params |= idx;
        changed = true;
    }
    for (id, line) in locks {
        changed |= s.push_lock(&id, line);
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::graph_of_sources;
    use crate::dataflow::{param_bit, WIRE};

    fn analyze(src: &str) -> (CallGraph, Vec<Summary>) {
        let g = graph_of_sources(&[("a.rs".to_string(), src.to_string())]);
        let file = crate::parser::parse(src);
        let s = compute(&g, &[&file]);
        (g, s)
    }

    fn node(g: &CallGraph, name: &str) -> usize {
        g.nodes
            .iter()
            .position(|n| n.name == name)
            .expect("node present")
    }

    #[test]
    fn taint_composes_through_two_helpers() {
        let (g, s) = analyze(
            "fn alloc(n: usize) -> Vec<u8> { Vec::with_capacity(n) }\n\
             fn deep(n: usize) -> Vec<u8> { alloc(n) }\n",
        );
        let deep = node(&g, "deep");
        assert_eq!(s[deep].taint.sink_params[0], param_bit(0));
    }

    #[test]
    fn wire_source_bit_survives_composition() {
        let (g, s) = analyze(
            "fn raw(r: &mut Reader) -> u32 { r.u32() }\n\
             fn via(r: &mut Reader) -> u32 { raw(r) }\n",
        );
        assert_eq!(s[node(&g, "via")].taint.ret_mask & WIRE, WIRE);
    }

    #[test]
    fn mutual_recursion_reaches_fixpoint() {
        // The base case returns the param; the taint must then flow
        // around the cycle into *both* summaries (and the fixpoint
        // must terminate despite the mutual recursion). `odd`'s mask
        // can only come from composing `even`'s summary at the call.
        let (g, s) = analyze(
            "fn even(n: usize) -> usize { match n { 0 => n, _ => odd(n) } }\n\
             fn odd(n: usize) -> usize { even(n) }\n",
        );
        assert_eq!(s[node(&g, "even")].taint.ret_mask, param_bit(0));
        assert_eq!(s[node(&g, "odd")].taint.ret_mask, param_bit(0));
    }

    #[test]
    fn flags_propagate_transitively() {
        let (g, s) = analyze(
            "fn boom() { panic!(\"no\"); }\n\
             fn alloc() -> Vec<u8> { Vec::new() }\n\
             fn top(sel: bool) { boom(); alloc(); }\n",
        );
        let top = node(&g, "top");
        assert!(s[top].panics);
        assert!(s[top].allocates);
        assert!(!s[top].wall_clock);
    }

    #[test]
    fn idx_params_own_and_forwarded() {
        let (g, s) = analyze(
            "fn pick(v: &[u8], i: usize) -> u8 { v[i] }\n\
             fn via(v: &[u8], j: usize) -> u8 { pick(v, j) }\n\
             fn safe(v: &[u8], j: usize) -> u8 { if j >= v.len() { return 0; } pick(v, j) }\n",
        );
        assert_eq!(s[node(&g, "pick")].idx_params, param_bit(1));
        assert_eq!(s[node(&g, "via")].idx_params, param_bit(1));
        assert_eq!(s[node(&g, "safe")].idx_params, 0);
    }

    #[test]
    fn lock_sequences_record_and_expand() {
        let (g, s) = analyze(
            "struct P { a: Mutex<u64>, b: Mutex<u64> }\n\
             impl P {\n\
                 fn fwd(&self) { let x = self.a.lock(); let y = self.b.lock(); }\n\
                 fn outer(&self) { self.fwd(); }\n\
             }\n",
        );
        let fwd = node(&g, "fwd");
        let ids: Vec<&str> = s[fwd].locks.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(ids, vec!["a", "b"]);
        let outer = node(&g, "outer");
        let ids: Vec<&str> = s[outer].locks.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(ids, vec!["a", "b"]);
    }
}
