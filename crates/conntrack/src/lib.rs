#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]
#![warn(clippy::disallowed_methods, clippy::disallowed_types)]

//! Deterministic connection tracking for the LiveSec service elements
//! and controller.
//!
//! The paper's service elements inspect flows packet by packet; real
//! stateful enforcement ("allow replies to established connections",
//! SYN-flood detection, bypassing inspection for long-lived flows)
//! needs per-*connection* state. [`ConnTable`] provides it:
//!
//! * **Canonical bidirectional keys** — [`ConnKey::of`] maps a flow
//!   and its reverse onto the same key by ordering the two
//!   `(ip, port)` endpoints lexicographically, the same normalization
//!   `livesec_net::SessionKey` applies to MAC/IP triples.
//! * **TCP state machine** — `SYN_SENT → SYN_RECV → ESTABLISHED →
//!   FIN_WAIT/CLOSE_WAIT → TIME_WAIT → CLOSED`, plus RST teardown.
//!   Mid-stream pickup (a data segment with no prior entry) is
//!   accepted by default — the simulator's applications exchange data
//!   without full handshakes — and promotes to `ESTABLISHED` once
//!   both directions have been seen; strict mode classifies such
//!   segments as invalid instead.
//! * **UDP/ICMP pseudo-states** — `UDP_NEW → UDP_ESTABLISHED` on the
//!   first reply, and a single `ICMP` state.
//! * **Timer-wheel expiry** — per-state idle timeouts, tracked on a
//!   millisecond-slot wheel keyed by [`livesec_sim::SimTime`] (never
//!   the wall clock), with stale timers skipped lazily. Expiry order
//!   is `(slot, arming sequence)` — fully deterministic.
//! * **Bounded capacity with LRU eviction** — the least recently seen
//!   entry goes first, tracked in an ordered structure keyed by
//!   `(last_seen, sequence)` so eviction order never depends on hash
//!   iteration.
//!
//! Everything is ordinary data with ordered collections: two runs
//! over the same packet sequence produce byte-identical tables,
//! which `livesec-lint` and the golden-trace suite enforce.

use livesec_net::{FlowKey, Packet, TcpFlags};
use livesec_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::fmt;
use std::net::Ipv4Addr;

/// Width of a timer-wheel slot. One millisecond keeps the wheel
/// coarse enough that touches rarely move an entry within its slot,
/// and fine enough that expiry lag is negligible at simulation
/// timescales.
const SLOT_NANOS: u64 = 1_000_000;

/// The canonical bidirectional connection key: protocol plus the two
/// `(address, port)` endpoints in lexicographic order, so a flow and
/// its reverse map to the same key. ICMP has no ports; both are zero.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ConnKey {
    /// IP protocol number.
    pub proto: u8,
    /// The lexicographically smaller endpoint.
    pub lo: (Ipv4Addr, u16),
    /// The lexicographically larger endpoint.
    pub hi: (Ipv4Addr, u16),
}

impl ConnKey {
    /// Canonicalizes a flow key. `ConnKey::of(k) == ConnKey::of(&k.reversed())`
    /// for every key (the property the proptest pins).
    pub fn of(key: &FlowKey) -> ConnKey {
        let (sp, dp) = if key.nw_proto == 1 {
            (0, 0)
        } else {
            (key.tp_src, key.tp_dst)
        };
        let a = (key.nw_src, sp);
        let b = (key.nw_dst, dp);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        ConnKey {
            proto: key.nw_proto,
            lo,
            hi,
        }
    }
}

impl fmt::Display for ConnKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "proto {} {}:{} <-> {}:{}",
            self.proto, self.lo.0, self.lo.1, self.hi.0, self.hi.1
        )
    }
}

/// Which direction of the connection a packet travels.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConnDir {
    /// Same direction as the connection's first packet.
    Original,
    /// The reverse direction.
    Reply,
}

/// The tracked state of a connection.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum ConnState {
    /// TCP: one direction seen (SYN sent, or mid-stream pickup).
    SynSent,
    /// TCP: SYN+ACK seen, awaiting the final handshake ACK.
    SynRecv,
    /// TCP: both directions confirmed.
    Established,
    /// TCP: the initiator sent FIN first.
    FinWait,
    /// TCP: the responder sent FIN first.
    CloseWait,
    /// TCP: both sides closed; lingers to absorb stragglers.
    TimeWait,
    /// TCP: torn down by RST; lingers briefly.
    Closed,
    /// UDP (or other non-TCP): one direction seen.
    UdpNew,
    /// UDP (or other non-TCP): replies seen.
    UdpEstablished,
    /// ICMP pseudo-connection.
    Icmp,
}

impl ConnState {
    /// Number of distinct states (histogram width).
    pub const COUNT: usize = 10;

    /// All states in histogram order.
    pub const ALL: [ConnState; ConnState::COUNT] = [
        ConnState::SynSent,
        ConnState::SynRecv,
        ConnState::Established,
        ConnState::FinWait,
        ConnState::CloseWait,
        ConnState::TimeWait,
        ConnState::Closed,
        ConnState::UdpNew,
        ConnState::UdpEstablished,
        ConnState::Icmp,
    ];

    /// Histogram index of this state.
    pub fn index(self) -> usize {
        match self {
            ConnState::SynSent => 0,
            ConnState::SynRecv => 1,
            ConnState::Established => 2,
            ConnState::FinWait => 3,
            ConnState::CloseWait => 4,
            ConnState::TimeWait => 5,
            ConnState::Closed => 6,
            ConnState::UdpNew => 7,
            ConnState::UdpEstablished => 8,
            ConnState::Icmp => 9,
        }
    }

    /// Short lowercase name (histogram/JSON label).
    pub fn name(self) -> &'static str {
        match self {
            ConnState::SynSent => "syn_sent",
            ConnState::SynRecv => "syn_recv",
            ConnState::Established => "established",
            ConnState::FinWait => "fin_wait",
            ConnState::CloseWait => "close_wait",
            ConnState::TimeWait => "time_wait",
            ConnState::Closed => "closed",
            ConnState::UdpNew => "udp_new",
            ConnState::UdpEstablished => "udp_established",
            ConnState::Icmp => "icmp",
        }
    }

    /// Whether the connection has confirmed both directions (the
    /// states whose packets a stateful firewall admits as ESTABLISHED).
    pub fn is_established(self) -> bool {
        matches!(
            self,
            ConnState::Established
                | ConnState::FinWait
                | ConnState::CloseWait
                | ConnState::TimeWait
                | ConnState::UdpEstablished
        )
    }

    /// Whether this is a half-open TCP state (the SYN-flood signal).
    pub fn is_half_open(self) -> bool {
        matches!(self, ConnState::SynSent | ConnState::SynRecv)
    }
}

impl fmt::Display for ConnState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How a single packet relates to the connection table — the match
/// qualifier a stateful firewall rule can test.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PacketState {
    /// Starts or continues the setup of a connection (original
    /// direction, not yet established).
    New,
    /// Belongs to a tracked connection: any reply-direction packet, or
    /// an original-direction packet once the connection is established.
    Established,
    /// Matches no admissible connection (strict-mode mid-stream
    /// segment, or traffic on a closed entry).
    Invalid,
}

/// A connection-level transition worth reporting.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConnEvent {
    /// The connection just became established.
    Established,
    /// An established connection just closed (FIN exchange or RST).
    Closed,
}

/// What [`ConnTable::observe`] concluded about one packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Observation {
    /// The canonical connection key.
    pub key: ConnKey,
    /// The packet's direction relative to the connection.
    pub dir: ConnDir,
    /// The connection's state after this packet ([`ConnState::Closed`]
    /// when the packet is untracked).
    pub state: ConnState,
    /// The packet's own classification.
    pub packet_state: PacketState,
    /// A connection transition this packet caused, if any.
    pub event: Option<ConnEvent>,
}

/// A connection removed by [`ConnTable::expire`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Expired {
    /// The canonical key.
    pub key: ConnKey,
    /// The flow key of the connection's first packet (the identity
    /// the controller knows the flow by).
    pub flow: FlowKey,
    /// The state the connection idled out in.
    pub state: ConnState,
}

/// Per-state idle timeouts. Defaults are scaled to simulation runs
/// (seconds, not conntrack's days): long enough that active flows
/// never idle out mid-run, short enough that dead state leaves the
/// table while a scenario can still observe it happening.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConnTimeouts {
    /// SYN_SENT idle timeout.
    pub syn_sent: SimDuration,
    /// SYN_RECV idle timeout.
    pub syn_recv: SimDuration,
    /// ESTABLISHED idle timeout.
    pub established: SimDuration,
    /// FIN_WAIT idle timeout.
    pub fin_wait: SimDuration,
    /// CLOSE_WAIT idle timeout.
    pub close_wait: SimDuration,
    /// TIME_WAIT linger.
    pub time_wait: SimDuration,
    /// CLOSED (post-RST) linger.
    pub closed: SimDuration,
    /// UDP before a reply is seen.
    pub udp_new: SimDuration,
    /// UDP after replies are seen.
    pub udp_established: SimDuration,
    /// ICMP pseudo-connections.
    pub icmp: SimDuration,
}

impl Default for ConnTimeouts {
    fn default() -> Self {
        ConnTimeouts {
            syn_sent: SimDuration::from_secs(10),
            syn_recv: SimDuration::from_secs(10),
            established: SimDuration::from_secs(60),
            fin_wait: SimDuration::from_secs(20),
            close_wait: SimDuration::from_secs(20),
            time_wait: SimDuration::from_secs(10),
            closed: SimDuration::from_secs(1),
            udp_new: SimDuration::from_secs(10),
            udp_established: SimDuration::from_secs(30),
            icmp: SimDuration::from_secs(5),
        }
    }
}

impl ConnTimeouts {
    /// The idle timeout applicable in `state`.
    pub fn for_state(&self, state: ConnState) -> SimDuration {
        match state {
            ConnState::SynSent => self.syn_sent,
            ConnState::SynRecv => self.syn_recv,
            ConnState::Established => self.established,
            ConnState::FinWait => self.fin_wait,
            ConnState::CloseWait => self.close_wait,
            ConnState::TimeWait => self.time_wait,
            ConnState::Closed => self.closed,
            ConnState::UdpNew => self.udp_new,
            ConnState::UdpEstablished => self.udp_established,
            ConnState::Icmp => self.icmp,
        }
    }
}

/// One tracked connection.
#[derive(Clone, Debug)]
pub struct Conn {
    state: ConnState,
    initiator: (Ipv4Addr, u16),
    first_key: FlowKey,
    last_seen: SimTime,
    deadline: SimTime,
    seq: u64,
    orig_head: Vec<u8>,
    reply_head: Vec<u8>,
    orig_pkts: u64,
    reply_pkts: u64,
}

impl Conn {
    /// Current state.
    pub fn state(&self) -> ConnState {
        self.state
    }

    /// The flow key of the first packet (original direction).
    pub fn first_key(&self) -> &FlowKey {
        &self.first_key
    }

    /// The first payload bytes seen in each direction:
    /// `(original, reply)`.
    pub fn heads(&self) -> (&[u8], &[u8]) {
        (&self.orig_head, &self.reply_head)
    }

    /// Packets seen per direction: `(original, reply)`.
    pub fn packets(&self) -> (u64, u64) {
        (self.orig_pkts, self.reply_pkts)
    }

    /// When the connection last saw a packet.
    pub fn last_seen(&self) -> SimTime {
        self.last_seen
    }
}

/// Counter snapshot of a [`ConnTable`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Live entries.
    pub entries: u64,
    /// Connections ever inserted.
    pub insertions: u64,
    /// Entries evicted by the capacity bound (LRU order).
    pub evictions: u64,
    /// Entries removed by idle expiry.
    pub expirations: u64,
    /// Packets classified invalid.
    pub invalid_packets: u64,
    /// Connections that ever reached an established state.
    pub established_total: u64,
    /// Established connections that closed (teardown or expiry).
    pub closed_total: u64,
    /// Live entries per state, indexed by [`ConnState::index`].
    pub states: [u64; ConnState::COUNT],
}

impl TableStats {
    /// Renders the snapshot as a JSON object (hand-rolled: the state
    /// histogram keys by state name, which serde derives can't).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"entries\": {},\n", self.entries));
        s.push_str(&format!("  \"insertions\": {},\n", self.insertions));
        s.push_str(&format!("  \"evictions\": {},\n", self.evictions));
        s.push_str(&format!("  \"expirations\": {},\n", self.expirations));
        s.push_str(&format!(
            "  \"invalid_packets\": {},\n",
            self.invalid_packets
        ));
        s.push_str(&format!(
            "  \"established_total\": {},\n",
            self.established_total
        ));
        s.push_str(&format!("  \"closed_total\": {},\n", self.closed_total));
        s.push_str("  \"states\": {");
        let mut first = true;
        for st in ConnState::ALL {
            if !first {
                s.push_str(", ");
            }
            first = false;
            s.push_str(&format!("\"{}\": {}", st.name(), self.states[st.index()]));
        }
        s.push_str("}\n}");
        s
    }
}

/// The deterministic connection-tracking table.
#[derive(Clone)]
pub struct ConnTable {
    conns: BTreeMap<ConnKey, Conn>,
    /// Timer wheel: `(slot, arming seq) -> key`. Stale entries (the
    /// connection was touched since, or removed) are skipped lazily.
    wheel: BTreeMap<(u64, u64), ConnKey>,
    /// LRU index: `(last_seen, arming seq) -> key`, same lazy-skip
    /// scheme. The first fresh entry is the eviction victim.
    lru: BTreeMap<(SimTime, u64), ConnKey>,
    /// Half-open (SYN_SENT/SYN_RECV) connection count per initiator.
    half_open: BTreeMap<Ipv4Addr, u32>,
    capacity: usize,
    head_bytes: usize,
    strict: bool,
    timeouts: ConnTimeouts,
    seq: u64,
    insertions: u64,
    evictions: u64,
    expirations: u64,
    invalid_packets: u64,
    established_total: u64,
    closed_total: u64,
    state_counts: [u64; ConnState::COUNT],
}

impl fmt::Debug for ConnTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ConnTable")
            .field("entries", &self.conns.len())
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl Default for ConnTable {
    fn default() -> Self {
        ConnTable::new()
    }
}

impl ConnTable {
    /// An empty table with the default capacity (65 536 entries).
    pub fn new() -> Self {
        ConnTable {
            conns: BTreeMap::new(),
            wheel: BTreeMap::new(),
            lru: BTreeMap::new(),
            half_open: BTreeMap::new(),
            capacity: 65_536,
            head_bytes: 64,
            strict: false,
            timeouts: ConnTimeouts::default(),
            seq: 0,
            insertions: 0,
            evictions: 0,
            expirations: 0,
            invalid_packets: 0,
            established_total: 0,
            closed_total: 0,
            state_counts: [0; ConnState::COUNT],
        }
    }

    /// Bounds the table at `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "conntrack capacity must be positive");
        self.capacity = capacity;
        self
    }

    /// Replaces the per-state idle timeouts.
    pub fn with_timeouts(mut self, timeouts: ConnTimeouts) -> Self {
        self.timeouts = timeouts;
        self
    }

    /// Strict mode: a TCP segment with no prior entry and no SYN is
    /// classified invalid instead of picked up mid-stream.
    pub fn with_strict(mut self) -> Self {
        self.strict = true;
        self
    }

    /// How many leading payload bytes to stash per direction (protocol
    /// identification reads these). Default 64.
    pub fn with_head_bytes(mut self, n: usize) -> Self {
        self.head_bytes = n;
        self
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        self.conns.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.conns.is_empty()
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up a connection by canonical key.
    pub fn get(&self, key: &ConnKey) -> Option<&Conn> {
        self.conns.get(key)
    }

    /// The stashed payload heads of a connection:
    /// `(original, reply)`.
    pub fn heads(&self, key: &ConnKey) -> Option<(&[u8], &[u8])> {
        self.conns.get(key).map(|c| c.heads())
    }

    /// Current half-open connection count for an initiator address.
    pub fn half_open(&self, src: Ipv4Addr) -> u32 {
        self.half_open.get(&src).copied().unwrap_or(0)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TableStats {
        TableStats {
            entries: self.conns.len() as u64,
            insertions: self.insertions,
            evictions: self.evictions,
            expirations: self.expirations,
            invalid_packets: self.invalid_packets,
            established_total: self.established_total,
            closed_total: self.closed_total,
            states: self.state_counts,
        }
    }

    /// Convenience wrapper: observes a full packet (IPv4 only).
    pub fn observe_packet(&mut self, pkt: &Packet, now: SimTime) -> Option<Observation> {
        let key = FlowKey::of(pkt)?;
        let flags = pkt.tcp().map(|t| t.flags);
        let payload = pkt
            .ipv4()
            .and_then(|ip| ip.transport.payload())
            .map(|p| p.content())
            .unwrap_or(&[]);
        Some(self.observe(&key, flags, payload, now))
    }

    /// Feeds one packet (described by its flow key, TCP flags when
    /// applicable, and payload) through the tracker.
    pub fn observe(
        &mut self,
        key: &FlowKey,
        flags: Option<TcpFlags>,
        payload: &[u8],
        now: SimTime,
    ) -> Observation {
        let ck = ConnKey::of(key);
        let ep = (key.nw_src, if key.nw_proto == 1 { 0 } else { key.tp_src });

        let Some(conn) = self.conns.get_mut(&ck) else {
            return self.observe_new(ck, key, ep, flags, payload, now);
        };
        let dir = if conn.initiator == ep {
            ConnDir::Original
        } else {
            ConnDir::Reply
        };
        let old_state = conn.state;

        if old_state == ConnState::Closed {
            // Traffic on a torn-down connection: invalid, and the
            // entry keeps aging toward removal.
            self.invalid_packets += 1;
            return Observation {
                key: ck,
                dir,
                state: ConnState::Closed,
                packet_state: PacketState::Invalid,
                event: None,
            };
        }

        let (new_state, event) = match (key.nw_proto, flags) {
            (6, Some(fl)) => tcp_next(old_state, dir, fl),
            (1, _) => (ConnState::Icmp, None),
            _ => match (old_state, dir) {
                (ConnState::UdpNew, ConnDir::Reply) => {
                    (ConnState::UdpEstablished, Some(ConnEvent::Established))
                }
                (s, _) => (s, None),
            },
        };

        // Stash payload heads and per-direction counters.
        let head_bytes = self.head_bytes;
        let stash = match dir {
            ConnDir::Original => {
                conn.orig_pkts += 1;
                &mut conn.orig_head
            }
            ConnDir::Reply => {
                conn.reply_pkts += 1;
                &mut conn.reply_head
            }
        };
        if stash.len() < head_bytes && !payload.is_empty() {
            let room = head_bytes - stash.len();
            stash.extend_from_slice(&payload[..payload.len().min(room)]);
        }

        // Touch: new arming sequence, fresh deadline and LRU position.
        self.seq += 1;
        conn.seq = self.seq;
        conn.last_seen = now;
        conn.state = new_state;
        conn.deadline = now + self.timeouts.for_state(new_state);
        let (deadline, seq) = (conn.deadline, conn.seq);
        let initiator_ip = conn.initiator.0;
        self.wheel
            .insert((deadline.as_nanos() / SLOT_NANOS, seq), ck);
        self.lru.insert((now, seq), ck);

        if new_state != old_state {
            self.state_counts[old_state.index()] -= 1;
            self.state_counts[new_state.index()] += 1;
            self.note_half_open(initiator_ip, Some(old_state), Some(new_state));
        }
        match event {
            Some(ConnEvent::Established) => self.established_total += 1,
            Some(ConnEvent::Closed) => self.closed_total += 1,
            None => {}
        }

        let packet_state = if dir == ConnDir::Reply || new_state.is_established() {
            PacketState::Established
        } else {
            PacketState::New
        };
        Observation {
            key: ck,
            dir,
            state: new_state,
            packet_state,
            event,
        }
    }

    fn observe_new(
        &mut self,
        ck: ConnKey,
        key: &FlowKey,
        ep: (Ipv4Addr, u16),
        flags: Option<TcpFlags>,
        payload: &[u8],
        now: SimTime,
    ) -> Observation {
        let state = match (key.nw_proto, flags) {
            (6, Some(fl)) => {
                let syn_only = fl.contains(TcpFlags::SYN) && !fl.contains(TcpFlags::ACK);
                if fl.contains(TcpFlags::RST) || (!syn_only && self.strict) {
                    // A lone RST, or (strict mode) a mid-stream
                    // segment: nothing to track.
                    self.invalid_packets += 1;
                    return Observation {
                        key: ck,
                        dir: ConnDir::Original,
                        state: ConnState::Closed,
                        packet_state: PacketState::Invalid,
                        event: None,
                    };
                }
                ConnState::SynSent
            }
            (1, _) => ConnState::Icmp,
            _ => ConnState::UdpNew,
        };

        if self.conns.len() >= self.capacity {
            self.evict_lru();
        }
        self.seq += 1;
        // livesec-lint: allow(hot-path-alloc, reason = "runs once per new flow, not per packet; Vec::new is capacity-0")
        let mut head = Vec::new();
        if !payload.is_empty() {
            head.extend_from_slice(&payload[..payload.len().min(self.head_bytes)]);
        }
        let conn = Conn {
            state,
            initiator: ep,
            first_key: *key,
            last_seen: now,
            deadline: now + self.timeouts.for_state(state),
            seq: self.seq,
            orig_head: head,
            // livesec-lint: allow(hot-path-alloc, reason = "capacity-0 Vec on flow creation; grows only when reply head bytes arrive")
            reply_head: Vec::new(),
            orig_pkts: 1,
            reply_pkts: 0,
        };
        self.wheel
            .insert((conn.deadline.as_nanos() / SLOT_NANOS, conn.seq), ck);
        self.lru.insert((now, conn.seq), ck);
        self.conns.insert(ck, conn);
        self.insertions += 1;
        self.state_counts[state.index()] += 1;
        self.note_half_open(ep.0, None, Some(state));

        Observation {
            key: ck,
            dir: ConnDir::Original,
            state,
            packet_state: PacketState::New,
            event: None,
        }
    }

    /// Removes every connection whose idle deadline has passed, in
    /// deterministic `(deadline slot, arming seq)` order.
    pub fn expire(&mut self, now: SimTime) -> Vec<Expired> {
        let now_slot = now.as_nanos() / SLOT_NANOS;
        let mut out = Vec::new();
        while let Some((&(slot, seq), &ck)) = self.wheel.iter().next() {
            if slot > now_slot {
                break;
            }
            self.wheel.remove(&(slot, seq));
            let Some(conn) = self.conns.get(&ck) else {
                continue; // removed since arming
            };
            if conn.seq != seq {
                continue; // touched since arming
            }
            if conn.deadline > now {
                // Slot boundary rounding: due within this slot but not
                // yet. Re-arm one slot ahead; the deadline re-check
                // keeps this exact.
                self.wheel.insert((now_slot + 1, seq), ck);
                continue;
            }
            let Some(conn) = self.conns.remove(&ck) else {
                continue;
            };
            self.lru.remove(&(conn.last_seen, conn.seq));
            self.state_counts[conn.state.index()] -= 1;
            self.note_half_open(conn.initiator.0, Some(conn.state), None);
            self.expirations += 1;
            if conn.state.is_established() {
                self.closed_total += 1;
            }
            out.push(Expired {
                key: ck,
                flow: conn.first_key,
                state: conn.state,
            });
        }
        out
    }

    /// Evicts the least-recently-seen connection (capacity pressure).
    fn evict_lru(&mut self) {
        while let Some((&(t, seq), &ck)) = self.lru.iter().next() {
            self.lru.remove(&(t, seq));
            let Some(conn) = self.conns.get(&ck) else {
                continue;
            };
            if conn.seq != seq {
                continue; // stale position
            }
            let Some(conn) = self.conns.remove(&ck) else {
                continue;
            };
            self.state_counts[conn.state.index()] -= 1;
            self.note_half_open(conn.initiator.0, Some(conn.state), None);
            self.evictions += 1;
            return;
        }
    }

    fn note_half_open(
        &mut self,
        initiator: Ipv4Addr,
        old: Option<ConnState>,
        new: Option<ConnState>,
    ) {
        let was = old.map(|s| s.is_half_open()).unwrap_or(false);
        let is = new.map(|s| s.is_half_open()).unwrap_or(false);
        if was == is {
            return;
        }
        if is {
            *self.half_open.entry(initiator).or_insert(0) += 1;
        } else if let Some(n) = self.half_open.get_mut(&initiator) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                self.half_open.remove(&initiator);
            }
        }
    }
}

/// The TCP transition function: `(state, direction, flags)` to
/// `(next state, event)`. See DESIGN.md §7 for the diagram.
fn tcp_next(state: ConnState, dir: ConnDir, fl: TcpFlags) -> (ConnState, Option<ConnEvent>) {
    use ConnDir::*;
    use ConnState::*;

    if fl.contains(TcpFlags::RST) {
        let event = state.is_established().then_some(ConnEvent::Closed);
        return (Closed, event);
    }
    let syn_ack = fl.contains(TcpFlags::SYN) && fl.contains(TcpFlags::ACK);
    let fin = fl.contains(TcpFlags::FIN);
    match (state, dir) {
        (SynSent, Original) => (SynSent, None),
        (SynSent, Reply) if syn_ack => (SynRecv, None),
        // Reply data/ACK on a mid-stream pickup: both directions seen.
        (SynSent, Reply) => (Established, Some(ConnEvent::Established)),
        (SynRecv, Original) => (Established, Some(ConnEvent::Established)),
        (SynRecv, Reply) => (SynRecv, None),
        (Established, _) if fin => match dir {
            Original => (FinWait, None),
            Reply => (CloseWait, None),
        },
        (Established, _) => (Established, None),
        (FinWait, Reply) if fin => (TimeWait, Some(ConnEvent::Closed)),
        (FinWait, _) => (FinWait, None),
        (CloseWait, Original) if fin => (TimeWait, Some(ConnEvent::Closed)),
        (CloseWait, _) => (CloseWait, None),
        (TimeWait, _) => (TimeWait, None),
        // Closed is handled before transition; UDP/ICMP states never
        // reach the TCP table.
        (s, _) => (s, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use livesec_net::MacAddr;
    use proptest::prelude::*;

    fn key(src: [u8; 4], sp: u16, dst: [u8; 4], dp: u16, proto: u8) -> FlowKey {
        FlowKey {
            vlan: None,
            dl_src: MacAddr::from_u64(1),
            dl_dst: MacAddr::from_u64(2),
            dl_type: 0x0800,
            nw_src: src.into(),
            nw_dst: dst.into(),
            nw_proto: proto,
            tp_src: sp,
            tp_dst: dp,
        }
    }

    fn tcp_key() -> FlowKey {
        key([10, 0, 0, 1], 40_000, [10, 0, 0, 2], 80, 6)
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    const SYN: TcpFlags = TcpFlags::SYN;
    const ACK: TcpFlags = TcpFlags::ACK;

    #[test]
    fn canonicalization_is_direction_free() {
        let k = tcp_key();
        assert_eq!(ConnKey::of(&k), ConnKey::of(&k.reversed()));
        let icmp = key([10, 0, 0, 9], 77, [10, 0, 0, 2], 88, 1);
        // ICMP ports are zeroed before canonicalization.
        assert_eq!(ConnKey::of(&icmp).lo.1, 0);
        assert_eq!(ConnKey::of(&icmp).hi.1, 0);
    }

    #[test]
    fn full_handshake_establishes() {
        let mut ct = ConnTable::new();
        let k = tcp_key();
        let o1 = ct.observe(&k, Some(SYN), &[], t(0));
        assert_eq!(o1.state, ConnState::SynSent);
        assert_eq!(o1.packet_state, PacketState::New);
        assert_eq!(ct.half_open("10.0.0.1".parse().unwrap()), 1);

        let o2 = ct.observe(&k.reversed(), Some(SYN | ACK), &[], t(1));
        assert_eq!(o2.state, ConnState::SynRecv);
        assert_eq!(o2.dir, ConnDir::Reply);
        assert_eq!(o2.packet_state, PacketState::Established);

        let o3 = ct.observe(&k, Some(ACK), &[], t(2));
        assert_eq!(o3.state, ConnState::Established);
        assert_eq!(o3.event, Some(ConnEvent::Established));
        assert_eq!(ct.half_open("10.0.0.1".parse().unwrap()), 0);
        assert_eq!(ct.stats().established_total, 1);
    }

    #[test]
    fn fin_exchange_reaches_time_wait() {
        let mut ct = ConnTable::new();
        let k = tcp_key();
        ct.observe(&k, Some(SYN), &[], t(0));
        ct.observe(&k.reversed(), Some(SYN | ACK), &[], t(1));
        ct.observe(&k, Some(ACK), &[], t(2));
        let o = ct.observe(&k, Some(TcpFlags::FIN | ACK), &[], t(3));
        assert_eq!(o.state, ConnState::FinWait);
        assert_eq!(o.event, None);
        let o = ct.observe(&k.reversed(), Some(TcpFlags::FIN | ACK), &[], t(4));
        assert_eq!(o.state, ConnState::TimeWait);
        assert_eq!(o.event, Some(ConnEvent::Closed));
        assert_eq!(ct.stats().closed_total, 1);
    }

    #[test]
    fn rst_tears_down() {
        let mut ct = ConnTable::new();
        let k = tcp_key();
        ct.observe(&k, Some(SYN), &[], t(0));
        ct.observe(&k.reversed(), Some(SYN | ACK), &[], t(1));
        ct.observe(&k, Some(ACK), &[], t(2));
        let o = ct.observe(&k, Some(TcpFlags::RST), &[], t(3));
        assert_eq!(o.state, ConnState::Closed);
        assert_eq!(o.event, Some(ConnEvent::Closed));
        // Traffic after teardown is invalid.
        let o = ct.observe(&k, Some(ACK), &[], t(4));
        assert_eq!(o.packet_state, PacketState::Invalid);
        assert_eq!(ct.stats().invalid_packets, 1);
    }

    #[test]
    fn rst_before_establishment_closes_without_event() {
        let mut ct = ConnTable::new();
        let k = tcp_key();
        ct.observe(&k, Some(SYN), &[], t(0));
        let o = ct.observe(&k.reversed(), Some(TcpFlags::RST | ACK), &[], t(1));
        assert_eq!(o.state, ConnState::Closed);
        assert_eq!(o.event, None, "never established, nothing closed");
        assert_eq!(ct.stats().closed_total, 0);
    }

    #[test]
    fn mid_stream_pickup_establishes_on_reply() {
        // The simulator's applications exchange data without a
        // handshake; loose mode must still reach ESTABLISHED.
        let mut ct = ConnTable::new();
        let k = tcp_key();
        let o = ct.observe(&k, Some(TcpFlags::PSH | ACK), b"GET /", t(0));
        assert_eq!(o.state, ConnState::SynSent);
        let o = ct.observe(
            &k.reversed(),
            Some(TcpFlags::PSH | ACK),
            b"HTTP/1.1 200",
            t(1),
        );
        assert_eq!(o.state, ConnState::Established);
        assert_eq!(o.event, Some(ConnEvent::Established));
    }

    #[test]
    fn strict_mode_rejects_mid_stream() {
        let mut ct = ConnTable::new().with_strict();
        let k = tcp_key();
        let o = ct.observe(&k, Some(TcpFlags::PSH | ACK), b"data", t(0));
        assert_eq!(o.packet_state, PacketState::Invalid);
        assert!(ct.is_empty());
    }

    #[test]
    fn udp_pseudo_states() {
        let mut ct = ConnTable::new();
        let k = key([10, 0, 0, 1], 5353, [10, 0, 0, 2], 53, 17);
        let o = ct.observe(&k, None, b"query", t(0));
        assert_eq!(o.state, ConnState::UdpNew);
        assert_eq!(o.packet_state, PacketState::New);
        let o = ct.observe(&k.reversed(), None, b"answer", t(1));
        assert_eq!(o.state, ConnState::UdpEstablished);
        assert_eq!(o.event, Some(ConnEvent::Established));
        assert_eq!(o.packet_state, PacketState::Established);
    }

    #[test]
    fn icmp_pseudo_state() {
        let mut ct = ConnTable::new();
        let k = key([10, 0, 0, 1], 0, [10, 0, 0, 2], 0, 1);
        let o = ct.observe(&k, None, &[], t(0));
        assert_eq!(o.state, ConnState::Icmp);
        let o = ct.observe(&k.reversed(), None, &[], t(1));
        assert_eq!(o.state, ConnState::Icmp);
        assert_eq!(o.packet_state, PacketState::Established, "reply direction");
    }

    #[test]
    fn heads_reassemble_both_directions() {
        let mut ct = ConnTable::new().with_head_bytes(8);
        let k = tcp_key();
        ct.observe(&k, Some(TcpFlags::PSH | ACK), b"abcdef", t(0));
        ct.observe(&k.reversed(), Some(TcpFlags::PSH | ACK), b"012345", t(1));
        ct.observe(&k, Some(TcpFlags::PSH | ACK), b"ghijkl", t(2));
        let (orig, reply) = ct.heads(&ConnKey::of(&k)).unwrap();
        assert_eq!(orig, b"abcdefgh", "capped at head_bytes");
        assert_eq!(reply, b"012345");
    }

    #[test]
    fn expiry_follows_per_state_timeouts() {
        let timeouts = ConnTimeouts {
            syn_sent: SimDuration::from_millis(50),
            established: SimDuration::from_millis(500),
            ..ConnTimeouts::default()
        };
        let mut ct = ConnTable::new().with_timeouts(timeouts);
        let half = tcp_key();
        let full = key([10, 0, 0, 3], 40_001, [10, 0, 0, 4], 80, 6);
        ct.observe(&half, Some(SYN), &[], t(0));
        ct.observe(&full, Some(TcpFlags::PSH | ACK), b"x", t(0));
        ct.observe(&full.reversed(), Some(TcpFlags::PSH | ACK), b"y", t(1));

        let gone = ct.expire(t(100));
        assert_eq!(gone.len(), 1, "only the half-open entry idles out");
        assert_eq!(gone[0].state, ConnState::SynSent);
        assert_eq!(gone[0].flow, half);
        assert_eq!(ct.len(), 1);

        let gone = ct.expire(t(1000));
        assert_eq!(gone.len(), 1);
        assert_eq!(gone[0].state, ConnState::Established);
        assert_eq!(ct.stats().closed_total, 1, "expiry closes established");
        assert!(ct.is_empty());
    }

    #[test]
    fn touch_postpones_expiry() {
        let timeouts = ConnTimeouts {
            syn_sent: SimDuration::from_millis(100),
            ..ConnTimeouts::default()
        };
        let mut ct = ConnTable::new().with_timeouts(timeouts);
        let k = tcp_key();
        ct.observe(&k, Some(SYN), &[], t(0));
        ct.observe(&k, Some(SYN), &[], t(80)); // retransmit touches
        assert!(ct.expire(t(150)).is_empty(), "deadline moved to 180");
        assert_eq!(ct.expire(t(200)).len(), 1);
    }

    #[test]
    fn lru_eviction_is_deterministic_and_bounded() {
        let mut ct = ConnTable::new().with_capacity(3);
        let keys: Vec<FlowKey> = (0..5u16)
            .map(|i| key([10, 0, 1, i as u8], 1000 + i, [10, 0, 0, 2], 80, 6))
            .collect();
        for (i, k) in keys.iter().enumerate().take(3) {
            ct.observe(k, Some(SYN), &[], t(i as u64));
        }
        // Touch the oldest so the second-oldest becomes the victim.
        ct.observe(&keys[0], Some(SYN), &[], t(10));
        ct.observe(&keys[3], Some(SYN), &[], t(11));
        assert_eq!(ct.len(), 3);
        assert!(ct.get(&ConnKey::of(&keys[1])).is_none(), "LRU evicted");
        assert!(ct.get(&ConnKey::of(&keys[0])).is_some());
        ct.observe(&keys[4], Some(SYN), &[], t(12));
        assert_eq!(ct.len(), 3);
        assert_eq!(ct.stats().evictions, 2);
    }

    #[test]
    fn half_open_counts_track_syn_flood_shape() {
        let mut ct = ConnTable::new();
        let src: Ipv4Addr = "10.0.0.1".parse().unwrap();
        for i in 0..20u16 {
            let k = key([10, 0, 0, 1], 30_000 + i, [10, 0, 0, 2], 80, 6);
            ct.observe(&k, Some(SYN), &[], t(i as u64));
        }
        assert_eq!(ct.half_open(src), 20);
        // One completes: the count drops.
        let k0 = key([10, 0, 0, 1], 30_000, [10, 0, 0, 2], 80, 6);
        ct.observe(&k0.reversed(), Some(SYN | ACK), &[], t(30));
        ct.observe(&k0, Some(ACK), &[], t(31));
        assert_eq!(ct.half_open(src), 19);
    }

    #[test]
    fn stats_histogram_matches_states() {
        let mut ct = ConnTable::new();
        ct.observe(&tcp_key(), Some(SYN), &[], t(0));
        let udp = key([10, 0, 0, 5], 999, [10, 0, 0, 6], 53, 17);
        ct.observe(&udp, None, b"q", t(0));
        let s = ct.stats();
        assert_eq!(s.entries, 2);
        assert_eq!(s.states[ConnState::SynSent.index()], 1);
        assert_eq!(s.states[ConnState::UdpNew.index()], 1);
        let json = s.to_json();
        assert!(json.contains("\"syn_sent\": 1"), "{json}");
    }

    #[test]
    fn same_sequence_yields_identical_tables() {
        // Determinism smoke test: two tables fed the same interleaved
        // sequence report identical stats and expiry order.
        let run = || {
            let mut ct = ConnTable::new().with_capacity(8);
            let mut log = Vec::new();
            for i in 0..32u16 {
                let k = key(
                    [10, 0, (i % 4) as u8, (i % 8) as u8],
                    1000 + i,
                    [10, 0, 0, 2],
                    80,
                    6,
                );
                let o = ct.observe(&k, Some(SYN), &[], t(i as u64));
                log.push(format!("{:?}", o));
                if i % 3 == 0 {
                    let o = ct.observe(&k.reversed(), Some(SYN | ACK), &[], t(i as u64 + 1));
                    log.push(format!("{:?}", o));
                }
            }
            for e in ct.expire(t(120_000)) {
                log.push(format!("{:?}", e));
            }
            (log, format!("{:?}", ct.stats()))
        };
        assert_eq!(run(), run());
    }

    proptest! {
        #[test]
        fn prop_canonicalization_maps_reverse_to_same_key(
            a in any::<u32>(), b in any::<u32>(),
            sp in any::<u16>(), dp in any::<u16>(),
            proto_sel in any::<u8>(),
        ) {
            let proto = [1u8, 6, 17, 47][(proto_sel % 4) as usize];
            let k = FlowKey {
                vlan: None,
                dl_src: MacAddr::from_u64(7),
                dl_dst: MacAddr::from_u64(8),
                dl_type: 0x0800,
                nw_src: Ipv4Addr::from(a),
                nw_dst: Ipv4Addr::from(b),
                nw_proto: proto,
                tp_src: sp,
                tp_dst: dp,
            };
            prop_assert_eq!(ConnKey::of(&k), ConnKey::of(&k.reversed()));
            // lo <= hi is the canonical invariant.
            let ck = ConnKey::of(&k);
            prop_assert!(ck.lo <= ck.hi);
        }
    }
}
