//! Inspection engines: the security functions service elements run.
//!
//! Each engine implements [`Inspector`]: given a flow key and a packet
//! payload, it may produce a [`Finding`]. The engines substitute for
//! the paper's ported open-source tools — [`IdsEngine`] for Snort,
//! [`ProtoIdEngine`] for Linux L7-filter — with the same interface
//! contract: scan the first packets of a flow, raise an event report
//! when a result is produced.

use crate::aho::AhoCorasick;
use crate::msg::{ServiceType, Verdict};
use livesec_conntrack::{ConnEvent, ConnKey, ConnTable, ConnTimeouts, PacketState};
use livesec_net::{FlowKey, Ipv4Net, Packet, SessionKey};
use livesec_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::net::Ipv4Addr;

/// Severity of a finding, 1 (informational) to 10 (critical).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Severity(pub u8);

impl Severity {
    /// Clamps to the 1..=10 range.
    pub fn new(v: u8) -> Self {
        Severity(v.clamp(1, 10))
    }
}

/// A detection/identification result produced by an engine.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Finding {
    /// The flow the finding concerns.
    pub flow: FlowKey,
    /// What to tell the controller.
    pub verdict: Verdict,
}

/// A packet-inspection engine.
pub trait Inspector: 'static {
    /// The service type this engine provides (for online messages).
    fn service(&self) -> ServiceType;

    /// Inspects one packet of a flow. Returns a finding the SE should
    /// report, or `None`. Engines are responsible for deduplicating
    /// per-flow reports.
    fn inspect(&mut self, flow: &FlowKey, payload: &[u8]) -> Option<Finding>;

    /// Inspects one full packet with the simulation clock available.
    /// Stateful engines (connection tracking) override this; the
    /// default extracts the transport payload and delegates to
    /// [`Inspector::inspect`].
    fn inspect_packet(&mut self, flow: &FlowKey, pkt: &Packet, _now: SimTime) -> Option<Finding> {
        let payload = pkt
            .ipv4()
            .and_then(|ip| ip.transport.payload())
            .map(|p| p.content())
            .unwrap_or(&[]);
        self.inspect(flow, payload)
    }

    /// Periodic housekeeping, driven off the SE's report timer.
    /// Stateful engines use it to expire idle connection state and
    /// report the resulting findings (e.g. `ConnClosed` for fast-passed
    /// flows whose packets no longer traverse the element).
    fn poll(&mut self, _now: SimTime) -> Vec<Finding> {
        Vec::new()
    }

    /// Relative per-byte processing cost multiplier (1.0 = baseline).
    /// Protocol identification is cheaper per byte than deep signature
    /// scanning once a flow is classified; engines can refine this.
    fn cost_factor(&self) -> f64 {
        1.0
    }
}

/// One IDS rule: a byte pattern plus metadata and optional header
/// constraints (the subset of a Snort rule header the engines honor).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IdsRule {
    /// Stable rule identifier.
    pub id: u32,
    /// Human-readable rule name, reported in events.
    pub name: String,
    /// The byte pattern that triggers the rule.
    pub pattern: Vec<u8>,
    /// Severity reported with the finding.
    pub severity: Severity,
    /// IP protocol constraint (`None` = any).
    pub proto: Option<u8>,
    /// Source prefix constraint.
    pub src: Option<Ipv4Net>,
    /// Destination prefix constraint.
    pub dst: Option<Ipv4Net>,
    /// Source port constraint.
    pub src_port: Option<u16>,
    /// Destination port constraint.
    pub dst_port: Option<u16>,
}

impl IdsRule {
    /// Creates a content-only rule (no header constraints).
    pub fn new(id: u32, name: &str, pattern: &[u8], severity: Severity) -> Self {
        IdsRule {
            id,
            name: name.to_owned(),
            pattern: pattern.to_vec(),
            severity,
            proto: None,
            src: None,
            dst: None,
            src_port: None,
            dst_port: None,
        }
    }

    /// Whether the rule's header constraints accept `flow`.
    pub fn header_matches(&self, flow: &FlowKey) -> bool {
        self.proto.map(|p| p == flow.nw_proto).unwrap_or(true)
            && self.src.map(|n| n.contains(flow.nw_src)).unwrap_or(true)
            && self.dst.map(|n| n.contains(flow.nw_dst)).unwrap_or(true)
            && self.src_port.map(|p| p == flow.tp_src).unwrap_or(true)
            && self.dst_port.map(|p| p == flow.tp_dst).unwrap_or(true)
    }
}

/// A generic multi-signature scanning engine over payload bytes.
///
/// [`IdsEngine`], [`VirusScanEngine`] and [`ContentInspectionEngine`]
/// are this engine with different rule sets and verdict kinds.
#[derive(Debug, Clone)]
pub struct SignatureEngine {
    service: ServiceType,
    rules: Vec<IdsRule>,
    ac: AhoCorasick,
    reported: HashSet<(SessionKey, u32)>,
    /// Total findings produced (diagnostics).
    pub findings: u64,
    policy_verdict: bool,
}

impl SignatureEngine {
    /// Builds an engine from rules, reporting malicious verdicts.
    pub fn new(service: ServiceType, rules: Vec<IdsRule>) -> Self {
        let ac = AhoCorasick::new(
            &rules
                .iter()
                .map(|r| r.pattern.as_slice())
                .collect::<Vec<_>>(),
        );
        SignatureEngine {
            service,
            rules,
            ac,
            reported: HashSet::new(),
            findings: 0,
            policy_verdict: false,
        }
    }

    /// Reports findings as policy violations instead of attacks
    /// (content-inspection semantics).
    pub fn with_policy_verdicts(mut self) -> Self {
        self.policy_verdict = true;
        self
    }

    /// The rule set.
    pub fn rules(&self) -> &[IdsRule] {
        &self.rules
    }
}

impl Inspector for SignatureEngine {
    fn service(&self) -> ServiceType {
        self.service
    }

    fn inspect(&mut self, flow: &FlowKey, payload: &[u8]) -> Option<Finding> {
        if payload.is_empty() {
            return None;
        }
        // First content hit whose rule also accepts the flow header.
        let hit = self
            .ac
            .find_all(payload)
            .into_iter()
            .find(|h| self.rules[h.pattern].header_matches(flow))?;
        let rule = &self.rules[hit.pattern];
        let dedup_key = (flow.session(), rule.id);
        if !self.reported.insert(dedup_key) {
            return None; // already reported this rule on this session
        }
        self.findings += 1;
        let verdict = if self.policy_verdict {
            Verdict::PolicyViolation {
                policy: rule.name.clone(),
            }
        } else {
            Verdict::Malicious {
                attack: rule.name.clone(),
                severity: rule.severity.0,
            }
        };
        Some(Finding {
            flow: *flow,
            verdict,
        })
    }
}

/// The Snort-substitute intrusion detection engine.
#[derive(Debug, Clone)]
pub struct IdsEngine;

impl IdsEngine {
    /// The default rule set: a small Snort-flavored collection covering
    /// the attack classes the paper's deployment detected (malicious
    /// web access, shellcode, scans, injection).
    pub fn default_rules() -> Vec<IdsRule> {
        let mk = |id, name: &str, pattern: &[u8], sev| {
            IdsRule::new(id, name, pattern, Severity::new(sev))
        };
        vec![
            mk(1001, "WEB-MISC /etc/passwd access", b"/etc/passwd", 8),
            mk(1002, "WEB-IIS cmd.exe access", b"cmd.exe", 8),
            mk(1003, "SHELLCODE x86 NOP sled", &[0x90; 16], 9),
            mk(1004, "SQL injection attempt", b"' OR '1'='1", 7),
            mk(1005, "XSS script injection", b"<script>alert(", 6),
            mk(1006, "EXPLOIT buffer overflow marker", b"\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41", 9),
            mk(1007, "MALWARE beacon marker", b"botnet-c2-checkin", 10),
            mk(1008, "SCAN nmap probe", b"nmap scripting engine", 3),
            mk(1009, "BACKDOOR shell prompt", b"uid=0(root) gid=0(root)", 9),
            mk(1010, "TROJAN download marker", b"MZ\x90\x00\x03\x00\x00\x00\x04", 7),
        ]
    }

    /// Builds the engine with [`IdsEngine::default_rules`].
    pub fn engine() -> SignatureEngine {
        SignatureEngine::new(ServiceType::IntrusionDetection, Self::default_rules())
    }
}

/// The virus-scanning engine: signature scanning with a malware-
/// flavored rule set (including the EICAR test string).
#[derive(Debug, Clone)]
pub struct VirusScanEngine;

impl VirusScanEngine {
    /// Default malware signatures.
    pub fn default_rules() -> Vec<IdsRule> {
        let mk = |id, name: &str, pattern: &[u8], sev| {
            IdsRule::new(id, name, pattern, Severity::new(sev))
        };
        vec![
            mk(
                2001,
                "EICAR test file",
                b"X5O!P%@AP[4\\PZX54(P^)7CC)7}$EICAR",
                10,
            ),
            mk(
                2002,
                "PE dropper stub",
                b"This program cannot be run in DOS mode",
                6,
            ),
            mk(2003, "Macro virus marker", b"AutoOpen\x00Macro", 7),
            mk(
                2004,
                "Ransom note marker",
                b"YOUR FILES HAVE BEEN ENCRYPTED",
                10,
            ),
        ]
    }

    /// Builds the engine.
    pub fn engine() -> SignatureEngine {
        SignatureEngine::new(ServiceType::VirusScan, Self::default_rules())
    }
}

/// The content-inspection engine: DLP-style keyword policies, reported
/// as policy violations.
#[derive(Debug, Clone)]
pub struct ContentInspectionEngine;

impl ContentInspectionEngine {
    /// Default data-loss-prevention keyword set.
    pub fn default_rules() -> Vec<IdsRule> {
        let mk = |id, name: &str, pattern: &[u8]| IdsRule::new(id, name, pattern, Severity::new(5));
        vec![
            mk(3001, "DLP: internal-only marker", b"INTERNAL USE ONLY"),
            mk(3002, "DLP: credential material", b"BEGIN RSA PRIVATE KEY"),
            mk(3003, "DLP: payment card track data", b";?<card-track-2>?"),
        ]
    }

    /// Builds the engine.
    pub fn engine() -> SignatureEngine {
        SignatureEngine::new(ServiceType::ContentInspection, Self::default_rules())
            .with_policy_verdicts()
    }
}

/// The L7-filter-substitute protocol identification engine.
///
/// Classifies flows by payload prefix patterns (and a port fallback),
/// reporting each connection's application once. The packet path keeps
/// a connection-tracking table and classifies from the reassembled
/// first bytes of *both* directions, so server-banner protocols (SMTP,
/// SSH) identify even when the client speaks first with an
/// unrecognizable payload.
#[derive(Debug, Clone)]
pub struct ProtoIdEngine {
    identified: HashSet<SessionKey>,
    conntrack: ConnTable,
    conn_identified: HashSet<ConnKey>,
    /// Sessions identified so far (diagnostics).
    pub identifications: u64,
}

impl ProtoIdEngine {
    /// Creates the engine.
    pub fn new() -> Self {
        ProtoIdEngine {
            identified: HashSet::new(),
            conntrack: ConnTable::new(),
            conn_identified: HashSet::new(),
            identifications: 0,
        }
    }

    /// Classifies a single payload (stateless helper): the application
    /// label, or `None` if unrecognized.
    pub fn classify(payload: &[u8], tp_src: u16, tp_dst: u16) -> Option<&'static str> {
        if payload.starts_with(b"GET ")
            || payload.starts_with(b"POST ")
            || payload.starts_with(b"PUT ")
            || payload.starts_with(b"HEAD ")
            || payload.starts_with(b"HTTP/1.")
        {
            return Some("http");
        }
        if payload.starts_with(b"SSH-2.0") || payload.starts_with(b"SSH-1.") {
            return Some("ssh");
        }
        if payload.first() == Some(&0x13) && payload[1..].starts_with(b"BitTorrent protocol") {
            return Some("bittorrent");
        }
        if payload.starts_with(b"220 ") && payload.windows(4).any(|w| w == b"SMTP") {
            return Some("smtp");
        }
        if payload.starts_with(b"EHLO") || payload.starts_with(b"HELO") {
            return Some("smtp");
        }
        if payload.starts_with(b"\x16\x03") {
            return Some("tls");
        }
        if tp_dst == 53 || tp_src == 53 {
            return Some("dns");
        }
        None
    }
}

impl Default for ProtoIdEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl Inspector for ProtoIdEngine {
    fn service(&self) -> ServiceType {
        ServiceType::ProtocolIdentification
    }

    fn inspect(&mut self, flow: &FlowKey, payload: &[u8]) -> Option<Finding> {
        let session = flow.session();
        if self.identified.contains(&session) {
            return None;
        }
        let app = Self::classify(payload, flow.tp_src, flow.tp_dst)?;
        self.identified.insert(session);
        self.identifications += 1;
        Some(Finding {
            flow: *flow,
            verdict: Verdict::Application {
                app: app.to_owned(),
            },
        })
    }

    fn inspect_packet(&mut self, flow: &FlowKey, pkt: &Packet, now: SimTime) -> Option<Finding> {
        let payload = pkt
            .ipv4()
            .and_then(|ip| ip.transport.payload())
            .map(|p| p.content())
            .unwrap_or(&[]);
        let flags = pkt.tcp().map(|t| t.flags);
        let obs = self.conntrack.observe(flow, flags, payload, now);
        if self.conn_identified.contains(&obs.key) {
            return None;
        }
        // Classify from the reassembled heads of both directions, not
        // just this packet: a client whose first bytes say nothing
        // still identifies once the server banner (SMTP "220", SSH
        // version string) arrives in the reply head.
        let conn = self.conntrack.get(&obs.key)?;
        let first = *conn.first_key();
        let (orig, reply) = conn.heads();
        let app = Self::classify(orig, first.tp_src, first.tp_dst)
            .or_else(|| Self::classify(reply, first.tp_dst, first.tp_src))?;
        self.conn_identified.insert(obs.key);
        self.identifications += 1;
        Some(Finding {
            flow: first,
            verdict: Verdict::Application {
                app: app.to_owned(),
            },
        })
    }

    fn poll(&mut self, now: SimTime) -> Vec<Finding> {
        for gone in self.conntrack.expire(now) {
            self.conn_identified.remove(&gone.key);
        }
        Vec::new()
    }

    fn cost_factor(&self) -> f64 {
        // Pattern checks on flow heads only: cheaper than full
        // signature scanning, reflected in the paper's lower aggregate
        // (2 Gbps vs 8 Gbps for IDS at equal VM counts is a capacity
        // configuration; see DESIGN.md E3).
        1.0
    }
}

/// Firewall action for a matched rule.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum FwAction {
    /// Let the flow pass.
    Allow,
    /// Let the flow pass, and once its connection reaches an
    /// established state report `ConnEstablished` so the controller can
    /// install an inspection-bypassing fast-pass.
    AllowEstablished,
    /// Report the flow for blocking.
    Deny,
}

impl FwAction {
    fn is_deny(self) -> bool {
        self == FwAction::Deny
    }
}

/// Connection-state qualifier a stateful rule can match on.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum StateMatch {
    /// Packets opening a connection (original direction, not yet
    /// established).
    New,
    /// Packets of a tracked connection (replies, or any direction once
    /// established).
    Established,
    /// Packets matching no admissible connection.
    Invalid,
}

impl StateMatch {
    fn admits(self, ps: PacketState) -> bool {
        matches!(
            (self, ps),
            (StateMatch::New, PacketState::New)
                | (StateMatch::Established, PacketState::Established)
                | (StateMatch::Invalid, PacketState::Invalid)
        )
    }
}

/// One firewall rule over flow-key fields; `None` = any.
///
/// Rules are evaluated **first-match-wins**: the first rule whose every
/// constraint accepts the packet decides the action, and later rules
/// are never consulted. A rule chain where an earlier rule fully covers
/// a later one (the later rule is *shadowed* and can never fire) is
/// rejected at construction — see [`FirewallEngine::try_new`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FwRule {
    /// Rule name, reported on deny.
    pub name: String,
    /// Source prefix constraint.
    pub src: Option<Ipv4Net>,
    /// Destination prefix constraint.
    pub dst: Option<Ipv4Net>,
    /// IP protocol constraint.
    pub proto: Option<u8>,
    /// Destination port constraint.
    pub dst_port: Option<u16>,
    /// Connection-state qualifier (stateful matching).
    pub state: Option<StateMatch>,
    /// What to do on match.
    pub action: FwAction,
}

impl FwRule {
    /// A rule matching anything, with the given action. Narrow it with
    /// the builder methods.
    pub fn any(name: &str, action: FwAction) -> Self {
        FwRule {
            name: name.to_owned(),
            src: None,
            dst: None,
            proto: None,
            dst_port: None,
            state: None,
            action,
        }
    }

    /// An allow rule matching anything.
    pub fn allow(name: &str) -> Self {
        Self::any(name, FwAction::Allow)
    }

    /// An allow rule that also admits the connection to the
    /// established-flow fast-pass.
    pub fn allow_established(name: &str) -> Self {
        Self::any(name, FwAction::AllowEstablished)
    }

    /// A deny rule matching anything (useful as a default-deny tail).
    pub fn deny_all(name: &str) -> Self {
        Self::any(name, FwAction::Deny)
    }

    /// Constrains the source prefix.
    pub fn src(mut self, net: Ipv4Net) -> Self {
        self.src = Some(net);
        self
    }

    /// Constrains the destination prefix.
    pub fn dst(mut self, net: Ipv4Net) -> Self {
        self.dst = Some(net);
        self
    }

    /// Constrains the IP protocol.
    pub fn proto(mut self, proto: u8) -> Self {
        self.proto = Some(proto);
        self
    }

    /// Constrains the destination port.
    pub fn dst_port(mut self, port: u16) -> Self {
        self.dst_port = Some(port);
        self
    }

    /// Constrains the connection state.
    pub fn state(mut self, state: StateMatch) -> Self {
        self.state = Some(state);
        self
    }

    fn matches(&self, flow: &FlowKey, ps: PacketState) -> bool {
        self.src.map(|n| n.contains(flow.nw_src)).unwrap_or(true)
            && self.dst.map(|n| n.contains(flow.nw_dst)).unwrap_or(true)
            && self.proto.map(|p| p == flow.nw_proto).unwrap_or(true)
            && self.dst_port.map(|p| p == flow.tp_dst).unwrap_or(true)
            && self.state.map(|s| s.admits(ps)).unwrap_or(true)
    }

    /// Whether every packet this rule's successor `other` could match
    /// is already matched by `self` (i.e. `other` is shadowed).
    fn covers(&self, other: &FwRule) -> bool {
        fn net_covers(a: Option<Ipv4Net>, b: Option<Ipv4Net>) -> bool {
            match (a, b) {
                (None, _) => true,
                (Some(_), None) => false,
                (Some(a), Some(b)) => a.contains_net(&b),
            }
        }
        fn eq_covers<T: PartialEq>(a: &Option<T>, b: &Option<T>) -> bool {
            match (a, b) {
                (None, _) => true,
                (Some(_), None) => false,
                (Some(a), Some(b)) => a == b,
            }
        }
        net_covers(self.src, other.src)
            && net_covers(self.dst, other.dst)
            && eq_covers(&self.proto, &other.proto)
            && eq_covers(&self.dst_port, &other.dst_port)
            && eq_covers(&self.state, &other.state)
    }
}

/// A first-match firewall engine with connection tracking.
///
/// Evaluation is strictly **first-match-wins** over the rule chain;
/// packets of established connections that no rule claims are admitted
/// (reverse-flow admission — the stateful-firewall semantic that lets
/// "allow outbound web" imply "allow the replies"). The engine also
/// watches for SYN floods: once a single source holds more than the
/// configured number of half-open connections it is reported as
/// malicious, once.
#[derive(Debug, Clone)]
pub struct FirewallEngine {
    rules: Vec<FwRule>,
    default_action: FwAction,
    conntrack: ConnTable,
    syn_flood_threshold: u32,
    reported: HashSet<SessionKey>,
    established_reported: HashSet<ConnKey>,
    flood_reported: HashSet<Ipv4Addr>,
    /// Flows denied so far (diagnostics).
    pub denials: u64,
    /// SYN floods reported so far (diagnostics).
    pub floods_detected: u64,
}

impl FirewallEngine {
    /// Creates a firewall with the given rule chain and default action.
    ///
    /// # Panics
    ///
    /// Panics if the chain contains a shadowed rule (see
    /// [`FirewallEngine::try_new`]).
    pub fn new(rules: Vec<FwRule>, default_action: FwAction) -> Self {
        match Self::try_new(rules, default_action) {
            Ok(fw) => fw,
            Err(e) => panic!("invalid firewall rule chain: {e}"),
        }
    }

    /// Creates a firewall, rejecting chains where a broader earlier
    /// rule fully covers a later one: under first-match-wins the later
    /// rule could never fire, which is almost always a configuration
    /// mistake (classically, a default-deny placed *before* the
    /// allows).
    pub fn try_new(rules: Vec<FwRule>, default_action: FwAction) -> Result<Self, String> {
        for (i, earlier) in rules.iter().enumerate() {
            for later in &rules[i + 1..] {
                if earlier.covers(later) {
                    return Err(format!(
                        "rule \"{}\" is shadowed by earlier rule \"{}\" and can never match",
                        later.name, earlier.name
                    ));
                }
            }
        }
        Ok(FirewallEngine {
            rules,
            default_action,
            conntrack: ConnTable::new(),
            syn_flood_threshold: 16,
            reported: HashSet::new(),
            established_reported: HashSet::new(),
            flood_reported: HashSet::new(),
            denials: 0,
            floods_detected: 0,
        })
    }

    /// Sets the half-open-connections-per-source threshold above which
    /// a SYN flood is reported (default 16).
    pub fn with_syn_flood_threshold(mut self, threshold: u32) -> Self {
        self.syn_flood_threshold = threshold;
        self
    }

    /// Replaces the connection-table idle timeouts.
    pub fn with_conn_timeouts(mut self, timeouts: ConnTimeouts) -> Self {
        self.conntrack = ConnTable::new().with_timeouts(timeouts);
        self
    }

    /// The connection-tracking table (read access for diagnostics).
    pub fn conntrack(&self) -> &ConnTable {
        &self.conntrack
    }

    /// Evaluates a flow header against the rule chain as a
    /// connection-opening packet (the stateless view; first match
    /// wins). Returns the action and the matched rule's name.
    pub fn evaluate(&self, flow: &FlowKey) -> (FwAction, Option<&str>) {
        self.evaluate_stateful(flow, PacketState::New)
    }

    /// Evaluates a flow header with its conntrack classification.
    /// First match wins; if no rule claims an `Established` packet it
    /// is admitted regardless of the default action (reverse-flow
    /// admission).
    pub fn evaluate_stateful(&self, flow: &FlowKey, ps: PacketState) -> (FwAction, Option<&str>) {
        for rule in &self.rules {
            if rule.matches(flow, ps) {
                return (rule.action, Some(&rule.name));
            }
        }
        if ps == PacketState::Established {
            (FwAction::Allow, None)
        } else {
            (self.default_action, None)
        }
    }

    fn deny_finding(&mut self, flow: &FlowKey, name: Option<&str>) -> Option<Finding> {
        let policy = name.unwrap_or("default-deny").to_owned();
        if !self.reported.insert(flow.session()) {
            return None;
        }
        self.denials += 1;
        Some(Finding {
            flow: *flow,
            verdict: Verdict::PolicyViolation { policy },
        })
    }
}

impl Inspector for FirewallEngine {
    fn service(&self) -> ServiceType {
        ServiceType::Firewall
    }

    fn inspect(&mut self, flow: &FlowKey, _payload: &[u8]) -> Option<Finding> {
        // Stateless path (no packet context): header evaluation only.
        let (action, name) = self.evaluate(flow);
        if !action.is_deny() {
            return None;
        }
        let name = name.map(str::to_owned);
        self.deny_finding(flow, name.as_deref())
    }

    fn inspect_packet(&mut self, flow: &FlowKey, pkt: &Packet, now: SimTime) -> Option<Finding> {
        let payload = pkt
            .ipv4()
            .and_then(|ip| ip.transport.payload())
            .map(|p| p.content())
            .unwrap_or(&[]);
        let flags = pkt.tcp().map(|t| t.flags);
        let obs = self.conntrack.observe(flow, flags, payload, now);

        // SYN-flood detection: too many half-open connections held by
        // one source. Reported once per source.
        let src = flow.nw_src;
        if self.conntrack.half_open(src) > self.syn_flood_threshold
            && self.flood_reported.insert(src)
        {
            self.floods_detected += 1;
            return Some(Finding {
                flow: *flow,
                verdict: Verdict::Malicious {
                    attack: format!("syn-flood from {src}"),
                    severity: 9,
                },
            });
        }

        // Connection just became established: if its opening packet
        // matched an AllowEstablished rule, tell the controller so it
        // can fast-pass the rest of the connection. Once per connection.
        if obs.event == Some(ConnEvent::Established) {
            if let Some(conn) = self.conntrack.get(&obs.key) {
                let first = *conn.first_key();
                let (action, _) = self.evaluate_stateful(&first, PacketState::New);
                if action == FwAction::AllowEstablished && self.established_reported.insert(obs.key)
                {
                    return Some(Finding {
                        flow: first,
                        verdict: Verdict::ConnEstablished,
                    });
                }
            }
        }

        // In-path teardown (FIN exchange or RST) of an admitted
        // connection: retract the fast-pass. Expiry handles the case
        // where the teardown itself bypassed us (see poll).
        if obs.event == Some(ConnEvent::Closed) && self.established_reported.remove(&obs.key) {
            let first = self
                .conntrack
                .get(&obs.key)
                .map(|c| *c.first_key())
                .unwrap_or(*flow);
            return Some(Finding {
                flow: first,
                verdict: Verdict::ConnClosed,
            });
        }

        let (action, name) = self.evaluate_stateful(flow, obs.packet_state);
        if !action.is_deny() {
            return None;
        }
        let name = name.map(str::to_owned);
        self.deny_finding(flow, name.as_deref())
    }

    fn poll(&mut self, now: SimTime) -> Vec<Finding> {
        // A fast-passed connection's packets bypass this element, so
        // idle expiry is the only signal its fast-pass should come
        // down; report ConnClosed for every expired connection we had
        // admitted.
        let mut out = Vec::new();
        for gone in self.conntrack.expire(now) {
            self.flood_reported.remove(&gone.flow.nw_src);
            if self.established_reported.remove(&gone.key) {
                out.push(Finding {
                    flow: gone.flow,
                    verdict: Verdict::ConnClosed,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use livesec_net::{MacAddr, PacketBuilder, TcpFlags};

    fn flow(tp_dst: u16) -> FlowKey {
        FlowKey {
            vlan: None,
            dl_src: MacAddr::from_u64(1),
            dl_dst: MacAddr::from_u64(2),
            dl_type: 0x0800,
            nw_src: "10.0.0.1".parse().unwrap(),
            nw_dst: "10.0.0.2".parse().unwrap(),
            nw_proto: 6,
            tp_src: 40000,
            tp_dst,
        }
    }

    #[test]
    fn ids_detects_and_dedups() {
        let mut ids = IdsEngine::engine();
        let f = flow(80);
        let hit = ids.inspect(&f, b"GET /../../etc/passwd HTTP/1.1");
        match hit {
            Some(Finding {
                verdict: Verdict::Malicious { attack, severity },
                ..
            }) => {
                assert!(attack.contains("/etc/passwd"));
                assert_eq!(severity, 8);
            }
            other => panic!("expected malicious finding, got {other:?}"),
        }
        // Same rule, same session: suppressed.
        assert!(ids.inspect(&f, b"/etc/passwd again").is_none());
        // Reverse direction is the same session: still suppressed.
        assert!(ids.inspect(&f.reversed(), b"/etc/passwd").is_none());
        // Different rule on same session: reported.
        assert!(ids.inspect(&f, b"cmd.exe").is_some());
        assert_eq!(ids.findings, 2);
    }

    #[test]
    fn ids_clean_traffic_silent() {
        let mut ids = IdsEngine::engine();
        assert!(ids
            .inspect(&flow(80), b"GET /index.html HTTP/1.1\r\nHost: x\r\n")
            .is_none());
        assert!(ids.inspect(&flow(80), b"").is_none());
    }

    #[test]
    fn nop_sled_detected() {
        let mut ids = IdsEngine::engine();
        let payload = vec![0x90u8; 64];
        let hit = ids.inspect(&flow(4444), &payload).expect("sled found");
        match hit.verdict {
            Verdict::Malicious { severity, .. } => assert_eq!(severity, 9),
            _ => panic!("wrong verdict"),
        }
    }

    #[test]
    fn protoid_classifies_common_apps() {
        assert_eq!(
            ProtoIdEngine::classify(b"GET / HTTP/1.1\r\n", 5000, 80),
            Some("http")
        );
        assert_eq!(
            ProtoIdEngine::classify(b"HTTP/1.1 200 OK\r\n", 80, 5000),
            Some("http")
        );
        assert_eq!(
            ProtoIdEngine::classify(b"SSH-2.0-OpenSSH_5.8", 22, 5000),
            Some("ssh")
        );
        let mut bt = vec![0x13u8];
        bt.extend_from_slice(b"BitTorrent protocol");
        assert_eq!(ProtoIdEngine::classify(&bt, 6881, 6881), Some("bittorrent"));
        assert_eq!(
            ProtoIdEngine::classify(b"EHLO mail", 25, 5000),
            Some("smtp")
        );
        assert_eq!(
            ProtoIdEngine::classify(b"\x16\x03\x01", 443, 5000),
            Some("tls")
        );
        assert_eq!(ProtoIdEngine::classify(b"anything", 5000, 53), Some("dns"));
        assert_eq!(ProtoIdEngine::classify(b"???", 5000, 5001), None);
    }

    #[test]
    fn protoid_reports_once_per_session() {
        let mut engine = ProtoIdEngine::new();
        let f = flow(80);
        let first = engine.inspect(&f, b"GET / HTTP/1.1");
        assert!(matches!(
            first,
            Some(Finding {
                verdict: Verdict::Application { .. },
                ..
            })
        ));
        assert!(engine.inspect(&f, b"GET /2 HTTP/1.1").is_none());
        assert!(engine.inspect(&f.reversed(), b"HTTP/1.1 200").is_none());
        assert_eq!(engine.identifications, 1);
    }

    #[test]
    fn virus_scan_finds_eicar() {
        let mut av = VirusScanEngine::engine();
        let hit = av
            .inspect(&flow(80), b"X5O!P%@AP[4\\PZX54(P^)7CC)7}$EICAR-STANDARD")
            .expect("EICAR");
        assert!(matches!(
            hit.verdict,
            Verdict::Malicious { severity: 10, .. }
        ));
    }

    #[test]
    fn content_inspection_reports_policy() {
        let mut ci = ContentInspectionEngine::engine();
        let hit = ci
            .inspect(&flow(80), b"...BEGIN RSA PRIVATE KEY...")
            .expect("DLP hit");
        assert!(matches!(hit.verdict, Verdict::PolicyViolation { .. }));
    }

    #[test]
    fn firewall_first_match_wins() {
        // The FIRST rule whose constraints accept the packet decides;
        // the default-deny tail only catches what nothing allowed.
        let fw = FirewallEngine::new(
            vec![
                FwRule::allow("allow-web").proto(6).dst_port(80),
                FwRule::deny_all("default-deny"),
            ],
            FwAction::Allow,
        );
        assert_eq!(fw.evaluate(&flow(80)), (FwAction::Allow, Some("allow-web")));
        assert_eq!(
            fw.evaluate(&flow(23)),
            (FwAction::Deny, Some("default-deny"))
        );
    }

    #[test]
    fn firewall_rejects_shadowed_rules() {
        // A default-deny placed BEFORE the allow covers it entirely:
        // under first-match-wins the allow could never fire.
        let shadowed = vec![
            FwRule::deny_all("default-deny"),
            FwRule::allow("allow-web").proto(6).dst_port(80),
        ];
        let err = FirewallEngine::try_new(shadowed, FwAction::Allow).unwrap_err();
        assert!(err.contains("allow-web"), "{err}");
        assert!(err.contains("shadowed"), "{err}");

        // Broader prefix before narrower: also shadowed.
        let prefix_shadow = vec![
            FwRule::deny_all("deny-lab").src("10.0.0.0/16".parse().unwrap()),
            FwRule::allow("allow-host").src("10.0.0.0/24".parse().unwrap()),
        ];
        assert!(FirewallEngine::try_new(prefix_shadow, FwAction::Allow).is_err());

        // Distinct dimensions do NOT shadow: a state qualifier makes
        // the later rule reachable.
        let ok = vec![
            FwRule::deny_all("deny-new").state(StateMatch::New),
            FwRule::allow("allow-established").state(StateMatch::Established),
        ];
        assert!(FirewallEngine::try_new(ok, FwAction::Allow).is_ok());
    }

    #[test]
    #[should_panic(expected = "shadowed")]
    fn firewall_new_panics_on_shadowed_chain() {
        FirewallEngine::new(
            vec![FwRule::deny_all("a"), FwRule::deny_all("b")],
            FwAction::Allow,
        );
    }

    #[test]
    fn firewall_prefix_rules() {
        let fw = FirewallEngine::new(
            vec![FwRule::deny_all("block-lab-subnet").src("10.0.0.0/24".parse().unwrap())],
            FwAction::Allow,
        );
        assert_eq!(fw.evaluate(&flow(80)).0, FwAction::Deny);
        let mut external = flow(80);
        external.nw_src = "192.168.0.1".parse().unwrap();
        assert_eq!(fw.evaluate(&external).0, FwAction::Allow);
    }

    #[test]
    fn firewall_reports_deny_once() {
        let mut fw = FirewallEngine::new(vec![FwRule::deny_all("deny")], FwAction::Allow);
        assert!(fw.inspect(&flow(80), b"").is_some());
        assert!(fw.inspect(&flow(80), b"").is_none());
        assert_eq!(fw.denials, 1);
    }

    fn tcp_packet(key: &FlowKey, flags: TcpFlags, payload: &[u8]) -> Packet {
        PacketBuilder::tcp(key.dl_src, key.dl_dst)
            .ips(key.nw_src, key.nw_dst)
            .ports(key.tp_src, key.tp_dst)
            .tcp_flags(flags)
            .payload_bytes(payload)
            .build()
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    #[test]
    fn firewall_admits_reverse_flow_of_established_connection() {
        // Default-deny inbound, allow outbound web: the reply direction
        // must pass without an explicit rule for it.
        let mut fw = FirewallEngine::new(
            vec![FwRule::allow("allow-out-web").proto(6).dst_port(80)],
            FwAction::Deny,
        );
        let f = flow(80);
        let syn = tcp_packet(&f, TcpFlags::SYN, &[]);
        assert!(fw.inspect_packet(&f, &syn, t(0)).is_none(), "allowed out");
        let rev = f.reversed();
        let synack = tcp_packet(&rev, TcpFlags::SYN | TcpFlags::ACK, &[]);
        assert!(
            fw.inspect_packet(&rev, &synack, t(1)).is_none(),
            "reply admitted without a matching rule"
        );
        assert_eq!(fw.denials, 0);

        // An unrelated inbound connection attempt is still denied.
        let mut inbound = f.reversed();
        inbound.tp_src = 9999;
        inbound.tp_dst = 9998;
        let pkt = tcp_packet(&inbound, TcpFlags::SYN, &[]);
        let finding = fw.inspect_packet(&inbound, &pkt, t(2)).expect("denied");
        assert!(matches!(finding.verdict, Verdict::PolicyViolation { .. }));
    }

    #[test]
    fn firewall_reports_established_once_for_allow_established() {
        let mut fw = FirewallEngine::new(
            vec![FwRule::allow_established("fastpass-web")
                .proto(6)
                .dst_port(80)],
            FwAction::Deny,
        );
        let f = flow(80);
        fw.inspect_packet(&f, &tcp_packet(&f, TcpFlags::SYN, &[]), t(0));
        let rev = f.reversed();
        fw.inspect_packet(
            &rev,
            &tcp_packet(&rev, TcpFlags::SYN | TcpFlags::ACK, &[]),
            t(1),
        );
        let finding = fw
            .inspect_packet(&f, &tcp_packet(&f, TcpFlags::ACK, &[]), t(2))
            .expect("established report");
        assert_eq!(finding.verdict, Verdict::ConnEstablished);
        assert_eq!(finding.flow, f, "reported with the opening direction");
        // More traffic on the same connection: no duplicate report.
        assert!(fw
            .inspect_packet(&f, &tcp_packet(&f, TcpFlags::ACK, b"data"), t(3))
            .is_none());
    }

    #[test]
    fn firewall_closes_admitted_connection_on_teardown_and_expiry() {
        let mut fw = FirewallEngine::new(
            vec![FwRule::allow_established("fastpass-web")
                .proto(6)
                .dst_port(80)],
            FwAction::Allow,
        );
        let f = flow(80);
        fw.inspect_packet(&f, &tcp_packet(&f, TcpFlags::SYN, &[]), t(0));
        let rev = f.reversed();
        fw.inspect_packet(
            &rev,
            &tcp_packet(&rev, TcpFlags::SYN | TcpFlags::ACK, &[]),
            t(1),
        );
        fw.inspect_packet(&f, &tcp_packet(&f, TcpFlags::ACK, &[]), t(2));
        // RST tears it down in-path: ConnClosed right away.
        let finding = fw
            .inspect_packet(&f, &tcp_packet(&f, TcpFlags::RST, &[]), t(3))
            .expect("closed report");
        assert_eq!(finding.verdict, Verdict::ConnClosed);

        // Second connection goes quiet instead: poll() reports it.
        let mut f2 = f;
        f2.tp_src = 41_000;
        fw.inspect_packet(&f2, &tcp_packet(&f2, TcpFlags::SYN, &[]), t(10));
        let rev2 = f2.reversed();
        fw.inspect_packet(
            &rev2,
            &tcp_packet(&rev2, TcpFlags::SYN | TcpFlags::ACK, &[]),
            t(11),
        );
        fw.inspect_packet(&f2, &tcp_packet(&f2, TcpFlags::ACK, &[]), t(12));
        let findings = fw.poll(t(200_000));
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].verdict, Verdict::ConnClosed);
        assert_eq!(findings[0].flow, f2);
    }

    #[test]
    fn firewall_detects_syn_flood_once_per_source() {
        let mut fw = FirewallEngine::new(vec![], FwAction::Allow).with_syn_flood_threshold(8);
        let mut reports = Vec::new();
        for i in 0..20u16 {
            let mut f = flow(80);
            f.tp_src = 30_000 + i;
            let pkt = tcp_packet(&f, TcpFlags::SYN, &[]);
            if let Some(finding) = fw.inspect_packet(&f, &pkt, t(i as u64)) {
                reports.push(finding);
            }
        }
        assert_eq!(reports.len(), 1, "one report per flooding source");
        match &reports[0].verdict {
            Verdict::Malicious { attack, severity } => {
                assert!(attack.starts_with("syn-flood"), "{attack}");
                assert_eq!(*severity, 9);
            }
            other => panic!("expected malicious, got {other:?}"),
        }
        assert_eq!(fw.floods_detected, 1);
    }

    #[test]
    fn protoid_classifies_server_banner_from_reply_direction() {
        // SMTP: the client's first bytes say nothing; the server banner
        // identifies the protocol. The conntrack-backed path sees both
        // directions' heads.
        let mut engine = ProtoIdEngine::new();
        let f = flow(25);
        let hello = tcp_packet(&f, TcpFlags::PSH | TcpFlags::ACK, b"\r\n");
        assert!(engine.inspect_packet(&f, &hello, t(0)).is_none());
        let rev = f.reversed();
        let banner = tcp_packet(
            &rev,
            TcpFlags::PSH | TcpFlags::ACK,
            b"220 mail.example.com ESMTP SMTP ready",
        );
        let finding = engine.inspect_packet(&rev, &banner, t(1)).expect("smtp");
        assert_eq!(finding.verdict, Verdict::Application { app: "smtp".into() });
        assert_eq!(finding.flow, f, "tagged on the opening direction");

        // SSH: same shape, server version string in the reply.
        let mut g = flow(22);
        g.nw_src = "10.0.0.7".parse().unwrap();
        let first = tcp_packet(&g, TcpFlags::PSH | TcpFlags::ACK, b"\x00\x00");
        assert!(engine.inspect_packet(&g, &first, t(2)).is_none());
        let grev = g.reversed();
        let vbanner = tcp_packet(&grev, TcpFlags::PSH | TcpFlags::ACK, b"SSH-2.0-OpenSSH_5.8");
        let finding = engine.inspect_packet(&grev, &vbanner, t(3)).expect("ssh");
        assert_eq!(finding.verdict, Verdict::Application { app: "ssh".into() });
    }

    #[test]
    fn protoid_packet_path_reports_once_per_connection() {
        let mut engine = ProtoIdEngine::new();
        let f = flow(80);
        let req = tcp_packet(&f, TcpFlags::PSH | TcpFlags::ACK, b"GET / HTTP/1.1");
        assert!(engine.inspect_packet(&f, &req, t(0)).is_some());
        assert!(engine.inspect_packet(&f, &req, t(1)).is_none());
        let rev = f.reversed();
        let resp = tcp_packet(&rev, TcpFlags::PSH | TcpFlags::ACK, b"HTTP/1.1 200 OK");
        assert!(engine.inspect_packet(&rev, &resp, t(2)).is_none());
        assert_eq!(engine.identifications, 1);
    }
}
