//! The semantic checker: name resolution, scope containment, and
//! shadow/conflict analysis over the `MatchSet` header-space algebra.

use crate::ast::{Decl, DeclKind, Endpoint, Member, Program, Verdict};
use crate::diag::Diag;
use livesec::policy::PolicyRule;
use livesec_openflow::HeaderClass;
use std::collections::BTreeMap;

/// Checks a parsed program. Errors make it uncompilable; warnings
/// ride along. Diagnostics come out in deterministic source order
/// (one pass over the declarations, then the reference checks).
pub fn check(program: &Program) -> Vec<Diag> {
    let mut diags = Vec::new();
    let mut groups: BTreeMap<&str, &[Member]> = BTreeMap::new();
    let mut chains: BTreeMap<&str, usize> = BTreeMap::new();
    let mut tenants: BTreeMap<&str, livesec_net::Ipv4Net> = BTreeMap::new();
    let mut rules: BTreeMap<&str, u32> = BTreeMap::new();
    let mut apps: BTreeMap<&str, u32> = BTreeMap::new();
    let mut default_line: Option<u32> = None;

    // Pass 1: declarations, duplicate names, per-decl constraints.
    for decl in &program.decls {
        match &decl.kind {
            DeclKind::Group { name, members } => {
                if groups.insert(name, members).is_some() {
                    diags.push(dup(decl, "group", name));
                }
                if members.is_empty() {
                    diags.push(Diag::warning(
                        decl.line,
                        1,
                        format!("group `{name}` is empty and matches nothing"),
                    ));
                }
            }
            DeclKind::Chain { name, services } => {
                if chains.insert(name, services.len()).is_some() {
                    diags.push(dup(decl, "chain", name));
                }
                if services.is_empty() {
                    diags.push(Diag::warning(
                        decl.line,
                        1,
                        format!("chain `{name}` is empty (equivalent to allow)"),
                    ));
                }
            }
            DeclKind::Tenant { name, net } => {
                if tenants.insert(name, *net).is_some() {
                    diags.push(dup(decl, "tenant", name));
                }
            }
            DeclKind::Rule(r) => {
                if rules.insert(&r.name, decl.line).is_some() {
                    diags.push(dup(decl, "rule", &r.name));
                }
            }
            DeclKind::Default { verdict } => {
                if let Some(first) = default_line {
                    diags.push(Diag::error(
                        decl.line,
                        1,
                        format!("duplicate `default` (first on line {first})"),
                    ));
                } else {
                    default_line = Some(decl.line);
                }
                if matches!(verdict, Verdict::Limit { .. }) {
                    diags.push(Diag::error(
                        decl.line,
                        1,
                        "the default decision cannot be a rate limit".to_owned(),
                    ));
                }
            }
            DeclKind::OnApp { app, .. } => {
                if apps.insert(app, decl.line).is_some() {
                    diags.push(Diag::error(
                        decl.line,
                        1,
                        format!("duplicate `on app {app}`"),
                    ));
                }
            }
        }
    }

    // Pass 2: references and scope containment.
    for decl in &program.decls {
        let line = decl.line;
        match &decl.kind {
            DeclKind::Rule(r) => {
                if let Some(Endpoint::Name(g)) = &r.from {
                    if !groups.contains_key(g.as_str()) {
                        diags.push(Diag::error(
                            line,
                            1,
                            format!("rule `{}`: unknown group `{g}` in `from`", r.name),
                        ));
                    }
                }
                match &r.to {
                    Some(Endpoint::Name(g)) => match groups.get(g.as_str()) {
                        None => diags.push(Diag::error(
                            line,
                            1,
                            format!("rule `{}`: unknown group `{g}` in `to`", r.name),
                        )),
                        Some(members) => {
                            if members.iter().any(|m| matches!(m, Member::Mac(_))) {
                                diags.push(Diag::error(
                                    line,
                                    1,
                                    format!(
                                        "rule `{}`: group `{g}` has MAC members and cannot be \
                                         a `to` selector (destinations match on IP only)",
                                        r.name
                                    ),
                                ));
                            }
                        }
                    },
                    Some(Endpoint::Mac(mac)) => diags.push(Diag::error(
                        line,
                        1,
                        format!(
                            "rule `{}`: MAC {mac} cannot be a `to` selector \
                             (destinations match on IP only)",
                            r.name
                        ),
                    )),
                    _ => {}
                }
                if let Verdict::Via(chain) = &r.verdict {
                    if !chains.contains_key(chain.as_str()) {
                        diags.push(Diag::error(
                            line,
                            1,
                            format!("rule `{}`: unknown chain `{chain}`", r.name),
                        ));
                    }
                }
                if let Some(t) = &r.tenant {
                    match tenants.get(t.as_str()) {
                        None => diags.push(Diag::error(
                            line,
                            1,
                            format!("rule `{}`: unknown tenant `{t}`", r.name),
                        )),
                        Some(tnet) => {
                            let mut check_net = |net: &livesec_net::Ipv4Net| {
                                if !tnet.contains_net(net) {
                                    diags.push(Diag::error(
                                        line,
                                        1,
                                        format!(
                                            "rule `{}`: `from` prefix {net} escapes tenant \
                                             `{t}` ({tnet})",
                                            r.name
                                        ),
                                    ));
                                }
                            };
                            match &r.from {
                                Some(Endpoint::Net(net)) => check_net(net),
                                Some(Endpoint::Name(g)) => {
                                    for m in groups.get(g.as_str()).copied().unwrap_or(&[]) {
                                        if let Member::Net(net) = m {
                                            check_net(net);
                                        }
                                    }
                                }
                                _ => {}
                            }
                        }
                    }
                }
                let transport = matches!(r.proto, Some(6) | Some(17));
                if r.port.is_some() && !transport {
                    diags.push(Diag::warning(
                        line,
                        1,
                        format!(
                            "rule `{}`: `port` without `proto tcp` or `proto udp` matches \
                             the port field of any protocol",
                            r.name
                        ),
                    ));
                }
            }
            DeclKind::Default {
                verdict: Verdict::Via(chain),
            } if !chains.contains_key(chain.as_str()) => {
                diags.push(Diag::error(
                    line,
                    1,
                    format!("default: unknown chain `{chain}`"),
                ));
            }
            _ => {}
        }
    }
    diags
}

fn dup(decl: &Decl, kind: &str, name: &str) -> Diag {
    Diag::error(decl.line, 1, format!("duplicate {kind} `{name}`"))
}

/// Shadow/conflict analysis over *lowered* rules, using the
/// difference-of-cubes algebra: a rule whose cube is fully eaten by
/// earlier cubes can never match — an error when an earlier
/// overlapping rule decides differently (a real conflict), a
/// warning when every such rule agrees (mere redundancy).
pub fn shadow_diags(lowered: &[(PolicyRule, u32)]) -> Vec<Diag> {
    let mut diags = Vec::new();
    for (i, (rule, line)) in lowered.iter().enumerate() {
        let cube = rule.matcher();
        let mut region = HeaderClass::of(cube);
        let mut conflicting: Option<&str> = None;
        for (earlier, _) in lowered.iter().take(i) {
            let ecube = earlier.matcher();
            if !ecube.overlaps(&cube) {
                continue;
            }
            region.subtract(&ecube);
            if earlier.decision != rule.decision && conflicting.is_none() {
                conflicting = Some(&earlier.name);
            }
        }
        if i > 0 && region.is_empty() {
            match conflicting {
                Some(other) => diags.push(Diag::error(
                    *line,
                    1,
                    format!(
                        "rule `{}` can never match: shadowed by earlier rules including \
                         `{other}`, which decides differently",
                        rule.name
                    ),
                )),
                None => diags.push(Diag::warning(
                    *line,
                    1,
                    format!(
                        "rule `{}` is redundant: earlier rules with the same decision \
                         already cover it",
                        rule.name
                    ),
                )),
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{has_errors, Severity};
    use crate::parser::parse;

    fn check_src(src: &str) -> Vec<Diag> {
        let (prog, diags) = parse(src);
        assert!(diags.is_empty(), "parse should be clean: {diags:?}");
        check(&prog)
    }

    #[test]
    fn clean_program_checks_clean() {
        let diags = check_src(
            "group eng = { 10.1.0.0/24 }\n\
             chain web = [ ids ]\n\
             tenant lab 10.0.0.0/8\n\
             rule r: from eng proto tcp port 80 tenant lab via web\n\
             default allow\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unknown_references_are_errors() {
        let diags = check_src("rule r: from ghosts to nowhere tenant none via missing\n");
        let msgs: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
        assert_eq!(diags.len(), 4, "{msgs:?}");
        assert!(has_errors(&diags));
        assert!(msgs.iter().any(|m| m.contains("unknown group `ghosts`")));
        assert!(msgs.iter().any(|m| m.contains("unknown group `nowhere`")));
        assert!(msgs.iter().any(|m| m.contains("unknown chain `missing`")));
        assert!(msgs.iter().any(|m| m.contains("unknown tenant `none`")));
    }

    #[test]
    fn mac_destinations_are_rejected() {
        let diags = check_src(
            "group eng = { 0a:0b:0c:0d:0e:01 }\n\
             rule direct: to 0a:0b:0c:0d:0e:02 deny\n\
             rule via-group: to eng deny\n",
        );
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.severity == Severity::Error));
    }

    #[test]
    fn tenant_escape_is_an_error() {
        let diags = check_src(
            "tenant lab 10.2.0.0/16\n\
             rule ok: from 10.2.9.0/24 tenant lab allow\n\
             rule bad: from 192.168.0.0/24 tenant lab allow\n",
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("escapes tenant"));
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn duplicates_and_bad_default() {
        let diags = check_src(
            "rule r: allow\nrule r: deny\ndefault allow\ndefault deny\n\
             default limit 1 mbps\non app bt block\non app bt allow\n",
        );
        let msgs: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
        assert!(msgs.iter().any(|m| m.contains("duplicate rule `r`")));
        assert!(msgs.iter().any(|m| m.contains("duplicate `default`")));
        assert!(msgs.iter().any(|m| m.contains("cannot be a rate limit")));
        assert!(msgs.iter().any(|m| m.contains("duplicate `on app bt`")));
    }

    #[test]
    fn port_without_transport_proto_warns() {
        let diags = check_src("rule r: port 53 deny\n");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Warning);
    }

    #[test]
    fn shadow_analysis_distinguishes_conflict_from_redundancy() {
        use livesec::policy::PolicyRule;
        let lowered = vec![
            (PolicyRule::named("wide").proto(6).deny(), 1),
            (PolicyRule::named("dup").proto(6).dst_port(80).deny(), 2),
            (PolicyRule::named("dead").proto(6).dst_port(80), 3),
            (PolicyRule::named("live").proto(17), 4),
        ];
        let diags = shadow_diags(&lowered);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(diags[0].message.contains("`dup` is redundant"));
        assert_eq!(diags[1].severity, Severity::Error);
        assert!(diags[1].message.contains("`dead` can never match"));
    }
}
