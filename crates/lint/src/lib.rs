#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]
#![warn(clippy::disallowed_methods, clippy::disallowed_types)]

//! **livesec-lint** — the workspace determinism & invariant
//! static-analysis pass.
//!
//! The LiveSec reproduction rests on one property: the discrete-event
//! simulator is *deterministic* — same seed, byte-identical history.
//! Every chaos, cache and reconciliation test asserts it. Both PR 1
//! (HashMap-order flow eviction) and PR 2 (SE-registry expiry and
//! cleanup order) shipped fixes for latent nondeterminism that was
//! only caught at runtime. This crate catches that class of bug at
//! *check time*: a hand-rolled Rust lexer ([`lexer`]) feeds a pattern
//! engine ([`rules`]) that walks every workspace `.rs` file and flags
//!
//! * **unordered-iter** — iteration over `HashMap`/`HashSet` bindings
//!   whose order can escape into events, flow-mods or history;
//! * **wall-clock** — `Instant` / `SystemTime` (virtual `SimTime` is
//!   the only clock);
//! * **unseeded-rng** — `thread_rng`, `from_entropy`, `OsRng`,
//!   `rand::random`;
//! * **float-accum** — float `+=` accumulation and
//!   `.sum::<f32/f64>()` in aggregation paths;
//! * **unwrap-in-prod** — `.unwrap()` / `.expect()` outside
//!   `#[cfg(test)]` code in the production crates (`core`, `switch`,
//!   `conntrack`), where one panic takes down the controller or the
//!   dataplane it simulates.
//!
//! Sites where unordered iteration is genuinely harmless carry an
//! explicit, reasoned escape hatch:
//!
//! ```text
//! // livesec-lint: allow(unordered-iter, reason = "order-insensitive fold")
//! ```
//!
//! The grammar and the full determinism spec live in `DESIGN.md` §6.
//! The binary (`cargo run -p livesec-lint --release`) is a tier-1
//! gate in `scripts/check.sh`; `tests/workspace.rs` additionally
//! asserts the live workspace passes with zero unannotated findings,
//! so `cargo test` alone also fails on a fresh violation.
//!
//! The pass is deliberately dependency-free and syntax-level: no type
//! inference, no HIR. It trades a small annotation burden (and a
//! documented blind spot: a `HashMap` hidden behind a type alias or
//! constructor function) for a checker that builds in milliseconds
//! and cannot drift out of sync with vendored compiler internals.

pub mod lexer;
pub mod rules;
pub mod walk;

pub use rules::{lint_source, lint_source_with, Finding, LintOptions, Rule};

use std::path::{Path, PathBuf};

/// Crate source trees where a panic is a controller or dataplane
/// outage, so `unwrap-in-prod` applies.
const PROD_CRATE_DIRS: &[&str] = &[
    "crates/core/src",
    "crates/switch/src",
    "crates/conntrack/src",
];

/// The per-file lint options for a workspace path: production crates
/// additionally get the `unwrap-in-prod` rule.
pub fn options_for(path: &Path) -> LintOptions {
    let p = path.to_string_lossy();
    LintOptions {
        unwrap_in_prod: PROD_CRATE_DIRS.iter().any(|d| p.contains(d)),
    }
}

/// A finding tied to the file it was found in.
#[derive(Clone, Debug)]
pub struct FileFinding {
    /// Path of the offending file (as given to [`lint_files`]).
    pub path: PathBuf,
    /// The finding itself.
    pub finding: Finding,
}

impl std::fmt::Display for FileFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.finding.line,
            self.finding.rule.name(),
            self.finding.message
        )
    }
}

/// Lints every file in `paths`, in order. Unreadable files are
/// reported as an error string rather than silently skipped.
pub fn lint_files(paths: &[PathBuf]) -> Result<Vec<FileFinding>, String> {
    let mut out = Vec::new();
    for path in paths {
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        for finding in lint_source_with(&src, &options_for(path)) {
            out.push(FileFinding {
                path: path.clone(),
                finding,
            });
        }
    }
    Ok(out)
}

/// Walks the workspace at `root` and lints everything, returning
/// findings sorted by path and line.
pub fn lint_workspace(root: &Path) -> Result<Vec<FileFinding>, String> {
    let files =
        walk::workspace_rs_files(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    lint_files(&files)
}
