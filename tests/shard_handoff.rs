//! Cross-shard flow handoff. When a flow's ingress switch and egress
//! switch hash to different shards, the ingress owner sets up the
//! whole end-to-end steering program against the shared NIB and books
//! a handoff. The path must be exactly as consistent as the unsharded
//! one — which the header-space audit proves — and a policy epoch bump
//! made while one shard is active must invalidate every *other*
//! shard's cached decisions for the same flows.

use livesec_suite::prelude::*;
use livesec_verify::{audit_delta, audit_settled, RuleDelta, Snapshot};
use livesec_workloads::{CampusScenario, HttpClient, HttpServer, ScenarioConfig};

fn sharded_scenario(shards: u32) -> CampusScenario {
    CampusScenario::build(ScenarioConfig {
        seed: 42,
        shards,
        // Short idle timeout: recurring flows re-enter setup, so the
        // per-shard decision caches actually fill and get consulted.
        flow_idle: SimDuration::from_millis(300),
        ..ScenarioConfig::default()
    })
}

#[test]
fn cross_shard_flows_get_consistent_end_to_end_paths() {
    let mut s = sharded_scenario(4);
    s.campus.world.run_for(SimDuration::from_secs(5));

    let plane = s.campus.shard_plane().expect("campus is sharded");
    assert!(
        plane.handoffs() > 0,
        "no flow ever crossed shards: {:?}",
        plane.shard_stats()
    );

    // The shard map is non-trivial: the campus's switches really are
    // owned by more than one shard.
    let stats = plane.shard_stats();
    let owners_with_switches = stats.iter().filter(|st| !st.owned.is_empty()).count();
    assert!(
        owners_with_switches >= 2,
        "ring put every switch on one shard: {stats:?}"
    );

    // Consistency is the audit's job: every admitted flow (cross-shard
    // or not) must reach its destination through its required chain,
    // and every blocked one must stay blocked.
    let violations = audit_settled(&mut s.campus, 30, SimDuration::from_millis(100));
    assert!(violations.is_empty(), "audit found: {violations:#?}");
}

/// Regression: a policy epoch bump must reach *every* shard's decision
/// cache, not just the shard that happens to run next. Before epochs
/// were tracked per shard, a lagging shard could keep serving cached
/// steering decisions compiled under a superseded policy.
#[test]
fn policy_epoch_bump_invalidates_other_shards_cache_entries() {
    // The canned scenario's clients all sit on the Wi-Fi AP, so only
    // one shard's cache ever warms. Build a campus with HTTP clients
    // on two switches the ring assigns to *different* shards, so the
    // propagation claim is actually about two caches.
    let mut b = CampusBuilder::new(7, 3)
        .configure_controller(|c| {
            c.set_flow_idle_timeout(SimDuration::from_millis(300));
        })
        .with_shards(4);
    let gw = b.add_gateway_configured(0, HttpServer::new(), |h| {
        h.with_reannounce_interval(SimDuration::from_secs(1))
    });
    for (switch, port) in [(0usize, 41_000u16), (1, 41_001)] {
        b.add_user_with(
            switch,
            HttpClient::new(gw.ip, 20_000)
                .with_think_time(SimDuration::from_millis(400))
                .with_src_port(port),
            |h| h.with_reannounce_interval(SimDuration::from_secs(1)),
        );
    }
    let mut campus = b.finish();
    campus.world.run_for(SimDuration::from_secs(4));

    let before = campus
        .shard_plane()
        .expect("campus is sharded")
        .shard_stats();
    let warm: Vec<u32> = before
        .iter()
        .filter(|st| st.cache.as_ref().is_some_and(|c| c.entries > 0))
        .map(|st| st.id)
        .collect();
    assert!(
        warm.len() >= 2,
        "need ≥2 shards with warm caches to test propagation: {before:?}"
    );

    // Bump the policy on the shared store (no shard is active here —
    // propagation happens through the epoch tags alone).
    campus.controller_mut().set_policy(PolicyTable::allow_all());

    campus.world.run_for(SimDuration::from_secs(2));
    let after = campus
        .shard_plane()
        .expect("campus is sharded")
        .shard_stats();

    let mut shards_invalidated = 0;
    for st in &after {
        let old = before
            .iter()
            .find(|o| o.id == st.id)
            .and_then(|o| o.cache.as_ref().map(|c| c.invalidations))
            .unwrap_or(0);
        let new = st.cache.as_ref().map(|c| c.invalidations).unwrap_or(0);
        if warm.contains(&st.id) && new > old {
            shards_invalidated += 1;
        }
    }
    assert!(
        shards_invalidated >= 2,
        "the epoch bump reached only {shards_invalidated} warm shard(s): before {before:?} after {after:?}"
    );

    // And the caches refill under the new policy — decisions are
    // re-made, not resurrected.
    let inserted_before: u64 = before
        .iter()
        .filter_map(|st| st.cache.as_ref().map(|c| c.insertions))
        .sum();
    let inserted_after: u64 = after
        .iter()
        .filter_map(|st| st.cache.as_ref().map(|c| c.insertions))
        .sum();
    assert!(
        inserted_after > inserted_before,
        "no shard re-cached decisions under the new policy"
    );
}

/// The scoped counterpart of the epoch-bump test above: a policy
/// *delta* confined to an idle header class must leave every shard's
/// warm cache entries alone (wholesale bumps flush them all), and the
/// incremental auditor scoped to the delta's cubes must settle clean
/// on the sharded dataplane (DESIGN.md §14).
#[test]
fn scoped_delta_spares_shard_caches_and_audits_clean() {
    let mut s = sharded_scenario(4);
    s.campus.world.run_for(SimDuration::from_secs(4));

    let plane = s.campus.shard_plane().expect("campus is sharded");
    assert!(plane.handoffs() > 0, "no cross-shard flow before the edit");
    let entries_before: u64 = plane
        .shard_stats()
        .iter()
        .filter_map(|st| st.cache.as_ref().map(|c| c.entries))
        .sum();
    assert!(entries_before > 0, "no warm cache to protect");

    // Insert a deny on an idle telnet-ish class through the shared
    // store: no shard's warm web decisions fall inside its cube.
    let deltas = [PolicyDelta::Insert {
        index: 0,
        rule: PolicyRule::named("telnet-deny")
            .proto(6)
            .dst_port(2323)
            .deny(),
    }];
    let now = s.campus.world.kernel().now();
    let cubes = s.campus.controller_mut().apply_policy_delta(now, &deltas);
    assert!(!cubes.is_empty());

    let plane = s.campus.shard_plane().expect("campus is sharded");
    let entries_after: u64 = plane
        .shard_stats()
        .iter()
        .filter_map(|st| st.cache.as_ref().map(|c| c.entries))
        .sum();
    assert_eq!(
        entries_after, entries_before,
        "an idle-class delta must not evict any shard's warm entries"
    );

    let scoped: Vec<RuleDelta> = cubes.into_iter().map(RuleDelta::network_wide).collect();
    let mut violations = Vec::new();
    for _ in 0..30 {
        s.campus.world.run_for(SimDuration::from_millis(100));
        violations = audit_delta(&Snapshot::of_campus(&s.campus), &scoped);
        if violations.is_empty() {
            break;
        }
    }
    assert!(
        violations.is_empty(),
        "incremental audit on the sharded campus found: {violations:#?}"
    );
}
