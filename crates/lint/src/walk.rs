//! Deterministic workspace traversal.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into: vendored stubs are not ours
/// to lint, build output is generated, and the lint's own fixtures
/// are *supposed* to trip the rules.
const SKIP_DIRS: &[&str] = &["vendor", "target", ".git", "fixtures"];

/// Collects every workspace `.rs` file under `root`, sorted, so a
/// lint run itself is deterministic.
pub fn workspace_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    walk(root, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Finds the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}
