//! Diagnostics: stable, position-carrying messages from the lexer,
//! parser, checker and compiler.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How bad a diagnostic is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub enum Severity {
    /// Suspicious but compilable (e.g. a redundant shadowed rule).
    Warning,
    /// The program cannot be compiled.
    Error,
}

/// One diagnostic, anchored to a source position.
///
/// Positions are 1-based line/column of the offending token (or of
/// the declaration for whole-declaration findings), and are stable:
/// the same source text always yields the same diagnostics in the
/// same order.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Diag {
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
    /// Error or warning.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
}

impl Diag {
    /// An error at `line`:`col`.
    pub fn error(line: u32, col: u32, message: impl Into<String>) -> Self {
        Diag {
            line,
            col,
            severity: Severity::Error,
            message: message.into(),
        }
    }

    /// A warning at `line`:`col`.
    pub fn warning(line: u32, col: u32, message: impl Into<String>) -> Self {
        Diag {
            line,
            col,
            severity: Severity::Warning,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        write!(f, "{}:{}: {}: {}", self.line, self.col, sev, self.message)
    }
}

/// Whether any diagnostic in `diags` is an error.
pub fn has_errors(diags: &[Diag]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_stable() {
        let d = Diag::error(3, 7, "unknown group `lab`");
        assert_eq!(d.to_string(), "3:7: error: unknown group `lab`");
        let w = Diag::warning(1, 1, "x");
        assert_eq!(w.to_string(), "1:1: warning: x");
        assert!(has_errors(&[w.clone(), d.clone()]));
        assert!(!has_errors(&[w]));
    }
}
