//! Traffic-generating applications.

use livesec_net::{
    Body, DhcpMessage, EtherType, EthernetHeader, IcmpType, Ipv4Header, Ipv4Packet, MacAddr,
    Packet, Payload, TcpFlags, Transport, UdpDatagram,
};
use livesec_sim::{LatencySummary, SimDuration, SimTime};
use livesec_switch::{App, HostIo};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Maximum TCP payload per segment (Ethernet MTU minus headers).
pub const MSS: u32 = 1448;

// ---------------------------------------------------------------- HTTP

/// An HTTP/1.1-flavored client: requests objects of a configured size
/// and measures completion latency and goodput.
///
/// The request line encodes the desired object size
/// (`GET /size/<n> HTTP/1.1`), which [`HttpServer`] honors.
#[derive(Debug)]
pub struct HttpClient {
    server: Ipv4Addr,
    object_size: u32,
    think_time: SimDuration,
    start_delay: SimDuration,
    max_requests: Option<u32>,
    src_port: u16,
    rotate_ports: bool,
    stall_timeout: SimDuration,
    last_progress: SimTime,
    outstanding: Option<(u32, SimTime)>, // (bytes still expected, started)
    /// Responses abandoned after stalling (lost segments).
    pub aborted: u32,
    /// Requests issued.
    pub requests: u32,
    /// Responses fully received.
    pub completed: u32,
    /// Application bytes received.
    pub bytes_received: u64,
    /// Per-request completion latencies.
    pub latencies: LatencySummary,
}

impl HttpClient {
    /// Creates a client fetching `object_size`-byte objects from
    /// `server` back-to-back (no think time) after a 1 s start delay.
    pub fn new(server: Ipv4Addr, object_size: u32) -> Self {
        HttpClient {
            server,
            object_size,
            think_time: SimDuration::ZERO,
            start_delay: SimDuration::from_secs(1),
            max_requests: None,
            src_port: 40_080,
            rotate_ports: false,
            stall_timeout: SimDuration::from_millis(300),
            last_progress: SimTime::ZERO,
            outstanding: None,
            aborted: 0,
            requests: 0,
            completed: 0,
            bytes_received: 0,
            latencies: LatencySummary::new(),
        }
    }

    /// Sets the pause between a completed response and the next
    /// request.
    pub fn with_think_time(mut self, d: SimDuration) -> Self {
        self.think_time = d;
        self
    }

    /// Sets the delay before the first request (default 1 s, letting
    /// discovery converge).
    pub fn with_start_delay(mut self, d: SimDuration) -> Self {
        self.start_delay = d;
        self
    }

    /// Stops after `n` requests.
    pub fn with_max_requests(mut self, n: u32) -> Self {
        self.max_requests = Some(n);
        self
    }

    /// Uses a specific client port (distinguishes parallel clients on
    /// one host).
    pub fn with_src_port(mut self, port: u16) -> Self {
        self.src_port = port;
        self
    }

    /// Uses a fresh source port per request, so each request is a new
    /// flow for the controller (needed to exercise per-flow load
    /// balancing with short-lived flows).
    pub fn with_rotating_ports(mut self) -> Self {
        self.rotate_ports = true;
        self
    }

    /// Goodput over the active window, in bits per second.
    pub fn goodput_bps(&self, window: SimDuration) -> f64 {
        (self.bytes_received * 8) as f64 / window.as_secs_f64()
    }

    fn issue(&mut self, io: &mut HostIo<'_, '_>) {
        if let Some(max) = self.max_requests {
            if self.requests >= max {
                return;
            }
        }
        self.requests += 1;
        self.last_progress = io.now();
        if self.rotate_ports {
            self.src_port = 40_080 + (self.src_port - 40_079) % 20_000;
        }
        self.outstanding = Some((self.object_size, io.now()));
        let req = format!(
            "GET /size/{} HTTP/1.1\r\nHost: internet.example\r\n\r\n",
            self.object_size
        );
        io.send_tcp(
            self.server,
            self.src_port,
            80,
            self.requests,
            0,
            TcpFlags::PSH | TcpFlags::ACK,
            Payload::from(req.into_bytes()),
        );
    }
}

impl App for HttpClient {
    fn on_start(&mut self, io: &mut HostIo<'_, '_>) {
        io.set_timer(self.start_delay, 1);
        io.set_timer(self.start_delay + self.stall_timeout, 2);
    }

    fn on_timer(&mut self, io: &mut HostIo<'_, '_>, token: u64) {
        match token {
            1 => self.issue(io),
            2 => {
                // Stall recovery: if a response made no progress for a
                // full timeout (tail segments lost to queue drops),
                // abandon it and move on.
                if self.outstanding.is_some()
                    && io.now().since(self.last_progress) >= self.stall_timeout
                {
                    self.outstanding = None;
                    self.aborted += 1;
                    self.issue(io);
                }
                io.set_timer(self.stall_timeout, 2);
            }
            _ => {}
        }
    }

    fn on_packet(&mut self, io: &mut HostIo<'_, '_>, pkt: &Packet) {
        let Some(tcp) = pkt.tcp() else { return };
        if tcp.dst_port != self.src_port {
            return;
        }
        let n = tcp.payload.len() as u32;
        self.bytes_received += u64::from(n);
        self.last_progress = io.now();
        if let Some((remaining, started)) = self.outstanding {
            let left = remaining.saturating_sub(n);
            if left == 0 {
                self.completed += 1;
                self.latencies.record(io.now().since(started));
                self.outstanding = None;
                if self.think_time == SimDuration::ZERO {
                    self.issue(io);
                } else {
                    io.set_timer(self.think_time, 1);
                }
            } else {
                self.outstanding = Some((left, started));
            }
        }
    }
}

/// The HTTP server side: answers `GET /size/<n>` with an `n`-byte
/// response streamed in MSS-sized segments, paced at a configurable
/// rate (a stand-in for TCP's steady state: bursting whole objects
/// would just tail-drop at the first queue). Works as the gateway
/// app, standing in for "the Internet".
#[derive(Debug)]
pub struct HttpServer {
    pace_bps: u64,
    queue: std::collections::VecDeque<(Ipv4Addr, u16, u32, Payload)>,
    draining: bool,
    /// Requests served.
    pub requests: u32,
    /// Response bytes sent.
    pub bytes_sent: u64,
}

impl Default for HttpServer {
    fn default() -> Self {
        Self::new()
    }
}

impl HttpServer {
    /// Creates the server, pacing responses at 900 Mbps.
    pub fn new() -> Self {
        HttpServer {
            pace_bps: 900_000_000,
            queue: std::collections::VecDeque::new(),
            draining: false,
            requests: 0,
            bytes_sent: 0,
        }
    }

    /// Sets the aggregate response pacing rate.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is zero.
    pub fn with_pace_bps(mut self, bps: u64) -> Self {
        assert!(bps > 0, "pace must be positive");
        self.pace_bps = bps;
        self
    }

    fn parse_size(payload: &[u8]) -> Option<u32> {
        let text = std::str::from_utf8(payload).ok()?;
        let rest = text.strip_prefix("GET /size/")?;
        let end = rest.find(' ')?;
        rest[..end].parse().ok()
    }

    fn drain_one(&mut self, io: &mut HostIo<'_, '_>) {
        let Some((dst, port, seq, payload)) = self.queue.pop_front() else {
            self.draining = false;
            return;
        };
        let len = payload.len() as u64;
        io.send_tcp(dst, 80, port, seq, 0, TcpFlags::ACK, payload);
        self.bytes_sent += len;
        // Pace the next segment.
        let frame_bits = (len + 58) * 8;
        io.set_timer(
            SimDuration::from_nanos(frame_bits * 1_000_000_000 / self.pace_bps),
            1,
        );
    }
}

impl App for HttpServer {
    fn on_packet(&mut self, io: &mut HostIo<'_, '_>, pkt: &Packet) {
        let (Some(ip), Some(tcp)) = (pkt.ipv4(), pkt.tcp()) else {
            return;
        };
        if tcp.dst_port != 80 {
            return;
        }
        let Some(size) = Self::parse_size(tcp.payload.content()) else {
            return;
        };
        self.requests += 1;
        // First segment carries the response headers as real content
        // (so protocol identification sees "HTTP/1.1 200 OK"), padded
        // to MSS; the remainder streams as synthetic payload.
        let header = format!("HTTP/1.1 200 OK\r\nContent-Length: {size}\r\n\r\n");
        let first_len = size.min(MSS);
        let mut first = header.into_bytes();
        first.resize(first_len as usize, b'.');
        self.queue
            .push_back((ip.header.src, tcp.src_port, 0, Payload::from(first)));
        let mut sent = first_len;
        let mut seq = 1u32;
        while sent < size {
            let chunk = (size - sent).min(MSS);
            self.queue
                .push_back((ip.header.src, tcp.src_port, seq, Payload::Synthetic(chunk)));
            sent += chunk;
            seq += 1;
        }
        if !self.draining {
            self.draining = true;
            self.drain_one(io);
        }
    }

    fn on_timer(&mut self, io: &mut HostIo<'_, '_>, _token: u64) {
        self.drain_one(io);
    }
}

// ---------------------------------------------------------------- UDP

/// A constant-bit-rate UDP source (iperf-style).
#[derive(Debug)]
pub struct UdpBlaster {
    dst: Ipv4Addr,
    dst_port: u16,
    rate_bps: u64,
    payload_len: u32,
    start_delay: SimDuration,
    duration: Option<SimDuration>,
    started_at: Option<SimTime>,
    seq: u16,
    /// Datagrams sent.
    pub sent: u64,
    /// Bytes of payload sent.
    pub bytes_sent: u64,
}

impl UdpBlaster {
    /// Creates a blaster sending `rate_bps` toward `dst` with 1400-byte
    /// datagrams after a 1 s start delay.
    ///
    /// # Panics
    ///
    /// Panics if `rate_bps` is zero.
    pub fn new(dst: Ipv4Addr, rate_bps: u64) -> Self {
        assert!(rate_bps > 0, "rate must be positive");
        UdpBlaster {
            dst,
            dst_port: 5001,
            rate_bps,
            payload_len: 1400,
            start_delay: SimDuration::from_secs(1),
            duration: None,
            started_at: None,
            seq: 0,
            sent: 0,
            bytes_sent: 0,
        }
    }

    /// Sets the payload size per datagram.
    pub fn with_payload_len(mut self, len: u32) -> Self {
        self.payload_len = len;
        self
    }

    /// Sets the start delay.
    pub fn with_start_delay(mut self, d: SimDuration) -> Self {
        self.start_delay = d;
        self
    }

    /// Stops after `d` of sending.
    pub fn with_duration(mut self, d: SimDuration) -> Self {
        self.duration = Some(d);
        self
    }

    fn interval(&self) -> SimDuration {
        // Time to emit one datagram's worth of bits at the target rate.
        let frame_bits = (self.payload_len as u64 + 8 + 20 + 14 + 4) * 8;
        SimDuration::from_nanos(frame_bits * 1_000_000_000 / self.rate_bps)
    }
}

impl App for UdpBlaster {
    fn on_start(&mut self, io: &mut HostIo<'_, '_>) {
        io.set_timer(self.start_delay, 1);
    }

    fn on_timer(&mut self, io: &mut HostIo<'_, '_>, _token: u64) {
        let now = io.now();
        let started = *self.started_at.get_or_insert(now);
        if let Some(d) = self.duration {
            if now.since(started) >= d {
                return;
            }
        }
        self.seq = self.seq.wrapping_add(1);
        io.send_udp(
            self.dst,
            5002,
            self.dst_port,
            Payload::Synthetic(self.payload_len),
        );
        self.sent += 1;
        self.bytes_sent += u64::from(self.payload_len);
        io.set_timer(self.interval(), 1);
    }
}

// ---------------------------------------------------------------- ping

/// Periodic ICMP echo with RTT statistics (the paper's §V-B.3 latency
/// probe).
#[derive(Debug)]
pub struct Pinger {
    dst: Ipv4Addr,
    interval: SimDuration,
    start_delay: SimDuration,
    max_pings: Option<u32>,
    in_flight: HashMap<u16, SimTime>,
    /// Echo requests sent.
    pub sent: u32,
    /// Echo replies received.
    pub received: u32,
    /// Round-trip times.
    pub rtts: LatencySummary,
}

impl Pinger {
    /// Creates a pinger probing `dst` every 20 ms after a 1 s delay.
    pub fn new(dst: Ipv4Addr) -> Self {
        Pinger {
            dst,
            interval: SimDuration::from_millis(20),
            start_delay: SimDuration::from_secs(1),
            max_pings: None,
            in_flight: HashMap::new(),
            sent: 0,
            received: 0,
            rtts: LatencySummary::new(),
        }
    }

    /// Sets the probe interval.
    pub fn with_interval(mut self, d: SimDuration) -> Self {
        self.interval = d;
        self
    }

    /// Sets the start delay.
    pub fn with_start_delay(mut self, d: SimDuration) -> Self {
        self.start_delay = d;
        self
    }

    /// Stops after `n` probes.
    pub fn with_max_pings(mut self, n: u32) -> Self {
        self.max_pings = Some(n);
        self
    }

    /// Fraction of probes lost (0.0..=1.0).
    pub fn loss_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            1.0 - f64::from(self.received) / f64::from(self.sent)
        }
    }
}

impl App for Pinger {
    fn on_start(&mut self, io: &mut HostIo<'_, '_>) {
        io.set_timer(self.start_delay, 1);
    }

    fn on_timer(&mut self, io: &mut HostIo<'_, '_>, _token: u64) {
        if let Some(max) = self.max_pings {
            if self.sent >= max {
                return;
            }
        }
        self.sent += 1;
        let seq = self.sent as u16;
        self.in_flight.insert(seq, io.now());
        io.send_ping(self.dst, 0x1d, seq, 56);
        io.set_timer(self.interval, 1);
    }

    fn on_packet(&mut self, io: &mut HostIo<'_, '_>, pkt: &Packet) {
        let Some(ip) = pkt.ipv4() else { return };
        if let Transport::Icmp(msg) = &ip.transport {
            if msg.kind == IcmpType::EchoReply {
                if let Some(sent_at) = self.in_flight.remove(&msg.seq) {
                    self.received += 1;
                    self.rtts.record(io.now().since(sent_at));
                }
            }
        }
    }
}

// ---------------------------------------------------------------- ssh

/// An interactive SSH session: protocol banner, then periodic
/// keystrokes; expects a [`TcpEchoServer`] on the far side.
#[derive(Debug)]
pub struct SshSession {
    server: Ipv4Addr,
    keystroke_interval: SimDuration,
    start_delay: SimDuration,
    banner_sent: bool,
    /// Keystrokes sent.
    pub keystrokes: u32,
    /// Echo bytes received.
    pub echoes: u32,
}

impl SshSession {
    /// Creates a session typing every 200 ms after a 1 s delay.
    pub fn new(server: Ipv4Addr) -> Self {
        SshSession {
            server,
            keystroke_interval: SimDuration::from_millis(200),
            start_delay: SimDuration::from_secs(1),
            banner_sent: false,
            keystrokes: 0,
            echoes: 0,
        }
    }

    /// Sets the keystroke interval.
    pub fn with_keystroke_interval(mut self, d: SimDuration) -> Self {
        self.keystroke_interval = d;
        self
    }

    /// Sets the start delay.
    pub fn with_start_delay(mut self, d: SimDuration) -> Self {
        self.start_delay = d;
        self
    }
}

impl App for SshSession {
    fn on_start(&mut self, io: &mut HostIo<'_, '_>) {
        io.set_timer(self.start_delay, 1);
    }

    fn on_timer(&mut self, io: &mut HostIo<'_, '_>, _token: u64) {
        let payload: Payload = if self.banner_sent {
            self.keystrokes += 1;
            Payload::from(vec![b'k'; 32])
        } else {
            self.banner_sent = true;
            Payload::from(b"SSH-2.0-OpenSSH_5.8p1".as_ref())
        };
        io.send_tcp(
            self.server,
            40_022,
            22,
            self.keystrokes,
            0,
            TcpFlags::PSH | TcpFlags::ACK,
            payload,
        );
        io.set_timer(self.keystroke_interval, 1);
    }

    fn on_packet(&mut self, _io: &mut HostIo<'_, '_>, pkt: &Packet) {
        if pkt.tcp().is_some() {
            self.echoes += 1;
        }
    }
}

/// Echoes every TCP payload back to its sender (SSH/telnet stand-in
/// server).
#[derive(Debug, Default)]
pub struct TcpEchoServer {
    /// Segments echoed.
    pub echoed: u64,
}

impl TcpEchoServer {
    /// Creates the server.
    pub fn new() -> Self {
        Self::default()
    }
}

impl App for TcpEchoServer {
    fn on_packet(&mut self, io: &mut HostIo<'_, '_>, pkt: &Packet) {
        let (Some(ip), Some(tcp)) = (pkt.ipv4(), pkt.tcp()) else {
            return;
        };
        self.echoed += 1;
        io.send_tcp(
            ip.header.src,
            tcp.dst_port,
            tcp.src_port,
            0,
            tcp.seq,
            TcpFlags::ACK,
            tcp.payload.clone(),
        );
    }
}

// ---------------------------------------------------------- bittorrent

/// A BitTorrent downloader: protocol handshake, then a continuous
/// piece stream at the configured rate (Fig. 8's heavy downloader).
#[derive(Debug)]
pub struct BitTorrentPeer {
    peer: Ipv4Addr,
    rate_bps: u64,
    start_delay: SimDuration,
    handshake_sent: bool,
    /// Piece messages sent.
    pub pieces: u64,
    /// Bytes sent.
    pub bytes_sent: u64,
}

impl BitTorrentPeer {
    /// Creates a peer exchanging with `peer` at `rate_bps` after a 1 s
    /// delay.
    ///
    /// # Panics
    ///
    /// Panics if `rate_bps` is zero.
    pub fn new(peer: Ipv4Addr, rate_bps: u64) -> Self {
        assert!(rate_bps > 0, "rate must be positive");
        BitTorrentPeer {
            peer,
            rate_bps,
            start_delay: SimDuration::from_secs(1),
            handshake_sent: false,
            pieces: 0,
            bytes_sent: 0,
        }
    }

    /// Sets the start delay.
    pub fn with_start_delay(mut self, d: SimDuration) -> Self {
        self.start_delay = d;
        self
    }

    fn interval(&self) -> SimDuration {
        let frame_bits = (1400u64 + 20 + 20 + 14 + 4) * 8;
        SimDuration::from_nanos(frame_bits * 1_000_000_000 / self.rate_bps)
    }
}

impl App for BitTorrentPeer {
    fn on_start(&mut self, io: &mut HostIo<'_, '_>) {
        io.set_timer(self.start_delay, 1);
    }

    fn on_timer(&mut self, io: &mut HostIo<'_, '_>, _token: u64) {
        let payload: Payload = if self.handshake_sent {
            self.pieces += 1;
            Payload::Synthetic(1400)
        } else {
            self.handshake_sent = true;
            let mut hs = vec![0x13u8];
            hs.extend_from_slice(b"BitTorrent protocol");
            hs.extend_from_slice(&[0u8; 8]); // reserved
            hs.resize(68, 0xab); // info-hash + peer-id filler
            Payload::from(hs)
        };
        self.bytes_sent += payload.len() as u64;
        io.send_tcp(
            self.peer,
            40_688,
            6881,
            self.pieces as u32,
            0,
            TcpFlags::PSH | TcpFlags::ACK,
            payload,
        );
        io.set_timer(self.interval(), 1);
    }
}

// ---------------------------------------------------------------- attack

/// A compromised web client: browses normally, then embeds attack
/// payloads (drawn from the IDS default rule set) in its requests.
#[derive(Debug)]
pub struct AttackClient {
    server: Ipv4Addr,
    start_delay: SimDuration,
    interval: SimDuration,
    benign_before_attack: u32,
    attack_payload: Vec<u8>,
    /// Requests sent (benign + malicious).
    pub sent: u32,
    /// Replies received.
    pub received: u32,
}

impl AttackClient {
    /// Creates an attacker that sends `benign_before_attack` innocent
    /// requests, then starts embedding a directory-traversal attack.
    pub fn new(server: Ipv4Addr, benign_before_attack: u32) -> Self {
        AttackClient {
            server,
            start_delay: SimDuration::from_secs(1),
            interval: SimDuration::from_millis(20),
            benign_before_attack,
            attack_payload: b"GET /../../etc/passwd HTTP/1.1\r\nHost: victim\r\n\r\n".to_vec(),
            sent: 0,
            received: 0,
        }
    }

    /// Sets a custom attack payload (e.g. a different IDS signature).
    pub fn with_attack_payload(mut self, payload: Vec<u8>) -> Self {
        self.attack_payload = payload;
        self
    }

    /// Sets the start delay.
    pub fn with_start_delay(mut self, d: SimDuration) -> Self {
        self.start_delay = d;
        self
    }

    /// Sets the request interval.
    pub fn with_interval(mut self, d: SimDuration) -> Self {
        self.interval = d;
        self
    }
}

impl App for AttackClient {
    fn on_start(&mut self, io: &mut HostIo<'_, '_>) {
        io.set_timer(self.start_delay, 1);
    }

    fn on_timer(&mut self, io: &mut HostIo<'_, '_>, _token: u64) {
        self.sent += 1;
        let payload: Payload = if self.sent <= self.benign_before_attack {
            Payload::from(b"GET /news.html HTTP/1.1\r\nHost: victim\r\n\r\n".as_ref())
        } else {
            Payload::from(self.attack_payload.clone())
        };
        io.send_tcp(
            self.server,
            40_666,
            80,
            self.sent,
            0,
            TcpFlags::PSH | TcpFlags::ACK,
            payload,
        );
        io.set_timer(self.interval, 1);
    }

    fn on_packet(&mut self, _io: &mut HostIo<'_, '_>, _pkt: &Packet) {
        self.received += 1;
    }
}

/// A SYN flooder: bare SYN probes toward one victim port, each from a
/// fresh source port, never completing a handshake — the half-open
/// connection shape a stateful firewall's conntrack flags as a flood.
#[derive(Debug)]
pub struct SynFlood {
    victim: Ipv4Addr,
    victim_port: u16,
    start_delay: SimDuration,
    interval: SimDuration,
    max_syns: Option<u32>,
    src_port: u16,
    /// SYN probes sent.
    pub syns: u32,
    /// Replies received (a blocked flood sees none).
    pub replies: u32,
}

impl SynFlood {
    /// Creates a flooder probing `victim:victim_port` every 5 ms after
    /// a 1 s delay.
    pub fn new(victim: Ipv4Addr, victim_port: u16) -> Self {
        SynFlood {
            victim,
            victim_port,
            start_delay: SimDuration::from_secs(1),
            interval: SimDuration::from_millis(5),
            max_syns: None,
            src_port: 50_000,
            syns: 0,
            replies: 0,
        }
    }

    /// Sets the start delay.
    pub fn with_start_delay(mut self, d: SimDuration) -> Self {
        self.start_delay = d;
        self
    }

    /// Sets the probe interval.
    pub fn with_interval(mut self, d: SimDuration) -> Self {
        self.interval = d;
        self
    }

    /// Stops after `n` probes.
    pub fn with_max_syns(mut self, n: u32) -> Self {
        self.max_syns = Some(n);
        self
    }
}

impl App for SynFlood {
    fn on_start(&mut self, io: &mut HostIo<'_, '_>) {
        io.set_timer(self.start_delay, 1);
    }

    fn on_timer(&mut self, io: &mut HostIo<'_, '_>, _token: u64) {
        if let Some(max) = self.max_syns {
            if self.syns >= max {
                return;
            }
        }
        self.syns += 1;
        // A fresh source port per probe: every SYN is a new flow to
        // the controller and a new half-open entry to the firewall.
        self.src_port = 50_000 + (self.src_port - 49_999) % 10_000;
        io.send_tcp(
            self.victim,
            self.src_port,
            self.victim_port,
            self.syns,
            0,
            TcpFlags::SYN,
            Payload::from(Vec::new()),
        );
        io.set_timer(self.interval, 1);
    }

    fn on_packet(&mut self, _io: &mut HostIo<'_, '_>, _pkt: &Packet) {
        self.replies += 1;
    }
}

// ---------------------------------------------------------------- dhcp

/// A DHCP client exercising the controller's directory proxy: runs the
/// DORA exchange at start and records the granted lease.
#[derive(Debug)]
pub struct DhcpClient {
    start_delay: SimDuration,
    xid: u32,
    /// The lease obtained, once the exchange completes.
    pub lease: Option<Ipv4Addr>,
    /// Exchange messages received.
    pub replies: u32,
}

impl DhcpClient {
    /// Creates a client that solicits after 500 ms.
    pub fn new(xid: u32) -> Self {
        DhcpClient {
            start_delay: SimDuration::from_millis(500),
            xid,
            lease: None,
            replies: 0,
        }
    }

    fn send_dhcp(&self, io: &mut HostIo<'_, '_>, msg: &DhcpMessage) {
        // DHCP goes out as a broadcast before the host has an address.
        let pkt = Packet::new(
            EthernetHeader::new(io.mac(), MacAddr::BROADCAST, EtherType::Ipv4),
            Body::Ipv4(Ipv4Packet::new(
                Ipv4Header::new(Ipv4Addr::UNSPECIFIED, Ipv4Addr::BROADCAST),
                Transport::Udp(UdpDatagram::new(
                    DhcpMessage::CLIENT_PORT,
                    DhcpMessage::SERVER_PORT,
                    Payload::from(msg.encode()),
                )),
            )),
        );
        io.send_raw(pkt);
    }
}

impl App for DhcpClient {
    fn on_start(&mut self, io: &mut HostIo<'_, '_>) {
        io.set_timer(self.start_delay, 1);
    }

    fn on_timer(&mut self, io: &mut HostIo<'_, '_>, _token: u64) {
        let mac = io.mac();
        self.send_dhcp(io, &DhcpMessage::discover(self.xid, mac));
    }

    fn on_packet(&mut self, io: &mut HostIo<'_, '_>, pkt: &Packet) {
        let Some(udp) = pkt.udp() else { return };
        if udp.dst_port != DhcpMessage::CLIENT_PORT {
            return;
        }
        let Some(msg) = DhcpMessage::decode(udp.payload.content()) else {
            return;
        };
        if msg.xid != self.xid {
            return;
        }
        self.replies += 1;
        match msg.kind {
            livesec_net::DhcpMsgType::Offer => {
                let req = DhcpMessage::request(&msg);
                self.send_dhcp(io, &req);
            }
            livesec_net::DhcpMsgType::Ack => {
                self.lease = Some(msg.yiaddr);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use livesec_sim::{LinkSpec, PortId, World};
    use livesec_switch::{Host, LearningSwitch};

    fn two_hosts<A: App, B: App>(a: A, b: B) -> (World, livesec_sim::NodeId, livesec_sim::NodeId) {
        let mut world = World::new(3);
        let sw = world.add_node(LearningSwitch::new(2));
        let ha = world.add_node(Host::new(
            MacAddr::from_u64(1),
            "10.0.0.1".parse().unwrap(),
            a,
        ));
        let hb = world.add_node(Host::new(
            MacAddr::from_u64(2),
            "10.0.0.2".parse().unwrap(),
            b,
        ));
        world.connect(ha, PortId(1), sw, PortId(1), LinkSpec::gigabit());
        world.connect(hb, PortId(1), sw, PortId(2), LinkSpec::gigabit());
        (world, ha, hb)
    }

    #[test]
    fn http_request_response_cycle() {
        let client = HttpClient::new("10.0.0.2".parse().unwrap(), 100_000)
            .with_start_delay(SimDuration::from_millis(10))
            .with_max_requests(3);
        let (mut world, ha, hb) = two_hosts(client, HttpServer::new());
        world.run_for(SimDuration::from_secs(2));
        let c = world.node::<Host<HttpClient>>(ha);
        assert_eq!(c.app().completed, 3);
        assert_eq!(c.app().bytes_received, 300_000);
        assert_eq!(c.app().latencies.count(), 3);
        let s = world.node::<Host<HttpServer>>(hb);
        assert_eq!(s.app().requests, 3);
        assert_eq!(s.app().bytes_sent, 300_000);
    }

    #[test]
    fn http_server_ignores_garbage() {
        assert_eq!(HttpServer::parse_size(b"GET /size/512 HTTP/1.1"), Some(512));
        assert_eq!(HttpServer::parse_size(b"GET / HTTP/1.1"), None);
        assert_eq!(HttpServer::parse_size(b"\xff\xfe"), None);
        assert_eq!(HttpServer::parse_size(b"GET /size/xyz HTTP/1.1"), None);
    }

    #[test]
    fn udp_blaster_hits_target_rate() {
        let blaster = UdpBlaster::new("10.0.0.2".parse().unwrap(), 50_000_000)
            .with_start_delay(SimDuration::from_millis(10))
            .with_duration(SimDuration::from_millis(500));
        let (mut world, _ha, hb) = two_hosts(blaster, crate::scenario::IdleApp);
        world.run_for(SimDuration::from_secs(1));
        let sink = world.node::<Host<crate::scenario::IdleApp>>(hb);
        let achieved = (sink.rx_bytes() * 8) as f64 / 0.5;
        assert!(
            (achieved - 50_000_000.0).abs() / 50_000_000.0 < 0.1,
            "achieved {achieved}"
        );
    }

    #[test]
    fn pinger_measures_rtt() {
        let pinger = Pinger::new("10.0.0.2".parse().unwrap())
            .with_start_delay(SimDuration::from_millis(10))
            .with_interval(SimDuration::from_millis(5))
            .with_max_pings(20);
        let (mut world, ha, _) = two_hosts(pinger, crate::scenario::IdleApp);
        world.run_for(SimDuration::from_secs(1));
        let p = world.node::<Host<Pinger>>(ha);
        assert_eq!(p.app().sent, 20);
        assert_eq!(p.app().received, 20);
        assert_eq!(p.app().loss_rate(), 0.0);
        assert!(p.app().rtts.mean().unwrap() < SimDuration::from_millis(1));
    }

    #[test]
    fn ssh_banner_then_keystrokes() {
        let ssh = SshSession::new("10.0.0.2".parse().unwrap())
            .with_start_delay(SimDuration::from_millis(10))
            .with_keystroke_interval(SimDuration::from_millis(50));
        let (mut world, ha, hb) = two_hosts(ssh, TcpEchoServer::new());
        world.run_for(SimDuration::from_secs(1));
        let s = world.node::<Host<SshSession>>(ha);
        assert!(s.app().keystrokes >= 15, "{}", s.app().keystrokes);
        assert!(s.app().echoes >= 15);
        assert!(world.node::<Host<TcpEchoServer>>(hb).app().echoed >= 16);
    }

    #[test]
    fn bittorrent_handshake_first() {
        let bt = BitTorrentPeer::new("10.0.0.2".parse().unwrap(), 10_000_000)
            .with_start_delay(SimDuration::from_millis(10));
        let (mut world, ha, hb) = two_hosts(bt, crate::scenario::IdleApp);
        world.run_for(SimDuration::from_millis(200));
        let p = world.node::<Host<BitTorrentPeer>>(ha);
        assert!(p.app().pieces > 50);
        assert!(world.node::<Host<crate::scenario::IdleApp>>(hb).rx_bytes() > 50_000);
    }

    #[test]
    fn attacker_switches_to_malicious() {
        let atk = AttackClient::new("10.0.0.2".parse().unwrap(), 2)
            .with_start_delay(SimDuration::from_millis(10))
            .with_interval(SimDuration::from_millis(10));
        let (mut world, ha, _) = two_hosts(atk, TcpEchoServer::new());
        world.run_for(SimDuration::from_millis(200));
        let a = world.node::<Host<AttackClient>>(ha);
        assert!(a.app().sent > 10);
        assert!(a.app().received > 10, "echo server replies to all");
    }
}
