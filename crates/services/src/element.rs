//! The service-element application: capacity model, bypass forwarding,
//! and the controller control channel.

use crate::engines::Inspector;
use crate::msg::{SeMessage, SE_CONTROL_MAC, SE_CONTROL_PORT};
use livesec_net::{
    Body, EtherType, EthernetHeader, FlowKey, Ipv4Header, Ipv4Packet, Packet, Payload, Transport,
    UdpDatagram,
};
use livesec_sim::{SimDuration, SimTime};
use livesec_switch::{App, HostIo};
use std::collections::VecDeque;
use std::net::Ipv4Addr;

/// Timer token: send the periodic online report.
const REPORT_TOKEN: u64 = 1;
/// Timer token: a queued packet finished processing.
const EMIT_TOKEN: u64 = 2;

/// Counters exposed by a [`ServiceElement`] for tests and experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SeCounters {
    /// Packets fully processed (inspected and re-emitted).
    pub processed_packets: u64,
    /// Bytes fully processed.
    pub processed_bytes: u64,
    /// Packets dropped because the processing queue was full.
    pub overload_drops: u64,
    /// Event reports sent to the controller.
    pub events_sent: u64,
    /// Online reports sent to the controller.
    pub reports_sent: u64,
}

/// A VM-based service element: wraps an [`Inspector`] engine with the
/// paper's deployment behaviour.
///
/// * **Bypass-mode forwarding** — steered packets are re-emitted
///   unchanged after inspection; the AS switch's steering entries send
///   them onward (paper §IV-A).
/// * **Capacity model** — a configurable processing rate (default
///   500 Mbps, the paper's measured per-VM bypass rate) plus fixed
///   per-packet overhead; packets beyond a bounded backlog are
///   dropped. Throughput caps and queueing latency emerge from this.
/// * **Control channel** — periodic `Online` heartbeats with load
///   figures, and `Event` reports when the engine produces a finding,
///   both sent as magic-tagged UDP packets that the ingress switch
///   always punts to the controller.
pub struct ServiceElement<I: Inspector> {
    inspector: I,
    cert: u64,
    capacity_bps: u64,
    per_packet_overhead: SimDuration,
    max_backlog: SimDuration,
    report_interval: SimDuration,
    inline_blocking: bool,
    busy_until: SimTime,
    queue: VecDeque<Packet>,
    window_packets: u64,
    window_bits: u64,
    window_busy: SimDuration,
    counters: SeCounters,
}

impl<I: Inspector> std::fmt::Debug for ServiceElement<I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceElement")
            .field("cert", &self.cert)
            .field("capacity_bps", &self.capacity_bps)
            .field("queued", &self.queue.len())
            .finish_non_exhaustive()
    }
}

impl<I: Inspector> ServiceElement<I> {
    /// Wraps `inspector` with the paper's defaults: 500 Mbps capacity,
    /// 5 µs per-packet overhead, 20 ms maximum backlog, 100 ms report
    /// interval.
    pub fn new(inspector: I) -> Self {
        ServiceElement {
            inspector,
            cert: 0,
            capacity_bps: 500_000_000,
            per_packet_overhead: SimDuration::from_micros(5),
            max_backlog: SimDuration::from_millis(20),
            report_interval: SimDuration::from_millis(100),
            inline_blocking: false,
            busy_until: SimTime::ZERO,
            queue: VecDeque::new(),
            window_packets: 0,
            window_bits: 0,
            window_busy: SimDuration::ZERO,
            counters: SeCounters::default(),
        }
    }

    /// Sets the processing capacity in bits per second.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is zero.
    pub fn with_capacity_bps(mut self, bps: u64) -> Self {
        assert!(bps > 0, "capacity must be positive");
        self.capacity_bps = bps;
        self
    }

    /// Sets the certification token issued by the controller.
    pub fn with_cert(mut self, cert: u64) -> Self {
        self.cert = cert;
        self
    }

    /// Sets the per-packet processing overhead.
    pub fn with_per_packet_overhead(mut self, d: SimDuration) -> Self {
        self.per_packet_overhead = d;
        self
    }

    /// Sets the maximum processing backlog (queue depth in time units)
    /// before the element sheds load. Size it above the in-flight data
    /// the workload keeps outstanding through this element.
    pub fn with_max_backlog(mut self, d: SimDuration) -> Self {
        self.max_backlog = d;
        self
    }

    /// Sets the online-report interval.
    pub fn with_report_interval(mut self, d: SimDuration) -> Self {
        self.report_interval = d;
        self
    }

    /// Drops packets that produced a finding instead of re-emitting
    /// them (inline-blocking mode; the paper's default is off-path
    /// reporting with controller-side enforcement).
    pub fn with_inline_blocking(mut self) -> Self {
        self.inline_blocking = true;
        self
    }

    /// The element's counters.
    pub fn counters(&self) -> SeCounters {
        self.counters
    }

    /// The wrapped engine.
    pub fn inspector(&self) -> &I {
        &self.inspector
    }

    /// Current queue depth in packets.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    fn send_control(&mut self, io: &mut HostIo<'_, '_>, msg: &SeMessage) {
        let payload = Payload::from(msg.encode());
        let pkt = Packet::new(
            EthernetHeader::new(io.mac(), SE_CONTROL_MAC, EtherType::Ipv4),
            Body::Ipv4(Ipv4Packet::new(
                Ipv4Header::new(io.ip(), Ipv4Addr::BROADCAST),
                Transport::Udp(UdpDatagram::new(SE_CONTROL_PORT, SE_CONTROL_PORT, payload)),
            )),
        );
        io.send_raw(pkt);
    }

    fn send_online(&mut self, io: &mut HostIo<'_, '_>) {
        let window_secs = self.report_interval.as_secs_f64();
        let cpu = if window_secs > 0.0 {
            ((self.window_busy.as_secs_f64() / window_secs) * 100.0).min(100.0) as u8
        } else {
            0
        };
        let msg = SeMessage::Online {
            service: self.inspector.service(),
            cert: self.cert,
            cpu,
            // Memory footprint: a fixed share plus queue pressure.
            mem: (10 + self.queue.len().min(90)) as u8,
            pps: self.window_packets,
            bps: (self.window_bits as f64 / window_secs.max(1e-9)) as u64,
            total_pkts: self.counters.processed_packets,
        };
        self.window_packets = 0;
        self.window_bits = 0;
        self.window_busy = SimDuration::ZERO;
        self.counters.reports_sent += 1;
        self.send_control(io, &msg);
    }
}

impl<I: Inspector> App for ServiceElement<I> {
    fn wants_echo_requests(&self) -> bool {
        true // steered pings must be forwarded, not answered
    }

    fn on_start(&mut self, io: &mut HostIo<'_, '_>) {
        // First online report goes out immediately so the controller
        // learns the service type without waiting a full interval.
        self.send_online(io);
        io.set_timer(self.report_interval, REPORT_TOKEN);
    }

    fn on_packet(&mut self, io: &mut HostIo<'_, '_>, pkt: &Packet) {
        let now = io.now();
        let backlog = self.busy_until.saturating_since(now);
        if backlog > self.max_backlog {
            self.counters.overload_drops += 1;
            return;
        }
        let bits = (pkt.wire_len() * 8) as u64;
        let scan_time = SimDuration::from_nanos(
            ((bits as f64 / self.capacity_bps as f64) * 1e9 * self.inspector.cost_factor()) as u64,
        );
        let proc = self.per_packet_overhead + scan_time;
        let start = self.busy_until.max(now);
        self.busy_until = start + proc;
        self.window_busy += proc;
        self.queue.push_back(pkt.clone());
        io.set_timer(self.busy_until.since(now), EMIT_TOKEN);
    }

    fn on_timer(&mut self, io: &mut HostIo<'_, '_>, token: u64) {
        match token {
            REPORT_TOKEN => {
                // Engine housekeeping first: stateful engines expire
                // idle connection state here and may produce findings
                // (e.g. ConnClosed for fast-passed flows whose packets
                // no longer traverse this element).
                let now = io.now();
                for finding in self.inspector.poll(now) {
                    let msg = SeMessage::Event {
                        cert: self.cert,
                        flow: finding.flow,
                        verdict: finding.verdict,
                    };
                    self.counters.events_sent += 1;
                    self.send_control(io, &msg);
                }
                self.send_online(io);
                io.set_timer(self.report_interval, REPORT_TOKEN);
            }
            EMIT_TOKEN => {
                let Some(pkt) = self.queue.pop_front() else {
                    return;
                };
                self.counters.processed_packets += 1;
                self.counters.processed_bytes += pkt.wire_len() as u64;
                self.window_packets += 1;
                self.window_bits += (pkt.wire_len() * 8) as u64;

                let mut blocked = false;
                if let Some(key) = FlowKey::of(&pkt) {
                    if let Some(finding) = self.inspector.inspect_packet(&key, &pkt, io.now()) {
                        let msg = SeMessage::Event {
                            cert: self.cert,
                            flow: finding.flow,
                            verdict: finding.verdict,
                        };
                        self.counters.events_sent += 1;
                        self.send_control(io, &msg);
                        blocked = self.inline_blocking;
                    }
                }
                if !blocked {
                    io.send_raw(pkt);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::IdsEngine;
    use crate::msg::Verdict;
    use livesec_net::{MacAddr, PacketBuilder};
    use livesec_sim::{Ctx, LinkSpec, Node, NodeId, PortId, World};
    use livesec_switch::Host;
    use std::any::Any;

    /// Harness node standing in for the AS switch: forwards frames to
    /// the SE and records what comes back.
    struct Harness {
        to_send: Vec<Packet>,
        interval: SimDuration,
        returned: Vec<Packet>,
        control: Vec<SeMessage>,
    }

    impl Node for Harness {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(SimDuration::from_millis(1), 0);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, i: u64) {
            if (i as usize) < self.to_send.len() {
                ctx.send(PortId(1), self.to_send[i as usize].clone());
                ctx.set_timer(self.interval, i + 1);
            }
        }
        fn on_frame(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, pkt: Packet) {
            if pkt.arp().is_some() {
                return; // host-shell ARP announcements
            }
            if pkt.eth.dst == SE_CONTROL_MAC {
                if let Some(udp) = pkt.udp() {
                    if let Some(msg) = SeMessage::decode(udp.payload.content()) {
                        self.control.push(msg);
                        return;
                    }
                }
            }
            self.returned.push(pkt);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    type IdsSe = ServiceElement<crate::engines::SignatureEngine>;

    fn se_mac() -> MacAddr {
        MacAddr::from_u64(0xfe01)
    }

    fn steered_packet(payload: &[u8]) -> Packet {
        // Ingress switch has already rewritten dl_dst to the SE's MAC.
        PacketBuilder::tcp(MacAddr::from_u64(1), se_mac())
            .ips("10.0.0.1".parse().unwrap(), "8.8.8.8".parse().unwrap())
            .ports(5555, 80)
            .payload_bytes(payload)
            .build()
    }

    fn world_with_se(
        se: IdsSe,
        packets: Vec<Packet>,
        interval: SimDuration,
    ) -> (World, NodeId, NodeId) {
        let mut world = World::new(1);
        let harness = world.add_node(Harness {
            to_send: packets,
            interval,
            returned: vec![],
            control: vec![],
        });
        let se_node = world.add_node(Host::new(se_mac(), "10.0.9.1".parse().unwrap(), se));
        world.connect(harness, PortId(1), se_node, PortId(1), LinkSpec::gigabit());
        (world, harness, se_node)
    }

    #[test]
    fn clean_traffic_passes_through_unchanged() {
        let se = ServiceElement::new(IdsEngine::engine());
        let pkt = steered_packet(b"GET /index.html HTTP/1.1\r\n");
        let (mut world, harness, se_node) =
            world_with_se(se, vec![pkt.clone()], SimDuration::from_millis(1));
        world.run_for(SimDuration::from_millis(50));
        let h = world.node::<Harness>(harness);
        assert_eq!(h.returned.len(), 1);
        assert_eq!(h.returned[0], pkt, "bypass mode re-emits unchanged");
        let c = world.node::<Host<IdsSe>>(se_node).app().counters();
        assert_eq!(c.processed_packets, 1);
        assert_eq!(c.events_sent, 0);
    }

    #[test]
    fn attack_reported_to_controller_channel() {
        let se = ServiceElement::new(IdsEngine::engine()).with_cert(0x42);
        let pkt = steered_packet(b"GET /../../etc/passwd HTTP/1.1");
        let (mut world, harness, se_node) =
            world_with_se(se, vec![pkt], SimDuration::from_millis(1));
        world.run_for(SimDuration::from_millis(50));
        let h = world.node::<Harness>(harness);
        let event = h
            .control
            .iter()
            .find_map(|m| match m {
                SeMessage::Event { cert, verdict, .. } => Some((cert, verdict)),
                _ => None,
            })
            .expect("event report sent");
        assert_eq!(*event.0, 0x42);
        assert!(matches!(event.1, Verdict::Malicious { .. }));
        // The packet is still forwarded (off-path reporting, not inline).
        assert_eq!(h.returned.len(), 1);
        assert_eq!(
            world
                .node::<Host<IdsSe>>(se_node)
                .app()
                .counters()
                .events_sent,
            1
        );
    }

    #[test]
    fn inline_blocking_drops_offending_packet() {
        let se = ServiceElement::new(IdsEngine::engine()).with_inline_blocking();
        let attack = steered_packet(b"/etc/passwd");
        let clean = steered_packet(b"harmless");
        let (mut world, harness, _) =
            world_with_se(se, vec![attack, clean.clone()], SimDuration::from_millis(1));
        world.run_for(SimDuration::from_millis(50));
        let h = world.node::<Harness>(harness);
        assert_eq!(h.returned.len(), 1, "only the clean packet returns");
        assert_eq!(h.returned[0], clean);
    }

    #[test]
    fn online_reports_carry_service_and_load() {
        let se = ServiceElement::new(IdsEngine::engine())
            .with_report_interval(SimDuration::from_millis(10));
        let (mut world, harness, _) = world_with_se(se, vec![], SimDuration::from_millis(1));
        world.run_for(SimDuration::from_millis(100));
        let h = world.node::<Harness>(harness);
        let onlines: Vec<_> = h
            .control
            .iter()
            .filter(|m| matches!(m, SeMessage::Online { .. }))
            .collect();
        assert!(onlines.len() >= 9, "got {}", onlines.len());
        match onlines[0] {
            SeMessage::Online { service, .. } => {
                assert_eq!(*service, crate::msg::ServiceType::IntrusionDetection);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn overload_drops_when_backlog_exceeded() {
        // 1 Mbps capacity, flooded with back-to-back MTU packets.
        let se = ServiceElement::new(IdsEngine::engine()).with_capacity_bps(1_000_000);
        let packets: Vec<Packet> = (0..50).map(|_| steered_packet(&vec![b'x'; 1400])).collect();
        let (mut world, _, se_node) = world_with_se(se, packets, SimDuration::from_micros(10));
        world.run_for(SimDuration::from_secs(1));
        let c = world.node::<Host<IdsSe>>(se_node).app().counters();
        assert!(c.overload_drops > 0, "must shed load: {c:?}");
        assert!(c.processed_packets > 0, "but still make progress: {c:?}");
    }

    #[test]
    fn throughput_capped_by_capacity() {
        // 10 Mbps capacity; offer ~50 Mbps for 100 ms.
        let se = ServiceElement::new(IdsEngine::engine())
            .with_capacity_bps(10_000_000)
            .with_per_packet_overhead(SimDuration::ZERO);
        let packets: Vec<Packet> = (0..500)
            .map(|_| steered_packet(&vec![b'x'; 1250]))
            .collect();
        let (mut world, harness, _) = world_with_se(se, packets, SimDuration::from_micros(200));
        world.run_for(SimDuration::from_millis(200));
        let h = world.node::<Harness>(harness);
        let returned_bits: usize = h.returned.iter().map(|p| p.wire_len() * 8).sum();
        let achieved_bps = returned_bits as f64 / 0.2;
        assert!(
            achieved_bps < 12_000_000.0,
            "capacity respected: {achieved_bps}"
        );
        assert!(achieved_bps > 5_000_000.0, "not starved: {achieved_bps}");
    }
}
