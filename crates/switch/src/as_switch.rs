//! The Access-Switching layer switch: a software OpenFlow switch.

use livesec_net::{wire, FlowKey, MacAddr, Packet, PacketBuilder};
use livesec_openflow::{
    apply_actions, attestation_tag, lookup_key, packet_tag, Action, FlowEntry, FlowModCommand,
    FlowRemovedReason, FlowStats, ForwardingAttestation, OfMessage, OutPort, PacketInReason,
    PortStats, PortStatusReason, StatsBody, StatsRequestKind, SwitchChannel,
};
use livesec_sim::{Ctx, Node, NodeId, PortId, SimDuration};
use std::any::Any;
use std::collections::{HashMap, HashSet};

/// Timer token for the periodic housekeeping tick.
const TICK: u64 = 1;
/// Housekeeping ticks between keepalive echoes on the secure channel.
const ECHO_EVERY_TICKS: u64 = 10;
/// Housekeeping ticks of controller silence before the switch declares
/// its controller unreachable and enters its fail mode (3 s at the
/// default 100 ms tick — three missed keepalive rounds).
const DEFAULT_CTRL_TIMEOUT_TICKS: u64 = 30;
/// First reconnect-hello retry interval while degraded, in ticks.
const BACKOFF_START_TICKS: u64 = 5;
/// Reconnect backoff cap, in ticks (8 s at the default tick).
const BACKOFF_CAP_TICKS: u64 = 80;

/// What an [`AsSwitch`] does with table misses while its controller is
/// unreachable.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FailMode {
    /// Fail-secure (the OpenFlow "fail secure mode"): installed flows
    /// keep forwarding, table misses are dropped. Nothing traverses the
    /// network that the controller has not explicitly admitted.
    #[default]
    Secure,
    /// Fail-standalone: the switch degrades to a plain MAC-learning
    /// bridge for table misses, trading policy enforcement for
    /// connectivity (OvS's "standalone" fail mode).
    Standalone,
}

/// A software OpenFlow switch of the Access-Switching layer.
///
/// Models Open vSwitch as deployed in the paper (and, behind slower
/// links, the Pantou OF Wi-Fi APs): a flow table driven entirely by the
/// controller over a secure channel, with packet-ins for table misses.
///
/// Port conventions follow the deployment builder in `livesec`:
/// port 1 is the uplink into the Legacy-Switching layer, ports 2.. are
/// Network-Periphery access ports (hosts, service elements).
pub struct AsSwitch {
    channel: SwitchChannel,
    table: livesec_openflow::FlowTable,
    controller: Option<NodeId>,
    n_ports: u32,
    tick: SimDuration,
    down_ports: HashSet<u32>,
    pending_status: Vec<(PortStatusReason, u32)>,
    table_limit: Option<usize>,
    ticks: u64,
    fail_mode: FailMode,
    ctrl_timeout_ticks: u64,
    last_ctrl_tick: u64,
    degraded: bool,
    reconnect_backoff: u64,
    next_hello_tick: u64,
    l2: HashMap<MacAddr, u32>,
    /// Forwarding-attestation sampling divisor: 0 disables attestation
    /// entirely; `n` samples packets whose stitching tag is divisible
    /// by `n` (1 = attest everything).
    attest_every: u64,
    /// Silent-misforward compromise: when set, table hits forward out
    /// a skewed port while the table itself stays pristine.
    misforward: Option<u32>,
    /// Frames forwarded by table hits (not via controller).
    pub fast_path_frames: u64,
    /// Packet-ins sent.
    pub packet_ins: u64,
    /// Flow-mod adds rejected because the table was full.
    pub table_full_rejections: u64,
    /// Times the switch declared its controller unreachable.
    pub degraded_entries: u64,
    /// Reconnect hellos sent while degraded (capped exponential backoff).
    pub reconnect_hellos: u64,
    /// Table misses dropped in fail-secure degraded mode.
    pub fail_secure_drops: u64,
    /// Frames bridged by the L2 fallback in fail-standalone mode.
    pub standalone_frames: u64,
    /// Crash-restart cycles survived (fault injection).
    pub crash_restarts: u64,
    /// Forwarding attestations sampled into the controller.
    pub attestations_sent: u64,
    /// Flow entries silently tampered with (fault injection).
    pub rules_tampered: u64,
    /// Frames deliberately forwarded out a wrong port (fault injection).
    pub misforwarded_frames: u64,
    /// Forged frames originated by this switch (fault injection).
    pub injected_packets: u64,
}

impl std::fmt::Debug for AsSwitch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsSwitch")
            .field("dpid", &self.channel.datapath_id())
            .field("n_ports", &self.n_ports)
            .field("flow_entries", &self.table.len())
            .finish_non_exhaustive()
    }
}

impl AsSwitch {
    /// Creates a switch with the given datapath id and port count.
    pub fn new(datapath_id: u64, n_ports: u32) -> Self {
        AsSwitch {
            channel: SwitchChannel::new(datapath_id, n_ports),
            table: livesec_openflow::FlowTable::new(),
            controller: None,
            n_ports,
            tick: SimDuration::from_millis(100),
            down_ports: HashSet::new(),
            pending_status: Vec::new(),
            table_limit: None,
            ticks: 0,
            fail_mode: FailMode::Secure,
            ctrl_timeout_ticks: DEFAULT_CTRL_TIMEOUT_TICKS,
            last_ctrl_tick: 0,
            degraded: false,
            reconnect_backoff: BACKOFF_START_TICKS,
            next_hello_tick: 0,
            l2: HashMap::new(),
            attest_every: 0,
            misforward: None,
            fast_path_frames: 0,
            packet_ins: 0,
            table_full_rejections: 0,
            degraded_entries: 0,
            reconnect_hellos: 0,
            fail_secure_drops: 0,
            standalone_frames: 0,
            crash_restarts: 0,
            attestations_sent: 0,
            rules_tampered: 0,
            misforwarded_frames: 0,
            injected_packets: 0,
        }
    }

    /// Enables forwarding attestation at a `1/every` sampling rate:
    /// every table-hit forward whose packet tag divides `every` is
    /// attested to the controller. 0 (the default) disables
    /// attestation — existing deployments are byte-identical.
    pub fn with_attest_every(mut self, every: u64) -> Self {
        self.attest_every = every;
        self
    }

    /// Runtime setter for the attestation sampling divisor.
    pub fn set_attest_every(&mut self, every: u64) {
        self.attest_every = every;
    }

    /// The attestation sampling divisor (0 = attestation off).
    pub fn attest_every(&self) -> u64 {
        self.attest_every
    }

    /// Whether the switch is currently in silent-misforward mode.
    pub fn is_misforwarding(&self) -> bool {
        self.misforward.is_some()
    }

    /// Caps the flow table at `limit` entries: further adds are
    /// rejected (and counted), as a hardware TCAM or a configured OvS
    /// limit would. Replacements of existing entries still succeed.
    pub fn with_table_limit(mut self, limit: usize) -> Self {
        self.table_limit = Some(limit);
        self
    }

    /// Points the secure channel at the controller node.
    pub fn with_controller(mut self, controller: NodeId) -> Self {
        self.controller = Some(controller);
        self
    }

    /// Sets the housekeeping tick (flow expiry, port-status flush).
    pub fn with_tick(mut self, tick: SimDuration) -> Self {
        self.tick = tick;
        self
    }

    /// Sets what happens to table misses while the controller is
    /// unreachable (default: [`FailMode::Secure`]).
    pub fn with_fail_mode(mut self, mode: FailMode) -> Self {
        self.fail_mode = mode;
        self
    }

    /// Runtime setter for the fail mode.
    pub fn set_fail_mode(&mut self, mode: FailMode) {
        self.fail_mode = mode;
    }

    /// Sets the controller-silence threshold, in housekeeping ticks,
    /// after which the switch enters its fail mode.
    pub fn with_ctrl_timeout_ticks(mut self, ticks: u64) -> Self {
        self.ctrl_timeout_ticks = ticks;
        self
    }

    /// Runtime setter for the controller-silence threshold.
    pub fn set_ctrl_timeout_ticks(&mut self, ticks: u64) {
        self.ctrl_timeout_ticks = ticks;
    }

    /// The configured fail mode.
    pub fn fail_mode(&self) -> FailMode {
        self.fail_mode
    }

    /// Whether the switch currently considers its controller
    /// unreachable and is operating in its fail mode.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// The switch's datapath id.
    pub fn datapath_id(&self) -> u64 {
        self.channel.datapath_id()
    }

    /// The flow table (for inspection in tests and monitors).
    pub fn table(&self) -> &livesec_openflow::FlowTable {
        &self.table
    }

    /// Number of physical ports (1-based numbering).
    pub fn n_ports(&self) -> u32 {
        self.n_ports
    }

    /// A point-in-time copy of the flow table in install order — the
    /// per-switch half of a dataplane verifier's snapshot, taken by
    /// value so auditing never borrows the live switch.
    pub fn table_snapshot(&self) -> Vec<livesec_openflow::FlowEntry> {
        self.table
            .entries_in_install_order()
            .into_iter()
            .cloned()
            .collect()
    }

    /// Keepalive echo replies received from the controller.
    pub fn echo_replies(&self) -> u64 {
        self.channel.echo_replies_seen
    }

    /// Administratively fails a port: frames in/out are dropped and a
    /// port-status Delete is reported on the next tick.
    pub fn fail_port(&mut self, port: u32) {
        if self.down_ports.insert(port) {
            self.pending_status.push((PortStatusReason::Delete, port));
        }
    }

    /// Brings a failed port back; reported as a port-status Add.
    pub fn recover_port(&mut self, port: u32) {
        if self.down_ports.remove(&port) {
            self.pending_status.push((PortStatusReason::Add, port));
        }
    }

    fn send_to_controller(&mut self, ctx: &mut Ctx<'_>, msg: &OfMessage) {
        if let Some(c) = self.controller {
            let bytes = self.channel.send(msg);
            ctx.send_control(c, bytes);
        }
    }

    /// Samples a forwarding attestation for one table-hit forward.
    ///
    /// The sampling decision hashes only rewrite-invariant header
    /// fields, so every hop of the same packet makes the *same*
    /// decision — sampled packets are attested along their whole path
    /// and the detector can reconstruct complete chains.
    fn maybe_attest(
        &mut self,
        ctx: &mut Ctx<'_>,
        in_port: u32,
        out_port: u32,
        cookie: u64,
        key: &FlowKey,
        wire_len: u64,
    ) {
        if self.attest_every == 0 {
            return;
        }
        let pkt_tag = packet_tag(key, wire_len);
        if !pkt_tag.is_multiple_of(self.attest_every) {
            return;
        }
        self.attestations_sent += 1;
        let dpid = self.channel.datapath_id();
        let att = ForwardingAttestation {
            dpid,
            in_port,
            out_port,
            cookie,
            flow: *key,
            pkt_tag,
            tag: attestation_tag(dpid, in_port, out_port, cookie),
        };
        self.send_to_controller(ctx, &OfMessage::Attestation(att));
    }

    fn packet_in(&mut self, ctx: &mut Ctx<'_>, in_port: u32, reason: PacketInReason, pkt: &Packet) {
        self.packet_ins += 1;
        let msg = OfMessage::PacketIn {
            in_port,
            reason,
            data: wire::serialize(pkt),
        };
        self.send_to_controller(ctx, &msg);
    }

    fn emit(&mut self, ctx: &mut Ctx<'_>, dest: OutPort, in_port: Option<u32>, pkt: Packet) {
        match dest {
            OutPort::Physical(p) => {
                if !self.down_ports.contains(&p) {
                    ctx.send(PortId(p), pkt);
                }
            }
            OutPort::InPort => {
                if let Some(p) = in_port {
                    if !self.down_ports.contains(&p) {
                        ctx.send(PortId(p), pkt);
                    }
                }
            }
            OutPort::Flood => {
                for p in 1..=self.n_ports {
                    if Some(p) != in_port && !self.down_ports.contains(&p) {
                        // livesec-lint: allow(hot-path-alloc, reason = "flood fans one frame out to every port; a copy per port is the semantics")
                        ctx.send(PortId(p), pkt.clone());
                    }
                }
            }
            OutPort::Controller => {
                self.packet_in(ctx, in_port.unwrap_or(0), PacketInReason::Action, &pkt);
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // mirrors the flow-mod message fields
    fn apply_flow_mod(
        &mut self,
        ctx: &mut Ctx<'_>,
        command: FlowModCommand,
        matcher: livesec_openflow::Match,
        priority: u16,
        actions: Vec<livesec_openflow::Action>,
        idle_timeout: Option<u64>,
        hard_timeout: Option<u64>,
        cookie: u64,
        notify_removed: bool,
    ) {
        let now = ctx.now().as_nanos();
        match command {
            FlowModCommand::Add => {
                if let Some(limit) = self.table_limit {
                    let replaces = self.table.contains_strict(&matcher, priority);
                    if !replaces && self.table.len() >= limit {
                        self.table_full_rejections += 1;
                        return;
                    }
                }
                let mut entry = FlowEntry::new(matcher, actions, priority).with_cookie(cookie);
                entry.idle_timeout = idle_timeout;
                entry.hard_timeout = hard_timeout;
                entry.notify_removed = notify_removed;
                self.table.insert_at(entry, now);
            }
            FlowModCommand::Modify => {
                self.table.modify_actions(&matcher, false, &actions);
            }
            FlowModCommand::ModifyStrict => {
                self.table.modify_actions(&matcher, true, &actions);
            }
            FlowModCommand::Delete | FlowModCommand::DeleteStrict => {
                let strict = command == FlowModCommand::DeleteStrict;
                let removed = self
                    .table
                    .remove(&matcher, strict, strict.then_some(priority));
                for r in removed {
                    if r.entry.notify_removed {
                        let msg = OfMessage::FlowRemoved {
                            matcher: r.entry.matcher,
                            cookie: r.entry.cookie,
                            priority: r.entry.priority,
                            reason: FlowRemovedReason::Delete,
                            packet_count: r.entry.packet_count,
                            byte_count: r.entry.byte_count,
                        };
                        self.send_to_controller(ctx, &msg);
                    }
                }
            }
        }
    }

    fn answer_stats(&mut self, ctx: &mut Ctx<'_>, kind: StatsRequestKind) {
        let now = ctx.now().as_nanos();
        let body = match kind {
            StatsRequestKind::Flow(matcher) => StatsBody::Flow(
                self.table
                    .iter()
                    .filter(|e| matcher.subsumes(&e.matcher))
                    .map(|e| FlowStats {
                        matcher: e.matcher,
                        priority: e.priority,
                        cookie: e.cookie,
                        packet_count: e.packet_count,
                        byte_count: e.byte_count,
                        duration: now.saturating_sub(e.created_at),
                    })
                    .collect(),
            ),
            StatsRequestKind::Port(which) => {
                let ports: Vec<u32> = match which {
                    Some(p) => vec![p],
                    None => (1..=self.n_ports).collect(),
                };
                StatsBody::Port(
                    ports
                        .into_iter()
                        .map(|p| {
                            let c = ctx.port_counters(PortId(p));
                            PortStats {
                                port_no: p,
                                rx_packets: c.rx_frames,
                                tx_packets: c.tx_frames,
                                rx_bytes: c.rx_bytes,
                                tx_bytes: c.tx_bytes,
                                drops: c.drops,
                            }
                        })
                        .collect(),
                )
            }
            StatsRequestKind::Description => StatsBody::Description {
                manufacturer: "LiveSec reproduction".into(),
                hardware: "simulated x86 server, 4x GbE".into(),
                software: "ovs-1.1.0-model".into(),
            },
        };
        self.send_to_controller(ctx, &OfMessage::StatsReply(body));
    }
}

impl Node for AsSwitch {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(c) = self.controller {
            let hello = self.channel.hello();
            ctx.send_control(c, hello);
        }
        ctx.set_timer(self.tick, TICK);
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, port: PortId, pkt: Packet) {
        let in_port = port.number();
        if self.down_ports.contains(&in_port) {
            return;
        }
        let Some(key) = lookup_key(&pkt) else {
            // LLDP and unknown EtherTypes always go to the controller.
            if self.degraded {
                self.degraded_miss(ctx, in_port, pkt);
            } else {
                self.packet_in(ctx, in_port, PacketInReason::NoMatch, &pkt);
            }
            return;
        };
        let now = ctx.now().as_nanos();
        let bytes = pkt.wire_len() as u64;
        let Some(entry) = self.table.lookup_counting(in_port, &key, now, bytes) else {
            // Installed flows keep forwarding in either fail mode; only
            // misses behave differently while the controller is gone.
            if self.degraded {
                self.degraded_miss(ctx, in_port, pkt);
            } else {
                self.packet_in(ctx, in_port, PacketInReason::NoMatch, &pkt);
            }
            return;
        };
        let cookie = entry.cookie;
        let outcome = apply_actions(&pkt, &entry.actions);
        self.fast_path_frames += 1;
        for (dest, out_pkt) in outcome.outputs {
            // A compromised switch skews physical outputs while its
            // table stays pristine; the attestation records the port
            // the packet *actually* left on (the attestation pipeline
            // models trusted egress firmware below the compromise).
            let dest = match (dest, self.misforward) {
                (OutPort::Physical(p), Some(skew)) => {
                    self.misforwarded_frames += 1;
                    OutPort::Physical((p - 1 + skew) % self.n_ports + 1)
                }
                (d, _) => d,
            };
            if let OutPort::Physical(out) = dest {
                self.maybe_attest(ctx, in_port, out, cookie, &key, bytes);
            }
            self.emit(ctx, dest, Some(in_port), out_pkt);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token != TICK {
            return;
        }
        self.ticks += 1;
        // Liveness: too long without a word from the controller means
        // the secure channel is gone; enter the configured fail mode.
        if self.controller.is_some()
            && !self.degraded
            && self.ticks.saturating_sub(self.last_ctrl_tick) > self.ctrl_timeout_ticks
        {
            self.degraded = true;
            self.degraded_entries += 1;
            self.l2.clear();
            self.reconnect_backoff = BACKOFF_START_TICKS;
            self.next_hello_tick = self.ticks; // first retry right away
        }
        if self.degraded {
            // Reconnect with capped exponential backoff: re-offer the
            // hello until the controller answers anything at all.
            if self.ticks >= self.next_hello_tick {
                let hello = self.channel.hello();
                if let Some(c) = self.controller {
                    ctx.send_control(c, hello);
                }
                self.reconnect_hellos += 1;
                self.next_hello_tick = self.ticks + self.reconnect_backoff;
                self.reconnect_backoff = (self.reconnect_backoff * 2).min(BACKOFF_CAP_TICKS);
            }
        } else if self.ticks.is_multiple_of(ECHO_EVERY_TICKS) {
            // Keepalive: probe the controller periodically; replies are
            // counted by the channel (see `echo_replies_seen`).
            self.send_to_controller(ctx, &OfMessage::EchoRequest(self.ticks));
        }
        // Flush pending port-status notifications.
        let pending = std::mem::take(&mut self.pending_status);
        for (reason, port_no) in pending {
            self.send_to_controller(ctx, &OfMessage::PortStatus { reason, port_no });
        }
        // Expire flows.
        let removed = self.table.expire(ctx.now().as_nanos());
        for r in removed {
            if r.entry.notify_removed {
                let reason = match r.reason {
                    livesec_openflow::table::RemovalReason::IdleTimeout => {
                        FlowRemovedReason::IdleTimeout
                    }
                    livesec_openflow::table::RemovalReason::HardTimeout => {
                        FlowRemovedReason::HardTimeout
                    }
                    livesec_openflow::table::RemovalReason::Delete => FlowRemovedReason::Delete,
                };
                let msg = OfMessage::FlowRemoved {
                    matcher: r.entry.matcher,
                    cookie: r.entry.cookie,
                    priority: r.entry.priority,
                    reason,
                    packet_count: r.entry.packet_count,
                    byte_count: r.entry.byte_count,
                };
                self.send_to_controller(ctx, &msg);
            }
        }
        ctx.set_timer(self.tick, TICK);
    }

    fn on_control(&mut self, ctx: &mut Ctx<'_>, peer: NodeId, bytes: &[u8]) {
        // Any arrival proves the secure channel is physically alive,
        // even if the payload turns out to be garbage: refresh liveness
        // and leave degraded mode before decoding.
        self.last_ctrl_tick = self.ticks;
        if self.degraded {
            self.degraded = false;
            self.l2.clear();
            self.reconnect_backoff = BACKOFF_START_TICKS;
        }
        // The controller may batch several messages into one payload
        // (flow-mod batches end with a barrier); frames are processed
        // strictly in order, so all entries of a batch are applied
        // before its barrier is acknowledged.
        let (replies, up) = match self.channel.receive_all(bytes) {
            Ok(r) => r,
            Err(_) => return, // malformed control traffic is dropped
        };
        for r in replies {
            ctx.send_control(peer, r);
        }
        for msg in up {
            self.handle_controller_message(ctx, msg);
        }
    }

    fn on_crash_restart(&mut self, ctx: &mut Ctx<'_>) {
        // A power cycle: the flow table and the secure-channel session
        // are volatile and vanish; port hardware state (down ports) and
        // cumulative observability counters survive on the struct.
        self.crash_restarts += 1;
        self.table = livesec_openflow::FlowTable::new();
        self.channel.reset();
        self.pending_status.clear();
        self.misforward = None; // the compromise is volatile
        self.degraded = false;
        self.l2.clear();
        self.reconnect_backoff = BACKOFF_START_TICKS;
        self.last_ctrl_tick = self.ticks; // boot grace period
        if let Some(c) = self.controller {
            let hello = self.channel.hello();
            ctx.send_control(c, hello);
        }
    }

    fn on_rule_tamper(&mut self, ctx: &mut Ctx<'_>, salt: u64) {
        // Pick a victim entry that actually forwards somewhere, prefer
        // a controller-tagged (cookie != 0) one — those are the
        // entries whose integrity the path proof swears to. The
        // replacement keeps match/priority/timeouts but skews every
        // physical output and zeroes the cookie; no FlowRemoved is
        // sent, so the control plane sees nothing.
        let now = ctx.now().as_nanos();
        let forwards = |e: &&FlowEntry| {
            e.actions
                .iter()
                .any(|a| matches!(a, Action::Output(OutPort::Physical(_))))
        };
        let all = self.table.entries_in_install_order();
        let tagged: Vec<&FlowEntry> = all
            .iter()
            .copied()
            .filter(|e| e.cookie != 0)
            .filter(forwards)
            .collect();
        let pool: Vec<&FlowEntry> = if tagged.is_empty() {
            all.iter().copied().filter(forwards).collect()
        } else {
            tagged
        };
        if pool.is_empty() {
            return; // nothing to tamper with
        }
        let victim = pool[(salt % pool.len() as u64) as usize];
        let matcher = victim.matcher;
        let priority = victim.priority;
        let skew = 1 + (salt >> 32) as u32 % (self.n_ports - 1).max(1);
        let actions: Vec<Action> = victim
            .actions
            .iter()
            .map(|a| match *a {
                Action::Output(OutPort::Physical(p)) => {
                    Action::Output(OutPort::Physical((p - 1 + skew) % self.n_ports + 1))
                }
                other => other,
            })
            .collect();
        let idle = victim.idle_timeout;
        let hard = victim.hard_timeout;
        self.table.remove(&matcher, true, Some(priority));
        let mut entry = FlowEntry::new(matcher, actions, priority);
        entry.idle_timeout = idle;
        entry.hard_timeout = hard;
        self.table.insert_at(entry, now);
        self.rules_tampered += 1;
    }

    fn on_misforward(&mut self, _ctx: &mut Ctx<'_>, salt: u64) {
        // Persistent until a crash-restart: physical outputs are skewed
        // by a salt-derived constant in 1..n_ports, guaranteeing a
        // wrong (but existing) egress port.
        let skew = 1 + (salt % u64::from((self.n_ports - 1).max(1))) as u32;
        self.misforward = Some(skew);
    }

    fn on_packet_inject(&mut self, ctx: &mut Ctx<'_>, salt: u64) {
        // Originate a frame the controller never admitted: forged MACs
        // and documentation-range IPs derived from the salt, pushed out
        // the uplink. The (trusted) attestation pipeline still reports
        // the emission, which is exactly what gives it away.
        self.injected_packets += 1;
        let src_mac = MacAddr::from_u64(0x00ba_d000_0000 | (salt & 0xffff));
        let dst_mac = MacAddr::from_u64(0x00ba_d100_0000 | ((salt >> 16) & 0xffff));
        let src_ip = std::net::Ipv4Addr::new(203, 0, 113, (salt % 254) as u8 + 1);
        let dst_ip = std::net::Ipv4Addr::new(198, 51, 100, ((salt >> 8) % 254) as u8 + 1);
        let pkt = PacketBuilder::udp(src_mac, dst_mac)
            .ips(src_ip, dst_ip)
            .ports(40_000 + (salt % 1000) as u16, 4444)
            .payload_len(64)
            .build();
        let out_port = 1; // the uplink into the legacy fabric
        if let Some(key) = lookup_key(&pkt) {
            self.maybe_attest(ctx, 0, out_port, 0, &key, pkt.wire_len() as u64);
        }
        self.emit(ctx, OutPort::Physical(out_port), None, pkt);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl AsSwitch {
    /// Handles a table miss while the controller is unreachable.
    fn degraded_miss(&mut self, ctx: &mut Ctx<'_>, in_port: u32, pkt: Packet) {
        match self.fail_mode {
            FailMode::Secure => {
                self.fail_secure_drops += 1;
            }
            FailMode::Standalone => {
                // Plain learning bridge, like the Legacy-Switching
                // layer: learn the source, unicast if known, else flood.
                self.standalone_frames += 1;
                if pkt.eth.src.is_unicast() {
                    self.l2.insert(pkt.eth.src, in_port);
                }
                if pkt.eth.dst.is_unicast() {
                    if let Some(&out) = self.l2.get(&pkt.eth.dst) {
                        if out != in_port {
                            self.emit(ctx, OutPort::Physical(out), Some(in_port), pkt);
                        }
                        return;
                    }
                }
                self.emit(ctx, OutPort::Flood, Some(in_port), pkt);
            }
        }
    }

    /// Applies one controller message that the secure channel surfaced
    /// (everything the channel doesn't answer by itself).
    fn handle_controller_message(&mut self, ctx: &mut Ctx<'_>, msg: OfMessage) {
        match msg {
            OfMessage::FlowMod {
                command,
                matcher,
                priority,
                actions,
                idle_timeout,
                hard_timeout,
                cookie,
                notify_removed,
            } => self.apply_flow_mod(
                ctx,
                command,
                matcher,
                priority,
                actions,
                idle_timeout,
                hard_timeout,
                cookie,
                notify_removed,
            ),
            OfMessage::PacketOut {
                in_port,
                actions,
                data,
            } => {
                if let Ok(pkt) = wire::parse(&data) {
                    let outcome = apply_actions(&pkt, &actions);
                    for (dest, out_pkt) in outcome.outputs {
                        self.emit(ctx, dest, in_port, out_pkt);
                    }
                }
            }
            OfMessage::StatsRequest(kind) => self.answer_stats(ctx, kind),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use livesec_net::{FlowKey, MacAddr, PacketBuilder};
    use livesec_openflow::{codec, Action, Match};
    use livesec_sim::{LinkSpec, World};

    /// A controller stub that records packet-ins and can be pre-loaded
    /// with messages to push to the switch on start.
    struct StubController {
        switch: Option<NodeId>,
        outbox: Vec<OfMessage>,
        /// Messages pushed only after `late_at` elapses (a controller
        /// that "comes back" mid-run).
        late_outbox: Vec<OfMessage>,
        late_at: Option<SimDuration>,
        packet_ins: Vec<(u32, Vec<u8>)>,
        flow_removed: Vec<OfMessage>,
        port_status: Vec<OfMessage>,
        attestations: Vec<ForwardingAttestation>,
    }

    impl StubController {
        fn new() -> Self {
            StubController {
                switch: None,
                outbox: Vec::new(),
                late_outbox: Vec::new(),
                late_at: None,
                packet_ins: Vec::new(),
                flow_removed: Vec::new(),
                port_status: Vec::new(),
                attestations: Vec::new(),
            }
        }
    }

    impl Node for StubController {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            if let Some(sw) = self.switch {
                for (i, msg) in self.outbox.iter().enumerate() {
                    ctx.send_control(sw, codec::encode(msg, i as u32));
                }
            }
            if let Some(at) = self.late_at {
                ctx.set_timer(at, 1);
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            if let Some(sw) = self.switch {
                for (i, msg) in self.late_outbox.drain(..).enumerate() {
                    ctx.send_control(sw, codec::encode(&msg, 1000 + i as u32));
                }
            }
        }
        fn on_frame(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, _pkt: Packet) {}
        fn on_control(&mut self, _ctx: &mut Ctx<'_>, _peer: NodeId, bytes: &[u8]) {
            if let Ok((msg, _)) = codec::decode(bytes) {
                match msg {
                    OfMessage::PacketIn { in_port, data, .. } => {
                        self.packet_ins.push((in_port, data));
                    }
                    OfMessage::FlowRemoved { .. } => self.flow_removed.push(msg),
                    OfMessage::PortStatus { .. } => self.port_status.push(msg),
                    OfMessage::Attestation(a) => self.attestations.push(a),
                    _ => {}
                }
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Records everything it receives.
    struct Sink {
        got: Vec<Packet>,
    }

    impl Node for Sink {
        fn on_frame(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, pkt: Packet) {
            self.got.push(pkt);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Sends one packet at start.
    struct OneShot {
        pkt: Option<Packet>,
    }

    impl Node for OneShot {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            // Wait out the control-channel latency so flow-mods pushed
            // at start are installed before the frame arrives.
            ctx.set_timer(SimDuration::from_millis(1), 0);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            if let Some(pkt) = self.pkt.take() {
                ctx.send(PortId(1), pkt);
            }
        }
        fn on_frame(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, _pkt: Packet) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn test_packet() -> Packet {
        PacketBuilder::udp(MacAddr::from_u64(1), MacAddr::from_u64(2))
            .ips("10.0.0.1".parse().unwrap(), "10.0.0.2".parse().unwrap())
            .ports(1000, 2000)
            .payload_len(100)
            .build()
    }

    fn run(outbox: Vec<OfMessage>) -> (World, NodeId, NodeId, NodeId, NodeId) {
        // host(OneShot) -- p2 switch p3 -- sink; controller via channel.
        let mut world = World::new(1);
        let ctrl = world.add_node(StubController::new());
        let sw = world.add_node(AsSwitch::new(7, 4).with_controller(ctrl));
        let src = world.add_node(OneShot {
            pkt: Some(test_packet()),
        });
        let dst = world.add_node(Sink { got: vec![] });
        world.connect(src, PortId(1), sw, PortId(2), LinkSpec::gigabit());
        world.connect(dst, PortId(1), sw, PortId(3), LinkSpec::gigabit());
        world.node_mut::<StubController>(ctrl).switch = Some(sw);
        world.node_mut::<StubController>(ctrl).outbox = outbox;
        (world, ctrl, sw, src, dst)
    }

    #[test]
    fn table_miss_goes_to_controller() {
        let (mut world, ctrl, sw, _src, dst) = run(vec![]);
        world.run_for(SimDuration::from_millis(10));
        let c = world.node::<StubController>(ctrl);
        assert_eq!(c.packet_ins.len(), 1);
        assert_eq!(c.packet_ins[0].0, 2, "arrived on port 2");
        // The frame bytes round-trip through the wire codec.
        let pkt = wire::parse(&c.packet_ins[0].1).unwrap();
        assert_eq!(FlowKey::of(&pkt), FlowKey::of(&test_packet()));
        assert!(world.node::<Sink>(dst).got.is_empty(), "not forwarded");
        assert_eq!(world.node::<AsSwitch>(sw).packet_ins, 1);
    }

    #[test]
    fn installed_flow_forwards_without_controller() {
        let key = FlowKey::of(&test_packet()).unwrap();
        let (mut world, ctrl, sw, _src, dst) = run(vec![OfMessage::add_flow(
            Match::exact(2, &key),
            vec![Action::Output(OutPort::Physical(3))],
            10,
        )]);
        world.run_for(SimDuration::from_millis(10));
        assert_eq!(world.node::<Sink>(dst).got.len(), 1);
        assert!(world.node::<StubController>(ctrl).packet_ins.is_empty());
        assert_eq!(world.node::<AsSwitch>(sw).fast_path_frames, 1);
        // Counters on the entry reflect the hit.
        let e = world
            .node::<AsSwitch>(sw)
            .table()
            .peek(2, &key)
            .expect("entry present");
        assert_eq!(e.packet_count, 1);
    }

    #[test]
    fn drop_rule_blackholes() {
        let key = FlowKey::of(&test_packet()).unwrap();
        let (mut world, ctrl, _sw, _src, dst) = run(vec![OfMessage::add_flow(
            Match::exact(2, &key),
            vec![], // empty action list = drop
            10,
        )]);
        world.run_for(SimDuration::from_millis(10));
        assert!(world.node::<Sink>(dst).got.is_empty());
        assert!(world.node::<StubController>(ctrl).packet_ins.is_empty());
    }

    #[test]
    fn rewrite_action_applies() {
        let key = FlowKey::of(&test_packet()).unwrap();
        let se_mac = MacAddr::from_u64(0xfefe);
        let (mut world, _ctrl, _sw, _src, dst) = run(vec![OfMessage::add_flow(
            Match::exact(2, &key),
            vec![
                Action::SetDlDst(se_mac),
                Action::Output(OutPort::Physical(3)),
            ],
            10,
        )]);
        world.run_for(SimDuration::from_millis(10));
        let got = &world.node::<Sink>(dst).got;
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].eth.dst, se_mac);
    }

    #[test]
    fn flood_reaches_all_but_ingress() {
        let key = FlowKey::of(&test_packet()).unwrap();
        let (mut world, _ctrl, sw, src, dst) = run(vec![OfMessage::add_flow(
            Match::exact(2, &key),
            vec![Action::Output(OutPort::Flood)],
            10,
        )]);
        // Attach one more sink on port 4.
        let extra = world.add_node(Sink { got: vec![] });
        world.connect(extra, PortId(1), sw, PortId(4), LinkSpec::gigabit());
        world.run_for(SimDuration::from_millis(10));
        assert_eq!(world.node::<Sink>(dst).got.len(), 1);
        assert_eq!(world.node::<Sink>(extra).got.len(), 1);
        // Ingress node got nothing back (OneShot has no counters; check
        // via port counters: switch port 2 transmitted 0 frames).
        assert_eq!(
            world.kernel().port_counters(sw, PortId(2)).tx_frames,
            0,
            "no reflection to ingress"
        );
        let _ = src;
    }

    #[test]
    fn idle_timeout_reports_flow_removed() {
        let key = FlowKey::of(&test_packet()).unwrap();
        let mut fm = OfMessage::add_flow(
            Match::exact(2, &key),
            vec![Action::Output(OutPort::Physical(3))],
            10,
        );
        if let OfMessage::FlowMod {
            idle_timeout,
            notify_removed,
            ..
        } = &mut fm
        {
            *idle_timeout = Some(SimDuration::from_millis(50).as_nanos());
            *notify_removed = true;
        }
        let (mut world, ctrl, sw, _src, _dst) = run(vec![fm]);
        world.run_for(SimDuration::from_millis(500));
        let c = world.node::<StubController>(ctrl);
        assert_eq!(c.flow_removed.len(), 1);
        assert!(world.node::<AsSwitch>(sw).table().is_empty());
    }

    #[test]
    fn port_failure_reports_status_and_blocks_traffic() {
        let key = FlowKey::of(&test_packet()).unwrap();
        let (mut world, ctrl, sw, _src, dst) = run(vec![OfMessage::add_flow(
            Match::exact(2, &key),
            vec![Action::Output(OutPort::Physical(3))],
            10,
        )]);
        world.node_mut::<AsSwitch>(sw).fail_port(3);
        world.run_for(SimDuration::from_millis(300));
        assert!(world.node::<Sink>(dst).got.is_empty(), "egress is down");
        let c = world.node::<StubController>(ctrl);
        assert_eq!(c.port_status.len(), 1);
        match &c.port_status[0] {
            OfMessage::PortStatus { reason, port_no } => {
                assert_eq!(*reason, PortStatusReason::Delete);
                assert_eq!(*port_no, 3);
            }
            _ => panic!("expected port status"),
        }
    }

    #[test]
    fn packet_out_emits() {
        let (mut world, _ctrl, _sw, _src, dst) = run(vec![OfMessage::PacketOut {
            in_port: None,
            actions: vec![Action::Output(OutPort::Physical(3))],
            data: wire::serialize(&test_packet()),
        }]);
        world.run_for(SimDuration::from_millis(10));
        assert_eq!(world.node::<Sink>(dst).got.len(), 1);
    }

    #[test]
    fn table_limit_rejects_overflow_but_allows_replacement() {
        let keys: Vec<FlowKey> = (0..3u16)
            .map(|i| {
                let mut k = FlowKey::of(&test_packet()).unwrap();
                k.tp_src = 1000 + i;
                k
            })
            .collect();
        let mut outbox: Vec<OfMessage> = keys
            .iter()
            .map(|k| {
                OfMessage::add_flow(
                    Match::exact(2, k),
                    vec![Action::Output(OutPort::Physical(3))],
                    10,
                )
            })
            .collect();
        // A replacement of the first entry must still be allowed.
        outbox.push(OfMessage::add_flow(
            Match::exact(2, &keys[0]),
            vec![Action::Output(OutPort::Physical(4))],
            10,
        ));
        let mut world = World::new(1);
        let ctrl = world.add_node(StubController::new());
        let sw = world.add_node(
            AsSwitch::new(7, 4)
                .with_controller(ctrl)
                .with_table_limit(2),
        );
        world.node_mut::<StubController>(ctrl).switch = Some(sw);
        world.node_mut::<StubController>(ctrl).outbox = outbox;
        world.run_for(SimDuration::from_millis(10));
        let s = world.node::<AsSwitch>(sw);
        assert_eq!(s.table().len(), 2, "third add rejected");
        assert_eq!(s.table_full_rejections, 1);
        // The replacement landed: entry 0 now outputs to port 4.
        let e = s.table().peek(2, &keys[0]).unwrap();
        assert_eq!(e.actions, vec![Action::Output(OutPort::Physical(4))]);
    }

    /// Sends one packet after a configurable delay (to reach the
    /// switch once it has already entered degraded mode).
    struct DelayedShot {
        pkt: Option<Packet>,
        delay: SimDuration,
    }

    impl Node for DelayedShot {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(self.delay, 0);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            if let Some(pkt) = self.pkt.take() {
                ctx.send(PortId(1), pkt);
            }
        }
        fn on_frame(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, _pkt: Packet) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Wires a switch with a mute peer node as its "controller" (every
    /// control send is simply never answered), one delayed sender on
    /// port 2 and one sink on port 3.
    fn run_degraded(
        mode: FailMode,
        send_at: SimDuration,
    ) -> (World, NodeId, NodeId, NodeId, NodeId) {
        let mut world = World::new(1);
        let ctrl = world.add_node(StubController::new());
        let sw = world.add_node(
            AsSwitch::new(7, 4)
                .with_controller(ctrl)
                .with_fail_mode(mode)
                .with_ctrl_timeout_ticks(2),
        );
        let src = world.add_node(DelayedShot {
            pkt: Some(test_packet()),
            delay: send_at,
        });
        let dst = world.add_node(Sink { got: vec![] });
        world.connect(src, PortId(1), sw, PortId(2), LinkSpec::gigabit());
        world.connect(dst, PortId(1), sw, PortId(3), LinkSpec::gigabit());
        (world, ctrl, sw, src, dst)
    }

    #[test]
    fn silent_controller_enters_degraded_mode() {
        let (mut world, _ctrl, sw, _src, _dst) =
            run_degraded(FailMode::Secure, SimDuration::from_secs(9));
        world.run_for(SimDuration::from_millis(250));
        assert!(!world.node::<AsSwitch>(sw).is_degraded(), "within timeout");
        world.run_for(SimDuration::from_millis(300));
        let s = world.node::<AsSwitch>(sw);
        assert!(s.is_degraded(), "timeout exceeded");
        assert_eq!(s.degraded_entries, 1);
    }

    #[test]
    fn fail_secure_drops_misses_but_keeps_installed_flows() {
        let key = FlowKey::of(&test_packet()).unwrap();
        let (mut world, ctrl, sw, _src, dst) =
            run_degraded(FailMode::Secure, SimDuration::from_secs(1));
        // Pre-install a flow for a *different* session; it must keep
        // forwarding even in degraded mode.
        let mut other = key;
        other.tp_src = 4242;
        world.node_mut::<StubController>(ctrl).switch = Some(sw);
        world.node_mut::<StubController>(ctrl).outbox = vec![OfMessage::add_flow(
            Match::exact(2, &other),
            vec![Action::Output(OutPort::Physical(3))],
            10,
        )];
        world.run_for(SimDuration::from_secs(2));
        let s = world.node::<AsSwitch>(sw);
        assert!(s.is_degraded());
        assert_eq!(s.fail_secure_drops, 1, "the miss was dropped");
        assert_eq!(s.table().len(), 1, "installed flow survives");
        assert!(world.node::<Sink>(dst).got.is_empty());
        // The miss was NOT sent upstream: the only packet-ins a secure
        // switch emits while degraded would be pointless.
        assert!(world.node::<StubController>(ctrl).packet_ins.is_empty());
    }

    #[test]
    fn fail_standalone_falls_back_to_l2_learning() {
        let (mut world, ctrl, sw, _src, dst) =
            run_degraded(FailMode::Standalone, SimDuration::from_secs(1));
        world.run_for(SimDuration::from_secs(2));
        let s = world.node::<AsSwitch>(sw);
        assert!(s.is_degraded());
        assert_eq!(s.standalone_frames, 1);
        assert_eq!(
            world.node::<Sink>(dst).got.len(),
            1,
            "unknown destination flooded to the sink"
        );
        assert!(world.node::<StubController>(ctrl).packet_ins.is_empty());
    }

    #[test]
    fn reconnect_hellos_back_off_exponentially() {
        let (mut world, _ctrl, sw, _src, _dst) =
            run_degraded(FailMode::Secure, SimDuration::from_secs(60));
        // Degraded at tick 3; hellos at ticks 3, 8, 18, 38, 78, then
        // every 80 (the cap). 40 s = 400 ticks -> 5 + 4 = 9 hellos.
        world.run_for(SimDuration::from_secs(40));
        let s = world.node::<AsSwitch>(sw);
        assert!(s.is_degraded());
        assert_eq!(
            s.reconnect_hellos, 9,
            "capped exponential backoff, not per-tick spam"
        );
    }

    #[test]
    fn control_arrival_exits_degraded_mode() {
        let key = FlowKey::of(&test_packet()).unwrap();
        let (mut world, ctrl, sw, _src, dst) =
            run_degraded(FailMode::Secure, SimDuration::from_secs(2));
        // The controller "comes back" after 1.5 s with a flow-mod for
        // the delayed packet.
        {
            let c = world.node_mut::<StubController>(ctrl);
            c.switch = Some(sw);
            c.late_at = Some(SimDuration::from_millis(1500));
            c.late_outbox = vec![OfMessage::add_flow(
                Match::exact(2, &key),
                vec![Action::Output(OutPort::Physical(3))],
                10,
            )];
        }
        world.run_for(SimDuration::from_secs(1));
        assert!(world.node::<AsSwitch>(sw).is_degraded());
        // Shortly after the late flow-mod lands the switch is healthy
        // again (with this test's 2-tick timeout it will re-degrade
        // once the controller goes silent again, so check promptly).
        world.run_for(SimDuration::from_millis(600));
        assert!(
            !world.node::<AsSwitch>(sw).is_degraded(),
            "any control arrival recovers"
        );
        world.run_for(SimDuration::from_secs(1));
        assert_eq!(
            world.node::<Sink>(dst).got.len(),
            1,
            "the installed flow forwarded the delayed packet"
        );
    }

    #[test]
    fn crash_restart_wipes_table_and_rehellos() {
        let key = FlowKey::of(&test_packet()).unwrap();
        let (mut world, ctrl, sw, _src, _dst) = run(vec![OfMessage::add_flow(
            Match::exact(2, &key),
            vec![Action::Output(OutPort::Physical(3))],
            10,
        )]);
        world.install_fault_plan(&livesec_sim::FaultPlan::new(1).at(
            livesec_sim::SimTime::from_nanos(5_000_000),
            livesec_sim::FaultKind::CrashRestart { node: sw },
        ));
        world.run_for(SimDuration::from_millis(10));
        let s = world.node::<AsSwitch>(sw);
        assert_eq!(s.crash_restarts, 1);
        assert!(s.table().is_empty(), "flow table is volatile");
        assert!(!s.is_degraded(), "a restart is not degraded mode");
        let _ = ctrl;
    }

    #[test]
    fn table_hit_attests_when_sampling_on() {
        let key = FlowKey::of(&test_packet()).unwrap();
        let mut fm = OfMessage::add_flow(
            Match::exact(2, &key),
            vec![Action::Output(OutPort::Physical(3))],
            10,
        );
        if let OfMessage::FlowMod { cookie, .. } = &mut fm {
            *cookie = 77;
        }
        let (mut world, ctrl, sw, _src, dst) = run(vec![fm]);
        world.node_mut::<AsSwitch>(sw).set_attest_every(1);
        world.run_for(SimDuration::from_millis(10));
        assert_eq!(world.node::<Sink>(dst).got.len(), 1);
        let s = world.node::<AsSwitch>(sw);
        assert_eq!(s.attestations_sent, 1);
        let c = world.node::<StubController>(ctrl);
        assert_eq!(c.attestations.len(), 1);
        let a = &c.attestations[0];
        assert_eq!((a.dpid, a.in_port, a.out_port, a.cookie), (7, 2, 3, 77));
        assert_eq!(a.tag, attestation_tag(7, 2, 3, 77));
        assert_eq!(a.pkt_tag, packet_tag(&key, test_packet().wire_len() as u64));
    }

    #[test]
    fn attestation_off_by_default() {
        let key = FlowKey::of(&test_packet()).unwrap();
        let (mut world, ctrl, sw, _src, _dst) = run(vec![OfMessage::add_flow(
            Match::exact(2, &key),
            vec![Action::Output(OutPort::Physical(3))],
            10,
        )]);
        world.run_for(SimDuration::from_millis(10));
        assert_eq!(world.node::<AsSwitch>(sw).attestations_sent, 0);
        assert!(world.node::<StubController>(ctrl).attestations.is_empty());
    }

    #[test]
    fn misforward_skews_output_but_attests_truth() {
        let key = FlowKey::of(&test_packet()).unwrap();
        let (mut world, ctrl, sw, _src, dst) = run(vec![OfMessage::add_flow(
            Match::exact(2, &key),
            vec![Action::Output(OutPort::Physical(3))],
            10,
        )]);
        world.node_mut::<AsSwitch>(sw).set_attest_every(1);
        world.install_fault_plan(&livesec_sim::FaultPlan::new(5).at(
            livesec_sim::SimTime::from_nanos(500_000),
            livesec_sim::FaultKind::SilentMisforward { node: sw },
        ));
        world.run_for(SimDuration::from_millis(10));
        let s = world.node::<AsSwitch>(sw);
        assert!(s.is_misforwarding());
        assert_eq!(s.misforwarded_frames, 1);
        // The packet did NOT reach its intended sink...
        assert!(world.node::<Sink>(dst).got.is_empty());
        // ...the table still reads correct...
        let e = s.table().peek(2, &key).unwrap();
        assert_eq!(e.actions, vec![Action::Output(OutPort::Physical(3))]);
        // ...and the attestation reports the port actually used.
        let c = world.node::<StubController>(ctrl);
        assert_eq!(c.attestations.len(), 1);
        assert_ne!(c.attestations[0].out_port, 3);
    }

    #[test]
    fn rule_tamper_rewrites_entry_silently() {
        let key = FlowKey::of(&test_packet()).unwrap();
        let mut fm = OfMessage::add_flow(
            Match::exact(2, &key),
            vec![Action::Output(OutPort::Physical(3))],
            10,
        );
        if let OfMessage::FlowMod {
            cookie,
            notify_removed,
            ..
        } = &mut fm
        {
            *cookie = 77;
            *notify_removed = true;
        }
        let (mut world, ctrl, sw, _src, dst) = run(vec![fm]);
        world.install_fault_plan(&livesec_sim::FaultPlan::new(5).at(
            livesec_sim::SimTime::from_nanos(500_000),
            livesec_sim::FaultKind::RuleTamper { node: sw },
        ));
        world.run_for(SimDuration::from_millis(10));
        let s = world.node::<AsSwitch>(sw);
        assert_eq!(s.rules_tampered, 1);
        let e = s.table().peek(2, &key).expect("entry still present");
        assert_eq!(e.cookie, 0, "tampered entry lost its cookie");
        assert_ne!(e.actions, vec![Action::Output(OutPort::Physical(3))]);
        assert!(world.node::<Sink>(dst).got.is_empty(), "misdirected");
        // Silent: no FlowRemoved despite notify_removed on the victim.
        assert!(world.node::<StubController>(ctrl).flow_removed.is_empty());
    }

    #[test]
    fn packet_inject_originates_attested_frame() {
        let (mut world, ctrl, sw, _src, _dst) = run(vec![]);
        // Attach a sink on the "uplink" port 1.
        let up = world.add_node(Sink { got: vec![] });
        world.connect(up, PortId(1), sw, PortId(1), LinkSpec::gigabit());
        world.node_mut::<AsSwitch>(sw).set_attest_every(1);
        world.install_fault_plan(&livesec_sim::FaultPlan::new(5).at(
            livesec_sim::SimTime::from_nanos(500_000),
            livesec_sim::FaultKind::PacketInject { node: sw },
        ));
        world.run_for(SimDuration::from_millis(10));
        assert_eq!(world.node::<AsSwitch>(sw).injected_packets, 1);
        assert_eq!(world.node::<Sink>(up).got.len(), 1, "frame hit the fabric");
        let c = world.node::<StubController>(ctrl);
        assert_eq!(c.attestations.len(), 1);
        let a = &c.attestations[0];
        assert_eq!(a.in_port, 0, "locally originated");
        assert_eq!(a.cookie, 0, "no admitted flow backs it");
    }

    #[test]
    fn lldp_always_packet_in() {
        let probe = livesec_net::packet::lldp_frame(
            MacAddr::from_u64(5),
            livesec_net::LldpFrame::new(99, 1),
        );
        let mut world = World::new(1);
        let ctrl = world.add_node(StubController::new());
        let sw = world.add_node(AsSwitch::new(7, 4).with_controller(ctrl));
        let src = world.add_node(OneShot { pkt: Some(probe) });
        world.connect(src, PortId(1), sw, PortId(2), LinkSpec::gigabit());
        world.node_mut::<StubController>(ctrl).switch = Some(sw);
        world.run_for(SimDuration::from_millis(10));
        let c = world.node::<StubController>(ctrl);
        assert_eq!(c.packet_ins.len(), 1);
        let pkt = wire::parse(&c.packet_ins[0].1).unwrap();
        assert_eq!(pkt.lldp().unwrap().chassis_id, 99);
    }
}
