//! The Legacy-Switching layer: a MAC-learning Ethernet switch.

use livesec_net::Packet;
use livesec_sim::{Ctx, Node, PortId, SimDuration, SimTime};
use std::any::Any;
use std::collections::{BTreeMap, HashSet};

/// Timer token for the aging sweep.
const AGE_TICK: u64 = 1;

/// A classic transparent learning bridge with address aging.
///
/// This is the paper's Legacy-Switching layer: it provides plain L2
/// reachability between all Access-Switching switches and is entirely
/// unaware of OpenFlow. Loop freedom in redundant topologies comes from
/// [`crate::stp`], which marks blocked ports.
#[derive(Debug)]
pub struct LearningSwitch {
    n_ports: u32,
    // Ordered so the aging sweep in `on_timer` visits entries in
    // MAC order (DESIGN.md §6); lookups are keyed, so the switch
    // dataplane is unaffected.
    table: BTreeMap<livesec_net::MacAddr, (u32, SimTime)>,
    blocked: HashSet<u32>,
    age_limit: SimDuration,
    /// Frames forwarded (unicast hits).
    pub forwarded: u64,
    /// Frames flooded (unknown destination, broadcast, multicast).
    pub flooded: u64,
}

impl LearningSwitch {
    /// Creates a learning switch with `n_ports` ports and a 300 s
    /// address age limit (the common IEEE default).
    pub fn new(n_ports: u32) -> Self {
        LearningSwitch {
            n_ports,
            table: BTreeMap::new(),
            blocked: HashSet::new(),
            age_limit: SimDuration::from_secs(300),
            forwarded: 0,
            flooded: 0,
        }
    }

    /// Sets the address aging limit.
    pub fn with_age_limit(mut self, age_limit: SimDuration) -> Self {
        self.age_limit = age_limit;
        self
    }

    /// Blocks a port (spanning-tree discarding state): no learning, no
    /// forwarding in or out.
    pub fn block_port(&mut self, port: u32) {
        self.blocked.insert(port);
    }

    /// Number of learned addresses (for tests and monitoring).
    pub fn learned(&self) -> usize {
        self.table.len()
    }
}

impl Node for LearningSwitch {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.age_limit, AGE_TICK);
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, port: PortId, pkt: Packet) {
        let in_port = port.number();
        if self.blocked.contains(&in_port) {
            return;
        }
        // Learn the source.
        if pkt.eth.src.is_unicast() {
            self.table.insert(pkt.eth.src, (in_port, ctx.now()));
        }
        // Forward.
        if pkt.eth.dst.is_unicast() {
            if let Some(&(out, seen)) = self.table.get(&pkt.eth.dst) {
                if ctx.now().saturating_since(seen) <= self.age_limit {
                    if out != in_port && !self.blocked.contains(&out) {
                        self.forwarded += 1;
                        ctx.send(PortId(out), pkt);
                    }
                    // Destination is on the ingress segment: filter.
                    return;
                }
            }
        }
        // Unknown unicast, broadcast or multicast: flood.
        self.flooded += 1;
        for p in 1..=self.n_ports {
            if p != in_port && !self.blocked.contains(&p) {
                ctx.send(PortId(p), pkt.clone());
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token != AGE_TICK {
            return;
        }
        let now = ctx.now();
        let limit = self.age_limit;
        self.table
            .retain(|_, (_, seen)| now.saturating_since(*seen) <= limit);
        ctx.set_timer(self.age_limit, AGE_TICK);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use livesec_net::{MacAddr, PacketBuilder};
    use livesec_sim::{LinkSpec, World};

    struct Endpoint {
        mac: MacAddr,
        to_send: Vec<(MacAddr, u32)>, // (dst, payload len)
        got: Vec<Packet>,
    }

    impl Endpoint {
        fn new(mac: MacAddr) -> Self {
            Endpoint {
                mac,
                to_send: vec![],
                got: vec![],
            }
        }
    }

    impl Node for Endpoint {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            // Poll the outbox every 100 µs so tests can enqueue frames
            // between run_for() calls.
            ctx.set_timer(SimDuration::from_micros(100), 0);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            for (dst, len) in self.to_send.drain(..) {
                let pkt = PacketBuilder::udp(self.mac, dst)
                    .ips("10.0.0.1".parse().unwrap(), "10.0.0.2".parse().unwrap())
                    .ports(1, 2)
                    .payload_len(len)
                    .build();
                ctx.send(PortId(1), pkt);
            }
            ctx.set_timer(SimDuration::from_micros(100), 0);
        }
        fn on_frame(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, pkt: Packet) {
            self.got.push(pkt);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn mac(v: u64) -> MacAddr {
        MacAddr::from_u64(v)
    }

    #[test]
    fn floods_unknown_then_learns() {
        let mut world = World::new(1);
        let sw = world.add_node(LearningSwitch::new(3));
        let a = world.add_node(Endpoint::new(mac(1)));
        let b = world.add_node(Endpoint::new(mac(2)));
        let c = world.add_node(Endpoint::new(mac(3)));
        world.connect(a, PortId(1), sw, PortId(1), LinkSpec::gigabit());
        world.connect(b, PortId(1), sw, PortId(2), LinkSpec::gigabit());
        world.connect(c, PortId(1), sw, PortId(3), LinkSpec::gigabit());

        // A sends to B (unknown): flooded to both B and C.
        world.node_mut::<Endpoint>(a).to_send = vec![(mac(2), 10)];
        world.run_for(SimDuration::from_millis(1));
        assert_eq!(world.node::<Endpoint>(b).got.len(), 1);
        assert_eq!(world.node::<Endpoint>(c).got.len(), 1);

        // B replies to A (learned): unicast, C sees nothing new.
        world.node_mut::<Endpoint>(b).to_send = vec![(mac(1), 10)];
        world.run_for(SimDuration::from_millis(1));
        assert_eq!(world.node::<Endpoint>(a).got.len(), 1);
        assert_eq!(world.node::<Endpoint>(c).got.len(), 1, "no extra flood");
        assert_eq!(world.node::<LearningSwitch>(sw).learned(), 2);
    }

    #[test]
    fn broadcast_always_floods() {
        let mut world = World::new(1);
        let sw = world.add_node(LearningSwitch::new(3));
        let a = world.add_node(Endpoint::new(mac(1)));
        let b = world.add_node(Endpoint::new(mac(2)));
        let c = world.add_node(Endpoint::new(mac(3)));
        world.connect(a, PortId(1), sw, PortId(1), LinkSpec::gigabit());
        world.connect(b, PortId(1), sw, PortId(2), LinkSpec::gigabit());
        world.connect(c, PortId(1), sw, PortId(3), LinkSpec::gigabit());
        world.node_mut::<Endpoint>(a).to_send = vec![(MacAddr::BROADCAST, 10)];
        world.run_for(SimDuration::from_millis(1));
        assert_eq!(world.node::<Endpoint>(b).got.len(), 1);
        assert_eq!(world.node::<Endpoint>(c).got.len(), 1);
        assert_eq!(world.node::<LearningSwitch>(sw).flooded, 1);
    }

    #[test]
    fn blocked_port_is_silent() {
        let mut world = World::new(1);
        let sw = world.add_node(LearningSwitch::new(3));
        let a = world.add_node(Endpoint::new(mac(1)));
        let b = world.add_node(Endpoint::new(mac(2)));
        let c = world.add_node(Endpoint::new(mac(3)));
        world.connect(a, PortId(1), sw, PortId(1), LinkSpec::gigabit());
        world.connect(b, PortId(1), sw, PortId(2), LinkSpec::gigabit());
        world.connect(c, PortId(1), sw, PortId(3), LinkSpec::gigabit());
        world.node_mut::<LearningSwitch>(sw).block_port(3);
        world.node_mut::<Endpoint>(a).to_send = vec![(MacAddr::BROADCAST, 10)];
        world.run_for(SimDuration::from_millis(1));
        assert_eq!(world.node::<Endpoint>(b).got.len(), 1);
        assert!(world.node::<Endpoint>(c).got.is_empty(), "blocked");
    }

    #[test]
    fn addresses_age_out() {
        let mut world = World::new(1);
        let sw =
            world.add_node(LearningSwitch::new(2).with_age_limit(SimDuration::from_millis(50)));
        let a = world.add_node(Endpoint::new(mac(1)));
        let b = world.add_node(Endpoint::new(mac(2)));
        world.connect(a, PortId(1), sw, PortId(1), LinkSpec::gigabit());
        world.connect(b, PortId(1), sw, PortId(2), LinkSpec::gigabit());
        world.node_mut::<Endpoint>(a).to_send = vec![(mac(2), 10)];
        world.run_for(SimDuration::from_millis(1));
        assert_eq!(world.node::<LearningSwitch>(sw).learned(), 1);
        world.run_for(SimDuration::from_millis(200));
        assert_eq!(world.node::<LearningSwitch>(sw).learned(), 0, "aged out");
    }
}
