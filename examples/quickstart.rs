//! Quickstart: a two-switch LiveSec campus in ~40 lines.
//!
//! A wired user browses the web through the Internet gateway; policy
//! steers every web flow through an intrusion-detection service
//! element; the controller's monitor records what happened.
//!
//! Run with: `cargo run --release --example quickstart`

use livesec_suite::prelude::*;

fn main() {
    // Policy: web traffic must traverse intrusion detection.
    let mut policy = PolicyTable::allow_all();
    policy.push(
        PolicyRule::named("ids-web")
            .dst_port(80)
            .chain(vec![ServiceType::IntrusionDetection]),
    );

    // Build the campus: 2 OvS switches over a legacy core, the
    // controller out-of-band.
    let mut b = CampusBuilder::new(42, 2).with_policy(policy);
    let gateway = b.add_gateway_with_app(0, HttpServer::new());
    let se = b.add_service_element(0, ServiceElement::new(IdsEngine::engine()));
    let user = b.add_user(1, HttpClient::new(gateway.ip, 50_000).with_max_requests(20));
    let mut campus = b.finish();

    // Run two simulated seconds.
    campus.world.run_for(SimDuration::from_secs(2));

    // What happened?
    let client = campus.world.node::<Host<HttpClient>>(user.node);
    println!(
        "user completed {} web requests ({} bytes)",
        client.app().completed,
        client.app().bytes_received
    );
    type IdsSe = ServiceElement<SignatureEngine>;
    let element = campus.world.node::<Host<IdsSe>>(se.node);
    println!(
        "IDS element scrubbed {} packets, raised {} events",
        element.app().counters().processed_packets,
        element.app().counters().events_sent
    );
    println!(
        "controller event summary: {:?}",
        campus.controller().monitor().summary()
    );
}
