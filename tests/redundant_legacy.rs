//! Integration: redundant legacy fabric + spanning tree (paper
//! §III-C.1: "no matter whether loops exist in the legacy switching
//! network, our solution ensures a loop-free access switching
//! network").

use livesec_suite::prelude::*;

fn run_campus(redundant: bool) -> (u64, u32, bool) {
    let mut b = if redundant {
        CampusBuilder::with_redundant_legacy(31, 4, 3)
    } else {
        CampusBuilder::with_legacy_tiers(31, 4, 3)
    };
    let gw = b.add_gateway_with_app(0, HttpServer::new());
    let user = b.add_user(2, HttpClient::new(gw.ip, 30_000).with_max_requests(15));
    let mut campus = b.finish();
    let stats = campus.world.run_for(SimDuration::from_secs(3));
    let completed = campus
        .world
        .node::<Host<HttpClient>>(user.node)
        .app()
        .completed;
    let full_mesh = campus.controller().topology().is_full_mesh();
    (stats.events, completed, full_mesh)
}

#[test]
fn redundant_fabric_is_loop_free_and_fully_functional() {
    let (tree_events, tree_done, tree_mesh) = run_campus(false);
    let (ring_events, ring_done, ring_mesh) = run_campus(true);

    // Same work gets done over the redundant fabric.
    assert_eq!(tree_done, 15);
    assert_eq!(ring_done, 15);
    assert!(tree_mesh && ring_mesh, "full-mesh discovery in both");

    // No broadcast storm: event counts stay within the same order of
    // magnitude (a loop would blow this up unboundedly or hit queue
    // drops massively).
    assert!(
        ring_events < tree_events * 3,
        "no storm: tree={tree_events} ring={ring_events}"
    );
}

#[test]
fn spanning_tree_actually_blocks_ring_ports() {
    let b = CampusBuilder::with_redundant_legacy(31, 2, 3);
    let campus = b.finish();
    // 3 edges in a ring: 3 ring links exist, at least one blocked at
    // both ends. Count blocked ports indirectly: broadcast from one AS
    // switch must arrive at every other exactly once (no duplicates).
    // We verify via a short run reaching quiescence without growth.
    let mut campus = campus;
    let s1 = campus.world.run_for(SimDuration::from_secs(1));
    let s2 = campus.world.run_for(SimDuration::from_secs(1));
    // Steady state: the second second processes a similar, bounded
    // number of events (discovery beacons), not exponentially more.
    let delta1 = s1.events;
    let delta2 = s2.events - s1.events;
    assert!(
        delta2 <= delta1 * 2 + 1000,
        "bounded steady-state events: {delta1} then {delta2}"
    );
}
