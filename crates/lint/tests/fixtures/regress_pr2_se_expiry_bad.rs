// Regression fixture — the PR 2 bug shape.
//
// The seed SE registry expired silent service elements by iterating
// its HashMap of element views, so when several elements timed out in
// one sweep (e.g. their switch was partitioned) the SeOffline events
// and the cleanups they trigger were emitted in a different order on
// different runs. PR 2 fixed it at runtime by sorting the dead list;
// this fixture asserts the lint would now catch the original shape at
// check time.
use std::collections::HashMap;

pub struct SeView {
    pub mac: u64,
    pub last_seen: u64,
    pub online: bool,
}

pub struct SeRegistry {
    elements: HashMap<u64, SeView>,
}

impl SeRegistry {
    // BUG SHAPE: offline events pushed in HashMap iteration order.
    pub fn expire(&mut self, now: u64, timeout: u64, events: &mut Vec<u64>) {
        for v in self.elements.values_mut() {
            if v.online && now - v.last_seen > timeout {
                v.online = false;
                events.push(v.mac);
            }
        }
    }

    // BUG SHAPE: cleanup also dropped state in drain order.
    pub fn purge(&mut self, dropped: &mut Vec<u64>) {
        for (mac, _) in self.elements.drain() {
            dropped.push(mac);
        }
    }
}
