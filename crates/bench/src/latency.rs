//! E5 — §V-B.3 latency.
//!
//! Paper: pinging an Internet server through LiveSec increases average
//! RTT by only ≈10% over the plain legacy network.
//!
//! Reproduction: the "Internet server" sits behind a gateway link with
//! WAN-scale propagation delay. The baseline world is hosts + legacy
//! learning switches only; the LiveSec world inserts the
//! Access-Switching layer and steers the pings through an IDS element.
//! Both run the same [`Pinger`].

use livesec::deploy::{CampusBuilder, NullApp};
use livesec::policy::{PolicyRule, PolicyTable};
use livesec_net::Ipv4Net;
use livesec_services::{IdsEngine, ServiceElement, ServiceType};
use livesec_sim::{LinkSpec, NodeId, PortId, SimDuration, World};
use livesec_switch::{Host, LearningSwitch};
use livesec_workloads::Pinger;

/// One-way WAN delay to the modeled Internet server.
pub const WAN_DELAY: SimDuration = SimDuration::from_micros(250);

/// The result of one latency comparison.
#[derive(Clone, Copy, Debug)]
pub struct LatencyResult {
    /// Mean RTT through the plain legacy network.
    pub baseline_rtt: SimDuration,
    /// Mean RTT through LiveSec (with IDS steering).
    pub livesec_rtt: SimDuration,
    /// First-ping RTT through LiveSec (pays flow setup).
    pub livesec_first_rtt: SimDuration,
    /// Relative overhead of the mean, e.g. 0.10 = +10%.
    pub overhead: f64,
    /// Ping loss through LiveSec (first packets may be lost while
    /// paths install; should be ~0 thanks to packet-out).
    pub livesec_loss: f64,
}

fn wan_link() -> LinkSpec {
    LinkSpec::gigabit().with_delay(WAN_DELAY)
}

/// Measures the baseline: user → legacy switch → Internet server.
fn baseline_rtt(seed: u64, pings: u32) -> SimDuration {
    let mut world = World::new(seed);
    let sw = world.add_node(LearningSwitch::new(4));
    let subnet: Ipv4Net = "10.0.0.0/16".parse().expect("valid");
    let gw_ip = "10.0.255.254".parse().expect("valid");
    let user: NodeId = world.add_node(
        Host::new(
            livesec_net::MacAddr::from_u64(0x11),
            "10.0.1.1".parse().expect("valid"),
            Pinger::new("8.8.8.8".parse().expect("valid"))
                .with_start_delay(SimDuration::from_millis(100))
                .with_max_pings(pings),
        )
        .with_gateway(subnet, gw_ip),
    );
    let gw = world.add_node(
        Host::new(livesec_net::MacAddr::from_u64(0x22), gw_ip, NullApp)
            .with_proxy_arp_outside(subnet),
    );
    world.connect(user, PortId(1), sw, PortId(1), LinkSpec::fast_ethernet());
    world.connect(gw, PortId(1), sw, PortId(2), wan_link());
    world.run_for(SimDuration::from_secs(5));
    world
        .node::<Host<Pinger>>(user)
        .app()
        .rtts
        .mean()
        .expect("baseline pings answered")
}

/// Measures LiveSec: user → AS layer → legacy → (IDS SE) → gateway.
fn livesec_rtt(seed: u64, pings: u32, steer: bool) -> (SimDuration, SimDuration, f64) {
    let mut policy = PolicyTable::allow_all();
    if steer {
        policy.push(
            PolicyRule::named("ids-icmp")
                .proto(1)
                .chain(vec![ServiceType::IntrusionDetection]),
        );
    }
    let mut b = CampusBuilder::new(seed, 2)
        .with_policy(policy)
        .with_gateway_link(wan_link());
    let gw = b.add_gateway(0);
    if steer {
        b.add_service_element(0, ServiceElement::new(IdsEngine::engine()));
    }
    let user = b.add_user(
        1,
        Pinger::new("8.8.8.8".parse().expect("valid"))
            .with_start_delay(SimDuration::from_millis(900))
            .with_max_pings(pings),
    );
    let _ = gw;
    let mut campus = b.finish();
    campus.world.run_for(SimDuration::from_secs(6));
    let host = campus.world.node::<Host<Pinger>>(user.node);
    let app = host.app();
    let mean = app.rtts.mean().expect("livesec pings answered");
    let first = app.rtts.samples().first().copied().unwrap_or(mean);
    (mean, first, app.loss_rate())
}

/// Runs E5.
pub fn run(seed: u64, pings: u32) -> LatencyResult {
    let baseline = baseline_rtt(seed, pings);
    let (livesec, first, loss) = livesec_rtt(seed, pings, true);
    LatencyResult {
        baseline_rtt: baseline,
        livesec_rtt: livesec,
        livesec_first_rtt: first,
        overhead: (livesec.as_nanos() as f64 - baseline.as_nanos() as f64)
            / baseline.as_nanos() as f64,
        livesec_loss: loss,
    }
}

/// Runs the no-steering variant (pure AS-layer overhead, no SE
/// detour) — used by the ablation experiment.
pub fn run_unsteered(seed: u64, pings: u32) -> LatencyResult {
    let baseline = baseline_rtt(seed, pings);
    let (livesec, first, loss) = livesec_rtt(seed, pings, false);
    LatencyResult {
        baseline_rtt: baseline,
        livesec_rtt: livesec,
        livesec_first_rtt: first,
        overhead: (livesec.as_nanos() as f64 - baseline.as_nanos() as f64)
            / baseline.as_nanos() as f64,
        livesec_loss: loss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_modest() {
        let r = run(17, 50);
        assert!(
            r.baseline_rtt > SimDuration::from_micros(400),
            "WAN dominates: {}",
            r.baseline_rtt
        );
        assert!(r.overhead > 0.0, "LiveSec adds something: {:?}", r);
        assert!(
            r.overhead < 0.35,
            "overhead stays modest (paper ≈10%): {:?}",
            r
        );
        assert!(r.livesec_loss < 0.05, "packet-out avoids loss: {:?}", r);
    }

    #[test]
    fn unsteered_cheaper_than_steered() {
        let steered = run(17, 30);
        let unsteered = run_unsteered(17, 30);
        assert!(
            unsteered.livesec_rtt <= steered.livesec_rtt,
            "SE detour costs extra: {unsteered:?} vs {steered:?}"
        );
    }
}
