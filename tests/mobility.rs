//! Integration: user/VM mobility (paper §III-B "support the migration
//! of VMs without changing their IP address" and §III-D.1 dynamic
//! migration of service elements).

use livesec_suite::prelude::*;

#[test]
fn user_migrates_between_switches_without_changing_addresses() {
    let mut b = CampusBuilder::new(21, 3)
        .configure_controller(|c| c.set_flow_idle_timeout(SimDuration::from_millis(300)));
    let gw = b.add_gateway_with_app(0, HttpServer::new());
    let user = b.add_user(
        1,
        HttpClient::new(gw.ip, 20_000)
            .with_think_time(SimDuration::from_millis(50))
            .with_rotating_ports(),
    );
    let mut campus = b.finish();

    campus.world.run_for(SimDuration::from_secs(3));
    let before = campus
        .world
        .node::<Host<HttpClient>>(user.node)
        .app()
        .completed;
    assert!(before > 10, "browsing before migration: {before}");
    {
        let c = campus.controller();
        let loc = c.locations().lookup(user.mac).expect("located");
        assert_eq!(loc.dpid, 2, "initially on switch index 1 (dpid 2)");
    }

    // Live-migrate the user to switch index 2.
    let user = campus.migrate_user(user, 2);
    campus.world.run_for(SimDuration::from_secs(3));

    let after = campus
        .world
        .node::<Host<HttpClient>>(user.node)
        .app()
        .completed;
    assert!(
        after > before + 10,
        "browsing continues after migration: {before} -> {after}"
    );

    let c = campus.controller();
    let loc = c.locations().lookup(user.mac).expect("still located");
    assert_eq!(loc.dpid, 3, "now on switch index 2 (dpid 3)");
    assert_eq!(loc.ip, user.ip, "IP unchanged across migration");

    // The controller observed the move (as leave+join via port-down
    // eviction, or as an explicit move).
    let summary = c.monitor().summary();
    let moved = summary.get("user_moved").copied().unwrap_or(0)
        + summary.get("user_leave").copied().unwrap_or(0);
    assert!(moved >= 1, "mobility visible in events: {summary:?}");
}

#[test]
fn service_element_migrates_and_keeps_serving() {
    let mut policy = PolicyTable::allow_all();
    policy.push(
        PolicyRule::named("ids-web")
            .dst_port(80)
            .chain(vec![ServiceType::IntrusionDetection]),
    );
    let mut b = CampusBuilder::new(23, 3)
        .with_policy(policy)
        .configure_controller(|c| c.set_flow_idle_timeout(SimDuration::from_millis(300)));
    let gw = b.add_gateway_with_app(0, HttpServer::new());
    let se = b.add_service_element(1, ServiceElement::new(IdsEngine::engine()));
    let user = b.add_user(
        2,
        HttpClient::new(gw.ip, 20_000)
            .with_think_time(SimDuration::from_millis(50))
            .with_rotating_ports(),
    );
    let mut campus = b.finish();

    campus.world.run_for(SimDuration::from_secs(3));
    type IdsSe = ServiceElement<SignatureEngine>;
    let scrubbed_before = campus
        .world
        .node::<Host<IdsSe>>(se.node)
        .app()
        .counters()
        .processed_packets;
    assert!(
        scrubbed_before > 50,
        "SE active before move: {scrubbed_before}"
    );

    // Migrate the SE VM to switch 2 (same MAC/IP, new attachment).
    let se_as_user = UserHandle {
        node: se.node,
        mac: se.mac,
        ip: se.ip,
        switch: se.switch,
        port: se.port,
    };
    campus.migrate_user(se_as_user, 2);
    campus.world.run_for(SimDuration::from_secs(4));

    let scrubbed_after = campus
        .world
        .node::<Host<IdsSe>>(se.node)
        .app()
        .counters()
        .processed_packets;
    assert!(
        scrubbed_after > scrubbed_before + 50,
        "SE keeps scrubbing after migration: {scrubbed_before} -> {scrubbed_after}"
    );
    let done = campus
        .world
        .node::<Host<HttpClient>>(user.node)
        .app()
        .completed;
    assert!(done > 20, "user kept browsing throughout: {done}");
}
