//! Concrete forwarding traces over a [`Snapshot`].
//!
//! The verifier reasons per equivalence class of headers but *traces*
//! one concrete representative: inject a witness packet at an ingress
//! port and replay exactly what the flow tables would do to it —
//! highest-priority match wins (install order breaks ties, mirroring
//! `FlowTable::lookup`), actions apply in sequence, an output on the
//! uplink crosses the legacy fabric to wherever the current
//! destination MAC is attached, and an output to a service element's
//! port re-enters the same switch on that port (the element reflects
//! admitted traffic back). The trace ends when the packet is
//! delivered, dropped, lost, or provably looping.

use crate::snapshot::Snapshot;
use livesec::controller::{BLOCK_PRIORITY, DENY_COOKIE};
use livesec_net::{FlowKey, MacAddr};
use livesec_openflow::{Action, FlowEntry, OutPort};
use livesec_services::ServiceType;
use std::collections::BTreeSet;
use std::fmt;

/// Safety bound on trace length; no legitimate path in a campus of
/// `n` switches exceeds a handful of hops per chained element, so
/// hitting this bound is reported as a (pathological) loop.
const HOP_LIMIT: usize = 64;

/// How a trace ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEnd {
    /// The packet reached an endpoint's port.
    Delivered {
        /// Switch that delivered it.
        dpid: u64,
        /// Port it left on.
        port: u32,
        /// The endpoint attached there.
        mac: MacAddr,
    },
    /// A matching entry had an empty action list.
    Dropped {
        /// Switch that dropped it.
        dpid: u64,
        /// The dropping entry's cookie.
        cookie: u64,
        /// The dropping entry's priority.
        priority: u16,
    },
    /// No entry matched — the switch would packet-in to the
    /// controller (reactive setup, not forwarding).
    Miss {
        /// Switch with no matching entry.
        dpid: u64,
    },
    /// An entry explicitly sent the packet to the controller.
    ToController {
        /// Switch that punted.
        dpid: u64,
    },
    /// An entry flooded the packet (reaches every attached endpoint).
    Flooded {
        /// Switch that flooded.
        dpid: u64,
    },
    /// The packet left on the uplink but its destination MAC is not
    /// located anywhere — the legacy fabric has nowhere to learn it.
    FabricLost {
        /// The unlocated destination MAC.
        mac: MacAddr,
    },
    /// Output to a port with nothing attached.
    DeadEnd {
        /// Switch that emitted it.
        dpid: u64,
        /// The empty port.
        port: u32,
    },
    /// The packet revisited a `(switch, port, headers)` state — a
    /// forwarding loop (also reported when the hop bound trips).
    Loop {
        /// Switch where the repeat was detected.
        dpid: u64,
    },
}

impl TraceEnd {
    /// Whether this end is an administrative drop (block or deny
    /// entry) rather than a forwarding defect.
    pub fn is_admin_drop(&self) -> bool {
        matches!(
            self,
            TraceEnd::Dropped { priority, .. } if *priority == BLOCK_PRIORITY
        ) || matches!(self, TraceEnd::Dropped { cookie, .. } if *cookie == DENY_COOKIE)
    }
}

impl fmt::Display for TraceEnd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEnd::Delivered { dpid, port, mac } => {
                write!(f, "delivered to {mac} at dpid {dpid} port {port}")
            }
            TraceEnd::Dropped {
                dpid,
                cookie,
                priority,
            } => write!(
                f,
                "dropped at dpid {dpid} (cookie {cookie}, priority {priority})"
            ),
            TraceEnd::Miss { dpid } => write!(f, "table miss at dpid {dpid}"),
            TraceEnd::ToController { dpid } => write!(f, "sent to controller at dpid {dpid}"),
            TraceEnd::Flooded { dpid } => write!(f, "flooded at dpid {dpid}"),
            TraceEnd::FabricLost { mac } => {
                write!(f, "lost in legacy fabric (dst {mac} unlocated)")
            }
            TraceEnd::DeadEnd { dpid, port } => {
                write!(f, "dead end at dpid {dpid} port {port} (nothing attached)")
            }
            TraceEnd::Loop { dpid } => write!(f, "forwarding loop via dpid {dpid}"),
        }
    }
}

/// One step of a trace: the packet state entering a switch.
#[derive(Clone, Debug)]
pub struct TraceStep {
    /// Switch the packet entered.
    pub dpid: u64,
    /// Port it entered on.
    pub in_port: u32,
    /// Headers on entry.
    pub key: FlowKey,
}

/// A full forwarding trace.
#[derive(Clone, Debug)]
pub struct Trace {
    /// The switch entries the packet traversed, in order.
    pub steps: Vec<TraceStep>,
    /// How it ended.
    pub end: TraceEnd,
    /// Service elements traversed, in traversal order.
    pub traversed: Vec<(MacAddr, ServiceType)>,
}

impl Trace {
    /// The service types traversed, in order.
    pub fn traversed_types(&self) -> Vec<ServiceType> {
        self.traversed.iter().map(|(_, t)| *t).collect()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.steps {
            writeln!(
                f,
                "    dpid {} in_port {} :: {} -> {}",
                s.dpid, s.in_port, s.key.dl_src, s.key.dl_dst
            )?;
        }
        write!(f, "    => {}", self.end)
    }
}

/// The winning entry for a packet at one switch, mirroring
/// `FlowTable::lookup`: highest priority, earliest installation on a
/// tie. `entries` must be in install order.
pub fn best_entry<'a>(
    entries: &'a [FlowEntry],
    in_port: u32,
    key: &FlowKey,
) -> Option<&'a FlowEntry> {
    let mut best: Option<&FlowEntry> = None;
    for e in entries {
        if !e.matcher.matches(in_port, key) {
            continue;
        }
        match best {
            Some(b) if b.priority >= e.priority => {}
            _ => best = Some(e),
        }
    }
    best
}

fn apply_to_key(key: &mut FlowKey, action: &Action) {
    match *action {
        Action::SetDlSrc(m) => key.dl_src = m,
        Action::SetDlDst(m) => key.dl_dst = m,
        Action::SetNwSrc(ip) => key.nw_src = ip,
        Action::SetNwDst(ip) => key.nw_dst = ip,
        Action::SetTpSrc(p) => key.tp_src = p,
        Action::SetTpDst(p) => key.tp_dst = p,
        Action::SetVlan(v) => key.vlan = Some(v),
        Action::StripVlan => key.vlan = None,
        Action::Output(_) => {}
    }
}

/// Traces a concrete packet injected at `(dpid, in_port)` through the
/// snapshot's flow tables until it is delivered, dropped, or lost.
pub fn trace(snap: &Snapshot, dpid: u64, in_port: u32, key: FlowKey) -> Trace {
    let mut steps = Vec::new();
    let mut traversed = Vec::new();
    let mut visited: BTreeSet<(u64, u32, FlowKey)> = BTreeSet::new();

    let mut cur_dpid = dpid;
    let mut cur_port = in_port;
    let mut cur_key = key;

    loop {
        if steps.len() >= HOP_LIMIT {
            return Trace {
                steps,
                end: TraceEnd::Loop { dpid: cur_dpid },
                traversed,
            };
        }
        if !visited.insert((cur_dpid, cur_port, cur_key)) {
            return Trace {
                steps,
                end: TraceEnd::Loop { dpid: cur_dpid },
                traversed,
            };
        }
        steps.push(TraceStep {
            dpid: cur_dpid,
            in_port: cur_port,
            key: cur_key,
        });

        let Some(sw) = snap.switch(cur_dpid) else {
            return Trace {
                steps,
                end: TraceEnd::FabricLost {
                    mac: cur_key.dl_dst,
                },
                traversed,
            };
        };
        let Some(entry) = best_entry(&sw.entries, cur_port, &cur_key) else {
            return Trace {
                steps,
                end: TraceEnd::Miss { dpid: cur_dpid },
                traversed,
            };
        };

        // Apply the action list; follow the first output.
        let mut out: Option<OutPort> = None;
        let mut out_key = cur_key;
        let mut scratch = cur_key;
        for a in &entry.actions {
            if let Action::Output(dest) = a {
                if out.is_none() {
                    out = Some(*dest);
                    out_key = scratch;
                }
            } else {
                apply_to_key(&mut scratch, a);
            }
        }
        let Some(dest) = out else {
            return Trace {
                steps,
                end: TraceEnd::Dropped {
                    dpid: cur_dpid,
                    cookie: entry.cookie,
                    priority: entry.priority,
                },
                traversed,
            };
        };

        let port = match dest {
            OutPort::Physical(p) => p,
            OutPort::InPort => cur_port,
            OutPort::Controller => {
                return Trace {
                    steps,
                    end: TraceEnd::ToController { dpid: cur_dpid },
                    traversed,
                }
            }
            OutPort::Flood => {
                return Trace {
                    steps,
                    end: TraceEnd::Flooded { dpid: cur_dpid },
                    traversed,
                }
            }
        };

        if Some(port) == sw.uplink {
            // Into the legacy fabric: plain L2 delivers toward the
            // switch where the (possibly rewritten) destination MAC
            // attaches; the frame re-enters it on its uplink.
            let Some(host) = snap.host_of(out_key.dl_dst) else {
                return Trace {
                    steps,
                    end: TraceEnd::FabricLost {
                        mac: out_key.dl_dst,
                    },
                    traversed,
                };
            };
            let Some(next_up) = snap.switch(host.dpid).and_then(|s| s.uplink) else {
                return Trace {
                    steps,
                    end: TraceEnd::FabricLost {
                        mac: out_key.dl_dst,
                    },
                    traversed,
                };
            };
            cur_dpid = host.dpid;
            cur_port = next_up;
            cur_key = out_key;
            continue;
        }

        // A periphery port: service element, endpoint, or nothing.
        let attached = snap
            .hosts
            .iter()
            .find(|h| h.dpid == cur_dpid && h.port == port);
        let Some(host) = attached else {
            return Trace {
                steps,
                end: TraceEnd::DeadEnd {
                    dpid: cur_dpid,
                    port,
                },
                traversed,
            };
        };
        if let Some(service) = snap.element_type(host.mac) {
            // The element inspects and reflects the frame unchanged;
            // it re-enters the same switch on the element's port.
            traversed.push((host.mac, service));
            cur_port = port;
            cur_key = out_key;
            continue;
        }
        return Trace {
            steps,
            end: TraceEnd::Delivered {
                dpid: cur_dpid,
                port,
                mac: host.mac,
            },
            traversed,
        };
    }
}
