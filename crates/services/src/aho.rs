//! A from-scratch Aho–Corasick multi-pattern matcher.
//!
//! This is the scanning core shared by the IDS, virus-scanning and
//! content-inspection engines: all of them need "which of these N byte
//! patterns occur in this payload?" in a single pass.

/// A compiled Aho–Corasick automaton over byte patterns.
///
/// ```rust
/// use livesec_services::AhoCorasick;
/// let ac = AhoCorasick::new(&[b"he".as_ref(), b"she", b"his", b"hers"]);
/// let hits = ac.find_all(b"ushers");
/// // "she" at 1, "he" at 2, "hers" at 2.
/// assert_eq!(hits.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct AhoCorasick {
    /// goto function: per state, 256 transitions (dense — rule sets are
    /// small and scanning speed matters).
    goto_fn: Vec<[u32; 256]>,
    /// Pattern indices that end at each state.
    output: Vec<Vec<u32>>,
    pattern_lens: Vec<usize>,
}

/// A single match: which pattern, and where it starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hit {
    /// Index of the pattern in the constructor slice.
    pub pattern: usize,
    /// Byte offset of the match start.
    pub start: usize,
}

const NONE: u32 = u32::MAX;

impl AhoCorasick {
    /// Compiles an automaton from `patterns`.
    ///
    /// Empty patterns are permitted but never match.
    pub fn new<P: AsRef<[u8]>>(patterns: &[P]) -> Self {
        let mut goto_fn: Vec<[u32; 256]> = vec![[NONE; 256]];
        let mut output: Vec<Vec<u32>> = vec![Vec::new()];
        let mut pattern_lens = Vec::with_capacity(patterns.len());

        // Build the trie.
        for (pi, pat) in patterns.iter().enumerate() {
            let pat = pat.as_ref();
            pattern_lens.push(pat.len());
            if pat.is_empty() {
                continue;
            }
            let mut state = 0usize;
            for &b in pat {
                let next = goto_fn[state][b as usize];
                state = if next == NONE {
                    goto_fn.push([NONE; 256]);
                    output.push(Vec::new());
                    let new = (goto_fn.len() - 1) as u32;
                    goto_fn[state][b as usize] = new;
                    new as usize
                } else {
                    next as usize
                };
            }
            output[state].push(pi as u32);
        }

        // BFS to build failure links and complete the goto function.
        let mut fail = vec![0u32; goto_fn.len()];
        let mut queue = std::collections::VecDeque::new();
        for entry in goto_fn[0].iter_mut() {
            let s = *entry;
            if s == NONE {
                *entry = 0;
            } else {
                fail[s as usize] = 0;
                queue.push_back(s as usize);
            }
        }
        while let Some(state) = queue.pop_front() {
            // Indexing two different rows of goto_fn per iteration; an
            // iterator form would fight the borrow checker for nothing.
            #[allow(clippy::needless_range_loop)]
            for b in 0..256usize {
                let next = goto_fn[state][b];
                if next == NONE {
                    goto_fn[state][b] = goto_fn[fail[state] as usize][b];
                } else {
                    let f = goto_fn[fail[state] as usize][b];
                    fail[next as usize] = f;
                    let extra: Vec<u32> = output[f as usize].clone();
                    output[next as usize].extend(extra);
                    queue.push_back(next as usize);
                }
            }
        }

        // The failure links are fully folded into goto_fn above, so
        // they need not be retained for matching.
        let _ = fail;
        AhoCorasick {
            goto_fn,
            output,
            pattern_lens,
        }
    }

    /// Number of automaton states (diagnostics).
    pub fn state_count(&self) -> usize {
        self.goto_fn.len()
    }

    /// Returns every match in `haystack`, in end-position order.
    pub fn find_all(&self, haystack: &[u8]) -> Vec<Hit> {
        let mut hits = Vec::new();
        let mut state = 0usize;
        for (i, &b) in haystack.iter().enumerate() {
            state = self.goto_fn[state][b as usize] as usize;
            for &pi in &self.output[state] {
                let len = self.pattern_lens[pi as usize];
                hits.push(Hit {
                    pattern: pi as usize,
                    start: i + 1 - len,
                });
            }
        }
        hits
    }

    /// Returns the first matching pattern index, scanning left to right
    /// (cheapest check for "is anything in here?").
    pub fn find_first(&self, haystack: &[u8]) -> Option<Hit> {
        let mut state = 0usize;
        for (i, &b) in haystack.iter().enumerate() {
            state = self.goto_fn[state][b as usize] as usize;
            if let Some(&pi) = self.output[state].first() {
                let len = self.pattern_lens[pi as usize];
                return Some(Hit {
                    pattern: pi as usize,
                    start: i + 1 - len,
                });
            }
        }
        None
    }

    /// Returns `true` if any pattern occurs in `haystack`.
    pub fn is_match(&self, haystack: &[u8]) -> bool {
        self.find_first(haystack).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_ushers() {
        let ac = AhoCorasick::new(&[b"he".as_ref(), b"she", b"his", b"hers"]);
        let hits = ac.find_all(b"ushers");
        let got: Vec<(usize, usize)> = hits.iter().map(|h| (h.pattern, h.start)).collect();
        assert!(got.contains(&(1, 1)), "she at 1: {got:?}");
        assert!(got.contains(&(0, 2)), "he at 2: {got:?}");
        assert!(got.contains(&(3, 2)), "hers at 2: {got:?}");
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn no_match() {
        let ac = AhoCorasick::new(&[b"attack".as_ref(), b"virus"]);
        assert!(!ac.is_match(b"perfectly ordinary traffic"));
        assert_eq!(ac.find_first(b"nothing here"), None);
    }

    #[test]
    fn overlapping_patterns() {
        let ac = AhoCorasick::new(&[b"aa".as_ref(), b"aaa"]);
        let hits = ac.find_all(b"aaaa");
        // "aa" at 0,1,2 and "aaa" at 0,1.
        assert_eq!(hits.len(), 5);
    }

    #[test]
    fn match_at_boundaries() {
        let ac = AhoCorasick::new(&[b"start".as_ref(), b"end"]);
        let hits = ac.find_all(b"start middle end");
        assert_eq!(
            hits[0],
            Hit {
                pattern: 0,
                start: 0
            }
        );
        assert_eq!(
            hits[1],
            Hit {
                pattern: 1,
                start: 13
            }
        );
    }

    #[test]
    fn binary_patterns() {
        let ac = AhoCorasick::new(&[&[0x13u8, 0x42, 0x00][..], &[0xff, 0xff][..]]);
        assert!(ac.is_match(&[0x00, 0x13, 0x42, 0x00, 0x07]));
        assert!(ac.is_match(&[0xff, 0xff]));
        assert!(!ac.is_match(&[0x13, 0x42, 0x01]));
    }

    #[test]
    fn empty_pattern_never_matches() {
        let ac = AhoCorasick::new(&[b"".as_ref(), b"x"]);
        let hits = ac.find_all(b"xyz");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].pattern, 1);
    }

    #[test]
    fn empty_haystack() {
        let ac = AhoCorasick::new(&[b"x".as_ref()]);
        assert!(ac.find_all(b"").is_empty());
    }

    #[test]
    fn single_pattern_repeated_hits() {
        let ac = AhoCorasick::new(&[b"ab".as_ref()]);
        let hits = ac.find_all(b"ababab");
        assert_eq!(hits.len(), 3);
        assert_eq!(
            hits.iter().map(|h| h.start).collect::<Vec<_>>(),
            vec![0, 2, 4]
        );
    }

    #[test]
    fn find_first_is_leftmost_by_end() {
        let ac = AhoCorasick::new(&[b"late".as_ref(), b"a"]);
        let first = ac.find_first(b"late").unwrap();
        assert_eq!(first.pattern, 1, "'a' ends first");
    }

    #[test]
    fn prefix_of_another_pattern() {
        let ac = AhoCorasick::new(&[b"abc".as_ref(), b"abcdef"]);
        let hits = ac.find_all(b"abcdef");
        assert_eq!(hits.len(), 2);
    }
}
