// Fixture: every shape of order-escaping HashMap/HashSet iteration
// the unordered-iter rule must flag.
use std::collections::{HashMap, HashSet};

struct Books {
    active: HashMap<u64, String>,
    members: HashSet<u64>,
}

impl Books {
    // `for` over a borrowed field.
    fn emit_all(&self, out: &mut Vec<String>) {
        for (_, v) in &self.active {
            out.push(v.clone());
        }
    }

    // Method-chain iteration collected into a Vec with no sort.
    fn keys_in_arbitrary_order(&self) -> Vec<u64> {
        self.active.keys().copied().collect::<Vec<u64>>()
    }

    // `drain` escapes order into the caller's event stream.
    fn drain_em(&mut self, out: &mut Vec<String>) {
        for (_, v) in self.active.drain() {
            out.push(v);
        }
    }

    // `retain` visits in arbitrary order; side effects escape.
    fn retire(&mut self, log: &mut Vec<u64>) {
        self.members.retain(|m| {
            log.push(*m);
            *m > 10
        });
    }
}

// Local let-binding, iterated by value.
fn local_map(pairs: &[(u64, u64)]) -> Vec<u64> {
    let mut m = HashMap::new();
    for (k, v) in pairs {
        m.insert(*k, *v);
    }
    let mut out = Vec::new();
    for (k, _) in m {
        out.push(k);
    }
    out
}
