//! BAD: wire taint must survive closure boundaries. Three shapes:
//! a `map` closure over a tainted option, an `and_then` chain, and a
//! plain closure capturing a tainted local. The v2 walker dropped the
//! environment at every `|..|`, so all three were silent.

fn via_map(r: &mut Reader) -> Option<Vec<u8>> {
    let n = r.u32()? as usize;
    Some(n).map(|k| Vec::with_capacity(k))
}

fn via_and_then(r: &mut Reader) -> Option<usize> {
    let n = r.u16()? as usize;
    Some(n).and_then(|k| Some(k * 8))
}

fn via_capture(r: &mut Reader) -> Vec<u8> {
    let n = r.u32()? as usize;
    let make = || Vec::with_capacity(n);
    make()
}
