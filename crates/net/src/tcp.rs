//! TCP segments.

use crate::packet::Payload;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{BitAnd, BitOr};

/// TCP control flags, stored as a bit set.
///
/// Implemented as a newtype over `u8` rather than an enum because flag
/// combinations (`SYN|ACK`, `FIN|ACK`, …) are the common case.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct TcpFlags(u8);

impl TcpFlags {
    /// No flags set.
    pub const NONE: TcpFlags = TcpFlags(0);
    /// FIN flag.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN flag.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST flag.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH flag.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK flag.
    pub const ACK: TcpFlags = TcpFlags(0x10);

    /// Creates a flag set from its raw byte.
    pub const fn from_bits(bits: u8) -> Self {
        TcpFlags(bits & 0x1f)
    }

    /// The raw flag byte.
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Returns `true` if every flag in `other` is also set in `self`.
    pub const fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }
}

impl BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | rhs.0)
    }
}

impl BitAnd for TcpFlags {
    type Output = TcpFlags;
    fn bitand(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 & rhs.0)
    }
}

impl fmt::Debug for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TcpFlags(")?;
        let mut first = true;
        for (bit, name) in [
            (TcpFlags::FIN, "FIN"),
            (TcpFlags::SYN, "SYN"),
            (TcpFlags::RST, "RST"),
            (TcpFlags::PSH, "PSH"),
            (TcpFlags::ACK, "ACK"),
        ] {
            if self.contains(bit) {
                if !first {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        if first {
            write!(f, "NONE")?;
        }
        write!(f, ")")
    }
}

/// A TCP segment (header without options, plus payload).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct TcpSegment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number (meaningful when ACK is set).
    pub ack: u32,
    /// Control flags.
    pub flags: TcpFlags,
    /// Application payload.
    pub payload: Payload,
}

impl TcpSegment {
    /// On-wire length of an option-less TCP header.
    pub const HEADER_LEN: usize = 20;

    /// Total on-wire length (header + payload).
    pub fn wire_len(&self) -> usize {
        Self::HEADER_LEN + self.payload.len()
    }

    /// Returns `true` for a connection-opening SYN (without ACK).
    pub fn is_syn(&self) -> bool {
        self.flags.contains(TcpFlags::SYN) && !self.flags.contains(TcpFlags::ACK)
    }

    /// Returns `true` for a FIN or RST segment (connection teardown).
    pub fn is_teardown(&self) -> bool {
        self.flags.contains(TcpFlags::FIN) || self.flags.contains(TcpFlags::RST)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_set_operations() {
        let synack = TcpFlags::SYN | TcpFlags::ACK;
        assert!(synack.contains(TcpFlags::SYN));
        assert!(synack.contains(TcpFlags::ACK));
        assert!(!synack.contains(TcpFlags::FIN));
        assert_eq!(synack & TcpFlags::SYN, TcpFlags::SYN);
        assert_eq!(TcpFlags::from_bits(synack.bits()), synack);
    }

    #[test]
    fn from_bits_masks_reserved() {
        assert_eq!(TcpFlags::from_bits(0xff).bits(), 0x1f);
    }

    #[test]
    fn debug_never_empty() {
        assert_eq!(format!("{:?}", TcpFlags::NONE), "TcpFlags(NONE)");
        assert_eq!(
            format!("{:?}", TcpFlags::SYN | TcpFlags::ACK),
            "TcpFlags(SYN|ACK)"
        );
    }

    #[test]
    fn syn_and_teardown_classification() {
        let syn = TcpSegment {
            src_port: 1,
            dst_port: 2,
            seq: 0,
            ack: 0,
            flags: TcpFlags::SYN,
            payload: Payload::Empty,
        };
        assert!(syn.is_syn());
        assert!(!syn.is_teardown());

        let synack = TcpSegment {
            flags: TcpFlags::SYN | TcpFlags::ACK,
            ..syn.clone()
        };
        assert!(!synack.is_syn());

        let fin = TcpSegment {
            flags: TcpFlags::FIN | TcpFlags::ACK,
            ..syn
        };
        assert!(fin.is_teardown());
    }

    #[test]
    fn wire_len() {
        let seg = TcpSegment {
            src_port: 1,
            dst_port: 2,
            seq: 0,
            ack: 0,
            flags: TcpFlags::ACK,
            payload: Payload::Synthetic(1000),
        };
        assert_eq!(seg.wire_len(), 1020);
    }
}
