//! E2 — regenerates the §V-B.1 service-element scaling curve
//! (1 VM = 421 Mbps, 2 VMs = 827 Mbps, capped by the host NIC).

use livesec_bench::print_header;
use livesec_bench::scaling;
use livesec_sim::{format_bps, SimDuration};

fn main() {
    print_header(
        "E2",
        "HTTP throughput vs number of IDS service elements on one OvS host",
    );
    println!(
        "{:>6} {:>14} {:>12} {:>14}",
        "n_se", "goodput", "per-SE", "paper ref"
    );
    let window = SimDuration::from_millis(600);
    let paper = |n: usize| match n {
        1 => "421 Mbps".to_owned(),
        2 => "827 Mbps".to_owned(),
        _ => "NIC-capped".to_owned(),
    };
    for n in [1usize, 2, 3, 4, 6, 8] {
        let r = scaling::run(n, 3, window);
        println!(
            "{:>6} {:>14} {:>12} {:>14}",
            n,
            format_bps(r.goodput_bps),
            format_bps(r.goodput_bps / n as f64),
            paper(n)
        );
    }
}
