//! E3 — regenerates the §V-B.1 aggregate-capacity claim
//! (≥8 Gbps intrusion detection, ≥2 Gbps protocol identification).
//!
//! The full configuration (10 OvS hosting elements) takes a while in
//! debug builds; run with `--release`.

use livesec_bench::aggregate;
use livesec_bench::{print_header, print_rate_row};
use livesec_services::ServiceType;
use livesec_sim::SimDuration;

fn main() {
    print_header(
        "E3",
        "aggregate capacity (paper: >=8 Gbps IDS, >=2 Gbps proto-id)",
    );
    let window = SimDuration::from_millis(400);
    // 10 switches x 2 IDS elements at 421 Mbps each.
    let ids = aggregate::run(ServiceType::IntrusionDetection, 10, 2, 5, window);
    print_rate_row(
        &format!("intrusion detection ({} elements)", ids.n_elements),
        ids.goodput_bps,
    );
    // 10 switches x 2 proto-id elements at 100 Mbps each.
    let pid = aggregate::run(ServiceType::ProtocolIdentification, 10, 2, 5, window);
    print_rate_row(
        &format!("protocol identification ({} elements)", pid.n_elements),
        pid.goodput_bps,
    );
}
