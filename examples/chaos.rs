//! Fault tolerance under fire: an attacker's flow is detected and
//! blocked at its ingress switch — and then that switch crashes,
//! wiping its flow table, drop rule included. After the restart the
//! controller re-registers the switch, audits its (now empty) table
//! against the desired state, and reinstalls the block: the attack
//! stays contained across the crash.
//!
//! Run with: `cargo run --release --example chaos`

use livesec_suite::prelude::*;

fn main() {
    let mut policy = PolicyTable::allow_all();
    policy.push(
        PolicyRule::named("ids-web")
            .dst_port(80)
            .chain(vec![ServiceType::IntrusionDetection]),
    );

    let mut b = CampusBuilder::new(7, 3).with_policy(policy);
    let victim = b.add_gateway_with_app(0, TcpEchoServer::new());
    b.add_service_element(2, ServiceElement::new(IdsEngine::engine()));
    // Ten innocent requests, then directory-traversal attacks forever.
    let attacker = b.add_user(
        1,
        AttackClient::new(victim.ip, 10).with_interval(SimDuration::from_millis(10)),
    );
    let mut campus = b.finish();

    // The attacker's ingress switch dies 2.5 s in — mid-attack, well
    // after the drop rule went down — and restarts with a wiped table.
    let ingress = campus.as_switches[1];
    let mut plan = FaultPlan::new(0xc4a5);
    plan.push(
        SimTime::from_nanos(2_500_000_000),
        FaultKind::CrashRestart { node: ingress },
    );
    campus.world.install_fault_plan(&plan);

    campus.world.run_for(SimDuration::from_secs(2));
    let drops_before = block_entries(&campus);
    println!("t=2s: ingress switch holds {drops_before} drop entr(y/ies)");

    campus.world.run_for(SimDuration::from_secs(4));

    let c = campus.controller();
    for e in c.monitor().events() {
        match &e.kind {
            EventKind::AttackDetected {
                attack, element, ..
            } => println!("[{}] ATTACK \"{attack}\" reported by {element}", e.at),
            EventKind::FlowBlocked {
                reason, at_dpid, ..
            } => println!(
                "[{}] flow blocked at ingress switch {at_dpid} ({reason})",
                e.at
            ),
            EventKind::SwitchDown { dpid } => println!("[{}] switch {dpid} DOWN", e.at),
            EventKind::SwitchUp { dpid } => println!("[{}] switch {dpid} back UP", e.at),
            EventKind::Resync {
                dpid,
                removed,
                reinstalled,
            } => println!(
                "[{}] resync of switch {dpid}: {removed} stale removed, {reinstalled} reinstalled",
                e.at
            ),
            _ => {}
        }
    }

    let h = c.health_stats();
    println!(
        "health: {} audit(s), {} resync(s), {} entries reinstalled, {} data-path repairs",
        h.audits, h.resyncs, h.flows_reinstalled, h.flow_repairs
    );

    let drops_after = block_entries(&campus);
    println!("t=6s: ingress switch holds {drops_after} drop entr(y/ies) again");

    let sent = campus
        .world
        .node::<Host<AttackClient>>(attacker.node)
        .app()
        .sent;
    let reached = campus
        .world
        .node::<Host<TcpEchoServer>>(victim.node)
        .app()
        .echoed;
    println!("attacker sent {sent} requests; only {reached} ever reached the victim");
    assert!(
        drops_after >= 1,
        "the drop rule must be reinstalled after the crash"
    );
}

/// Attack-block entries (cookie 3) in the attacker's ingress switch.
fn block_entries(campus: &Campus) -> usize {
    campus
        .switch(1)
        .table()
        .iter()
        .filter(|entry| entry.cookie == 3 && entry.actions.is_empty())
        .count()
}
