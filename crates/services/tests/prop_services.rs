//! Property tests: Aho–Corasick vs a naive scanner, and SE control
//! message round-trips.

use livesec_net::{FlowKey, MacAddr};
use livesec_services::aho::Hit;
use livesec_services::{AhoCorasick, SeMessage, ServiceType, Verdict};
use proptest::prelude::*;

fn naive_find_all(patterns: &[Vec<u8>], haystack: &[u8]) -> Vec<Hit> {
    let mut hits = Vec::new();
    for end in 1..=haystack.len() {
        for (pi, pat) in patterns.iter().enumerate() {
            if pat.is_empty() || pat.len() > end {
                continue;
            }
            let start = end - pat.len();
            if &haystack[start..end] == pat.as_slice() {
                hits.push(Hit { pattern: pi, start });
            }
        }
    }
    hits
}

fn arb_patterns() -> impl Strategy<Value = Vec<Vec<u8>>> {
    // Small alphabet: overlaps and shared prefixes become common.
    proptest::collection::vec(
        proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 0..6),
        1..6,
    )
}

fn arb_haystack() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![Just(b'a'), Just(b'b'), Just(b'c'), Just(b'x')],
        0..64,
    )
}

proptest! {
    /// The automaton finds exactly what brute force finds (order by
    /// match end position; ties resolved set-wise).
    #[test]
    fn aho_corasick_equals_naive(patterns in arb_patterns(), haystack in arb_haystack()) {
        let ac = AhoCorasick::new(&patterns);
        let mut got = ac.find_all(&haystack);
        let mut want = naive_find_all(&patterns, &haystack);
        let key = |h: &Hit| (h.pattern, h.start);
        got.sort_by_key(key);
        want.sort_by_key(key);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn find_first_agrees_with_find_all(patterns in arb_patterns(), haystack in arb_haystack()) {
        let ac = AhoCorasick::new(&patterns);
        let first = ac.find_first(&haystack);
        let all = ac.find_all(&haystack);
        match first {
            None => prop_assert!(all.is_empty()),
            Some(hit) => {
                prop_assert!(!all.is_empty());
                // find_first returns a hit with the earliest end.
                let hit_end = hit.start; // ends are implicit; compare via position in all
                prop_assert_eq!(all[0].pattern, hit.pattern);
                prop_assert_eq!(all[0].start, hit.start);
                let _ = hit_end;
            }
        }
    }

    #[test]
    fn is_match_consistent(patterns in arb_patterns(), haystack in arb_haystack()) {
        let ac = AhoCorasick::new(&patterns);
        prop_assert_eq!(ac.is_match(&haystack), !ac.find_all(&haystack).is_empty());
    }

    #[test]
    fn se_online_roundtrip(
        cert in any::<u64>(), cpu in 0u8..=100, mem in 0u8..=100,
        pps in any::<u64>(), bps in any::<u64>(), total in any::<u64>(),
    ) {
        let msg = SeMessage::Online {
            service: ServiceType::VirusScan,
            cert,
            cpu,
            mem,
            pps,
            bps,
            total_pkts: total,
        };
        prop_assert_eq!(SeMessage::decode(&msg.encode()), Some(msg));
    }

    #[test]
    fn se_event_roundtrip(
        cert in any::<u64>(),
        src in any::<u64>(), dst in any::<u64>(),
        sp in any::<u16>(), dp in any::<u16>(),
        attack in "[a-zA-Z0-9 .:_-]{0,40}",
        severity in 1u8..=10,
        vlan in proptest::option::of(0u16..4095),
    ) {
        let flow = FlowKey {
            vlan,
            dl_src: MacAddr::from_u64(src & 0xffff_ffff_ffff),
            dl_dst: MacAddr::from_u64(dst & 0xffff_ffff_ffff),
            dl_type: 0x0800,
            nw_src: "10.0.0.1".parse().unwrap(),
            nw_dst: "10.0.0.2".parse().unwrap(),
            nw_proto: 6,
            tp_src: sp,
            tp_dst: dp,
        };
        let msg = SeMessage::Event {
            cert,
            flow,
            verdict: Verdict::Malicious { attack, severity },
        };
        prop_assert_eq!(SeMessage::decode(&msg.encode()), Some(msg));
    }

    #[test]
    fn se_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = SeMessage::decode(&bytes);
    }
}
