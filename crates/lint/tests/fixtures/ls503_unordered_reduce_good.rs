//! GOOD twin of `ls503_unordered_reduce_bad.rs`: folding an ordered
//! collection is fine; an order-insensitive accumulator over a hash
//! map is fine too (`sum`), as is a fold annotated with why the
//! operation commutes.

use std::collections::{BTreeMap, HashMap};

struct Acc {
    ordered: BTreeMap<u32, u64>,
    weights: HashMap<u32, u64>,
}

impl Acc {
    fn rolling(&self) -> u64 {
        self.ordered.values().fold(0, |a, b| (a << 1) ^ *b)
    }

    fn total(&self) -> u64 {
        self.weights.values().sum()
    }

    fn xor_all(&self) -> u64 {
        // livesec-lint: allow(unordered-reduce, reason = "xor is commutative and associative, so hash order cannot change the result")
        self.weights.values().fold(0, |a, b| a ^ *b)
    }
}
