//! Integration: the monitoring plane — port-stats polling (link load),
//! SE load reporting, and UI frame assembly under real traffic.

use livesec_suite::prelude::*;

#[test]
fn link_load_polling_tracks_real_traffic() {
    let mut b = CampusBuilder::new(13, 2).configure_controller(|c| c.set_stats_polling(5)); // every 500 ms
    let gw = b.add_gateway(0);
    let user = b.add_user(1, UdpBlaster::new(gw.ip, 50_000_000));
    let mut campus = b.finish();
    campus.world.run_for(SimDuration::from_secs(3));

    let c = campus.controller();
    let loads: Vec<(u64, u32, u64)> = c
        .monitor()
        .of_tag("link_load")
        .filter_map(|e| match &e.kind {
            EventKind::LinkLoad {
                dpid,
                port,
                tx_bytes,
                ..
            } => Some((*dpid, *port, *tx_bytes)),
            _ => None,
        })
        .collect();
    assert!(!loads.is_empty(), "polling produced link-load samples");

    // The user's ingress switch uplink (dpid 2, port 1) carried the
    // flood; at 50 Mbps a 500 ms sample holds ~3 MB.
    let uplink_max = loads
        .iter()
        .filter(|(dpid, port, _)| *dpid == 2 && *port == 1)
        .map(|(_, _, tx)| *tx)
        .max()
        .unwrap_or(0);
    assert!(
        uplink_max > 1_000_000,
        "uplink visibly loaded: max sample {uplink_max} bytes"
    );

    // An idle access port shows (next to) nothing.
    let idle_max = loads
        .iter()
        .filter(|(dpid, port, _)| *dpid == 1 && *port == 30)
        .map(|(_, _, tx)| *tx)
        .max()
        .unwrap_or(0);
    assert!(idle_max < 10_000, "idle port quiet: {idle_max}");

    // The frame view exposes the same numbers.
    let frame = c.monitor().frame(SimTime::from_nanos(3_000_000_000));
    assert!(
        frame.link_load.contains_key(&(2, 1)),
        "frame carries link load: {:?}",
        frame.link_load.keys().collect::<Vec<_>>()
    );
    let _ = user;
}

#[test]
fn service_aware_statistics_attribute_traffic_per_app_and_user() {
    // §IV-C: with protocol identification in the path, the controller
    // knows what service each user consumes and can aggregate traffic
    // per application.
    let mut policy = PolicyTable::allow_all();
    policy.push(
        PolicyRule::named("protoid")
            .proto(6)
            .chain(vec![ServiceType::ProtocolIdentification]),
    );
    let mut b = CampusBuilder::new(13, 2)
        .with_policy(policy)
        .configure_controller(|c| c.set_flow_idle_timeout(SimDuration::from_millis(300)));
    let gw = b.add_gateway_with_app(0, HttpServer::new());
    b.add_service_element(0, ServiceElement::new(ProtoIdEngine::new()));
    let web_user = b.add_user(
        1,
        HttpClient::new(gw.ip, 60_000)
            .with_think_time(SimDuration::from_millis(80))
            .with_rotating_ports(),
    );
    let ssh_server = b.add_user(0, TcpEchoServer::new());
    let ssh_user = b.add_user(
        1,
        SshSession::new(ssh_server.ip).with_keystroke_interval(SimDuration::from_millis(600)),
    );
    let mut campus = b.finish();
    campus.world.run_for(SimDuration::from_secs(6));

    let c = campus.controller();
    let apps = c.app_traffic();
    let http = apps.iter().find(|(a, _)| a == "http");
    let ssh = apps.iter().find(|(a, _)| a == "ssh");
    assert!(http.is_some(), "http attributed: {apps:?}");
    assert!(ssh.is_some(), "ssh attributed: {apps:?}");
    let (_, http_t) = http.unwrap();
    let (_, ssh_t) = ssh.unwrap();
    assert!(
        http_t.bytes > ssh_t.bytes * 3,
        "web dominates the mix: {http_t:?} vs {ssh_t:?}"
    );

    // Per-user attribution: the web user moved more bytes.
    let users = c.user_traffic();
    let web = users
        .iter()
        .find(|(m, _)| *m == web_user.mac)
        .map(|(_, t)| *t);
    let ssh_u = users
        .iter()
        .find(|(m, _)| *m == ssh_user.mac)
        .map(|(_, t)| *t);
    assert!(
        web.is_some() && ssh_u.is_some(),
        "both users tallied: {users:?}"
    );
    assert!(web.unwrap().bytes > ssh_u.unwrap().bytes);

    // The NIB snapshot exports all of it as JSON.
    let now = campus.world.kernel().now();
    let json = campus.controller().nib_json(now);
    assert!(json.contains("\"app_traffic\""));
    assert!(json.contains("http"));
    let snap = campus.controller().nib_snapshot(now);
    assert_eq!(snap.switches.len(), 2);
    assert!(snap.hosts.len() >= 4);
    assert_eq!(snap.elements.len(), 1);
}

#[test]
fn se_load_reports_reflect_utilization() {
    let mut policy = PolicyTable::allow_all();
    policy.push(
        PolicyRule::named("ids")
            .proto(17)
            .chain(vec![ServiceType::IntrusionDetection]),
    );
    let mut b = CampusBuilder::new(13, 2).with_policy(policy);
    let gw = b.add_gateway(0);
    // A small element so a 40 Mbps flood loads it visibly.
    let se = b.add_service_element(
        0,
        ServiceElement::new(IdsEngine::engine()).with_capacity_bps(100_000_000),
    );
    b.add_user(1, UdpBlaster::new(gw.ip, 40_000_000));
    let mut campus = b.finish();
    campus.world.run_for(SimDuration::from_secs(3));

    let c = campus.controller();
    let max_cpu = c
        .monitor()
        .of_tag("se_load")
        .filter_map(|e| match &e.kind {
            EventKind::SeLoad { mac, cpu, .. } if *mac == se.mac => Some(*cpu),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    // 40 Mbps into a 100 Mbps engine ≈ 40%+ CPU (plus per-packet cost).
    assert!(
        (30..=100).contains(&max_cpu),
        "element visibly loaded: {max_cpu}%"
    );
    // The registry mirrors the latest heartbeat.
    let view = c.registry().get(se.mac).expect("registered");
    assert!(view.online);
    assert!(
        view.total_pkts > 1000,
        "cumulative work: {}",
        view.total_pkts
    );
}
