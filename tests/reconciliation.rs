//! Property: flow-table reconciliation converges for *any* fault
//! schedule. Arbitrary combinations of control-channel partitions and
//! switch power-cycles are thrown at the campus; after the dust
//! settles, every switch's installed flow table must equal the
//! controller's desired state for that switch — no stale entries left
//! behind by a partition (so no flow can keep being served from state
//! the controller no longer believes in), nothing missing after a
//! wipe.
//!
//! The vendored proptest stand-in runs a fixed global number of cases
//! per `proptest!` block, which is far too many for whole-campus
//! simulations, so this test drives the same strategy machinery
//! through a small set of deterministic case seeds instead.

use livesec_suite::prelude::*;
use livesec_switch::AsSwitch;
use livesec_workloads::{CampusScenario, ScenarioConfig};
use proptest::strategy::{Strategy, TestRng};
use rand::SeedableRng;
use std::collections::BTreeSet;

/// Mirror of the controller's untracked self-expiring deny tag: deny
/// entries are excluded from audits, so they are excluded here too.
const DENY_COOKIE: u64 = 4;

#[derive(Clone, Debug)]
struct Outage {
    switch: usize,
    start_ms: u64,
    len_ms: u64,
}

#[derive(Clone, Debug)]
struct Schedule {
    outages: Vec<Outage>,
    crash: Option<(usize, u64)>,
}

fn arb_schedule() -> impl Strategy<Value = Schedule> {
    let outage =
        (0usize..4, 1_000u64..8_000, 500u64..5_000).prop_map(|(switch, start_ms, len_ms)| Outage {
            switch,
            start_ms,
            len_ms,
        });
    (
        proptest::collection::vec(outage, 1..5),
        proptest::option::of((0usize..4, 1_000u64..9_000)),
    )
        .prop_map(|(outages, crash)| Schedule { outages, crash })
}

/// Does every switch's installed table (minus self-expiring deny
/// entries) equal the controller's desired state for it?
fn converged(campus: &Campus) -> bool {
    let c = campus.controller();
    for &node in &campus.as_switches {
        let Some(dpid) = c.topology().dpid_of_node(node) else {
            return false; // a switch never re-registered
        };
        let want: BTreeSet<(String, u16)> = c
            .desired_entries(dpid)
            .into_iter()
            .map(|(m, p, _)| (m.to_string(), p))
            .collect();
        let have: BTreeSet<(String, u16)> = campus
            .world
            .node::<AsSwitch>(node)
            .table()
            .iter()
            .filter(|e| e.cookie != DENY_COOKIE)
            .map(|e| (e.matcher.to_string(), e.priority))
            .collect();
        if want != have {
            return false;
        }
    }
    true
}

fn check_schedule(case: u64, schedule: &Schedule) {
    let mut s = CampusScenario::build(ScenarioConfig {
        seed: case,
        // No BitTorrent phase: steady light traffic keeps the run fast.
        torrent_at: SimDuration::from_secs(3_600),
        // Entries never idle out within the horizon, so every installed
        // entry is pinned by an active record and desired state equals
        // installed state exactly (no teardown in flight to race with).
        flow_idle: SimDuration::from_secs(120),
        ..ScenarioConfig::default()
    });

    let mut plan = FaultPlan::new(case ^ 0x0fa);
    let mut last_ns = 0u64;
    for o in &schedule.outages {
        let node = s.campus.as_switches[o.switch];
        let start = o.start_ms * 1_000_000;
        let end = (o.start_ms + o.len_ms) * 1_000_000;
        plan.push(
            SimTime::from_nanos(start),
            FaultKind::PartitionControl { node },
        );
        plan.push(SimTime::from_nanos(end), FaultKind::HealControl { node });
        last_ns = last_ns.max(end);
    }
    if let Some((idx, at_ms)) = schedule.crash {
        let node = s.campus.as_switches[idx];
        let at = at_ms * 1_000_000;
        plan.push(SimTime::from_nanos(at), FaultKind::CrashRestart { node });
        last_ns = last_ns.max(at);
    }
    s.campus.world.install_fault_plan(&plan);

    // Run through the whole schedule plus the worst-case reconnect
    // backoff (capped at 8 s), then give the audit a beat.
    s.campus
        .world
        .run_for(SimDuration::from_nanos(last_ns + 12_000_000_000));

    // Convergence, not instantaneous equality: a flow set up in the
    // last few hundred microseconds may have its flow-mods still in
    // flight, so the check is retried over a bounded settling window.
    let mut ok = converged(&s.campus);
    for _ in 0..30 {
        if ok {
            break;
        }
        s.campus.world.run_for(SimDuration::from_millis(100));
        ok = converged(&s.campus);
    }
    let c = s.campus.controller();
    let h = c.health_stats();
    assert!(
        ok,
        "case {case}: tables did not converge to desired state\n\
         schedule: {schedule:?}\nhealth: {h:?}"
    );
    assert_eq!(
        h.switch_ups, h.switch_downs,
        "case {case}: a switch stayed down: {h:?}"
    );
    assert_eq!(
        h.switches_online, 4,
        "case {case}: not every switch re-registered: {h:?}"
    );
    assert!(
        c.monitor().of_tag("flow_start").count() > 0,
        "case {case}: the run carried no traffic at all"
    );
}

#[test]
fn reconciliation_converges_for_any_fault_schedule() {
    let strat = arb_schedule();
    for case in 0..8u64 {
        let mut rng = TestRng::seed_from_u64(0x5eed ^ case);
        let schedule = strat.generate(&mut rng);
        check_schedule(case, &schedule);
    }
}
