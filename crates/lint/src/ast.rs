//! The lightweight Rust AST produced by [`crate::parser`].
//!
//! This is not a compiler-fidelity tree: types and patterns are kept
//! as flattened identifier lists ([`TypeRef`]), and generics carry
//! only the identifiers the rules care about. Expressions, however,
//! are fully structured — method chains, calls, indexing, casts,
//! control flow and closures — because that is what the dataflow pass
//! ([`crate::dataflow`]) and every v2 rule family walk.

/// A parsed source file: the items plus any parse recoveries.
#[derive(Debug, Default)]
pub struct File {
    /// Top-level items in source order.
    pub items: Vec<Item>,
    /// Places the parser had to skip tokens it could not structure.
    /// The workspace meta-test asserts this stays empty: an analyzer
    /// that silently skips code is worse than one that fails loudly.
    pub recoveries: Vec<Recovery>,
}

/// One spot where the parser skipped a token it did not understand.
#[derive(Debug, Clone)]
pub struct Recovery {
    /// 1-based source line of the skipped token.
    pub line: u32,
    /// Parser context, e.g. `"item"` or `"expr"`.
    pub context: &'static str,
}

/// A type annotation, kept as flattened text plus its identifiers.
#[derive(Debug, Clone, Default)]
pub struct TypeRef {
    /// The type tokens joined without whitespace (`&[u8]`, `Vec<u8>`).
    pub text: String,
    /// Every identifier appearing in the type, in order.
    pub idents: Vec<String>,
}

impl TypeRef {
    /// Whether the type mentions `name` anywhere (e.g. `HashMap`).
    pub fn mentions(&self, name: &str) -> bool {
        self.idents.iter().any(|i| i == name)
    }

    /// Whether this is a borrowed byte-slice type (`&[u8]`,
    /// `&'a [u8]`, `&mut [u8]`), the wire-input shape.
    pub fn is_byte_slice(&self) -> bool {
        self.text.starts_with('&') && self.text.ends_with("[u8]")
    }

    /// The "head" identifier naming the type: the last identifier
    /// before any generic arguments (`FlowTable` for
    /// `FlowTable<'a, K>`), else the last identifier of the path
    /// (`Reader` for `codec::Reader`). Empty for pure-punct types.
    pub fn head_ident(&self) -> String {
        match self.text.find('<') {
            Some(lt) => {
                // Count idents that appear before the `<`.
                let mut consumed = 0usize;
                let mut last = "";
                for id in &self.idents {
                    if let Some(off) = self.text[consumed..].find(id.as_str()) {
                        let at = consumed + off;
                        if at >= lt {
                            break;
                        }
                        last = id;
                        consumed = at + id.len();
                    }
                }
                last.to_string()
            }
            None => self.idents.last().cloned().unwrap_or_default(),
        }
    }
}

/// One item (top-level or nested).
#[derive(Debug)]
pub enum Item {
    /// A function (free, associated, or trait method).
    Fn(FnItem),
    /// An `impl` block; `items` are its associated items.
    Impl {
        /// Last identifier of the `Self` type (`Reader`, `FlowTable`).
        type_name: String,
        /// Whether the block is `#[cfg(test)]`-gated.
        cfg_test: bool,
        /// Associated items.
        items: Vec<Item>,
        /// 1-based line of the `impl` keyword.
        line: u32,
    },
    /// An inline module (`mod name { ... }`); `mod name;` has no items.
    Mod {
        /// Module name.
        name: String,
        /// Whether the module is `#[cfg(test)]`-gated.
        cfg_test: bool,
        /// Items inside an inline module body.
        items: Vec<Item>,
        /// 1-based line of the `mod` keyword.
        line: u32,
    },
    /// A struct definition with its field types.
    Struct {
        /// Struct name.
        name: String,
        /// Named or tuple fields (tuple fields get empty names).
        fields: Vec<FieldDef>,
        /// 1-based line.
        line: u32,
    },
    /// An enum definition; variant payload types appear as fields
    /// named after their variant.
    Enum {
        /// Enum name.
        name: String,
        /// Variant payload types, one entry per payload type.
        fields: Vec<FieldDef>,
        /// 1-based line.
        line: u32,
    },
    /// A trait definition with its (possibly bodiless) items.
    Trait {
        /// Trait name.
        name: String,
        /// Associated items.
        items: Vec<Item>,
        /// 1-based line.
        line: u32,
    },
    /// A `type Name = ...;` alias, recorded so unordered-collection
    /// bindings hidden behind aliases still resolve.
    TypeAlias {
        /// Alias name.
        name: String,
        /// Aliased type.
        ty: TypeRef,
        /// 1-based line.
        line: u32,
    },
    /// A `const`/`static` with its initializer expression.
    Const {
        /// Item name.
        name: String,
        /// Declared type.
        ty: TypeRef,
        /// Initializer.
        init: Option<Expr>,
        /// Whether this is a `static mut` — globally shared mutable
        /// state, the worst determinism shape a parallel executor can
        /// meet (flagged by LS501).
        mutable: bool,
        /// 1-based line.
        line: u32,
    },
    /// Anything rule-irrelevant (`use`, `extern crate`, item macros).
    Other {
        /// 1-based line.
        line: u32,
    },
}

/// A struct field or enum-variant payload type.
#[derive(Debug)]
pub struct FieldDef {
    /// Field name (empty for tuple fields / variant payloads).
    pub name: String,
    /// Field type.
    pub ty: TypeRef,
    /// 1-based line.
    pub line: u32,
}

/// A function item.
#[derive(Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Parameters (including a `self` receiver, named `"self"`).
    pub params: Vec<Param>,
    /// Return type, when written.
    pub ret: Option<TypeRef>,
    /// Body; `None` for trait-method declarations.
    pub body: Option<Block>,
    /// Whether the fn itself is `#[cfg(test)]`- or `#[test]`-gated.
    pub cfg_test: bool,
}

/// One function parameter.
#[derive(Debug)]
pub struct Param {
    /// Binding name (the last identifier of the pattern).
    pub name: String,
    /// Declared type (empty for `self` receivers).
    pub ty: TypeRef,
}

/// A `{ ... }` block.
#[derive(Debug, Default)]
pub struct Block {
    /// Statements in order; the tail expression is the final
    /// [`Stmt::Expr`] with `semi == false`.
    pub stmts: Vec<Stmt>,
    /// 1-based line of the opening brace.
    pub line: u32,
    /// 1-based line of the closing brace (0 when unterminated). Gives
    /// functions a span, which the allow-target meta-test uses to
    /// prove every annotation still lands inside a real function.
    pub end_line: u32,
}

/// One statement.
#[derive(Debug)]
pub enum Stmt {
    /// A `let` binding.
    Let {
        /// Simple binding name (`let x`, `let mut x`); `None` for
        /// destructuring patterns.
        name: Option<String>,
        /// Every identifier bound or mentioned by the pattern.
        pat_idents: Vec<String>,
        /// Declared type, when annotated.
        ty: Option<TypeRef>,
        /// Initializer, when present.
        init: Option<Expr>,
        /// The `else` block of a `let ... else`.
        else_block: Option<Block>,
        /// 1-based line of the `let`.
        line: u32,
    },
    /// An expression statement (with or without trailing `;`).
    Expr {
        /// The expression.
        expr: Expr,
        /// Whether a `;` followed.
        semi: bool,
    },
    /// A nested item (fn, struct, const, ...).
    Item(Box<Item>),
    /// A stray `;`.
    Empty,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `&&`
    And,
    /// `||`
    Or,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
}

impl BinOp {
    /// Whether this operator yields a boolean comparison — the shape
    /// the taint pass accepts as a bounds guard.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge
        )
    }

    /// Whether this operator is arithmetic that can overflow or grow
    /// a value (`+ - * << >>`).
    pub fn is_arith(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Shl | BinOp::Shr
        )
    }
}

/// One match arm.
#[derive(Debug)]
pub struct Arm {
    /// Identifiers mentioned by the pattern.
    pub pat_idents: Vec<String>,
    /// Arm guard (`pat if guard => ...`).
    pub guard: Option<Expr>,
    /// Arm body.
    pub body: Expr,
    /// 1-based line of the pattern start.
    pub line: u32,
}

/// An expression.
#[derive(Debug)]
pub enum Expr {
    /// A (possibly qualified) path: `x`, `self.x` is [`Expr::Field`],
    /// `a::b::c`, `Vec::<u8>::new` (turbofish idents in `generics`).
    Path {
        /// Path segments.
        segs: Vec<String>,
        /// Turbofish type identifiers, if any.
        generics: Vec<String>,
        /// 1-based line.
        line: u32,
    },
    /// Any literal token (numbers, strings, chars).
    Lit {
        /// Literal text as written.
        text: String,
        /// 1-based line.
        line: u32,
    },
    /// A call `callee(args)`.
    Call {
        /// Callee expression (usually a [`Expr::Path`]).
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// A method call `recv.name::<T>(args)`.
    MethodCall {
        /// Receiver.
        recv: Box<Expr>,
        /// Method name.
        name: String,
        /// Turbofish type identifiers.
        generics: Vec<String>,
        /// Arguments.
        args: Vec<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// A field access `recv.name` (tuple indices keep digit names).
    Field {
        /// Receiver.
        recv: Box<Expr>,
        /// Field name.
        name: String,
        /// 1-based line.
        line: u32,
    },
    /// An index `recv[index]`.
    Index {
        /// Receiver.
        recv: Box<Expr>,
        /// Index expression (often a [`Expr::Range`]).
        index: Box<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// A prefix unary op: `-x`, `!x`, `*x`, `&x`.
    Unary {
        /// The operator character.
        op: char,
        /// Operand.
        expr: Box<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// A binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// `lhs = rhs` or `lhs op= rhs`.
    Assign {
        /// `None` for plain `=`, the operator for compound assigns.
        op: Option<BinOp>,
        /// Assignee.
        lhs: Box<Expr>,
        /// Value.
        rhs: Box<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// `expr as Type`.
    Cast {
        /// Value being cast.
        expr: Box<Expr>,
        /// Target type.
        ty: TypeRef,
        /// 1-based line.
        line: u32,
    },
    /// `lo..hi` / `lo..=hi`, either side optional.
    Range {
        /// Lower bound.
        lo: Option<Box<Expr>>,
        /// Upper bound.
        hi: Option<Box<Expr>>,
        /// 1-based line.
        line: u32,
    },
    /// `if cond { .. } else ..`; `if let` records the pattern.
    If {
        /// Pattern identifiers when this is an `if let`.
        pat_idents: Vec<String>,
        /// Condition (the scrutinee for `if let`).
        cond: Box<Expr>,
        /// Then-branch.
        then: Block,
        /// Else-branch: a [`Expr::Block`] or a chained [`Expr::If`].
        else_: Option<Box<Expr>>,
        /// 1-based line.
        line: u32,
    },
    /// `while cond { .. }`; `while let` records the pattern.
    While {
        /// Pattern identifiers when this is a `while let`.
        pat_idents: Vec<String>,
        /// Condition (the scrutinee for `while let`).
        cond: Box<Expr>,
        /// Body.
        body: Block,
        /// 1-based line.
        line: u32,
    },
    /// `loop { .. }`.
    Loop {
        /// Body.
        body: Block,
        /// 1-based line.
        line: u32,
    },
    /// `for pat in iter { .. }`.
    For {
        /// Pattern identifiers.
        pat_idents: Vec<String>,
        /// Iterated expression.
        iter: Box<Expr>,
        /// Body.
        body: Block,
        /// 1-based line.
        line: u32,
    },
    /// `match scrutinee { arms }`.
    Match {
        /// Scrutinee.
        scrutinee: Box<Expr>,
        /// Arms.
        arms: Vec<Arm>,
        /// 1-based line.
        line: u32,
    },
    /// A block used as an expression.
    Block {
        /// The block.
        block: Block,
        /// 1-based line.
        line: u32,
    },
    /// A closure `|params| body`.
    Closure {
        /// Parameter names.
        params: Vec<String>,
        /// Body expression.
        body: Box<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// A macro invocation `name!(...)`.
    MacroCall {
        /// Macro name (last path segment).
        name: String,
        /// Arguments that parsed as expressions.
        args: Vec<Expr>,
        /// Identifiers from argument tokens that did not parse as
        /// expressions (patterns in `matches!`, format specs, ...).
        raw_idents: Vec<String>,
        /// 1-based line.
        line: u32,
    },
    /// A struct literal `Path { fields, ..base }`.
    StructLit {
        /// Path segments of the struct name.
        segs: Vec<String>,
        /// Field initializers (shorthand fields repeat the name).
        fields: Vec<(String, Expr)>,
        /// The `..base` expression.
        base: Option<Box<Expr>>,
        /// 1-based line.
        line: u32,
    },
    /// A tuple `(a, b)`; one-element parens collapse to the inner
    /// expression and never produce this node.
    Tuple {
        /// Elements.
        elems: Vec<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// An array `[a, b]` or `[elem; len]`.
    Array {
        /// Elements (for `[elem; len]`, both expressions).
        elems: Vec<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// `return expr?`.
    Return {
        /// Returned value.
        value: Option<Box<Expr>>,
        /// 1-based line.
        line: u32,
    },
    /// `break expr?` (labels discarded).
    Break {
        /// Break value.
        value: Option<Box<Expr>>,
        /// 1-based line.
        line: u32,
    },
    /// `continue` (labels discarded).
    Continue {
        /// 1-based line.
        line: u32,
    },
    /// Postfix `?`.
    Try {
        /// The inner expression.
        expr: Box<Expr>,
        /// 1-based line.
        line: u32,
    },
    /// A token the parser could not interpret as an expression.
    Opaque {
        /// 1-based line.
        line: u32,
    },
}

impl Expr {
    /// The 1-based line this expression starts on.
    pub fn line(&self) -> u32 {
        match self {
            Expr::Path { line, .. }
            | Expr::Lit { line, .. }
            | Expr::Call { line, .. }
            | Expr::MethodCall { line, .. }
            | Expr::Field { line, .. }
            | Expr::Index { line, .. }
            | Expr::Unary { line, .. }
            | Expr::Binary { line, .. }
            | Expr::Assign { line, .. }
            | Expr::Cast { line, .. }
            | Expr::Range { line, .. }
            | Expr::If { line, .. }
            | Expr::While { line, .. }
            | Expr::Loop { line, .. }
            | Expr::For { line, .. }
            | Expr::Match { line, .. }
            | Expr::Block { line, .. }
            | Expr::Closure { line, .. }
            | Expr::MacroCall { line, .. }
            | Expr::StructLit { line, .. }
            | Expr::Tuple { line, .. }
            | Expr::Array { line, .. }
            | Expr::Return { line, .. }
            | Expr::Break { line, .. }
            | Expr::Continue { line }
            | Expr::Try { line, .. }
            | Expr::Opaque { line } => *line,
        }
    }

    /// Strips reference/deref/try/paren-like wrappers: `&x` → `x`,
    /// `(*x)?` → `x`.
    pub fn unwrapped(&self) -> &Expr {
        match self {
            Expr::Unary { expr, .. } | Expr::Try { expr, .. } => expr.unwrapped(),
            other => other,
        }
    }

    /// Pre-order walk over this expression and every nested
    /// expression, descending into blocks, arms and closures (but not
    /// into nested [`Stmt::Item`]s — those are separate items).
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Path { .. } | Expr::Lit { .. } | Expr::Continue { .. } | Expr::Opaque { .. } => {}
            Expr::Call { callee, args, .. } => {
                callee.walk(f);
                for a in args {
                    a.walk(f);
                }
            }
            Expr::MethodCall { recv, args, .. } => {
                recv.walk(f);
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Field { recv, .. } => recv.walk(f),
            Expr::Index { recv, index, .. } => {
                recv.walk(f);
                index.walk(f);
            }
            Expr::Unary { expr, .. } | Expr::Cast { expr, .. } | Expr::Try { expr, .. } => {
                expr.walk(f)
            }
            Expr::Binary { lhs, rhs, .. } | Expr::Assign { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            Expr::Range { lo, hi, .. } => {
                if let Some(e) = lo {
                    e.walk(f);
                }
                if let Some(e) = hi {
                    e.walk(f);
                }
            }
            Expr::If {
                cond, then, else_, ..
            } => {
                cond.walk(f);
                then.walk_exprs(f);
                if let Some(e) = else_ {
                    e.walk(f);
                }
            }
            Expr::While { cond, body, .. } => {
                cond.walk(f);
                body.walk_exprs(f);
            }
            Expr::Loop { body, .. } => body.walk_exprs(f),
            Expr::For { iter, body, .. } => {
                iter.walk(f);
                body.walk_exprs(f);
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                scrutinee.walk(f);
                for arm in arms {
                    if let Some(g) = &arm.guard {
                        g.walk(f);
                    }
                    arm.body.walk(f);
                }
            }
            Expr::Block { block, .. } => block.walk_exprs(f),
            Expr::Closure { body, .. } => body.walk(f),
            Expr::MacroCall { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::StructLit { fields, base, .. } => {
                for (_, e) in fields {
                    e.walk(f);
                }
                if let Some(b) = base {
                    b.walk(f);
                }
            }
            Expr::Tuple { elems, .. } | Expr::Array { elems, .. } => {
                for e in elems {
                    e.walk(f);
                }
            }
            Expr::Return { value, .. } | Expr::Break { value, .. } => {
                if let Some(v) = value {
                    v.walk(f);
                }
            }
        }
    }

    /// Whether the expression mentions `name` as a path segment or
    /// field name anywhere.
    pub fn mentions(&self, name: &str) -> bool {
        let mut hit = false;
        self.walk(&mut |e| match e {
            Expr::Path { segs, .. } if segs.iter().any(|s| s == name) => hit = true,
            Expr::Field { name: n, .. } if n == name => hit = true,
            _ => {}
        });
        hit
    }
}

impl Block {
    /// Walks every expression in the block (see [`Expr::walk`]).
    pub fn walk_exprs(&self, f: &mut impl FnMut(&Expr)) {
        for stmt in &self.stmts {
            match stmt {
                Stmt::Let {
                    init, else_block, ..
                } => {
                    if let Some(e) = init {
                        e.walk(f);
                    }
                    if let Some(b) = else_block {
                        b.walk_exprs(f);
                    }
                }
                Stmt::Expr { expr, .. } => expr.walk(f),
                Stmt::Item(_) | Stmt::Empty => {}
            }
        }
    }
}

/// Calls `f` for every function in the file with `in_test` true when
/// the fn or any enclosing impl/mod is `#[cfg(test)]`-gated.
pub fn for_each_fn(file: &File, f: &mut impl FnMut(&FnItem, bool)) {
    fn items(list: &[Item], in_test: bool, f: &mut impl FnMut(&FnItem, bool)) {
        for item in list {
            match item {
                Item::Fn(func) => {
                    f(func, in_test || func.cfg_test);
                    if let Some(body) = &func.body {
                        nested(body, in_test || func.cfg_test, f);
                    }
                }
                Item::Impl {
                    cfg_test, items: i, ..
                }
                | Item::Mod {
                    cfg_test, items: i, ..
                } => items(i, in_test || *cfg_test, f),
                Item::Trait { items: i, .. } => items(i, in_test, f),
                _ => {}
            }
        }
    }
    fn nested(block: &Block, in_test: bool, f: &mut impl FnMut(&FnItem, bool)) {
        for stmt in &block.stmts {
            if let Stmt::Item(item) = stmt {
                items(std::slice::from_ref(item), in_test, f);
            }
        }
    }
    items(&file.items, false, f);
}

/// `(name, first_line, last_line)` for every function in the file,
/// including `#[cfg(test)]` ones. The span covers the signature line
/// through the body's closing brace; bodyless functions (trait
/// signatures) span their single line. Used by the allow-target
/// meta-test to prove annotations still point at live code.
pub fn fn_spans(file: &File) -> Vec<(String, u32, u32)> {
    let mut spans = Vec::new();
    for_each_fn(file, &mut |f, _| {
        let end = f
            .body
            .as_ref()
            .map(|b| b.end_line.max(f.line))
            .unwrap_or(f.line);
        spans.push((f.name.clone(), f.line, end));
    });
    spans
}
