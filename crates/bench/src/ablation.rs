//! E10 — design-choice ablations (ours, indexed in DESIGN.md).
//!
//! Three sweeps over the knobs the paper leaves implicit:
//!
//! 1. **Chain length vs latency** — each extra service element in a
//!    flow's chain adds a detour through the legacy fabric plus
//!    processing time; how much?
//! 2. **Report interval vs balance quality** — the minimum-load
//!    dispatcher acts on heartbeat load figures; staler figures mean
//!    worse balance.
//! 3. **Control latency vs first-packet latency** — the cost of a
//!    farther-away controller on flow setup.

use livesec::balance::{Grain, LoadBalancer, MinLoad};
use livesec::deploy::CampusBuilder;
use livesec::policy::{PolicyRule, PolicyTable};
use livesec_services::{IdsEngine, ProtoIdEngine, ServiceElement, ServiceType, SignatureEngine};
use livesec_sim::{SimDuration, SimTime};
use livesec_switch::Host;
use livesec_workloads::{HttpClient, HttpServer, Pinger};

/// Result of the chain-length sweep at one length.
#[derive(Clone, Copy, Debug)]
pub struct ChainLatency {
    /// Number of elements in the chain.
    pub chain_len: usize,
    /// Mean ping RTT through the chain.
    pub rtt: SimDuration,
}

/// Sweeps steering-chain length 0..=3 and measures ping RTT.
pub fn chain_length_latency(seed: u64) -> Vec<ChainLatency> {
    let chains: [Vec<ServiceType>; 4] = [
        vec![],
        vec![ServiceType::IntrusionDetection],
        vec![
            ServiceType::IntrusionDetection,
            ServiceType::ProtocolIdentification,
        ],
        vec![
            ServiceType::IntrusionDetection,
            ServiceType::ProtocolIdentification,
            ServiceType::VirusScan,
        ],
    ];
    chains
        .into_iter()
        .map(|chain| {
            let chain_len = chain.len();
            let mut policy = PolicyTable::allow_all();
            if !chain.is_empty() {
                policy.push(PolicyRule::named("chain-icmp").proto(1).chain(chain));
            }
            let mut b = CampusBuilder::new(seed, 4).with_policy(policy);
            b.add_gateway(0);
            b.add_service_element(1, ServiceElement::new(IdsEngine::engine()));
            b.add_service_element(2, ServiceElement::new(ProtoIdEngine::new()));
            b.add_service_element(
                3,
                ServiceElement::new(livesec_services::VirusScanEngine::engine()),
            );
            let user = b.add_user(
                1,
                Pinger::new("8.8.8.8".parse().expect("valid"))
                    .with_start_delay(SimDuration::from_millis(900))
                    .with_max_pings(50),
            );
            let mut campus = b.finish();
            campus.world.run_for(SimDuration::from_secs(4));
            let rtt = campus
                .world
                .node::<Host<Pinger>>(user.node)
                .app()
                .rtts
                .mean()
                .expect("pings answered");
            ChainLatency { chain_len, rtt }
        })
        .collect()
}

/// Result of the report-interval sweep at one interval.
#[derive(Clone, Copy, Debug)]
pub struct ReportIntervalBalance {
    /// SE heartbeat interval.
    pub interval: SimDuration,
    /// Max relative deviation of per-element processed packets.
    pub max_deviation: f64,
}

/// Sweeps the SE heartbeat interval and measures min-load balance
/// quality.
pub fn report_interval_balance(seed: u64) -> Vec<ReportIntervalBalance> {
    [25u64, 100, 400, 1600]
        .into_iter()
        .map(|ms| {
            let interval = SimDuration::from_millis(ms);
            let n_se = 4;
            let mut policy = PolicyTable::allow_all();
            policy.push(
                PolicyRule::named("ids-web")
                    .dst_port(80)
                    .chain(vec![ServiceType::IntrusionDetection]),
            );
            let mut b = CampusBuilder::new(seed, 2 + n_se)
                .with_policy(policy)
                .with_balancer(LoadBalancer::new(MinLoad::new(), Grain::Flow))
                .configure_controller(move |c| {
                    c.set_flow_idle_timeout(SimDuration::from_millis(400));
                    // Keep elements alive across long heartbeat gaps.
                    c.set_se_timeout(SimDuration::from_millis(4 * ms + 500));
                });
            let server = b.add_gateway_with_app(0, HttpServer::new());
            let mut elements = Vec::new();
            for s in 0..n_se {
                elements.push(b.add_service_element(
                    2 + s,
                    ServiceElement::new(IdsEngine::engine()).with_report_interval(interval),
                ));
            }
            for u in 0..12 {
                b.add_user(
                    1,
                    HttpClient::new(server.ip, if u % 3 == 0 { 200_000 } else { 20_000 })
                        .with_think_time(SimDuration::from_millis(30 + u * 7))
                        .with_start_delay(SimDuration::from_millis(900 + 5 * u))
                        .with_rotating_ports()
                        .with_src_port(41_000 + (u as u16) * 97),
                );
            }
            let mut campus = b.finish();
            campus.world.run_for(SimDuration::from_secs(4));
            type IdsSe = ServiceElement<SignatureEngine>;
            let per: Vec<u64> = elements
                .iter()
                .map(|h| {
                    campus
                        .world
                        .node::<Host<IdsSe>>(h.node)
                        .app()
                        .counters()
                        .processed_packets
                })
                .collect();
            let mean = per.iter().sum::<u64>() as f64 / per.len() as f64;
            let max_deviation = if mean == 0.0 {
                0.0
            } else {
                per.iter()
                    .map(|&x| (x as f64 - mean).abs() / mean)
                    .fold(0.0, f64::max)
            };
            ReportIntervalBalance {
                interval,
                max_deviation,
            }
        })
        .collect()
}

/// Result of the control-latency sweep at one latency.
#[derive(Clone, Copy, Debug)]
pub struct ControlLatencySetup {
    /// One-way control-channel latency.
    pub control_latency: SimDuration,
    /// First-ping RTT (pays flow setup).
    pub first_rtt: SimDuration,
    /// Steady-state mean RTT (table hits only).
    pub steady_rtt: SimDuration,
}

/// Sweeps the controller's distance and measures flow-setup cost.
pub fn control_latency_setup(seed: u64) -> Vec<ControlLatencySetup> {
    [50u64, 100, 500, 2000]
        .into_iter()
        .map(|us| {
            let control_latency = SimDuration::from_micros(us);
            let mut b = CampusBuilder::new(seed, 2).with_control_latency(control_latency);
            b.add_gateway(0);
            let user = b.add_user(
                1,
                Pinger::new("8.8.8.8".parse().expect("valid"))
                    .with_start_delay(SimDuration::from_millis(900))
                    .with_max_pings(40),
            );
            let mut campus = b.finish();
            campus.world.run_for(SimDuration::from_secs(4));
            let host = campus.world.node::<Host<Pinger>>(user.node);
            let samples = host.app().rtts.samples();
            let first = samples.first().copied().unwrap_or_default();
            let steady = if samples.len() > 1 {
                let total: u64 = samples[1..].iter().map(|d| d.as_nanos()).sum();
                SimDuration::from_nanos(total / (samples.len() - 1) as u64)
            } else {
                first
            };
            let _ = SimTime::ZERO;
            ControlLatencySetup {
                control_latency,
                first_rtt: first,
                steady_rtt: steady,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longer_chains_cost_more() {
        let rows = chain_length_latency(31);
        assert_eq!(rows.len(), 4);
        assert!(
            rows[3].rtt > rows[0].rtt,
            "3-element chain slower than direct: {rows:?}"
        );
        assert!(
            rows[1].rtt >= rows[0].rtt,
            "1-element chain at least as slow as direct: {rows:?}"
        );
    }

    #[test]
    fn control_latency_hits_first_packet_hardest() {
        let rows = control_latency_setup(33);
        let near = rows[0];
        let far = rows[3];
        assert!(
            far.first_rtt > near.first_rtt,
            "farther controller, slower setup: {rows:?}"
        );
        // Steady-state forwarding never touches the controller.
        let steady_delta =
            (far.steady_rtt.as_nanos() as f64 - near.steady_rtt.as_nanos() as f64).abs();
        assert!(
            steady_delta < near.steady_rtt.as_nanos() as f64 * 0.2,
            "steady state unaffected: {rows:?}"
        );
    }
}
