//! BAD: every LS501 shape — a `static mut` global, a lock-guarded
//! field, an interior-mutability field, and a function leaking
//! interior-mutable state through its return type.

static mut COUNTER: u64 = 0;

struct Shared {
    table: Mutex<Vec<u32>>,
    cache: RefCell<Vec<u8>>,
}

fn expose() -> RefCell<u32> {
    RefCell::new(0)
}
