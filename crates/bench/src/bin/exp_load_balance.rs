//! E4 — regenerates the §V-B.2 load-balance measurement
//! (min-load deviation ≤5%), comparing all four dispatch algorithms
//! and both granularities. Pass `--schematic` for the Figure-4 toy
//! (2 hosts, 2 elements).

use livesec::balance::Grain;
use livesec_bench::balance_exp::{self, Algo};
use livesec_bench::print_header;
use livesec_sim::SimDuration;

fn main() {
    let schematic = std::env::args().any(|a| a == "--schematic");
    if schematic {
        print_header(
            "E9",
            "Figure 4 schematic: 2 hosts over 2 elements (min-load)",
        );
        let r = balance_exp::run(
            Algo::MinLoad,
            Grain::Flow,
            2,
            2,
            9,
            SimDuration::from_secs(3),
        );
        println!("per-element packets: {:?}", r.per_element);
        println!("max deviation: {:.1}%", r.max_deviation * 100.0);
        return;
    }
    print_header(
        "E4",
        "load deviation across 8 elements, 24 users (paper: min-load <=5%)",
    );
    println!(
        "{:<12} {:<6} {:>12} {:>10} {:>30}",
        "algorithm", "grain", "max dev %", "cv %", "per-element packets"
    );
    for grain in [Grain::Flow, Grain::User] {
        for algo in Algo::ALL {
            let r = balance_exp::run(algo, grain, 8, 24, 11, SimDuration::from_secs(5));
            println!(
                "{:<12} {:<6} {:>11.1}% {:>9.1}% {:>30}",
                algo.name(),
                match grain {
                    Grain::Flow => "flow",
                    Grain::User => "user",
                },
                r.max_deviation * 100.0,
                r.cv * 100.0,
                format!("{:?}", r.per_element)
            );
        }
    }
}
