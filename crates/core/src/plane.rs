//! The sharded control plane (DESIGN.md §9): the AS layer partitioned
//! across N controller shards.
//!
//! The plane is a drop-in [`Node`] replacing a single [`Controller`].
//! A deterministic consistent-hash ring ([`crate::ring::HashRing`])
//! maps each switch (and each user MAC) to a shard; every control
//! message is routed to its switch's owner, which handles it with its
//! own flow-setup decision cache. The NIB itself is replicated — in
//! this in-process model, shared — so policy, topology and location
//! state are identical on every shard, and changes propagate to the
//! per-shard caches through epoch tags and a MAC-invalidation journal
//! replayed lazily when a shard next activates.
//!
//! Because the decision cache is observably transparent (DESIGN.md
//! §7), which shard handles a message can never change behaviour:
//! event histories are byte-identical across shard counts (modulo the
//! shard tags on events), and a 1-shard plane is byte-identical to the
//! unsharded controller. That invariant is what `tests/determinism.rs`
//! pins.
//!
//! Shard failover reuses the PR2 liveness/reconciliation machinery:
//! killing a shard ([`livesec_sim::FaultKind::ShardDown`]) removes it
//! from the ring, surviving shards adopt its switches (a fresh ring
//! lookup), and every adopted switch gets a flow-table audit so state
//! the dead shard had in flight is reconciled.

use crate::cache::DecisionCache;
use crate::controller::{CacheInvalidation, Controller};
use crate::monitor::{EventKind, FastPathStats};
use crate::ring::HashRing;
use livesec_net::Packet;
use livesec_sim::{Ctx, Node, NodeId, PortId};
use std::any::Any;

/// One shard's private state: its decision cache plus the cursors that
/// track how much of the shared NIB's change stream it has applied.
#[derive(Debug)]
struct ShardEngine {
    id: u32,
    alive: bool,
    /// The shard's own decision cache (`None` when caching is off, or
    /// after the shard died). Swapped into the inner controller for
    /// the duration of each dispatch this shard handles.
    cache: Option<DecisionCache>,
    /// Wholesale policy-flush counter this shard's cache last synced
    /// to. Scoped policy deltas do not advance it — they land in the
    /// invalidation journal instead, so untouched warm entries
    /// survive on every shard.
    applied_policy_flushes: u64,
    /// Topology epoch this shard's cache last synced to.
    applied_topo_epoch: u64,
    /// Whole-cache flush epoch this shard last observed.
    applied_flush_epoch: u64,
    /// How far into the cache-invalidation journal this shard has
    /// read.
    log_cursor: usize,
    /// Control messages this shard handled.
    messages: u64,
    /// Packet-ins this shard handled.
    packet_ins: u64,
    /// Flows this shard set up whose egress switch belongs to another
    /// shard (cross-shard handoffs).
    handoffs_out: u64,
}

/// A point-in-time export of one shard's counters, for tests, the
/// verifier's snapshot, and the scale-out bench.
#[derive(Clone, Debug)]
pub struct ShardStats {
    /// The shard id.
    pub id: u32,
    /// Whether the shard is alive (not failed over).
    pub alive: bool,
    /// Control messages handled.
    pub messages: u64,
    /// Packet-ins handled.
    pub packet_ins: u64,
    /// Cross-shard flow handoffs originated.
    pub handoffs_out: u64,
    /// Registered switches this shard currently owns (empty if dead).
    pub owned: Vec<u64>,
    /// The shard's decision-cache counters (`None` if caching is off
    /// or the shard died).
    pub cache: Option<FastPathStats>,
}

/// The sharded control plane node. See the module docs.
#[derive(Debug)]
pub struct ShardedControlPlane {
    /// The shared decision engine + replicated NIB. Runs cacheless
    /// between dispatches; each dispatch swaps the owning shard's
    /// cache in.
    inner: Controller,
    shards: Vec<ShardEngine>,
    ring: HashRing,
}

impl ShardedControlPlane {
    /// Wraps `inner` into an `n`-shard plane (n ≥ 1). The controller's
    /// own decision cache is retired; each shard gets a fresh one
    /// (none, if the controller had caching disabled).
    pub fn new(mut inner: Controller, n: u32) -> Self {
        assert!(n >= 1, "a control plane needs at least one shard");
        let cache_enabled = inner.decision_cache_enabled();
        let mut parked = None;
        inner.swap_cache(&mut parked);
        drop(parked);
        inner.set_invalidation_journal(true);
        let (_, te) = inner.epochs();
        let pf = inner.policy_flush_count();
        let fe = inner.cache_flush_epoch();
        let cursor = inner.invalidation_log_len();
        let shards = (0..n)
            .map(|id| ShardEngine {
                id,
                alive: true,
                cache: cache_enabled.then(DecisionCache::new),
                applied_policy_flushes: pf,
                applied_topo_epoch: te,
                applied_flush_epoch: fe,
                log_cursor: cursor,
                messages: 0,
                packet_ins: 0,
                handoffs_out: 0,
            })
            .collect();
        ShardedControlPlane {
            inner,
            shards,
            ring: HashRing::new(n),
        }
    }

    /// The shared controller (NIB, monitor, books). Everything a
    /// single-controller deployment exposes is still here.
    pub fn controller(&self) -> &Controller {
        &self.inner
    }

    /// Mutable access to the shared controller (runtime policy edits,
    /// balancer swaps — they propagate to every shard via epochs).
    pub fn controller_mut(&mut self) -> &mut Controller {
        &mut self.inner
    }

    /// The consistent-hash ring (live shards only).
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Total shards, dead ones included.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shards still alive.
    pub fn live_shard_count(&self) -> usize {
        self.shards.iter().filter(|s| s.alive).count()
    }

    /// The shard currently owning a switch.
    pub fn owner_of_dpid(&self, dpid: u64) -> u32 {
        self.ring.shard_of_dpid(dpid)
    }

    /// Total cross-shard flow handoffs across all shards.
    pub fn handoffs(&self) -> u64 {
        self.shards.iter().map(|s| s.handoffs_out).sum()
    }

    /// Per-shard counters, id-ascending.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| ShardStats {
                id: s.id,
                alive: s.alive,
                messages: s.messages,
                packet_ins: s.packet_ins,
                handoffs_out: s.handoffs_out,
                owned: if s.alive {
                    let mut owned: Vec<u64> = self
                        .inner
                        .topology()
                        .switches()
                        .map(|sw| sw.dpid)
                        .filter(|&d| self.ring.shard_of_dpid(d) == s.id)
                        .collect();
                    owned.sort_unstable();
                    owned
                } else {
                    Vec::new()
                },
                cache: s.cache.as_ref().map(DecisionCache::stats),
            })
            .collect()
    }

    /// The monitor shard stamp used outside any dispatch (housekeeping
    /// ticks, failover events): the lowest live shard. Zero in every
    /// fault-free run, which keeps 1-shard histories byte-identical to
    /// the unsharded controller's.
    fn lowest_live(&self) -> u32 {
        self.shards
            .iter()
            .filter(|s| s.alive)
            .map(|s| s.id)
            .min()
            .unwrap_or(0)
    }

    /// The shard index handling a message from `peer`.
    fn route(&self, peer: NodeId) -> usize {
        let owner = match self.inner.dpid_of_peer(peer) {
            Some(dpid) => self.ring.shard_of_dpid(dpid),
            // Pre-handshake traffic (Hello, the FeaturesReply itself)
            // routes by the peer's node id — deterministic, and
            // irrelevant to history: the shared controller behaves
            // identically on any shard.
            None => self.ring.shard_of_dpid(peer.index() as u64),
        };
        self.shards
            .iter()
            .position(|s| s.id == owner)
            // livesec-lint: allow(unwrap-in-prod, reason = "ring membership and the shard list are mutated together under on_shard_down; the ring can only name ids the list holds")
            .expect("the ring only names live shards")
    }

    /// Brings shard `idx`'s cache up to date with the shared NIB's
    /// change stream, then swaps it into the controller.
    fn activate(&mut self, idx: usize) {
        assert!(idx < self.shards.len(), "routed to unknown shard {idx}");
        let (_, te) = self.inner.epochs();
        let pf = self.inner.policy_flush_count();
        let fe = self.inner.cache_flush_epoch();
        let shard = &mut self.shards[idx];
        debug_assert!(shard.alive, "routed a message to a dead shard");
        if let Some(cache) = shard.cache.as_mut() {
            // Epoch-tagged propagation: one note per lagging epoch
            // invalidates every entry cached under the old value,
            // however far behind this shard fell. Scoped policy
            // deltas advance neither counter — they arrive through
            // the journal below, entry by entry.
            if shard.applied_flush_epoch != fe {
                cache.clear();
            }
            if shard.applied_policy_flushes != pf {
                cache.note_policy_change();
            }
            if shard.applied_topo_epoch != te {
                cache.note_topology_change();
            }
            for inv in self.inner.invalidation_log_since(shard.log_cursor) {
                match inv {
                    CacheInvalidation::Mac(mac) => cache.invalidate_mac(*mac),
                    CacheInvalidation::Class(cube) => cache.invalidate_class(cube),
                }
            }
        }
        shard.applied_policy_flushes = pf;
        shard.applied_topo_epoch = te;
        shard.applied_flush_epoch = fe;
        shard.log_cursor = self.inner.invalidation_log_len();
        self.inner.monitor_mut().set_shard(shard.id);
        self.inner.swap_cache(&mut shard.cache);
    }

    /// Takes shard `idx`'s cache back after a dispatch, fast-forwards
    /// its cursors (its own dispatch's changes went straight into the
    /// active cache), and books the dispatch's counters.
    fn retire(&mut self, idx: usize, packet_ins_before: u64) {
        assert!(idx < self.shards.len(), "retired unknown shard {idx}");
        let processed = self.inner.packet_ins - packet_ins_before;
        let setup = self.inner.take_last_setup();
        let log_len = self.inner.invalidation_log_len();
        let (_, te) = self.inner.epochs();
        let pf = self.inner.policy_flush_count();
        let fe = self.inner.cache_flush_epoch();
        let shard = &mut self.shards[idx];
        self.inner.swap_cache(&mut shard.cache);
        shard.messages += 1;
        shard.packet_ins += processed;
        shard.applied_policy_flushes = pf;
        shard.applied_topo_epoch = te;
        shard.applied_flush_epoch = fe;
        shard.log_cursor = log_len;
        if let Some((_key, ingress, egress)) = setup {
            // Cross-shard handoff: the flow's egress switch belongs to
            // another shard. The shared NIB makes the handoff itself
            // free — the ingress owner installs the whole end-to-end
            // program — but the count is the scale-out cost model.
            if self.ring.shard_of_dpid(ingress) != self.ring.shard_of_dpid(egress) {
                shard.handoffs_out += 1;
            }
        }
        let stamp = self.lowest_live();
        self.inner.monitor_mut().set_shard(stamp);
        self.trim_journal();
    }

    /// Drops the journal prefix every live shard has already replayed.
    fn trim_journal(&mut self) {
        let min = self
            .shards
            .iter()
            .filter(|s| s.alive)
            .map(|s| s.log_cursor)
            .min()
            .unwrap_or(0);
        if min > 0 {
            self.inner.drain_invalidation_log(min);
            for s in &mut self.shards {
                s.log_cursor = s.log_cursor.saturating_sub(min);
            }
        }
    }
}

impl Node for ShardedControlPlane {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        Node::on_start(&mut self.inner, ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        // Housekeeping is global (liveness, expiry, audits): it runs
        // cacheless — invalidations land in the journal and reach each
        // shard's cache on its next activation. The cache is
        // transparent, so running without one changes nothing
        // observable.
        Node::on_timer(&mut self.inner, ctx, token);
    }

    fn on_frame(&mut self, ctx: &mut Ctx<'_>, port: PortId, pkt: Packet) {
        Node::on_frame(&mut self.inner, ctx, port, pkt);
    }

    fn on_control(&mut self, ctx: &mut Ctx<'_>, peer: NodeId, bytes: &[u8]) {
        let idx = self.route(peer);
        self.activate(idx);
        let packet_ins_before = self.inner.packet_ins;
        Node::on_control(&mut self.inner, ctx, peer, bytes);
        self.retire(idx, packet_ins_before);
    }

    fn on_crash_restart(&mut self, ctx: &mut Ctx<'_>) {
        Node::on_crash_restart(&mut self.inner, ctx);
    }

    fn on_shard_down(&mut self, ctx: &mut Ctx<'_>, shard: u32) {
        let Some(idx) = self.shards.iter().position(|s| s.id == shard && s.alive) else {
            return; // unknown or already dead: nothing to fail over
        };
        if self.ring.len() <= 1 {
            return; // refuse to kill the last shard
        }
        let now = ctx.now();
        // The switches the dying shard owns, before the ring changes.
        let mut owned: Vec<u64> = self
            .inner
            .topology()
            .switches()
            .map(|sw| sw.dpid)
            .filter(|&d| self.ring.shard_of_dpid(d) == shard)
            .collect();
        owned.sort_unstable();
        self.shards[idx].alive = false;
        self.shards[idx].cache = None; // its cache dies with it
        self.ring.remove_shard(shard);
        let stamp = self.lowest_live();
        self.inner.monitor_mut().set_shard(stamp);
        self.inner
            .monitor_mut()
            .record(now, EventKind::ShardDown { shard });
        for &dpid in &owned {
            let by = self.ring.shard_of_dpid(dpid);
            self.inner
                .monitor_mut()
                .record(now, EventKind::SwitchAdopted { dpid, by });
            // Reconcile the adopted switch (the PR2 machinery): the
            // dead shard may have had flow-mods in flight, and the
            // audit reinstalls anything missing — standing blocks
            // included.
            self.inner.audit_switch(dpid);
        }
        self.inner.flush(ctx);
        self.trim_journal();
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_starts_with_all_shards_alive() {
        let plane = ShardedControlPlane::new(Controller::new(), 4);
        assert_eq!(plane.shard_count(), 4);
        assert_eq!(plane.live_shard_count(), 4);
        assert_eq!(plane.handoffs(), 0);
        let stats = plane.shard_stats();
        assert_eq!(stats.len(), 4);
        assert!(stats.iter().all(|s| s.alive && s.cache.is_some()));
        // The inner controller runs cacheless between dispatches.
        assert!(!plane.controller().decision_cache_enabled());
    }

    #[test]
    fn caching_disabled_propagates_to_shards() {
        let inner = Controller::new().with_decision_cache(false);
        let plane = ShardedControlPlane::new(inner, 2);
        assert!(plane.shard_stats().iter().all(|s| s.cache.is_none()));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        let _ = ShardedControlPlane::new(Controller::new(), 0);
    }
}
