//! Offline stand-in for the `bytes` crate.
//!
//! The workspace builds without network access, so the handful of
//! external crates it leans on are vendored as minimal, API-compatible
//! subsets. `Bytes` here is an `Arc<[u8]>` wrapper: cloning is a
//! refcount bump, exactly the property `livesec-net` relies on when
//! fanning a packet payload out to many simulated switches.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `data` into a freshly allocated buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Creates a `Bytes` from a static slice without copying semantics
    /// mattering (we copy; the real crate borrows).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns a copy of the bytes as a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// Returns a new `Bytes` covering `range` of this buffer.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        Bytes::copy_from_slice(&self.data[range])
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self.data[..] == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data[..].cmp(&other.data[..])
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data[..].hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let a = Bytes::copy_from_slice(b"hello");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&a[..], b"hello");
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn conversions() {
        let v: Bytes = vec![1u8, 2, 3].into();
        assert_eq!(v.to_vec(), vec![1, 2, 3]);
        assert_eq!(v.slice(1..3).to_vec(), vec![2, 3]);
        assert!(Bytes::new().is_empty());
    }
}
