//! Offline stand-in for `proptest`.
//!
//! Same spelling at use sites — `proptest!`, `prop_compose!`,
//! `prop_oneof!`, `prop_assert*!`, `any::<T>()`, range strategies,
//! `prop_map`, `proptest::collection::vec`, `proptest::option::of` —
//! but a much simpler engine: every test runs a fixed number of
//! deterministic cases (seeded from the test name, overridable with
//! `PROPTEST_CASES`) and failures report the case number instead of
//! shrinking. That trade keeps the workspace free of network
//! dependencies while preserving reproducibility, which is the
//! property the LiveSec test suite actually leans on.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// The per-case random source handed to strategies.
    pub type TestRng = StdRng;

    /// A recipe for producing values of `Self::Value`.
    ///
    /// Unlike upstream proptest there is no value tree or shrinking:
    /// a strategy simply generates a value from the RNG.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Boxes the strategy for heterogeneous unions.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Boxed strategy, usable as a `prop_oneof!` arm.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed arms (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }

        pub fn arm<S: Strategy<Value = T> + 'static>(s: S) -> BoxedStrategy<T> {
            Box::new(s)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            rng.gen_range(lo..hi)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($idx:tt $name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J, 10 K)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J, 10 K, 11 L)
    }

    /// String literals are regex strategies, as in upstream proptest.
    ///
    /// Supported syntax (enough for this workspace's generators, not a
    /// full regex engine): literal characters, escaped literals,
    /// `\d`/`\w`/`\s` classes, `[...]` classes with ranges and literal
    /// `-` at either end, and the quantifiers `{n}`, `{n,m}`, `?`,
    /// `*`, `+` (the unbounded ones capped at 8 repetitions).
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let atoms = parse_regex_atoms(self);
            let mut out = String::new();
            for (chars, min, max) in &atoms {
                let n = rng.gen_range(*min..=*max);
                for _ in 0..n {
                    out.push(chars[rng.gen_range(0..chars.len())]);
                }
            }
            out
        }
    }

    type Atom = (Vec<char>, usize, usize);

    fn class_digit() -> Vec<char> {
        ('0'..='9').collect()
    }

    fn class_word() -> Vec<char> {
        ('a'..='z')
            .chain('A'..='Z')
            .chain('0'..='9')
            .chain(std::iter::once('_'))
            .collect()
    }

    fn parse_regex_atoms(pattern: &str) -> Vec<Atom> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let set: Vec<char> = match chars[i] {
                '[' => {
                    let close = chars[i + 1..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|p| p + i + 1)
                        .unwrap_or_else(|| panic!("unterminated `[` in regex `{pattern}`"));
                    let body = &chars[i + 1..close];
                    i = close + 1;
                    let mut set = Vec::new();
                    let mut j = 0;
                    while j < body.len() {
                        if j + 2 < body.len() && body[j + 1] == '-' {
                            for c in body[j]..=body[j + 2] {
                                set.push(c);
                            }
                            j += 3;
                        } else {
                            set.push(body[j]);
                            j += 1;
                        }
                    }
                    set
                }
                '\\' => {
                    let c = *chars
                        .get(i + 1)
                        .unwrap_or_else(|| panic!("dangling `\\` in regex `{pattern}`"));
                    i += 2;
                    match c {
                        'd' => class_digit(),
                        'w' => class_word(),
                        's' => vec![' ', '\t'],
                        other => vec![other],
                    }
                }
                '.' => {
                    i += 1;
                    (' '..='~').collect()
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            // Quantifier?
            let (min, max) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i + 1..]
                        .iter()
                        .position(|&c| c == '}')
                        .map(|p| p + i + 1)
                        .unwrap_or_else(|| panic!("unterminated `{{` in regex `{pattern}`"));
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        None => {
                            let n = body.trim().parse().expect("bad {n} quantifier");
                            (n, n)
                        }
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("bad {n,m} quantifier"),
                            hi.trim().parse().expect("bad {n,m} quantifier"),
                        ),
                    }
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            };
            assert!(!set.is_empty(), "empty character set in regex `{pattern}`");
            atoms.push((set, min, max));
        }
        atoms
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen::<$t>()
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen::<bool>()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen::<f64>()
        }
    }

    /// Strategy for [`Arbitrary`] types; built by [`any`].
    pub struct AnyStrategy<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — arbitrary value of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Sizes accepted by [`vec`]: exact, `a..b`, or `a..=b`.
    pub trait IntoSizeRange {
        /// Inclusive (min, max).
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Vectors of values from `element`, with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.min..=self.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// `Option` values: `None` about a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_range(0u32..4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod test_runner {
    use super::strategy::{Strategy, TestRng};
    use rand::SeedableRng;

    /// Error produced by a failing property body (`prop_assert*`).
    pub type TestCaseError = String;

    fn case_count() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(64)
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Drives one property: generates `PROPTEST_CASES` inputs from a
    /// seed derived from the test name and panics on the first failing
    /// case (no shrinking).
    pub fn run<S, F>(name: &str, strat: &S, body: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(name);
        for case in 0..case_count() {
            let seed = base.wrapping_add((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let mut rng = TestRng::seed_from_u64(seed);
            let input = strat.generate(&mut rng);
            if let Err(msg) = body(input) {
                panic!("proptest `{name}` failed on case {case} (seed {seed:#x}): {msg}");
            }
        }
    }
}

/// Everything tests import via `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}

#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            // Upstream proptest! passes attributes through; the
            // conventional `#[test]` is written by the caller.
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(
                    concat!(module_path!(), "::", stringify!($name)),
                    &($($strat,)+),
                    |($($arg,)+)| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    },
                );
            }
        )+
    };
}

#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($params:tt)*)
        ($($arg:pat_param in $strat:expr),+ $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($params)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(
                ($($strat,)+),
                move |($($arg,)+)| $body,
            )
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Union::arm($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{}` at {}:{}",
                stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed at {}:{}: {}",
                file!(), line!(), ::std::format!($($fmt)+)
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed at {}:{}: `{:?}` != `{:?}`",
                file!(), line!(), __l, __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed at {}:{}: `{:?}` != `{:?}`: {}",
                file!(), line!(), __l, __r, ::std::format!($($fmt)+)
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed at {}:{}: both sides are `{:?}`",
                file!(),
                line!(),
                __l
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::TestRng;
    use rand::SeedableRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        let strat = (0u8..4, 10u64..=20, any::<bool>());
        for _ in 0..200 {
            let (a, b, _c) = Strategy::generate(&strat, &mut rng);
            assert!(a < 4);
            assert!((10..=20).contains(&b));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut rng = TestRng::seed_from_u64(2);
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[Strategy::generate(&strat, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn vec_respects_size_bounds() {
        let mut rng = TestRng::seed_from_u64(3);
        let strat = crate::collection::vec(any::<u8>(), 2..5);
        for _ in 0..100 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((2..=4).contains(&v.len()));
        }
        let exact = crate::collection::vec(any::<u8>(), 7usize);
        assert_eq!(Strategy::generate(&exact, &mut rng).len(), 7);
    }

    proptest! {
        #[test]
        fn macro_smoke(x in 0u32..100, y in any::<u16>(), flag in crate::option::of(Just(1u8))) {
            prop_assert!(x < 100);
            prop_assert_eq!(u32::from(y) + x, x + u32::from(y));
            if let Some(f) = flag {
                prop_assert_eq!(f, 1u8);
            }
        }
    }

    prop_compose! {
        fn small_pair()(a in 0u8..4, b in 0u8..4) -> (u8, u8) {
            (a, b)
        }
    }

    proptest! {
        #[test]
        fn compose_smoke(p in small_pair()) {
            prop_assert!(p.0 < 4 && p.1 < 4);
        }
    }
}
