//! Deployment builder: assembles a FIT-building-style LiveSec testbed
//! (paper §V, Figure 6) on the simulator.
//!
//! The canonical shape: a legacy Gigabit core (star, or two-tier with
//! edge switches), `n` OpenFlow AS switches each uplinked into it,
//! optional OF Wi-Fi APs (AS switches with 43 Mbps access links),
//! wired users at 100 Mbps, VM-based service elements at 1 Gbps, one
//! Internet gateway, and the controller out-of-band.

use crate::controller::Controller;
use livesec_net::{Ipv4Net, MacAddr};
use livesec_services::{Inspector, ServiceElement};
use livesec_sim::{LinkSpec, NodeId, PortId, SimDuration, World};
use livesec_switch::{App, AsSwitch, Host, LearningSwitch};
use std::net::Ipv4Addr;

/// A do-nothing application: the host shell still answers ARP and
/// ICMP echo, which is all the Internet gateway and idle hosts need.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullApp;

impl App for NullApp {}

/// Handle to a host added by the builder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UserHandle {
    /// The simulator node id.
    pub node: NodeId,
    /// The host's MAC.
    pub mac: MacAddr,
    /// The host's IP.
    pub ip: Ipv4Addr,
    /// Index of the AS switch it attaches to.
    pub switch: usize,
    /// The access port it occupies on that switch.
    pub port: u32,
}

/// Handle to a service element added by the builder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeHandle {
    /// The simulator node id.
    pub node: NodeId,
    /// The element's MAC.
    pub mac: MacAddr,
    /// The element's IP.
    pub ip: Ipv4Addr,
    /// Index of the AS switch it attaches to.
    pub switch: usize,
    /// The access port it occupies on that switch.
    pub port: u32,
    /// The certificate token it presents (0 when certification is
    /// disabled).
    pub cert: u64,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SwitchKind {
    Ovs,
    WifiAp,
}

/// The finished testbed.
pub struct Campus {
    /// The simulator world, ready to run.
    pub world: World,
    /// The controller node.
    pub controller: NodeId,
    /// AS switch nodes (OvS and Wi-Fi APs), by builder index.
    pub as_switches: Vec<NodeId>,
    /// Legacy core switch node(s).
    pub legacy: Vec<NodeId>,
    /// Users added via [`CampusBuilder::add_user`].
    pub users: Vec<UserHandle>,
    /// Service elements added via
    /// [`CampusBuilder::add_service_element`].
    pub ses: Vec<SeHandle>,
    /// The Internet gateway, if added.
    pub gateway: Option<UserHandle>,
    /// The local subnet.
    pub subnet: Ipv4Net,
    as_next_port: Vec<u32>,
    user_link: LinkSpec,
}

impl std::fmt::Debug for Campus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Campus")
            .field("controller", &self.controller)
            .field("as_switches", &self.as_switches.len())
            .finish_non_exhaustive()
    }
}

impl Campus {
    /// Borrows the controller for inspection. On a sharded campus
    /// (built with [`CampusBuilder::with_shards`]) this is the plane's
    /// shared controller, so monitoring and NIB inspection look the
    /// same at every shard count.
    pub fn controller(&self) -> &Controller {
        match self.world.try_node::<Controller>(self.controller) {
            Some(c) => c,
            None => self
                .world
                .node::<crate::plane::ShardedControlPlane>(self.controller)
                .controller(),
        }
    }

    /// Mutably borrows the controller (e.g. to change policy mid-run).
    /// Works on both plain and sharded campuses; on a sharded one the
    /// edit propagates to every shard through the epoch tags.
    pub fn controller_mut(&mut self) -> &mut Controller {
        // Two lookups to satisfy the borrow checker: probe, then borrow.
        if self.world.try_node::<Controller>(self.controller).is_some() {
            return self.world.node_mut::<Controller>(self.controller);
        }
        self.world
            .node_mut::<crate::plane::ShardedControlPlane>(self.controller)
            .controller_mut()
    }

    /// The sharded control plane, if this campus was built with
    /// [`CampusBuilder::with_shards`].
    pub fn shard_plane(&self) -> Option<&crate::plane::ShardedControlPlane> {
        self.world
            .try_node::<crate::plane::ShardedControlPlane>(self.controller)
    }

    /// Mutable access to the sharded control plane, if any.
    pub fn shard_plane_mut(&mut self) -> Option<&mut crate::plane::ShardedControlPlane> {
        self.world
            .try_node_mut::<crate::plane::ShardedControlPlane>(self.controller)
    }

    /// Borrows an AS switch.
    pub fn switch(&self, idx: usize) -> &AsSwitch {
        assert!(idx < self.as_switches.len(), "no AS switch {idx}");
        self.world.node::<AsSwitch>(self.as_switches[idx])
    }

    /// Migrates a host to another AS switch mid-run without changing
    /// its addresses — the paper's user/VM mobility (§III-D): the old
    /// port goes down (evicting the stale location), the host re-plugs
    /// at the new switch and announces itself, and the controller's
    /// location discovery re-learns it.
    ///
    /// Returns the updated handle. The generic parameter is the host's
    /// app type (needed only to address the node).
    ///
    /// # Panics
    ///
    /// Panics if `to_switch` is out of range or out of access ports.
    pub fn migrate_user(&mut self, user: UserHandle, to_switch: usize) -> UserHandle {
        assert!(
            to_switch < self.as_switches.len(),
            "unknown switch {to_switch}"
        );
        // Unplug at the old switch and signal the port down.
        self.world.disconnect(user.node, PortId(1));
        self.world
            .node_mut::<AsSwitch>(self.as_switches[user.switch])
            .fail_port(user.port);
        // Plug into the new switch.
        let port = self.as_next_port[to_switch];
        assert!(port < AS_PORTS, "switch {to_switch} out of access ports");
        self.as_next_port[to_switch] += 1;
        self.world.connect(
            user.node,
            PortId(1),
            self.as_switches[to_switch],
            PortId(port),
            self.user_link,
        );
        // Gratuitous ARP on link-up, as a real machine would.
        let announce_at = self.world.kernel().now() + livesec_sim::SimDuration::from_millis(1);
        self.world
            .schedule_timer_at(user.node, announce_at, livesec_switch::host::ANNOUNCE_TOKEN);
        UserHandle {
            switch: to_switch,
            port,
            ..user
        }
    }
}

/// Builder for [`Campus`] testbeds.
///
/// ```rust
/// use livesec::deploy::{CampusBuilder, NullApp};
///
/// let mut b = CampusBuilder::new(42, 2);
/// let gw = b.add_gateway(0);
/// let user = b.add_user(1, NullApp);
/// assert_ne!(gw.mac, user.mac);
/// let mut campus = b.finish();
/// campus.world.run_for(livesec_sim::SimDuration::from_millis(10));
/// ```
pub struct CampusBuilder {
    world: World,
    controller: NodeId,
    legacy: Vec<NodeId>,
    legacy_next_port: Vec<u32>,
    as_switches: Vec<NodeId>,
    as_kind: Vec<SwitchKind>,
    as_next_port: Vec<u32>,
    users: Vec<UserHandle>,
    ses: Vec<SeHandle>,
    gateway: Option<UserHandle>,
    next_mac: u64,
    next_host_index: u32,
    subnet: Ipv4Net,
    gateway_ip: Ipv4Addr,
    certification: bool,
    user_link: LinkSpec,
    se_link: LinkSpec,
    gateway_link: LinkSpec,
    uplink: LinkSpec,
    next_edge: usize,
    shards: Option<u32>,
    attest_every: u64,
}

/// Ports per AS switch: 1 uplink + up to 39 access ports (enough for
/// the paper's 20 VMs plus users).
const AS_PORTS: u32 = 40;

impl std::fmt::Debug for CampusBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampusBuilder")
            .field("as_switches", &self.as_switches.len())
            .field("legacy", &self.legacy.len())
            .finish_non_exhaustive()
    }
}

impl CampusBuilder {
    /// Starts a campus with `n_ovs` AS switches uplinked into a single
    /// legacy core star. The controller is created immediately;
    /// configure it via [`CampusBuilder::configure_controller`].
    pub fn new(seed: u64, n_ovs: usize) -> Self {
        Self::with_legacy_tiers(seed, n_ovs, 0)
    }

    /// Starts a campus whose legacy layer is two-tier: a 10 Gbps core
    /// star over `n_edge` edge switches, with AS switches spread over
    /// the edges round-robin (the FIT building's per-storey secondary
    /// switches). `n_edge == 0` collapses to the single-star layout.
    pub fn with_legacy_tiers(seed: u64, n_ovs: usize, n_edge: usize) -> Self {
        Self::with_legacy_tiers_uplink(seed, n_ovs, n_edge, LinkSpec::gigabit())
    }

    /// Starts a campus whose legacy layer is **redundant**: a core
    /// star over `n_edge` edge switches *plus* a ring among the edges,
    /// so the physical topology has loops. The spanning tree that STP
    /// would converge to is computed offline
    /// ([`livesec_switch::stp`]) and the blocked ports applied, so the
    /// Access-Switching layer sees a loop-free fabric — the paper's
    /// §III-C.1 guarantee that redundant physical links never affect
    /// the abstract two-hop routing.
    ///
    /// # Panics
    ///
    /// Panics if `n_edge < 2` (no redundancy to speak of).
    pub fn with_redundant_legacy(seed: u64, n_ovs: usize, n_edge: usize) -> Self {
        assert!(n_edge >= 2, "redundancy needs at least two edges");
        let mut b = Self::with_legacy_tiers(seed, n_ovs, n_edge);
        // Close the ring among the edges: edge_i.2' <-> edge_{i+1}.3'.
        // Edge port numbering: port 1 faces the core; AS uplinks start
        // at 2 and grow upward, so ring ports are taken from the top
        // of the range to avoid collisions.
        let mut topo = livesec_switch::Topology::new();
        // Record the existing core<->edge links (core port = 1 + i).
        for i in 0..n_edge {
            topo.add_link(0, (1 + i) as u32, (1 + i) as u64, 1);
        }
        // Each edge reserves its two highest port numbers for the ring
        // (within the switch's flood range, so an absent spanning tree
        // really would loop broadcasts).
        let core_ports = (n_ovs + n_edge + 16) as u32;
        let (right, left) = (core_ports - 2, core_ports - 1);
        for i in 0..n_edge {
            let j = (i + 1) % n_edge;
            if n_edge == 2 && i == 1 {
                break; // a 2-ring is a single parallel link, added once
            }
            b.world.connect(
                b.legacy[1 + i],
                PortId(right),
                b.legacy[1 + j],
                PortId(left),
                LinkSpec::ten_gigabit(),
            );
            topo.add_link((1 + i) as u64, right, (1 + j) as u64, left);
        }
        // Apply the converged spanning tree: block the redundant ports.
        for (sw, port) in livesec_switch::compute_spanning_tree(&topo) {
            b.world
                .node_mut::<LearningSwitch>(b.legacy[sw as usize])
                .block_port(port);
        }
        b
    }

    /// Like [`CampusBuilder::with_legacy_tiers`] with an explicit AS
    /// uplink link spec. Throughput experiments use this to give
    /// uplinks buffers sized for many objects in flight.
    pub fn with_legacy_tiers_uplink(
        seed: u64,
        n_ovs: usize,
        n_edge: usize,
        uplink: LinkSpec,
    ) -> Self {
        let mut world = World::new(seed);
        world.set_control_latency(SimDuration::from_micros(100));
        let controller = world.add_node(Controller::new());

        let mut legacy = Vec::new();
        let mut legacy_next_port = Vec::new();
        // Core switch: index 0.
        let core_ports = (n_ovs + n_edge + 16) as u32;
        legacy.push(world.add_node(LearningSwitch::new(core_ports)));
        legacy_next_port.push(1);
        for _ in 0..n_edge {
            let edge = world.add_node(LearningSwitch::new(core_ports));
            let core_port = legacy_next_port[0];
            legacy_next_port[0] += 1;
            world.connect(
                legacy[0],
                PortId(core_port),
                edge,
                PortId(1),
                LinkSpec::ten_gigabit(),
            );
            legacy.push(edge);
            legacy_next_port.push(2); // port 1 is the core-facing port
        }

        let mut builder = CampusBuilder {
            world,
            controller,
            legacy,
            legacy_next_port,
            as_switches: Vec::new(),
            as_kind: Vec::new(),
            as_next_port: Vec::new(),
            users: Vec::new(),
            ses: Vec::new(),
            gateway: None,
            next_mac: 0x0016_3e00_0001,
            next_host_index: 256, // leave 10.0.0.x for infrastructure
            subnet: Ipv4Net::new(Ipv4Addr::new(10, 0, 0, 0), 16),
            gateway_ip: Ipv4Addr::new(10, 0, 255, 254),
            certification: false,
            user_link: LinkSpec::fast_ethernet(),
            se_link: LinkSpec::gigabit(),
            gateway_link: LinkSpec::gigabit(),
            uplink,
            next_edge: 0,
            shards: None,
            attest_every: 0,
        };
        for _ in 0..n_ovs {
            builder.add_as_switch(SwitchKind::Ovs);
        }
        builder
    }

    /// Applies `f` to the controller before the run (set policy,
    /// balancer, timeouts, …).
    pub fn configure_controller(mut self, f: impl FnOnce(&mut Controller)) -> Self {
        f(self.world.node_mut::<Controller>(self.controller));
        self
    }

    /// Replaces the controller's policy table.
    pub fn with_policy(self, policy: crate::policy::PolicyTable) -> Self {
        self.configure_controller(|c| c.set_policy(policy))
    }

    /// Replaces the controller's load balancer.
    pub fn with_balancer(self, balancer: crate::balance::LoadBalancer) -> Self {
        self.configure_controller(|c| c.set_balancer(balancer))
    }

    /// Enables SE certification: each element gets a token derived
    /// from its MAC and the controller only trusts those tokens.
    pub fn with_certification(mut self) -> Self {
        self.certification = true;
        self.world
            .node_mut::<Controller>(self.controller)
            .set_required_certs(std::collections::HashSet::new());
        self
    }

    /// Shards the control plane: at [`CampusBuilder::finish`] the
    /// controller is wrapped into an `n`-shard
    /// [`crate::ShardedControlPlane`] (n ≥ 1; even `n = 1` wraps, which
    /// is how the determinism suite pins the plane against the plain
    /// controller). All `configure_controller`-style calls still apply
    /// — they run on the controller before it is wrapped, and
    /// [`Campus::controller`] keeps working afterwards.
    pub fn with_shards(mut self, n: u32) -> Self {
        assert!(n >= 1, "a control plane needs at least one shard");
        self.shards = Some(n);
        self
    }

    /// Enables forwarding attestations on every AS switch, present and
    /// future: each switch samples the packets whose deterministic tag
    /// is divisible by `every` (1 = every packet, 0 = off, the
    /// default) and reports its *actual* forwarding decision to the
    /// controller, where the accountability detector replays it
    /// against the flow's path proof (DESIGN.md §11).
    pub fn with_attestation(mut self, every: u64) -> Self {
        self.attest_every = every;
        for &node in &self.as_switches {
            self.world
                .node_mut::<AsSwitch>(node)
                .set_attest_every(every);
        }
        self
    }

    /// Overrides the wired-user access link (default 100 Mbps).
    pub fn with_user_link(mut self, spec: LinkSpec) -> Self {
        self.user_link = spec;
        self
    }

    /// Overrides the gateway's access link (default 1 Gbps). Give it
    /// extra propagation delay to stand in for the WAN path to an
    /// Internet server (the §V-B.3 ping target).
    pub fn with_gateway_link(mut self, spec: LinkSpec) -> Self {
        self.gateway_link = spec;
        self
    }

    /// Overrides the service-element access link (default 1 Gbps).
    pub fn with_se_link(mut self, spec: LinkSpec) -> Self {
        self.se_link = spec;
        self
    }

    /// Sets the one-way control-channel latency (default 100 µs).
    pub fn with_control_latency(mut self, latency: SimDuration) -> Self {
        self.world.set_control_latency(latency);
        self
    }

    fn add_as_switch(&mut self, kind: SwitchKind) -> usize {
        let dpid = (self.as_switches.len() + 1) as u64;
        let node = self.world.add_node(
            AsSwitch::new(dpid, AS_PORTS)
                .with_controller(self.controller)
                .with_attest_every(self.attest_every),
        );
        // Attach to a legacy switch: edges round-robin when present.
        let legacy_idx = if self.legacy.len() > 1 {
            let idx = 1 + (self.next_edge % (self.legacy.len() - 1));
            self.next_edge += 1;
            idx
        } else {
            0
        };
        let lp = self.legacy_next_port[legacy_idx];
        self.legacy_next_port[legacy_idx] += 1;
        self.world.connect(
            node,
            PortId(1),
            self.legacy[legacy_idx],
            PortId(lp),
            self.uplink,
        );
        self.as_switches.push(node);
        self.as_kind.push(kind);
        self.as_next_port.push(2);
        self.as_switches.len() - 1
    }

    /// Adds an OF Wi-Fi AP (Pantou model): an AS switch whose access
    /// links run at the paper's measured 43 Mbps. Returns its switch
    /// index for use with [`CampusBuilder::add_user`].
    pub fn add_wifi_ap(&mut self) -> usize {
        self.add_as_switch(SwitchKind::WifiAp)
    }

    /// Number of AS switches (OvS + APs) so far.
    pub fn switch_count(&self) -> usize {
        self.as_switches.len()
    }

    fn alloc_mac(&mut self) -> MacAddr {
        let mac = MacAddr::from_u64(self.next_mac);
        self.next_mac += 1;
        mac
    }

    fn alloc_ip(&mut self) -> Ipv4Addr {
        let ip = self.subnet.nth(self.next_host_index);
        self.next_host_index += 1;
        ip
    }

    fn access_port(&mut self, switch: usize) -> u32 {
        assert!(switch < self.as_next_port.len(), "no AS switch {switch}");
        let p = self.as_next_port[switch];
        assert!(p < AS_PORTS, "switch {switch} is out of access ports");
        self.as_next_port[switch] += 1;
        p
    }

    /// Adds a user host running `app` on the given AS switch. Wired
    /// users get 100 Mbps links; users on a Wi-Fi AP get 43 Mbps.
    pub fn add_user<A: App>(&mut self, switch: usize, app: A) -> UserHandle {
        self.add_user_with(switch, app, |h| h)
    }

    /// [`CampusBuilder::add_user`] with a host-shell configuration hook
    /// (announcement cadence, scripted departure, …).
    pub fn add_user_with<A: App>(
        &mut self,
        switch: usize,
        app: A,
        configure: impl FnOnce(Host<A>) -> Host<A>,
    ) -> UserHandle {
        assert!(switch < self.as_switches.len(), "no AS switch {switch}");
        let mac = self.alloc_mac();
        let ip = self.alloc_ip();
        let host = configure(Host::new(mac, ip, app).with_gateway(self.subnet, self.gateway_ip));
        let node = self.world.add_node(host);
        let port = self.access_port(switch);
        let link = match self.as_kind[switch] {
            SwitchKind::Ovs => self.user_link,
            SwitchKind::WifiAp => LinkSpec::pantou_wifi(),
        };
        self.world.connect(
            node,
            PortId(1),
            self.as_switches[switch],
            PortId(port),
            link,
        );
        let handle = UserHandle {
            node,
            mac,
            ip,
            switch,
            port,
        };
        self.users.push(handle);
        handle
    }

    /// Adds a VM-based service element on the given AS switch.
    pub fn add_service_element<I: Inspector>(
        &mut self,
        switch: usize,
        se: ServiceElement<I>,
    ) -> SeHandle {
        assert!(switch < self.as_switches.len(), "no AS switch {switch}");
        let mac = self.alloc_mac();
        let ip = self.alloc_ip();
        let cert = if self.certification {
            let token = 0x5ec0_0000_0000_0000 | mac.to_u64();
            self.world
                .node_mut::<Controller>(self.controller)
                .authorize_cert(token);
            token
        } else {
            0
        };
        let se = if cert != 0 { se.with_cert(cert) } else { se };
        let node = self.world.add_node(Host::new(mac, ip, se));
        let port = self.access_port(switch);
        self.world.connect(
            node,
            PortId(1),
            self.as_switches[switch],
            PortId(port),
            self.se_link,
        );
        let handle = SeHandle {
            node,
            mac,
            ip,
            switch,
            port,
            cert,
        };
        self.ses.push(handle);
        handle
    }

    /// Adds the Internet gateway (once) on the given AS switch: a host
    /// at the reserved gateway address that answers for every
    /// off-subnet destination.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn add_gateway(&mut self, switch: usize) -> UserHandle {
        self.add_gateway_with_app(switch, NullApp)
    }

    /// [`CampusBuilder::add_gateway`] with a custom application (e.g.
    /// an HTTP server standing in for the Internet).
    pub fn add_gateway_with_app<A: App>(&mut self, switch: usize, app: A) -> UserHandle {
        self.add_gateway_configured(switch, app, |h| h)
    }

    /// [`CampusBuilder::add_gateway_with_app`] with a host-shell
    /// configuration hook.
    pub fn add_gateway_configured<A: App>(
        &mut self,
        switch: usize,
        app: A,
        configure: impl FnOnce(Host<A>) -> Host<A>,
    ) -> UserHandle {
        assert!(self.gateway.is_none(), "gateway already added");
        assert!(switch < self.as_switches.len(), "no AS switch {switch}");
        let mac = self.alloc_mac();
        let ip = self.gateway_ip;
        let host = configure(Host::new(mac, ip, app).with_proxy_arp_outside(self.subnet));
        let node = self.world.add_node(host);
        let port = self.access_port(switch);
        self.world.connect(
            node,
            PortId(1),
            self.as_switches[switch],
            PortId(port),
            self.gateway_link,
        );
        let handle = UserHandle {
            node,
            mac,
            ip,
            switch,
            port,
        };
        self.gateway = Some(handle);
        handle
    }

    /// The reserved gateway IP (valid before the gateway is added).
    pub fn gateway_ip(&self) -> Ipv4Addr {
        self.gateway_ip
    }

    /// The campus subnet.
    pub fn subnet(&self) -> Ipv4Net {
        self.subnet
    }

    /// Finalizes the testbed.
    pub fn finish(mut self) -> Campus {
        if let Some(n) = self.shards {
            // Wrap the (fully configured) controller into the sharded
            // plane. The node id stays the same, so every switch's
            // control channel keeps pointing at the control plane.
            let inner = std::mem::take(self.world.node_mut::<Controller>(self.controller));
            self.world.replace_node(
                self.controller,
                crate::plane::ShardedControlPlane::new(inner, n),
            );
        }
        Campus {
            world: self.world,
            controller: self.controller,
            as_switches: self.as_switches,
            legacy: self.legacy,
            users: self.users,
            ses: self.ses,
            gateway: self.gateway,
            subnet: self.subnet,
            as_next_port: self.as_next_port,
            user_link: self.user_link,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use livesec_services::IdsEngine;

    #[test]
    fn builder_wires_star_topology() {
        let mut b = CampusBuilder::new(1, 3);
        let u = b.add_user(0, NullApp);
        let g = b.add_gateway(2);
        let se = b.add_service_element(1, ServiceElement::new(IdsEngine::engine()));
        assert_ne!(u.mac, g.mac);
        assert_ne!(u.ip, g.ip);
        assert_eq!(g.ip, "10.0.255.254".parse::<Ipv4Addr>().unwrap());
        assert_eq!(se.switch, 1);
        let campus = b.finish();
        assert_eq!(campus.as_switches.len(), 3);
        assert_eq!(campus.legacy.len(), 1);
        assert_eq!(campus.users.len(), 1);
        assert_eq!(campus.ses.len(), 1);
        assert!(campus.gateway.is_some());
    }

    #[test]
    fn two_tier_legacy_creates_edges() {
        let b = CampusBuilder::with_legacy_tiers(1, 4, 2);
        let campus = b.finish();
        assert_eq!(campus.legacy.len(), 3, "core + 2 edges");
        assert_eq!(campus.as_switches.len(), 4);
    }

    #[test]
    fn wifi_ap_extends_switch_list() {
        let mut b = CampusBuilder::new(1, 1);
        let ap = b.add_wifi_ap();
        assert_eq!(ap, 1);
        assert_eq!(b.switch_count(), 2);
        let u = b.add_user(ap, NullApp);
        assert_eq!(u.switch, ap);
    }

    #[test]
    fn certification_issues_unique_tokens() {
        let mut b = CampusBuilder::new(1, 1).with_certification();
        let a = b.add_service_element(0, ServiceElement::new(IdsEngine::engine()));
        let c = b.add_service_element(0, ServiceElement::new(IdsEngine::engine()));
        assert_ne!(a.cert, 0);
        assert_ne!(a.cert, c.cert);
    }

    #[test]
    #[should_panic(expected = "gateway already added")]
    fn double_gateway_panics() {
        let mut b = CampusBuilder::new(1, 1);
        b.add_gateway(0);
        b.add_gateway(0);
    }

    #[test]
    fn mac_and_ip_allocation_is_sequential() {
        let mut b = CampusBuilder::new(1, 1);
        let u1 = b.add_user(0, NullApp);
        let u2 = b.add_user(0, NullApp);
        assert_eq!(u2.mac.to_u64(), u1.mac.to_u64() + 1);
        assert_eq!(
            u32::from(u2.ip),
            u32::from(u1.ip) + 1,
            "sequential host addresses"
        );
    }
}
