//! Known-bad fixture for `unwrap-in-prod`: panicking extractors in
//! production (non-test) code paths.

pub fn lookup(map: &std::collections::BTreeMap<u64, u32>, k: u64) -> u32 {
    // Bad: a missing key panics the controller.
    *map.get(&k).unwrap()
}

pub fn parse(port: &str) -> u16 {
    // Bad: malformed input panics the dataplane.
    port.parse().expect("valid port")
}

pub struct Registry {
    slots: Vec<Option<u32>>,
}

impl Registry {
    pub fn first(&self) -> u32 {
        // Bad: an empty registry panics.
        self.slots.first().copied().flatten().unwrap()
    }
}
