//! Known-bad fixture for `hot-path-alloc`: allocation inside the
//! configured hot function (`hot` in the test options).

pub struct Entry {
    pub actions: Vec<u32>,
}

pub fn hot(entry: &Entry) -> Vec<u32> {
    // Bad: a fresh Vec per packet.
    let mut scratch: Vec<u32> = Vec::new();
    // Bad: cloning the action list on every lookup.
    let actions = entry.actions.clone();
    for a in &actions {
        scratch.push(*a);
    }
    // Bad: formatting allocates a String on the packet path.
    let _label = format!("{} actions", scratch.len());
    scratch
}
