//! Integration: whole-system determinism. Two runs of the full campus
//! scenario from the same seed must produce byte-identical event
//! histories — the property that makes every experiment in this
//! repository reproducible — and the flow-setup decision cache must be
//! invisible in that history (golden-trace transparency).

use livesec_suite::prelude::*;
use livesec_workloads::{CampusScenario, ScenarioConfig};

fn run_history(seed: u64, decision_cache: bool) -> (String, FastPathStats) {
    let mut s = CampusScenario::build(ScenarioConfig {
        seed,
        decision_cache,
        // Entries idle out between requests (clients think for
        // 400 ms), so recurring flows re-enter setup — the regime
        // where the decision cache actually gets exercised.
        flow_idle: SimDuration::from_millis(300),
        ..ScenarioConfig::default()
    });
    s.campus.world.run_for(SimDuration::from_secs(6));
    let c = s.campus.controller();
    (c.monitor().to_json(), c.fast_path_stats())
}

#[test]
fn identical_seeds_reproduce_identical_histories() {
    let (a, _) = run_history(42, true);
    let (b, _) = run_history(42, true);
    assert_eq!(a, b, "same seed, same history, byte for byte");
}

#[test]
fn identical_seeds_reproduce_identical_histories_without_the_cache() {
    let (a, _) = run_history(42, false);
    let (b, _) = run_history(42, false);
    assert_eq!(a, b, "same seed, same history, byte for byte");
}

/// The golden-trace test: the decision cache memoizes compile work but
/// must never change behaviour. A run with the cache on and a run with
/// it off, from the same seed, must emit byte-identical monitor
/// histories — same events, same order, same timestamps.
#[test]
fn decision_cache_is_invisible_in_the_event_history() {
    let (with_cache, stats_on) = run_history(42, true);
    let (without_cache, stats_off) = run_history(42, false);
    assert_eq!(
        with_cache, without_cache,
        "the fast path must be observably transparent"
    );
    // The comparison is only meaningful if the cache actually worked.
    assert!(stats_on.hits > 0, "cache never hit: {stats_on:?}");
    assert!(stats_on.insertions > 0, "cache never filled: {stats_on:?}");
    assert_eq!(stats_off.hits, 0, "disabled cache reported hits");
    assert_eq!(
        stats_on.flow_setups, stats_off.flow_setups,
        "both runs must set up the same flows"
    );
}

/// Runs the scenario under an n-shard control plane (`shards = 0`
/// means the plain unsharded controller) and returns the monitor
/// history both as recorded (shard-tagged) and with the tags scrubbed.
fn sharded_history(seed: u64, shards: u32, secs: u64) -> (String, String) {
    let mut s = CampusScenario::build(ScenarioConfig {
        seed,
        shards,
        flow_idle: SimDuration::from_millis(300),
        ..ScenarioConfig::default()
    });
    s.campus.world.run_for(SimDuration::from_secs(secs));
    let m = s.campus.controller().monitor();
    (m.to_json(), m.to_json_untagged())
}

/// The sharding golden trace, part 1: a 1-shard plane is the plain
/// controller. Not just "same events" — the serialized history must be
/// byte-identical, tags included (a single shard is shard 0, and zero
/// tags are not serialized), so pre-sharding baselines stay valid.
#[test]
fn one_shard_plane_matches_the_single_controller_baseline() {
    let (plain, _) = sharded_history(42, 0, 6);
    let (one_shard, one_shard_untagged) = sharded_history(42, 1, 6);
    assert_eq!(
        plain, one_shard,
        "a 1-shard plane must be byte-identical to the unsharded controller"
    );
    assert_eq!(one_shard, one_shard_untagged, "one shard never tags");
}

/// The sharding golden trace, part 2: shard count is invisible. The
/// baseline (3 s, steady traffic) and service-chain (6 s, torrent
/// switch + attack verdict landed) scenarios must produce identical
/// histories at 1, 2 and 4 shards — modulo the shard-id tags, which
/// are routing bookkeeping, not behaviour.
#[test]
fn histories_agree_across_shard_counts_modulo_tags() {
    for secs in [3u64, 6] {
        let (plain, _) = sharded_history(42, 0, secs);
        let mut tagged_somewhere = false;
        for shards in [1u32, 2, 4] {
            let (tagged, untagged) = sharded_history(42, shards, secs);
            assert_eq!(
                plain, untagged,
                "{shards}-shard history diverged from the unsharded run ({secs}s scenario)"
            );
            tagged_somewhere |= tagged != untagged;
        }
        // The comparison is only meaningful if routing actually spread
        // events over non-zero shards somewhere.
        assert!(
            tagged_somewhere,
            "no event was ever handled off shard 0 ({secs}s scenario)"
        );
    }
}

#[test]
fn different_seeds_still_reproduce_the_same_shape() {
    // Different seeds change identities/ordering details but the
    // scenario's structure holds.
    let mut s = CampusScenario::build(ScenarioConfig {
        seed: 1337,
        ..ScenarioConfig::default()
    });
    s.campus.world.run_for(SimDuration::from_secs(6));
    let summary = s.campus.controller().monitor().summary();
    assert_eq!(summary.get("switch_join").copied(), Some(4));
    assert_eq!(summary.get("se_online").copied(), Some(4));
    assert!(summary.get("flow_start").copied().unwrap_or(0) > 5);
}
