#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]
#![warn(clippy::disallowed_methods, clippy::disallowed_types)]

//! Synthetic traffic generators and campus scenarios.
//!
//! The paper's evaluation traffic — HTTP transfers, bulk UDP floods,
//! SSH sessions, BitTorrent swarms, pings, and attack traffic — is not
//! available as traces, so this crate generates the closest synthetic
//! equivalents as [`livesec_switch::App`]s:
//!
//! * [`HttpClient`] / [`HttpServer`] — request/response transfers with
//!   configurable object sizes (the §V-B.1 HTTP throughput workload).
//! * [`UdpBlaster`] — constant-bit-rate UDP (the §V-B.1 access
//!   throughput workload).
//! * [`Pinger`] — periodic ICMP echo with RTT statistics (the §V-B.3
//!   latency workload).
//! * [`SshSession`] + [`TcpEchoServer`] — interactive keystroke
//!   traffic (the SSH user of Fig. 7).
//! * [`BitTorrentPeer`] — handshake plus bulk piece exchange (the
//!   downloader of Fig. 8).
//! * [`AttackClient`] — web requests with embedded attack signatures
//!   (the malicious access of Fig. 8).
//! * [`SynFlood`] — half-open SYN probes from rotating source ports
//!   (the stateful firewall's flood-detection workload).
//! * [`DhcpClient`] — exercises the directory proxy's DHCP path.
//!
//! [`scenario`] assembles the paper's Fig. 6/7/8 campus from these
//! pieces.

pub mod apps;
pub mod scenario;

pub use apps::{
    AttackClient, BitTorrentPeer, DhcpClient, HttpClient, HttpServer, Pinger, SshSession, SynFlood,
    TcpEchoServer, UdpBlaster,
};
pub use scenario::{CampusScenario, ChaosConfig, IdleApp, ScenarioConfig};

/// Convenient glob-import surface: `use livesec_workloads::prelude::*;`.
pub mod prelude {
    pub use crate::apps::{
        AttackClient, BitTorrentPeer, DhcpClient, HttpClient, HttpServer, Pinger, SshSession,
        SynFlood, TcpEchoServer, UdpBlaster,
    };
    pub use crate::scenario::{CampusScenario, ChaosConfig, IdleApp, ScenarioConfig};
}
