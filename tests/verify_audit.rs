//! The header-space verifier, positively and negatively.
//!
//! Positive: `verify::audit` proves all eight invariants on the live
//! scenarios (baseline and service-chain here; the post-chaos-heal
//! audits run inside `tests/chaos.rs`, after every logged heal).
//!
//! Negative: for each invariant, build a deliberately bad snapshot —
//! a flow table the controller would never emit — and demand the
//! audit produces exactly the expected [`Violation`] variant carrying
//! a concrete witness packet that demonstrates the defect.

use livesec_net::{FlowKey, Ipv4Net, MacAddr};
use livesec_openflow::{Action, FlowEntry, Match, OutPort};
use livesec_services::ServiceType;
use livesec_sim::SimDuration;
use livesec_verify::{
    audit, audit_settled, FlowView, HostInfo, Snapshot, SwitchState, TraceEnd, Violation,
};
use livesec_workloads::{CampusScenario, ScenarioConfig};
use std::net::Ipv4Addr;

// ---------------------------------------------------------------- positive

#[test]
fn baseline_scenario_proves_all_invariants() {
    let mut s = CampusScenario::build(ScenarioConfig::default());
    s.campus.world.run_for(SimDuration::from_secs(3));
    let violations = audit_settled(&mut s.campus, 30, SimDuration::from_millis(100));
    assert!(
        violations.is_empty(),
        "baseline violations: {violations:#?}"
    );
}

#[test]
fn service_chain_scenario_proves_all_invariants() {
    // Long enough that the torrent flow, the attack verdict and the
    // resulting standing block have all landed.
    let mut s = CampusScenario::build(ScenarioConfig::default());
    s.campus.world.run_for(SimDuration::from_secs(6));
    let snap = Snapshot::of_campus(&s.campus);
    assert!(
        !snap.blocks.is_empty(),
        "the attack verdict installed a block"
    );
    assert!(
        snap.flows.iter().any(|f| !f.chain.is_empty()),
        "some admitted flow carries a service chain"
    );
    let violations = audit_settled(&mut s.campus, 30, SimDuration::from_millis(100));
    assert!(
        violations.is_empty(),
        "service-chain violations: {violations:#?}"
    );
}

// ---------------------------------------------------------------- fixtures

fn mac(n: u8) -> MacAddr {
    MacAddr::new([0xaa, 0, 0, 0, 0, n])
}

fn ip(n: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, n)
}

fn key(src: u8, dst: u8) -> FlowKey {
    FlowKey {
        vlan: None,
        dl_src: mac(src),
        dl_dst: mac(dst),
        dl_type: 0x0800,
        nw_src: ip(src),
        nw_dst: ip(dst),
        nw_proto: 6,
        tp_src: 4000 + u16::from(src),
        tp_dst: 80,
    }
}

/// One switch (dpid 1, uplink on port 10), host A on port 1, host B
/// on port 2 — the smallest topology every invariant can be broken
/// in.
fn tiny_snapshot(entries: Vec<FlowEntry>) -> Snapshot {
    Snapshot {
        switches: vec![SwitchState {
            dpid: 1,
            uplink: Some(10),
            n_ports: 10,
            entries,
            degraded: false,
        }],
        hosts: vec![
            HostInfo {
                mac: mac(1),
                ip: ip(1),
                dpid: 1,
                port: 1,
            },
            HostInfo {
                mac: mac(2),
                ip: ip(2),
                dpid: 1,
                port: 2,
            },
        ],
        elements: Vec::new(),
        blocks: Vec::new(),
        flows: Vec::new(),
        fastpasses: Vec::new(),
        epochs: (1, 1),
        shards: Vec::new(),
        quarantined: Vec::new(),
    }
}

fn out(port: u32) -> Vec<Action> {
    vec![Action::Output(OutPort::Physical(port))]
}

// ---------------------------------------------------------------- negative

/// Invariant 1: a standing block on A's traffic, but the table still
/// forwards A's packets straight to B.
#[test]
fn audit_refutes_blocked_reachable() {
    let leak = FlowEntry::new(Match::any().with_dl_src(mac(1)), out(2), 100);
    let mut snap = tiny_snapshot(vec![leak]);
    snap.blocks = vec![(1, Match::any().with_dl_src(mac(1)))];

    let vs = audit(&snap);
    assert_eq!(vs.len(), 1, "expected exactly one violation: {vs:#?}");
    match &vs[0] {
        Violation::BlockedReachable {
            block_dpid,
            witness,
            delivered_to,
            ..
        } => {
            assert_eq!(*block_dpid, 1);
            assert_eq!(*delivered_to, mac(2));
            // The witness is a packet the blocked source would send.
            assert_eq!(witness.key.dl_src, mac(1));
            assert_eq!(witness.key.dl_dst, mac(2));
            assert_eq!(witness.key.nw_dst, ip(2));
        }
        v => panic!("expected BlockedReachable, got {v:#?}"),
    }
}

/// Invariant 2: an entry that bounces everything off a service
/// element's reflecting port forever.
#[test]
fn audit_refutes_forwarding_loop() {
    let bounce = FlowEntry::new(Match::any(), out(3), 100);
    let mut snap = tiny_snapshot(vec![bounce]);
    // A service element on port 3: it reflects frames back into the
    // switch, where the same entry sends them to port 3 again.
    snap.hosts.push(HostInfo {
        mac: mac(9),
        ip: ip(9),
        dpid: 1,
        port: 3,
    });
    snap.elements = vec![(mac(9), ServiceType::IntrusionDetection)];

    let vs = audit(&snap);
    assert_eq!(vs.len(), 1, "expected exactly one violation: {vs:#?}");
    match &vs[0] {
        Violation::ForwardingLoop {
            dpid,
            path,
            witness,
        } => {
            assert_eq!(*dpid, 1);
            assert!(path.len() >= 2, "the loop has at least two hops: {path:?}");
            assert!(
                path.contains(&(1, 3)),
                "the loop runs through the reflecting port: {path:?}"
            );
            assert_eq!(witness.dpid, 1);
        }
        v => panic!("expected ForwardingLoop, got {v:#?}"),
    }
}

/// Invariant 3: an admitted flow's entry outputs to a port with
/// nothing attached — installed state that loses the packet without
/// any packet-in to recover it.
#[test]
fn audit_refutes_blackhole() {
    let dead = FlowEntry::new(
        Match::any().with_in_port(1).with_dl_src(mac(1)),
        out(7),
        100,
    );
    let mut snap = tiny_snapshot(vec![dead]);
    snap.flows = vec![FlowView {
        key: key(1, 2),
        chain: Vec::new(),
        blocked: false,
    }];

    let vs = audit(&snap);
    assert_eq!(vs.len(), 1, "expected exactly one violation: {vs:#?}");
    match &vs[0] {
        Violation::Blackhole { flow, witness, end } => {
            assert_eq!(*flow, key(1, 2));
            assert_eq!(witness.dpid, 1);
            assert_eq!(witness.in_port, 1);
            assert_eq!(*end, TraceEnd::DeadEnd { dpid: 1, port: 7 });
        }
        v => panic!("expected Blackhole, got {v:#?}"),
    }
}

/// Invariant 4: the policy chains A->B through intrusion detection,
/// but the table delivers directly — the waypoint is skipped.
#[test]
fn audit_refutes_chain_skipped() {
    let direct = FlowEntry::new(Match::any().with_in_port(1), out(2), 100);
    let mut snap = tiny_snapshot(vec![direct]);
    snap.hosts.push(HostInfo {
        mac: mac(9),
        ip: ip(9),
        dpid: 1,
        port: 3,
    });
    snap.elements = vec![(mac(9), ServiceType::IntrusionDetection)];
    snap.flows = vec![FlowView {
        key: key(1, 2),
        chain: vec![ServiceType::IntrusionDetection],
        blocked: false,
    }];

    let vs = audit(&snap);
    assert_eq!(vs.len(), 1, "expected exactly one violation: {vs:#?}");
    match &vs[0] {
        Violation::ChainSkipped {
            flow,
            required,
            traversed,
            witness,
        } => {
            assert_eq!(*flow, key(1, 2));
            assert_eq!(required, &[ServiceType::IntrusionDetection]);
            assert!(traversed.is_empty(), "nothing was traversed: {traversed:?}");
            assert_eq!(witness.in_port, 1);
        }
        v => panic!("expected ChainSkipped, got {v:#?}"),
    }
}

/// Invariant 5: an entry at fast-pass priority with no backing
/// record — established traffic forwarded under no current policy.
#[test]
fn audit_refutes_stale_fastpass() {
    let orphan = FlowEntry::new(
        Match::exact(1, &key(1, 2)),
        out(2),
        livesec::controller::FASTPASS_PRIORITY,
    );
    let snap = tiny_snapshot(vec![orphan]);

    let vs = audit(&snap);
    assert_eq!(vs.len(), 1, "expected exactly one violation: {vs:#?}");
    match &vs[0] {
        Violation::StaleFastPass {
            dpid,
            record_epochs,
            current_epochs,
            witness,
            ..
        } => {
            assert_eq!(*dpid, 1);
            assert_eq!(*record_epochs, None, "no record backs the entry");
            assert_eq!(*current_epochs, (1, 1));
            // The witness is the exact packet the orphan captures.
            assert_eq!(witness.key, key(1, 2));
            assert_eq!(witness.in_port, 1);
        }
        v => panic!("expected StaleFastPass, got {v:#?}"),
    }
}

/// Invariant 5, the other failure mode: a record exists but was
/// compiled under a superseded policy epoch.
#[test]
fn audit_refutes_outdated_fastpass_epoch() {
    let aged = FlowEntry::new(
        Match::exact(1, &key(1, 2)),
        out(2),
        livesec::controller::FASTPASS_PRIORITY,
    );
    let mut snap = tiny_snapshot(vec![aged]);
    snap.fastpasses = vec![(key(1, 2), 0, 1)]; // policy epoch 0 < current 1

    let vs = audit(&snap);
    assert_eq!(vs.len(), 1, "expected exactly one violation: {vs:#?}");
    match &vs[0] {
        Violation::StaleFastPass { record_epochs, .. } => {
            assert_eq!(*record_epochs, Some((0, 1)));
        }
        v => panic!("expected StaleFastPass, got {v:#?}"),
    }
}

/// Invariant 6: a later entry at equal priority overlapping an
/// earlier one with different actions — the overlap is silently
/// decided by installation order.
#[test]
fn audit_refutes_shadowed_rule() {
    let winner = FlowEntry::new(Match::any().with_tp_dst(80), out(2), 50);
    let masked = FlowEntry::new(Match::any().with_in_port(1), Vec::new(), 50);
    let (wm, mm) = (winner.matcher, masked.matcher);
    let snap = tiny_snapshot(vec![winner, masked]);

    let vs = audit(&snap);
    assert_eq!(vs.len(), 1, "expected exactly one violation: {vs:#?}");
    match &vs[0] {
        Violation::ShadowedRule {
            dpid,
            priority,
            winner,
            masked,
            witness,
        } => {
            assert_eq!(*dpid, 1);
            assert_eq!(*priority, 50);
            assert_eq!(*winner, wm);
            assert_eq!(*masked, mm);
            // The witness sits in the overlap of both matchers.
            assert_eq!(witness.in_port, 1);
            assert_eq!(witness.key.tp_dst, 80);
        }
        v => panic!("expected ShadowedRule, got {v:#?}"),
    }
}

/// Invariant 8: a quarantined switch that still carries installed
/// entries and located hosts is not isolated.
#[test]
fn audit_refutes_quarantine_leak() {
    let fwd = FlowEntry::new(
        Match::any().with_in_port(1).with_dl_dst(mac(2)),
        out(2),
        100,
    );
    let rev = FlowEntry::new(
        Match::any().with_in_port(2).with_dl_dst(mac(1)),
        out(1),
        100,
    );
    let mut snap = tiny_snapshot(vec![fwd, rev]);
    // Same dataplane that audits clean below — except dpid 1 is now
    // supposed to be quarantined, so everything on it is a leak.
    snap.quarantined = vec![1];

    let vs = audit(&snap);
    assert_eq!(vs.len(), 1, "expected exactly one violation: {vs:#?}");
    match &vs[0] {
        Violation::QuarantineLeak {
            dpid,
            entries,
            hosts,
            owners,
        } => {
            assert_eq!(*dpid, 1);
            assert_eq!(*entries, 2);
            assert_eq!(hosts.as_slice(), &[mac(1), mac(2)]);
            assert!(owners.is_empty(), "no shard map in this snapshot");
        }
        v => panic!("expected QuarantineLeak, got {v:#?}"),
    }
}

/// A clean synthetic snapshot audits clean: direct delivery between
/// two hosts with consistent controller state produces no violations.
#[test]
fn audit_accepts_a_consistent_tiny_dataplane() {
    let fwd = FlowEntry::new(
        Match::any().with_in_port(1).with_dl_dst(mac(2)),
        out(2),
        100,
    );
    let rev = FlowEntry::new(
        Match::any().with_in_port(2).with_dl_dst(mac(1)),
        out(1),
        100,
    );
    let mut snap = tiny_snapshot(vec![fwd, rev]);
    snap.flows = vec![FlowView {
        key: key(1, 2),
        chain: Vec::new(),
        blocked: false,
    }];

    let vs = audit(&snap);
    assert!(vs.is_empty(), "clean dataplane flagged: {vs:#?}");
}

/// Blocks whose matcher is disjoint from a destination don't generate
/// false positives: a block pinned to one dst IP says nothing about
/// delivery to other hosts.
#[test]
fn block_pinned_to_other_destination_is_not_flagged() {
    let fwd = FlowEntry::new(
        Match::any().with_in_port(1).with_dl_dst(mac(2)),
        out(2),
        100,
    );
    let mut snap = tiny_snapshot(vec![fwd]);
    // Block A's traffic to 10.0.0.3 only; A -> B (10.0.0.2) stays legal.
    snap.blocks = vec![(
        1,
        Match::any()
            .with_dl_src(mac(1))
            .with_nw_dst(Ipv4Net::host(ip(3))),
    )];

    let vs = audit(&snap);
    assert!(vs.is_empty(), "disjoint block flagged: {vs:#?}");
}
