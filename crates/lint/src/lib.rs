#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]
#![warn(clippy::disallowed_methods, clippy::disallowed_types)]

//! **livesec-lint** — the workspace determinism & invariant
//! static-analysis pass.
//!
//! The LiveSec reproduction rests on one property: the discrete-event
//! simulator is *deterministic* — same seed, byte-identical history.
//! Every chaos, cache and reconciliation test asserts it. Both PR 1
//! (HashMap-order flow eviction) and PR 2 (SE-registry expiry and
//! cleanup order) shipped fixes for latent nondeterminism that was
//! only caught at runtime. v3 of this crate is *inter-procedural*:
//! the hand-rolled lexer ([`lexer`]) feeds a recursive-descent parser
//! ([`parser`]) producing a lightweight AST ([`ast`]); a workspace
//! call graph ([`callgraph`]) links every function to its resolvable
//! callees; per-function summaries ([`summary`]) — taint transfer,
//! allocation, panic reachability, lock sequences — are computed
//! bottom-up over the graph's SCC condensation; and the taint walker
//! ([`dataflow`]) composes those summaries at call sites. The rule
//! engine ([`rules`]) analyses the whole workspace at once and flags
//!
//! * **unordered-iter** (LS101) — iteration over `HashMap`/`HashSet`
//!   bindings whose order can escape into events, flow-mods or
//!   history (type-alias aware; post-hoc sorts rescue);
//! * **wall-clock** (LS102) — `Instant` / `SystemTime` in expression
//!   or type position (virtual `SimTime` is the only clock);
//! * **unseeded-rng** (LS103) — `thread_rng`, `from_entropy`,
//!   `OsRng`, `rand::random`;
//! * **float-accum** (LS104) — float `+=` accumulation and
//!   `.sum::<f32/f64>()` in aggregation paths;
//! * **unwrap-in-prod** (LS201) — `.unwrap()` / `.expect()` outside
//!   `#[cfg(test)]` code in the production crates;
//! * **panic-path** (LS202) — slice indexes that can panic in
//!   production, *including through helpers*: unguarded subtraction
//!   (own or inside a callee whose summary subtracts from its
//!   argument) and caller-controlled integers forwarded to callees
//!   that index with them;
//! * **wire-taint** (LS301) — wire-controlled values (byte-reader
//!   results, `&[u8]` params in `openflow`/`net`) reaching
//!   allocation, indexing or amplifying arithmetic without a bounds
//!   guard — through any chain of resolvable helpers;
//! * **hot-path-alloc** (LS401) — allocation inside the packet-path
//!   hot set, derived *transitively* from the seed roots in
//!   [`HOT_SEED_ROOTS`]: everything a hot root calls is hot;
//! * **shared-mut-state** (LS501) — `static mut`, lock-guarded or
//!   interior-mutable fields, and functions returning
//!   interior-mutable state: shapes a parallel data plane races on;
//! * **lock-order** (LS502) — two functions acquiring the same pair
//!   of locks in opposite orders (summary-based, so the sequences
//!   include resolvable callees' locks);
//! * **unordered-reduce** (LS503) — `fold`/`reduce` over unordered
//!   iteration, where even an LS101-style sort-rescue cannot fix the
//!   accumulation order.
//!
//! Sites where a rule is genuinely inapplicable carry an explicit,
//! reasoned escape hatch:
//!
//! ```text
//! // livesec-lint: allow(unordered-iter, reason = "order-insensitive fold")
//! ```
//!
//! The grammar and the analyzer architecture live in `DESIGN.md` §6
//! and §13. The binary (`cargo run -p livesec-lint --release`) is a
//! tier-1 gate in `scripts/check.sh` (with `--json` archival and a
//! byte-identical two-run determinism check); `tests/workspace.rs`
//! additionally asserts the live workspace passes with zero
//! unannotated findings, that every hot seed root and allow
//! annotation resolves to a real function, and that the parser
//! handles 100% of workspace files without recoveries.
//!
//! The pass is deliberately dependency-free: no type inference, no
//! HIR. It trades a small annotation burden for a checker that
//! builds in milliseconds and cannot drift out of sync with vendored
//! compiler internals.

pub mod ast;
pub mod callgraph;
pub mod dataflow;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod summary;
pub mod walk;

pub use rules::{lint_source, lint_source_with, Analysis, Finding, LintOptions, Rule};

use std::path::{Path, PathBuf};

/// Crate source trees where a panic is a controller or dataplane
/// outage, so `unwrap-in-prod` and `panic-path` apply.
const PROD_CRATE_DIRS: &[&str] = &[
    "crates/core/src",
    "crates/switch/src",
    "crates/conntrack/src",
    // The `.lsp` compiler: a panic while compiling an operator's
    // policy edit takes down the control plane, and its parser
    // contract is total (diagnostics, never panics).
    "crates/policy/src",
];

/// Crate source trees that parse attacker-controlled wire bytes, so
/// `wire-taint` applies.
const WIRE_CRATE_DIRS: &[&str] = &["crates/openflow/src", "crates/net/src"];

/// Seed roots for `hot-path-alloc`: entry points of the per-packet
/// path (dispatch, flow lookup, conntrack state transition,
/// attestation replay). The hot *set* is derived transitively — every
/// function a seed root (or any hot function) calls is hot too — so
/// helpers extracted out of these entry points stay covered without
/// touching this table. `tests/workspace.rs` fails the build if an
/// entry goes stale.
pub const HOT_SEED_ROOTS: &[(&str, &str)] = &[
    ("crates/openflow/src/table.rs", "lookup"),
    ("crates/openflow/src/table.rs", "lookup_counting"),
    ("crates/openflow/src/table.rs", "best_candidate"),
    ("crates/openflow/src/table.rs", "peek"),
    ("crates/switch/src/as_switch.rs", "on_frame"),
    ("crates/conntrack/src/lib.rs", "observe"),
    ("crates/core/src/accountability.rs", "observe"),
    ("crates/core/src/accountability.rs", "check_hop"),
    ("crates/core/src/accountability.rs", "track_chain"),
    // First-match policy lookup runs on every flow setup; the scan
    // must not allocate per decision.
    ("crates/core/src/policy.rs", "decide"),
    ("crates/core/src/policy.rs", "matches"),
];

/// The per-file lint options for a workspace path: production crates
/// get the panic-family rules, wire-parsing crates get taint
/// tracking, and files hosting hot seed roots get them as roots of
/// the transitive allocation ban.
pub fn options_for(path: &Path) -> LintOptions {
    let p = path.to_string_lossy();
    let prod = PROD_CRATE_DIRS.iter().any(|d| p.contains(d));
    LintOptions {
        unwrap_in_prod: prod,
        panic_path: prod,
        wire_taint: WIRE_CRATE_DIRS.iter().any(|d| p.contains(d)),
        hot_fns: HOT_SEED_ROOTS
            .iter()
            .filter(|(f, _)| p.ends_with(f))
            .map(|(_, name)| name.to_string())
            .collect(),
    }
}

/// A finding tied to the file it was found in.
#[derive(Clone, Debug)]
pub struct FileFinding {
    /// Path of the offending file (as given to [`lint_files`]).
    pub path: PathBuf,
    /// The finding itself.
    pub finding: Finding,
}

impl std::fmt::Display for FileFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{} {}] {}",
            self.path.display(),
            self.finding.line,
            self.finding.rule.code(),
            self.finding.rule.name(),
            self.finding.message
        )
    }
}

/// The full result of analysing a file set: findings plus the
/// workspace-level facts the gate archives in `BENCH_lint.json`.
#[derive(Clone, Debug)]
pub struct WorkspaceReport {
    /// All findings, sorted by path then line.
    pub findings: Vec<FileFinding>,
    /// Number of files analysed.
    pub files: usize,
    /// Number of functions in the call graph.
    pub fns: usize,
    /// Number of resolved call edges.
    pub edges: usize,
    /// The transitive hot set as `(path, function, seed root)`.
    pub hot: Vec<(String, String, String)>,
    /// Configured hot seed roots that did not resolve to a function
    /// in their file — stale table entries.
    pub missing_hot_roots: Vec<(String, String)>,
}

/// Lints every file in `paths` as ONE analysis unit: a single call
/// graph spans all of them, so summaries and the hot set cross file
/// boundaries. Unreadable files are reported as an error string
/// rather than silently skipped.
pub fn lint_files(paths: &[PathBuf]) -> Result<Vec<FileFinding>, String> {
    Ok(lint_files_report(paths)?.findings)
}

/// As [`lint_files`], but also returns the call-graph statistics and
/// hot-set provenance.
pub fn lint_files_report(paths: &[PathBuf]) -> Result<WorkspaceReport, String> {
    let mut inputs = Vec::new();
    for path in paths {
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        inputs.push((path.to_string_lossy().into_owned(), src, options_for(path)));
    }
    let analysis = Analysis::build(inputs);
    let mut findings = Vec::new();
    for (idx, path) in paths.iter().enumerate() {
        for finding in analysis.findings(idx) {
            findings.push(FileFinding {
                path: path.clone(),
                finding,
            });
        }
    }
    Ok(WorkspaceReport {
        findings,
        files: paths.len(),
        fns: analysis.fn_count(),
        edges: analysis.edge_count(),
        hot: analysis.hot_functions(),
        missing_hot_roots: analysis.missing_hot_roots().to_vec(),
    })
}

/// Walks the workspace at `root` and lints everything, returning
/// findings sorted by path and line.
pub fn lint_workspace(root: &Path) -> Result<Vec<FileFinding>, String> {
    Ok(lint_workspace_report(root)?.findings)
}

/// Walks the workspace at `root` and analyses everything, returning
/// findings plus workspace statistics.
pub fn lint_workspace_report(root: &Path) -> Result<WorkspaceReport, String> {
    let files =
        walk::workspace_rs_files(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    lint_files_report(&files)
}
