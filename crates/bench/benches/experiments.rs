//! Criterion wrappers over the experiment harness.
//!
//! These are macro-benchmarks (each iteration simulates hundreds of
//! milliseconds of network time), so sample counts are kept small;
//! their value is regression tracking of both the reproduced numbers'
//! *shape* and the simulator's wall-clock cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use livesec::balance::Grain;
use livesec_bench::{access, balance_exp, latency, policy_demo, scaling};
use livesec_sim::SimDuration;

fn bench_access_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("access_throughput");
    g.sample_size(10);
    for (label, kind) in [
        ("wired_ovs", access::Access::WiredOvs),
        ("pantou_wifi", access::Access::PantouWifi),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let r = access::run(kind, 1, SimDuration::from_millis(200));
                assert!(r.goodput_bps > 0.0);
                r.goodput_bps
            })
        });
    }
    g.finish();
}

fn bench_se_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("se_scaling");
    g.sample_size(10);
    for n in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| scaling::run(n, 3, SimDuration::from_millis(150)).goodput_bps)
        });
    }
    g.finish();
}

fn bench_load_balance(c: &mut Criterion) {
    let mut g = c.benchmark_group("load_balance");
    g.sample_size(10);
    for algo in balance_exp::Algo::ALL {
        g.bench_function(algo.name(), |b| {
            b.iter(|| {
                balance_exp::run(algo, Grain::Flow, 3, 9, 11, SimDuration::from_millis(1500))
                    .max_deviation
            })
        });
    }
    g.finish();
}

fn bench_latency_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("latency_overhead");
    g.sample_size(10);
    g.bench_function("steered", |b| b.iter(|| latency::run(17, 20).overhead));
    g.bench_function("unsteered", |b| {
        b.iter(|| latency::run_unsteered(17, 20).overhead)
    });
    g.finish();
}

fn bench_policy_enforcement(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy_enforcement");
    g.sample_size(10);
    g.bench_function("attack_block_loop", |b| {
        b.iter(|| {
            let r = policy_demo::run(23);
            assert!(r.flow_blocked.is_some());
            r.reaction
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_access_throughput,
    bench_se_scaling,
    bench_load_balance,
    bench_latency_overhead,
    bench_policy_enforcement,
);
criterion_main!(benches);
