//! Integration: whole-system determinism. Two runs of the full campus
//! scenario from the same seed must produce byte-identical event
//! histories — the property that makes every experiment in this
//! repository reproducible.

use livesec_suite::prelude::*;
use livesec_workloads::{CampusScenario, ScenarioConfig};

fn run_history(seed: u64) -> String {
    let mut s = CampusScenario::build(ScenarioConfig {
        seed,
        ..ScenarioConfig::default()
    });
    s.campus.world.run_for(SimDuration::from_secs(6));
    s.campus.controller().monitor().to_json()
}

#[test]
fn identical_seeds_reproduce_identical_histories() {
    let a = run_history(42);
    let b = run_history(42);
    assert_eq!(a, b, "same seed, same history, byte for byte");
}

#[test]
fn different_seeds_still_reproduce_the_same_shape() {
    // Different seeds change identities/ordering details but the
    // scenario's structure holds.
    let mut s = CampusScenario::build(ScenarioConfig {
        seed: 1337,
        ..ScenarioConfig::default()
    });
    s.campus.world.run_for(SimDuration::from_secs(6));
    let summary = s.campus.controller().monitor().summary();
    assert_eq!(summary.get("switch_join").copied(), Some(4));
    assert_eq!(summary.get("se_online").copied(), Some(4));
    assert!(summary.get("flow_start").copied().unwrap_or(0) > 5);
}
