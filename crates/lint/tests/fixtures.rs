//! Fixture-driven self-test: every rule must trip on its known-bad
//! fixture and stay silent on its known-good twin.

use livesec_lint::{lint_source, lint_source_with, LintOptions, Rule};
use std::path::PathBuf;

/// Options with every optional rule switched on.
const ALL_RULES: LintOptions = LintOptions {
    unwrap_in_prod: true,
};

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

fn rules_in(name: &str) -> Vec<Rule> {
    lint_source(&fixture(name))
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

#[track_caller]
fn assert_trips(name: &str, rule: Rule, at_least: usize) {
    let rules = rules_in(name);
    let n = rules.iter().filter(|r| **r == rule).count();
    assert!(
        n >= at_least,
        "{name}: expected ≥{at_least} {} finding(s), got {n} in {rules:?}",
        rule.name()
    );
}

#[track_caller]
fn assert_clean(name: &str) {
    let findings = lint_source(&fixture(name));
    assert!(
        findings.is_empty(),
        "{name}: expected no findings, got: {}",
        findings
            .iter()
            .map(|f| format!("{}:[{}] {}", f.line, f.rule.name(), f.message))
            .collect::<Vec<_>>()
            .join("; ")
    );
}

#[test]
fn unordered_iter_bad_trips() {
    // Five distinct shapes: for-over-field, method chain, drain,
    // retain with side effects, for-over-local-by-value.
    assert_trips("unordered_iter_bad.rs", Rule::UnorderedIter, 5);
}

#[test]
fn unordered_iter_good_is_clean() {
    assert_clean("unordered_iter_good.rs");
}

#[test]
fn wall_clock_bad_trips() {
    assert_trips("wall_clock_bad.rs", Rule::WallClock, 2);
}

#[test]
fn wall_clock_good_is_clean() {
    assert_clean("wall_clock_good.rs");
}

#[test]
fn unseeded_rng_bad_trips() {
    // thread_rng, from_entropy, rand::random.
    assert_trips("unseeded_rng_bad.rs", Rule::UnseededRng, 3);
}

#[test]
fn unseeded_rng_good_is_clean() {
    assert_clean("unseeded_rng_good.rs");
}

#[test]
fn float_accum_bad_trips() {
    // += cast, sum::<f64>, += float literal.
    assert_trips("float_accum_bad.rs", Rule::FloatAccum, 3);
}

#[test]
fn float_accum_good_is_clean() {
    assert_clean("float_accum_good.rs");
}

#[test]
fn annotation_bad_trips() {
    assert_trips("annotation_bad.rs", Rule::BadAnnotation, 3);
    assert_trips("annotation_bad.rs", Rule::UnusedAllow, 1);
    // The malformed allow must NOT suppress the violation underneath.
    assert_trips("annotation_bad.rs", Rule::WallClock, 1);
}

#[test]
fn annotation_good_is_clean() {
    assert_clean("annotation_good.rs");
}

#[test]
fn unwrap_in_prod_bad_trips() {
    // get().unwrap(), parse().expect(), chained unwrap.
    let findings = lint_source_with(&fixture("unwrap_in_prod_bad.rs"), &ALL_RULES);
    let n = findings
        .iter()
        .filter(|f| f.rule == Rule::UnwrapInProd)
        .count();
    assert_eq!(n, 3, "expected 3 unwrap-in-prod findings: {findings:#?}");
}

#[test]
fn unwrap_in_prod_good_is_clean() {
    let findings = lint_source_with(&fixture("unwrap_in_prod_good.rs"), &ALL_RULES);
    assert!(findings.is_empty(), "expected no findings: {findings:#?}");
}

#[test]
fn unwrap_in_prod_is_off_by_default() {
    // The same bad fixture is silent under default options: the rule
    // is scoped to production crates by `lint_files`, not global.
    let findings = lint_source(&fixture("unwrap_in_prod_bad.rs"));
    assert!(
        findings.is_empty(),
        "rule leaked into defaults: {findings:#?}"
    );
}

#[test]
fn regression_pr1_flow_eviction_shape_is_caught() {
    assert_trips("regress_pr1_flow_eviction_bad.rs", Rule::UnorderedIter, 1);
}

#[test]
fn regression_pr2_se_expiry_shape_is_caught() {
    // Both the values_mut expiry sweep and the drain cleanup.
    assert_trips("regress_pr2_se_expiry_bad.rs", Rule::UnorderedIter, 2);
}

#[test]
fn regression_pr4_conntrack_lru_shape_is_caught() {
    // Both the HashMap LRU-victim scan and the expiry-sweep emit.
    assert_trips("regress_pr4_conntrack_lru_bad.rs", Rule::UnorderedIter, 2);
}
