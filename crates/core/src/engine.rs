//! The pure flow-setup decision engine (DESIGN.md §9).
//!
//! [`decide`] runs the side-effect-free half of what the monolithic
//! controller's cold path used to do inline: the policy lookup, the
//! balancer picks, the hop lookups, and the compilation of both
//! steering programs — in exactly that order, against whatever
//! [`StateStore`] it is handed. The caller (the controller, or a
//! shard of the sharded control plane) owns the side effects: cache
//! inserts, flow-mods, monitor events, and the flow books.
//!
//! The only state the engine mutates is the balancer (through
//! [`StateStore::pick_element`]), because dispatch is inherently
//! stateful; it makes the same pick sequence the monolithic path made,
//! which is what keeps event histories byte-identical across the
//! refactor.

use crate::controller::STEER_PRIORITY;
use crate::policy::PolicyDecision;
use crate::routing::{compile_path, SteeringProgram};
use crate::store::StateStore;
use livesec_net::{FlowKey, MacAddr};
use livesec_services::ServiceType;
use std::rc::Rc;

/// The outcome of a flow-setup decision.
#[derive(Clone, Debug)]
pub enum EngineDecision {
    /// The policy denies the flow; install a drop at the ingress.
    Deny {
        /// Name of the matching policy rule, if any.
        rule: Option<String>,
    },
    /// A chained service has no online replica and the store is
    /// fail-closed; deny with the synthesized rule string.
    ChainUnavailable {
        /// The `no-online-element:<service>` denial reason.
        rule: String,
    },
    /// A host is unlocated or discovery hasn't converged; do nothing
    /// (the sender re-ARPs and retries).
    Unroutable,
    /// Admit: steer the flow through `elements` along the compiled
    /// programs.
    Steer {
        /// The policy chain (may be longer than `elements` under
        /// fail-open; the installed chain is the picked prefix).
        services: Vec<ServiceType>,
        /// The picked replica per available service, in chain order.
        elements: Vec<MacAddr>,
        /// The forward steering program.
        forward: Rc<SteeringProgram>,
        /// The reverse steering program.
        reverse: Rc<SteeringProgram>,
    },
}

/// Decides a flow's fate against `store`.
///
/// Operation order is part of the controller's determinism spec
/// (DESIGN.md §6): policy decision, then one balancer pick per chained
/// service (skipping unavailable services only under fail-open), then
/// hop lookups (source, destination, elements), then forward and
/// reverse program compilation.
pub fn decide<S: StateStore + ?Sized>(store: &mut S, key: &FlowKey) -> EngineDecision {
    let (decision, rule) = store.decide_policy(key);
    let services = match decision {
        PolicyDecision::Deny => return EngineDecision::Deny { rule },
        PolicyDecision::Allow => Vec::new(),
        PolicyDecision::Chain(services) => services,
    };

    let mut elements = Vec::with_capacity(services.len());
    for service in &services {
        match store.pick_element(*service, key) {
            Some(mac) => elements.push(mac),
            None => {
                if store.fail_open() {
                    // Skip the unavailable service.
                    continue;
                }
                return EngineDecision::ChainUnavailable {
                    rule: format!("no-online-element:{service}"),
                };
            }
        }
    }

    let Some(src_hop) = store.hop_of(key.dl_src) else {
        return EngineDecision::Unroutable;
    };
    let Some(dst_hop) = store.hop_of(key.dl_dst) else {
        return EngineDecision::Unroutable; // destination will re-ARP
    };
    let mut hops = Vec::with_capacity(elements.len() + 2);
    hops.push(src_hop);
    for mac in &elements {
        let Some(h) = store.hop_of(*mac) else {
            return EngineDecision::Unroutable;
        };
        hops.push(h);
    }
    hops.push(dst_hop);

    let uplink = |d: u64| store.uplink_of(d);
    let Ok(forward) = compile_path(key, &hops, uplink, STEER_PRIORITY) else {
        return EngineDecision::Unroutable;
    };
    let mut rev_hops = hops.clone();
    rev_hops.reverse();
    let Ok(reverse) = compile_path(&key.reversed(), &rev_hops, uplink, STEER_PRIORITY) else {
        return EngineDecision::Unroutable;
    };
    EngineDecision::Steer {
        services,
        elements,
        forward: Rc::new(forward),
        reverse: Rc::new(reverse),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{PolicyRule, PolicyTable};
    use crate::store::NetworkState;
    use livesec_services::SeMessage;
    use livesec_sim::SimTime;

    fn key(src: u64, dst: u64, dst_port: u16) -> FlowKey {
        FlowKey {
            vlan: None,
            dl_src: MacAddr::from_u64(src),
            dl_dst: MacAddr::from_u64(dst),
            dl_type: 0x0800,
            nw_src: "10.0.0.1".parse().unwrap(),
            nw_dst: "10.0.0.2".parse().unwrap(),
            nw_proto: 6,
            tp_src: 40_000,
            tp_dst: dst_port,
        }
    }

    fn store_with_hosts() -> NetworkState {
        let mut s = NetworkState::new();
        s.locate(MacAddr::from_u64(0xa1), 1, 2);
        s.locate(MacAddr::from_u64(0xb1), 2, 3);
        s.set_uplink(1, 40);
        s.set_uplink(2, 40);
        s
    }

    #[test]
    fn allow_compiles_a_direct_path() {
        let mut s = store_with_hosts();
        match decide(&mut s, &key(0xa1, 0xb1, 80)) {
            EngineDecision::Steer {
                services,
                elements,
                forward,
                reverse,
            } => {
                assert!(services.is_empty());
                assert!(elements.is_empty());
                assert_eq!(forward.entries.first().map(|e| e.dpid), Some(1));
                assert_eq!(forward.entries.last().map(|e| e.dpid), Some(2));
                assert_eq!(reverse.entries.first().map(|e| e.dpid), Some(2));
            }
            other => panic!("expected Steer, got {other:?}"),
        }
    }

    #[test]
    fn deny_rule_surfaces_by_name() {
        let mut s = store_with_hosts();
        let mut policy = PolicyTable::allow_all();
        policy.push(PolicyRule::named("no-web").proto(6).dst_port(80).deny());
        s.policy = policy;
        match decide(&mut s, &key(0xa1, 0xb1, 80)) {
            EngineDecision::Deny { rule } => assert_eq!(rule.as_deref(), Some("no-web")),
            other => panic!("expected Deny, got {other:?}"),
        }
    }

    #[test]
    fn chain_without_replicas_fails_closed_then_open() {
        let mut s = store_with_hosts();
        let mut policy = PolicyTable::allow_all();
        policy.push(
            PolicyRule::named("web-ids")
                .proto(6)
                .dst_port(80)
                .chain(vec![ServiceType::IntrusionDetection]),
        );
        s.policy = policy;
        match decide(&mut s, &key(0xa1, 0xb1, 80)) {
            EngineDecision::ChainUnavailable { rule } => {
                assert!(rule.starts_with("no-online-element:"), "rule: {rule}");
            }
            other => panic!("expected ChainUnavailable, got {other:?}"),
        }
        s.fail_open = true;
        match decide(&mut s, &key(0xa1, 0xb1, 80)) {
            EngineDecision::Steer {
                services, elements, ..
            } => {
                assert_eq!(services.len(), 1);
                assert!(elements.is_empty(), "fail-open skips the missing pick");
            }
            other => panic!("expected Steer, got {other:?}"),
        }
    }

    #[test]
    fn chain_steers_through_a_picked_element() {
        let mut s = store_with_hosts();
        let mut policy = PolicyTable::allow_all();
        policy.push(
            PolicyRule::named("web-ids")
                .proto(6)
                .dst_port(80)
                .chain(vec![ServiceType::IntrusionDetection]),
        );
        s.policy = policy;
        let se = MacAddr::from_u64(0xe1);
        s.registry.heartbeat(
            se,
            &SeMessage::Online {
                service: ServiceType::IntrusionDetection,
                cert: 0,
                cpu: 10,
                mem: 0,
                pps: 0,
                bps: 0,
                total_pkts: 0,
            },
            SimTime::ZERO,
        );
        s.locate(se, 1, 30);
        match decide(&mut s, &key(0xa1, 0xb1, 80)) {
            EngineDecision::Steer { elements, .. } => assert_eq!(elements, vec![se]),
            other => panic!("expected Steer, got {other:?}"),
        }
    }

    #[test]
    fn unknown_destination_is_unroutable() {
        let mut s = store_with_hosts();
        assert!(matches!(
            decide(&mut s, &key(0xa1, 0xcc, 80)),
            EngineDecision::Unroutable
        ));
    }
}
