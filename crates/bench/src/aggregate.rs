//! E3 — §V-B.1 aggregate security capacity.
//!
//! Paper: the full deployment (10 OvS, 200 VM-based elements) delivers
//! at least 8 Gbps of intrusion detection and 2 Gbps of protocol
//! identification.
//!
//! Reproduction: `n_switches` OvS each hosting `ses_per_switch`
//! elements; IDS elements run at the measured 421 Mbps per VM,
//! protocol-identification elements at 100 Mbps (L7-filter's regex
//! matching is far heavier per byte than Snort's compiled string sets;
//! this calibration makes 20 elements ≈ 2 Gbps, the paper's aggregate).
//! Client/server pairs spread over the switches offer more load than
//! the elements can scrub; aggregate goodput is the capacity.

use livesec::balance::LoadBalancer;
use livesec::deploy::CampusBuilder;
use livesec::policy::{PolicyRule, PolicyTable};
use livesec_services::{IdsEngine, ProtoIdEngine, ServiceElement, ServiceType};
use livesec_sim::{LinkSpec, SimDuration};
use livesec_switch::Host;
use livesec_workloads::{HttpClient, HttpServer};

/// Modeled per-VM capacity of a protocol-identification element.
pub const PROTOID_PER_VM_BPS: u64 = 100_000_000;

/// The result of one aggregate-capacity run.
#[derive(Clone, Copy, Debug)]
pub struct AggregateResult {
    /// The service measured.
    pub service: ServiceType,
    /// Number of elements deployed.
    pub n_elements: usize,
    /// Aggregate scrubbed goodput, bits per second.
    pub goodput_bps: f64,
}

/// Runs E3 for one service type.
///
/// `se_switches × ses_per_switch` elements are deployed on dedicated
/// switches; enough client/server pairs (on their own switches) are
/// added to saturate them.
pub fn run(
    service: ServiceType,
    se_switches: usize,
    ses_per_switch: usize,
    seed: u64,
    window: SimDuration,
) -> AggregateResult {
    let n_elements = se_switches * ses_per_switch;
    let per_vm_bps = match service {
        ServiceType::ProtocolIdentification => PROTOID_PER_VM_BPS,
        _ => crate::scaling::PAPER_PER_VM_BPS,
    };
    // One long-lived flow per pair, and each flow pins to one element,
    // so saturating every element needs at least one pair per element
    // (plus slack); each pair gets its own switches so nothing else
    // bottlenecks.
    let n_pairs = n_elements + 2;
    let n_switches = se_switches + 2 * n_pairs;

    let mut policy = PolicyTable::allow_all();
    policy.push(
        PolicyRule::named("steer-web")
            .dst_port(80)
            .chain(vec![service]),
    );

    // Closed-loop workload: size queues above the in-flight data (see
    // scaling.rs).
    let mut big = LinkSpec::gigabit();
    big.queue_bytes = 32 * 1024 * 1024;
    let mut b = CampusBuilder::with_legacy_tiers_uplink(seed, n_switches, 0, big)
        .with_policy(policy)
        .with_balancer(LoadBalancer::min_load())
        .with_user_link(big)
        .with_se_link(big);

    for s in 0..se_switches {
        for _ in 0..ses_per_switch {
            match service {
                ServiceType::ProtocolIdentification => {
                    b.add_service_element(
                        s,
                        ServiceElement::new(ProtoIdEngine::new())
                            .with_capacity_bps(per_vm_bps)
                            .with_per_packet_overhead(SimDuration::ZERO)
                            .with_max_backlog(SimDuration::from_millis(400)),
                    );
                }
                _ => {
                    b.add_service_element(
                        s,
                        ServiceElement::new(IdsEngine::engine())
                            .with_capacity_bps(per_vm_bps)
                            .with_per_packet_overhead(SimDuration::ZERO)
                            .with_max_backlog(SimDuration::from_millis(400)),
                    );
                }
            }
        }
    }

    let mut clients = Vec::with_capacity(n_pairs);
    for p in 0..n_pairs {
        let server = b.add_user(se_switches + 2 * p + 1, HttpServer::new());
        let client = b.add_user(
            se_switches + 2 * p,
            HttpClient::new(server.ip, 1_000_000)
                .with_start_delay(SimDuration::from_millis(900 + 3 * p as u64)),
        );
        clients.push(client);
    }
    let mut campus = b.finish();

    campus.world.run_for(SimDuration::from_millis(1800));
    let sum = |campus: &livesec::deploy::Campus| -> u64 {
        clients
            .iter()
            .map(|c| {
                campus
                    .world
                    .node::<Host<HttpClient>>(c.node)
                    .app()
                    .bytes_received
            })
            .sum()
    };
    let before = sum(&campus);
    campus.world.run_for(window);
    let after = sum(&campus);

    AggregateResult {
        service,
        n_elements,
        goodput_bps: ((after - before) * 8) as f64 / window.as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down aggregate check (2 switches × 2 elements) so the
    /// test stays fast; the full 10×2 configuration runs in the
    /// `exp_aggregate_capacity` binary.
    #[test]
    fn small_ids_aggregate_scales() {
        let r = run(
            ServiceType::IntrusionDetection,
            2,
            2,
            5,
            SimDuration::from_millis(300),
        );
        // 4 elements × 421 Mbps ≈ 1.7 Gbps; allow generous slack.
        assert!(r.goodput_bps > 1_200_000_000.0, "goodput {}", r.goodput_bps);
    }
}
