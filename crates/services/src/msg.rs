//! The service-element ↔ controller control protocol.
//!
//! Per the paper (§III-D.1), SE daemons encapsulate messages in UDP
//! packets with a specialized format and identifier. The AS switch
//! never gets a flow entry for these, so every message reaches the
//! controller as a packet-in, where the message-parsing module checks
//! the identifier and — if a certification token is required —
//! validates it before trusting the content.

use livesec_net::{FlowKey, MacAddr};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// The magic identifier prefixing every control message.
pub const MAGIC: [u8; 4] = *b"LSEC";

/// UDP destination port of the control channel.
pub const SE_CONTROL_PORT: u16 = 47810;

/// Destination MAC for control messages: a reserved address no host
/// owns, so ingress AS switches always miss and packet-in.
pub const SE_CONTROL_MAC: MacAddr = MacAddr::new([0x02, 0x4c, 0x53, 0x45, 0x43, 0x00]);

/// The network service a service element provides.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ServiceType {
    /// Intrusion detection (the paper's Snort port).
    IntrusionDetection,
    /// Application protocol identification (the paper's L7-filter port).
    ProtocolIdentification,
    /// Stateless firewall.
    Firewall,
    /// Virus scanning.
    VirusScan,
    /// Content inspection.
    ContentInspection,
}

impl ServiceType {
    const ALL: [ServiceType; 5] = [
        ServiceType::IntrusionDetection,
        ServiceType::ProtocolIdentification,
        ServiceType::Firewall,
        ServiceType::VirusScan,
        ServiceType::ContentInspection,
    ];

    fn code(self) -> u8 {
        match self {
            ServiceType::IntrusionDetection => 1,
            ServiceType::ProtocolIdentification => 2,
            ServiceType::Firewall => 3,
            ServiceType::VirusScan => 4,
            ServiceType::ContentInspection => 5,
        }
    }

    fn from_code(c: u8) -> Option<Self> {
        Self::ALL.into_iter().find(|s| s.code() == c)
    }
}

impl fmt::Display for ServiceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceType::IntrusionDetection => write!(f, "intrusion-detection"),
            ServiceType::ProtocolIdentification => write!(f, "protocol-identification"),
            ServiceType::Firewall => write!(f, "firewall"),
            ServiceType::VirusScan => write!(f, "virus-scan"),
            ServiceType::ContentInspection => write!(f, "content-inspection"),
        }
    }
}

/// The result a service element reports about a flow.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Verdict {
    /// Malicious traffic detected; the controller should block the flow
    /// at its ingress switch.
    Malicious {
        /// Attack name (e.g. rule name).
        attack: String,
        /// Severity 1..=10.
        severity: u8,
    },
    /// The flow's application protocol was identified.
    Application {
        /// Application label (e.g. "http", "bittorrent").
        app: String,
    },
    /// Policy violation (firewall/content): block, but not an attack.
    PolicyViolation {
        /// Violated policy description.
        policy: String,
    },
    /// A stateful firewall confirmed the connection as established and
    /// admissible: the controller may install an inspection-bypassing
    /// fast-pass for it.
    ConnEstablished,
    /// A previously established connection closed (teardown or idle
    /// expiry): any fast-pass for it must come down.
    ConnClosed,
}

/// A message from a service element to the controller.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum SeMessage {
    /// Periodic heartbeat: existence, service type, and load.
    Online {
        /// What service this element provides.
        service: ServiceType,
        /// Certification token issued by the controller (0 = none).
        cert: u64,
        /// CPU utilization percent (0..=100).
        cpu: u8,
        /// Memory footprint percent (0..=100).
        mem: u8,
        /// Packets processed in the last reporting interval.
        pps: u64,
        /// Bits processed per second in the last interval.
        bps: u64,
        /// Cumulative packets processed since the element started —
        /// the deficit counter minimum-load dispatch balances on.
        total_pkts: u64,
    },
    /// A detection/identification result for a flow.
    Event {
        /// Certification token.
        cert: u64,
        /// The flow the result concerns (the paper's "12-tuple" is this
        /// 9-tuple plus the location fields the controller already
        /// knows from its routing table).
        flow: FlowKey,
        /// The result.
        verdict: Verdict,
    },
}

impl SeMessage {
    /// Encodes this message into the UDP payload format (magic +
    /// version + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&MAGIC);
        out.push(1); // version
        match self {
            SeMessage::Online {
                service,
                cert,
                cpu,
                mem,
                pps,
                bps,
                total_pkts,
            } => {
                out.push(0); // kind
                out.push(service.code());
                out.extend_from_slice(&cert.to_be_bytes());
                out.push(*cpu);
                out.push(*mem);
                out.extend_from_slice(&pps.to_be_bytes());
                out.extend_from_slice(&bps.to_be_bytes());
                out.extend_from_slice(&total_pkts.to_be_bytes());
            }
            SeMessage::Event {
                cert,
                flow,
                verdict,
            } => {
                out.push(1); // kind
                out.extend_from_slice(&cert.to_be_bytes());
                encode_flow(&mut out, flow);
                match verdict {
                    Verdict::Malicious { attack, severity } => {
                        out.push(0);
                        out.push(*severity);
                        put_str(&mut out, attack);
                    }
                    Verdict::Application { app } => {
                        out.push(1);
                        put_str(&mut out, app);
                    }
                    Verdict::PolicyViolation { policy } => {
                        out.push(2);
                        put_str(&mut out, policy);
                    }
                    Verdict::ConnEstablished => out.push(3),
                    Verdict::ConnClosed => out.push(4),
                }
            }
        }
        out
    }

    /// Decodes a control message; returns `None` if the magic, version
    /// or structure is wrong (the controller silently ignores such
    /// packets, treating them as ordinary traffic).
    pub fn decode(bytes: &[u8]) -> Option<SeMessage> {
        let mut r = Cursor { buf: bytes, pos: 0 };
        if r.take(4)? != MAGIC {
            return None;
        }
        if r.u8()? != 1 {
            return None;
        }
        match r.u8()? {
            0 => Some(SeMessage::Online {
                service: ServiceType::from_code(r.u8()?)?,
                cert: r.u64()?,
                cpu: r.u8()?,
                mem: r.u8()?,
                pps: r.u64()?,
                bps: r.u64()?,
                total_pkts: r.u64()?,
            }),
            1 => {
                let cert = r.u64()?;
                let flow = decode_flow(&mut r)?;
                let verdict = match r.u8()? {
                    0 => {
                        let severity = r.u8()?;
                        Verdict::Malicious {
                            severity,
                            attack: r.string()?,
                        }
                    }
                    1 => Verdict::Application { app: r.string()? },
                    2 => Verdict::PolicyViolation {
                        policy: r.string()?,
                    },
                    3 => Verdict::ConnEstablished,
                    4 => Verdict::ConnClosed,
                    _ => return None,
                };
                Some(SeMessage::Event {
                    cert,
                    flow,
                    verdict,
                })
            }
            _ => None,
        }
    }

    /// Returns `true` if a UDP payload starts with the control magic.
    pub fn is_control_payload(bytes: &[u8]) -> bool {
        bytes.len() >= 4 && bytes[..4] == MAGIC
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    out.extend_from_slice(&(bytes.len() as u16).to_be_bytes());
    out.extend_from_slice(bytes);
}

fn encode_flow(out: &mut Vec<u8>, f: &FlowKey) {
    out.extend_from_slice(&f.vlan.map(|v| v + 1).unwrap_or(0).to_be_bytes());
    out.extend_from_slice(&f.dl_src.octets());
    out.extend_from_slice(&f.dl_dst.octets());
    out.extend_from_slice(&f.dl_type.to_be_bytes());
    out.extend_from_slice(&f.nw_src.octets());
    out.extend_from_slice(&f.nw_dst.octets());
    out.push(f.nw_proto);
    out.extend_from_slice(&f.tp_src.to_be_bytes());
    out.extend_from_slice(&f.tp_dst.to_be_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_be_bytes(self.take(2)?.try_into().ok()?))
    }
    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_be_bytes(self.take(8)?.try_into().ok()?))
    }
    fn string(&mut self) -> Option<String> {
        let n = self.u16()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).ok()
    }
    fn mac(&mut self) -> Option<MacAddr> {
        Some(MacAddr::new(self.take(6)?.try_into().ok()?))
    }
    fn ip(&mut self) -> Option<Ipv4Addr> {
        let s = self.take(4)?;
        Some(Ipv4Addr::new(s[0], s[1], s[2], s[3]))
    }
}

fn decode_flow(r: &mut Cursor<'_>) -> Option<FlowKey> {
    let vlan_raw = r.u16()?;
    Some(FlowKey {
        vlan: if vlan_raw == 0 {
            None
        } else {
            Some(vlan_raw - 1)
        },
        dl_src: r.mac()?,
        dl_dst: r.mac()?,
        dl_type: r.u16()?,
        nw_src: r.ip()?,
        nw_dst: r.ip()?,
        nw_proto: r.u8()?,
        tp_src: r.u16()?,
        tp_dst: r.u16()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> FlowKey {
        FlowKey {
            vlan: Some(12),
            dl_src: MacAddr::from_u64(1),
            dl_dst: MacAddr::from_u64(2),
            dl_type: 0x0800,
            nw_src: "10.0.0.1".parse().unwrap(),
            nw_dst: "10.0.0.2".parse().unwrap(),
            nw_proto: 6,
            tp_src: 555,
            tp_dst: 80,
        }
    }

    #[test]
    fn online_roundtrip() {
        let msg = SeMessage::Online {
            service: ServiceType::IntrusionDetection,
            cert: 0xdeadbeef,
            cpu: 42,
            mem: 17,
            pps: 123_456,
            bps: 421_000_000,
            total_pkts: 9_876_543,
        };
        assert_eq!(SeMessage::decode(&msg.encode()), Some(msg));
    }

    #[test]
    fn event_roundtrips_all_verdicts() {
        for verdict in [
            Verdict::Malicious {
                attack: "exploit.shellcode".into(),
                severity: 9,
            },
            Verdict::Application {
                app: "bittorrent".into(),
            },
            Verdict::PolicyViolation {
                policy: "no-dlp-keywords".into(),
            },
            Verdict::ConnEstablished,
            Verdict::ConnClosed,
        ] {
            let msg = SeMessage::Event {
                cert: 7,
                flow: flow(),
                verdict,
            };
            assert_eq!(SeMessage::decode(&msg.encode()), Some(msg));
        }
    }

    #[test]
    fn untagged_vlan_roundtrips() {
        let mut f = flow();
        f.vlan = None;
        let msg = SeMessage::Event {
            cert: 0,
            flow: f,
            verdict: Verdict::Application { app: "ssh".into() },
        };
        assert_eq!(SeMessage::decode(&msg.encode()), Some(msg));
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(SeMessage::decode(b""), None);
        assert_eq!(SeMessage::decode(b"NOPE\x01\x00"), None);
        assert_eq!(SeMessage::decode(b"LSEC\x02\x00"), None, "bad version");
        assert_eq!(SeMessage::decode(b"LSEC\x01\x09"), None, "bad kind");
        // Truncated event.
        let msg = SeMessage::Event {
            cert: 7,
            flow: flow(),
            verdict: Verdict::Application { app: "x".into() },
        };
        let enc = msg.encode();
        assert_eq!(SeMessage::decode(&enc[..enc.len() - 1]), None);
    }

    #[test]
    fn control_payload_detection() {
        assert!(SeMessage::is_control_payload(b"LSEC\x01..."));
        assert!(!SeMessage::is_control_payload(b"GET / HTTP/1.1"));
        assert!(!SeMessage::is_control_payload(b"LS"));
    }

    #[test]
    fn service_type_codes_roundtrip() {
        for s in ServiceType::ALL {
            assert_eq!(ServiceType::from_code(s.code()), Some(s));
        }
        assert_eq!(ServiceType::from_code(99), None);
    }
}
