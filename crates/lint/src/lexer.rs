//! A hand-rolled Rust lexer — just enough fidelity for pattern rules.
//!
//! The lexer splits source text into identifiers, literals and
//! single-character punctuation, with comments collected separately
//! (rules consult them only for `livesec-lint:` allow annotations).
//! It understands everything that could otherwise derail a naive
//! scanner: string/char/byte literals, raw strings with arbitrary
//! `#` fences, nested block comments, lifetimes vs. char literals,
//! and raw identifiers. It does *not* build a syntax tree; rules
//! operate on the flat token stream.

/// What kind of lexeme a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`for`, `HashMap`, `r#type`, ...).
    Ident,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// Any literal: numbers, strings, chars, byte strings.
    Literal,
    /// A single punctuation character (`.`, `:`, `<`, `+`, ...).
    Punct,
}

/// One lexeme with its position.
#[derive(Clone, Debug)]
pub struct Token {
    /// Kind of lexeme.
    pub kind: TokenKind,
    /// The lexeme text (for `Punct`, exactly one character).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
    /// Byte offset of the token start (used for adjacency checks,
    /// e.g. telling `+=` apart from `+ =`).
    pub start: usize,
}

/// A comment with its position, kept out of the main token stream.
#[derive(Clone, Debug)]
pub struct Comment {
    /// Full comment text including the `//` / `/*` markers.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// True when the comment is the only thing on its line (after
    /// whitespace) — such comments annotate the *next* code line.
    pub own_line: bool,
}

/// Output of [`lex`]: code tokens plus comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes Rust source text. Never fails: unrecognized bytes are
/// skipped, unterminated literals run to end of input.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // Whether only whitespace has been seen since the last newline
    // (so a comment starting here is on its own line).
    let mut line_blank = true;

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                line_blank = true;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => {
                i += 1;
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    text: src[start..i].to_string(),
                    line,
                    own_line: line_blank,
                });
                line_blank = false;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let start_line = line;
                let own = line_blank;
                let mut depth = 1u32;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    text: src[start..i.min(src.len())].to_string(),
                    line: start_line,
                    own_line: own,
                });
                line_blank = false;
            }
            b'"' => {
                let (end, nl) = scan_string(bytes, i + 1, 0);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: src[i..end].to_string(),
                    line,
                    start: i,
                });
                line += nl;
                i = end;
                line_blank = false;
            }
            b'r' | b'b' if starts_raw_or_byte_string(bytes, i) => {
                let (end, nl) = scan_prefixed_string(bytes, i);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: src[i..end].to_string(),
                    line,
                    start: i,
                });
                line += nl;
                i = end;
                line_blank = false;
            }
            b'\'' => {
                // Lifetime or char literal. A lifetime is `'` + ident
                // with no closing quote right after one scalar.
                let (tok, end) = scan_quote(src, bytes, i, line);
                out.tokens.push(tok);
                i = end;
                line_blank = false;
            }
            _ if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                // Raw identifier prefix r# is handled under the raw
                // string branch guard, so here a plain ident.
                while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                    start,
                });
                line_blank = false;
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'.')
                {
                    // `1..2` range: stop the number before `..`.
                    if bytes[i] == b'.' && bytes.get(i + 1) == Some(&b'.') {
                        break;
                    }
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: src[start..i].to_string(),
                    line,
                    start,
                });
                line_blank = false;
            }
            _ => {
                if c.is_ascii() {
                    out.tokens.push(Token {
                        kind: TokenKind::Punct,
                        text: (c as char).to_string(),
                        line,
                        start: i,
                    });
                }
                i += 1;
                line_blank = false;
            }
        }
    }
    out
}

/// True when position `i` starts `r"`, `r#`, `b"`, `b'`, `br"`, `br#`
/// (raw/byte string or byte char) as opposed to a plain identifier.
fn starts_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    // For `r#...` the hashes must be followed by `"`: `r#type` is a
    // raw *identifier*, not a raw string.
    fn hashes_then_quote(bytes: &[u8], mut j: usize) -> bool {
        while bytes.get(j) == Some(&b'#') {
            j += 1;
        }
        bytes.get(j) == Some(&b'"')
    }
    match bytes[i] {
        b'r' => match bytes.get(i + 1) {
            Some(b'"') => true,
            Some(b'#') => hashes_then_quote(bytes, i + 1),
            _ => false,
        },
        b'b' => match bytes.get(i + 1) {
            Some(b'"') | Some(b'\'') => true,
            Some(b'r') => match bytes.get(i + 2) {
                Some(b'"') => true,
                Some(b'#') => hashes_then_quote(bytes, i + 2),
                _ => false,
            },
            _ => false,
        },
        _ => false,
    }
}

/// Scans a prefixed string/char literal starting at `i` (one of the
/// shapes accepted by [`starts_raw_or_byte_string`]); returns
/// (end offset, newlines consumed).
fn scan_prefixed_string(bytes: &[u8], i: usize) -> (usize, u32) {
    let mut j = i;
    // Skip the `r` / `b` / `br` prefix.
    while j < bytes.len() && (bytes[j] == b'r' || bytes[j] == b'b') {
        j += 1;
    }
    let raw = bytes[i..j].contains(&b'r');
    let mut hashes = 0usize;
    while j < bytes.len() && bytes[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j >= bytes.len() {
        return (bytes.len(), 0);
    }
    if bytes[j] == b'\'' {
        // Byte char literal b'x' or b'\n' or b'\''.
        j += 1;
        if j < bytes.len() && bytes[j] == b'\\' {
            j += 2; // backslash plus the escaped char (may be `'`)
        }
        while j < bytes.len() && bytes[j] != b'\'' {
            j += 1;
        }
        return (j.min(bytes.len() - 1) + 1, 0);
    }
    // String body (raw: no escapes, needs `"` + hashes to close).
    j += 1; // opening quote
    let mut nl = 0u32;
    if raw {
        while j < bytes.len() {
            if bytes[j] == b'\n' {
                nl += 1;
            }
            if bytes[j] == b'"'
                && bytes[j + 1..].len() >= hashes
                && bytes[j + 1..].iter().take(hashes).all(|&b| b == b'#')
            {
                return (j + 1 + hashes, nl);
            }
            j += 1;
        }
        (bytes.len(), nl)
    } else {
        let (end, more) = scan_string(bytes, j, nl);
        (end, more)
    }
}

/// Scans a non-raw string body from just after the opening quote;
/// returns (offset past closing quote, newlines seen).
fn scan_string(bytes: &[u8], mut j: usize, mut nl: u32) -> (usize, u32) {
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'"' => return (j + 1, nl),
            b'\n' => {
                nl += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    (bytes.len(), nl)
}

/// Scans from a `'`: either a lifetime (`'a`) or a char literal
/// (`'a'`, `'\n'`). Returns the token and the end offset.
fn scan_quote(src: &str, bytes: &[u8], i: usize, line: u32) -> (Token, usize) {
    let mut j = i + 1;
    if j < bytes.len() && bytes[j] == b'\\' {
        // Definitely a char literal with an escape.
        j += 2;
        while j < bytes.len() && bytes[j] != b'\'' {
            j += 1;
        }
        let end = (j + 1).min(bytes.len());
        return (
            Token {
                kind: TokenKind::Literal,
                text: src[i..end].to_string(),
                line,
                start: i,
            },
            end,
        );
    }
    // Consume ident-ish chars; if a `'` follows exactly one char, it
    // was a char literal, else a lifetime.
    let body_start = j;
    while j < bytes.len() && (bytes[j] == b'_' || bytes[j].is_ascii_alphanumeric()) {
        j += 1;
    }
    if j < bytes.len() && bytes[j] == b'\'' && j > body_start {
        let end = j + 1;
        return (
            Token {
                kind: TokenKind::Literal,
                text: src[i..end].to_string(),
                line,
                start: i,
            },
            end,
        );
    }
    // Punctuation or non-ASCII char literal (`'&'`, `'/'`, `'λ'`):
    // no ident chars consumed, but a single char closed by `'`.
    if j == body_start {
        if let Some(c) = src[body_start..].chars().next() {
            let after = body_start + c.len_utf8();
            if c != '\'' && after < bytes.len() && bytes[after] == b'\'' {
                let end = after + 1;
                return (
                    Token {
                        kind: TokenKind::Literal,
                        text: src[i..end].to_string(),
                        line,
                        start: i,
                    },
                    end,
                );
            }
        }
    }
    {
        (
            Token {
                kind: TokenKind::Lifetime,
                text: src[i..j].to_string(),
                line,
                start: i,
            },
            j,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn basic_tokens() {
        let l = lex("let mut x: HashMap<u64, Vec<u8>> = HashMap::new();");
        assert_eq!(
            idents("let mut x: HashMap<u64, Vec<u8>> = HashMap::new();"),
            ["let", "mut", "x", "HashMap", "u64", "Vec", "u8", "HashMap", "new"]
        );
        assert!(l.tokens.iter().any(|t| t.text == "<"));
    }

    #[test]
    fn strings_do_not_leak_tokens() {
        // The HashMap inside the string must not become an ident.
        assert_eq!(idents(r#"let s = "HashMap iter()"; s"#), ["let", "s", "s"]);
        assert_eq!(
            idents(r##"let s = r#"Instant::now()"#; s"##),
            ["let", "s", "s"]
        );
    }

    #[test]
    fn comments_are_separate() {
        let l =
            lex("// livesec-lint: allow(wall-clock, reason = \"x\")\nfoo();\n/* block */ bar();");
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[0].own_line);
        assert_eq!(l.comments[0].line, 1);
        assert!(!l.comments[1].own_line || l.comments[1].line == 3);
        assert_eq!(idents("// c\nfoo();"), ["foo"]);
    }

    #[test]
    fn nested_block_comment() {
        assert_eq!(idents("/* a /* b */ c */ x"), ["x"]);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'y' }");
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "'a"));
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Literal && t.text == "'y'"));
    }

    #[test]
    fn line_numbers_cross_multiline_strings() {
        let l = lex("let a = \"x\ny\";\nInstant");
        let inst = l.tokens.iter().find(|t| t.text == "Instant").unwrap();
        assert_eq!(inst.line, 3);
    }

    #[test]
    fn byte_and_raw_strings() {
        assert_eq!(idents(r#"let b = b"SystemTime"; b"#), ["let", "b", "b"]);
        assert_eq!(idents("let c = b'x'; c"), ["let", "c", "c"]);
    }
}
