//! Known-bad fixture mirroring the `.lsp` compiler's shapes
//! (`crates/policy` is a production crate: a panic while compiling an
//! operator's policy edit is a control-plane outage). Token-cursor
//! indexing without bounds, unwrap on user text, and an unguarded
//! split all panic on inputs the parser's recovery is supposed to
//! survive.

pub struct Cursor {
    pub tokens: Vec<String>,
}

pub fn peek(c: &Cursor, at: usize) -> &str {
    // Bad: the caller-advanced cursor position indexes the token
    // stream unchecked; past the end this panics instead of
    // returning Eof.
    &c.tokens[at]
}

pub fn prev(c: &Cursor, at: usize) -> &str {
    // Bad: underflows at the first token.
    &c.tokens[at - 1]
}

pub fn parse_port(word: &str) -> u16 {
    // Bad: user-typed rule text fed straight to unwrap.
    word.parse().unwrap()
}

pub fn split_cidr(word: &str) -> (&str, &str) {
    // Bad: a `.lsp` line without `/` panics the whole compile.
    let mut parts = word.split('/');
    let addr = parts.next().unwrap();
    let len = parts.next().unwrap();
    (addr, len)
}
