#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]

//! The `livesec-lint` binary: lint the workspace, print findings,
//! exit nonzero when any unannotated violation remains.
//!
//! ```text
//! livesec-lint [--json] [ROOT]
//! ```
//!
//! With no root argument the workspace root is located by walking up
//! from the current directory to the first `Cargo.toml` containing
//! `[workspace]`. `--json` emits one machine-readable line per
//! finding plus a trailing summary object, with stable `LS*` rule
//! codes — `scripts/check.sh` archives this output.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root_arg: Option<String> = None;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "-h" | "--help" => {
                println!("usage: livesec-lint [--json] [ROOT]");
                println!("Determinism & invariant static analysis for the LiveSec workspace.");
                println!("Exits 1 when any unannotated finding remains (see DESIGN.md §13).");
                println!("  --json   one JSON object per finding + a summary line");
                return ExitCode::SUCCESS;
            }
            "--json" => json = true,
            other => root_arg = Some(other.to_string()),
        }
    }
    let root = match root_arg {
        Some(p) => PathBuf::from(p),
        None => {
            let cwd = std::env::current_dir().expect("cwd");
            match livesec_lint::walk::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "livesec-lint: no workspace root found above {}",
                        cwd.display()
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    match livesec_lint::lint_workspace(&root) {
        Ok(findings) => {
            if json {
                for f in &findings {
                    let rel = f.path.strip_prefix(&root).unwrap_or(&f.path);
                    println!(
                        "{{\"code\":\"{}\",\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
                        f.finding.rule.code(),
                        f.finding.rule.name(),
                        json_escape(&rel.display().to_string()),
                        f.finding.line,
                        json_escape(&f.finding.message)
                    );
                }
                println!("{{\"findings\":{}}}", findings.len());
            } else if findings.is_empty() {
                println!("livesec-lint: workspace clean (0 findings)");
            } else {
                for f in &findings {
                    // Report paths relative to the root for stable output.
                    let rel = f.path.strip_prefix(&root).unwrap_or(&f.path);
                    println!(
                        "{}:{}: [{} {}] {}",
                        rel.display(),
                        f.finding.line,
                        f.finding.rule.code(),
                        f.finding.rule.name(),
                        f.finding.message
                    );
                }
                eprintln!("livesec-lint: {} finding(s)", findings.len());
            }
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("livesec-lint: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
