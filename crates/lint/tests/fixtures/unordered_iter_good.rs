// Fixture: iteration shapes the unordered-iter rule must accept —
// ordered collections, in-statement sorts, order-insensitive folds,
// and reasoned allow annotations.
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

struct Books {
    active: BTreeMap<u64, String>,
    members: BTreeSet<u64>,
    index: HashMap<u64, u64>,
    scratch: HashSet<u64>,
}

impl Books {
    // BTreeMap iteration is deterministic.
    fn emit_all(&self, out: &mut Vec<String>) {
        for (_, v) in &self.active {
            out.push(v.clone());
        }
        for m in &self.members {
            out.push(m.to_string());
        }
    }

    // Order-insensitive terminal folds over a HashMap are fine.
    fn totals(&self) -> (usize, u64, bool) {
        let n = self.index.len();
        let total: u64 = self.index.values().copied().sum();
        let any_big = self.index.values().any(|&v| v > 100);
        (n, total, any_big)
    }

    // Collecting through an ordered set restores determinism within
    // the statement.
    fn sorted_keys(&self) -> Vec<u64> {
        self.index.keys().copied().collect::<BTreeSet<u64>>().into_iter().collect()
    }

    // Collecting into an ordered target re-sorts.
    fn as_btree(&self) -> BTreeMap<u64, u64> {
        self.index.iter().map(|(k, v)| (*k, *v)).collect::<BTreeMap<u64, u64>>()
    }

    // A reasoned annotation is the explicit escape hatch.
    fn prune(&mut self) {
        // livesec-lint: allow(unordered-iter, reason = "pure predicate, set-wise result; no side effects escape")
        self.scratch.retain(|v| *v != 0);
    }
}
