//! Inspection engines: the security functions service elements run.
//!
//! Each engine implements [`Inspector`]: given a flow key and a packet
//! payload, it may produce a [`Finding`]. The engines substitute for
//! the paper's ported open-source tools — [`IdsEngine`] for Snort,
//! [`ProtoIdEngine`] for Linux L7-filter — with the same interface
//! contract: scan the first packets of a flow, raise an event report
//! when a result is produced.

use crate::aho::AhoCorasick;
use crate::msg::{ServiceType, Verdict};
use livesec_net::{FlowKey, Ipv4Net, SessionKey};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Severity of a finding, 1 (informational) to 10 (critical).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Severity(pub u8);

impl Severity {
    /// Clamps to the 1..=10 range.
    pub fn new(v: u8) -> Self {
        Severity(v.clamp(1, 10))
    }
}

/// A detection/identification result produced by an engine.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Finding {
    /// The flow the finding concerns.
    pub flow: FlowKey,
    /// What to tell the controller.
    pub verdict: Verdict,
}

/// A packet-inspection engine.
pub trait Inspector: 'static {
    /// The service type this engine provides (for online messages).
    fn service(&self) -> ServiceType;

    /// Inspects one packet of a flow. Returns a finding the SE should
    /// report, or `None`. Engines are responsible for deduplicating
    /// per-flow reports.
    fn inspect(&mut self, flow: &FlowKey, payload: &[u8]) -> Option<Finding>;

    /// Relative per-byte processing cost multiplier (1.0 = baseline).
    /// Protocol identification is cheaper per byte than deep signature
    /// scanning once a flow is classified; engines can refine this.
    fn cost_factor(&self) -> f64 {
        1.0
    }
}

/// One IDS rule: a byte pattern plus metadata and optional header
/// constraints (the subset of a Snort rule header the engines honor).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IdsRule {
    /// Stable rule identifier.
    pub id: u32,
    /// Human-readable rule name, reported in events.
    pub name: String,
    /// The byte pattern that triggers the rule.
    pub pattern: Vec<u8>,
    /// Severity reported with the finding.
    pub severity: Severity,
    /// IP protocol constraint (`None` = any).
    pub proto: Option<u8>,
    /// Source prefix constraint.
    pub src: Option<Ipv4Net>,
    /// Destination prefix constraint.
    pub dst: Option<Ipv4Net>,
    /// Source port constraint.
    pub src_port: Option<u16>,
    /// Destination port constraint.
    pub dst_port: Option<u16>,
}

impl IdsRule {
    /// Creates a content-only rule (no header constraints).
    pub fn new(id: u32, name: &str, pattern: &[u8], severity: Severity) -> Self {
        IdsRule {
            id,
            name: name.to_owned(),
            pattern: pattern.to_vec(),
            severity,
            proto: None,
            src: None,
            dst: None,
            src_port: None,
            dst_port: None,
        }
    }

    /// Whether the rule's header constraints accept `flow`.
    pub fn header_matches(&self, flow: &FlowKey) -> bool {
        self.proto.map(|p| p == flow.nw_proto).unwrap_or(true)
            && self.src.map(|n| n.contains(flow.nw_src)).unwrap_or(true)
            && self.dst.map(|n| n.contains(flow.nw_dst)).unwrap_or(true)
            && self.src_port.map(|p| p == flow.tp_src).unwrap_or(true)
            && self.dst_port.map(|p| p == flow.tp_dst).unwrap_or(true)
    }
}

/// A generic multi-signature scanning engine over payload bytes.
///
/// [`IdsEngine`], [`VirusScanEngine`] and [`ContentInspectionEngine`]
/// are this engine with different rule sets and verdict kinds.
#[derive(Debug, Clone)]
pub struct SignatureEngine {
    service: ServiceType,
    rules: Vec<IdsRule>,
    ac: AhoCorasick,
    reported: HashSet<(SessionKey, u32)>,
    /// Total findings produced (diagnostics).
    pub findings: u64,
    policy_verdict: bool,
}

impl SignatureEngine {
    /// Builds an engine from rules, reporting malicious verdicts.
    pub fn new(service: ServiceType, rules: Vec<IdsRule>) -> Self {
        let ac = AhoCorasick::new(
            &rules
                .iter()
                .map(|r| r.pattern.as_slice())
                .collect::<Vec<_>>(),
        );
        SignatureEngine {
            service,
            rules,
            ac,
            reported: HashSet::new(),
            findings: 0,
            policy_verdict: false,
        }
    }

    /// Reports findings as policy violations instead of attacks
    /// (content-inspection semantics).
    pub fn with_policy_verdicts(mut self) -> Self {
        self.policy_verdict = true;
        self
    }

    /// The rule set.
    pub fn rules(&self) -> &[IdsRule] {
        &self.rules
    }
}

impl Inspector for SignatureEngine {
    fn service(&self) -> ServiceType {
        self.service
    }

    fn inspect(&mut self, flow: &FlowKey, payload: &[u8]) -> Option<Finding> {
        if payload.is_empty() {
            return None;
        }
        // First content hit whose rule also accepts the flow header.
        let hit = self
            .ac
            .find_all(payload)
            .into_iter()
            .find(|h| self.rules[h.pattern].header_matches(flow))?;
        let rule = &self.rules[hit.pattern];
        let dedup_key = (flow.session(), rule.id);
        if !self.reported.insert(dedup_key) {
            return None; // already reported this rule on this session
        }
        self.findings += 1;
        let verdict = if self.policy_verdict {
            Verdict::PolicyViolation {
                policy: rule.name.clone(),
            }
        } else {
            Verdict::Malicious {
                attack: rule.name.clone(),
                severity: rule.severity.0,
            }
        };
        Some(Finding {
            flow: *flow,
            verdict,
        })
    }
}

/// The Snort-substitute intrusion detection engine.
#[derive(Debug, Clone)]
pub struct IdsEngine;

impl IdsEngine {
    /// The default rule set: a small Snort-flavored collection covering
    /// the attack classes the paper's deployment detected (malicious
    /// web access, shellcode, scans, injection).
    pub fn default_rules() -> Vec<IdsRule> {
        let mk = |id, name: &str, pattern: &[u8], sev| {
            IdsRule::new(id, name, pattern, Severity::new(sev))
        };
        vec![
            mk(1001, "WEB-MISC /etc/passwd access", b"/etc/passwd", 8),
            mk(1002, "WEB-IIS cmd.exe access", b"cmd.exe", 8),
            mk(1003, "SHELLCODE x86 NOP sled", &[0x90; 16], 9),
            mk(1004, "SQL injection attempt", b"' OR '1'='1", 7),
            mk(1005, "XSS script injection", b"<script>alert(", 6),
            mk(1006, "EXPLOIT buffer overflow marker", b"\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41\x41", 9),
            mk(1007, "MALWARE beacon marker", b"botnet-c2-checkin", 10),
            mk(1008, "SCAN nmap probe", b"nmap scripting engine", 3),
            mk(1009, "BACKDOOR shell prompt", b"uid=0(root) gid=0(root)", 9),
            mk(1010, "TROJAN download marker", b"MZ\x90\x00\x03\x00\x00\x00\x04", 7),
        ]
    }

    /// Builds the engine with [`IdsEngine::default_rules`].
    pub fn engine() -> SignatureEngine {
        SignatureEngine::new(ServiceType::IntrusionDetection, Self::default_rules())
    }
}

/// The virus-scanning engine: signature scanning with a malware-
/// flavored rule set (including the EICAR test string).
#[derive(Debug, Clone)]
pub struct VirusScanEngine;

impl VirusScanEngine {
    /// Default malware signatures.
    pub fn default_rules() -> Vec<IdsRule> {
        let mk = |id, name: &str, pattern: &[u8], sev| {
            IdsRule::new(id, name, pattern, Severity::new(sev))
        };
        vec![
            mk(
                2001,
                "EICAR test file",
                b"X5O!P%@AP[4\\PZX54(P^)7CC)7}$EICAR",
                10,
            ),
            mk(
                2002,
                "PE dropper stub",
                b"This program cannot be run in DOS mode",
                6,
            ),
            mk(2003, "Macro virus marker", b"AutoOpen\x00Macro", 7),
            mk(
                2004,
                "Ransom note marker",
                b"YOUR FILES HAVE BEEN ENCRYPTED",
                10,
            ),
        ]
    }

    /// Builds the engine.
    pub fn engine() -> SignatureEngine {
        SignatureEngine::new(ServiceType::VirusScan, Self::default_rules())
    }
}

/// The content-inspection engine: DLP-style keyword policies, reported
/// as policy violations.
#[derive(Debug, Clone)]
pub struct ContentInspectionEngine;

impl ContentInspectionEngine {
    /// Default data-loss-prevention keyword set.
    pub fn default_rules() -> Vec<IdsRule> {
        let mk = |id, name: &str, pattern: &[u8]| IdsRule::new(id, name, pattern, Severity::new(5));
        vec![
            mk(3001, "DLP: internal-only marker", b"INTERNAL USE ONLY"),
            mk(3002, "DLP: credential material", b"BEGIN RSA PRIVATE KEY"),
            mk(3003, "DLP: payment card track data", b";?<card-track-2>?"),
        ]
    }

    /// Builds the engine.
    pub fn engine() -> SignatureEngine {
        SignatureEngine::new(ServiceType::ContentInspection, Self::default_rules())
            .with_policy_verdicts()
    }
}

/// The L7-filter-substitute protocol identification engine.
///
/// Classifies flows by payload prefix patterns (and a port fallback),
/// reporting each session's application once.
#[derive(Debug, Clone)]
pub struct ProtoIdEngine {
    identified: HashSet<SessionKey>,
    /// Sessions identified so far (diagnostics).
    pub identifications: u64,
}

impl ProtoIdEngine {
    /// Creates the engine.
    pub fn new() -> Self {
        ProtoIdEngine {
            identified: HashSet::new(),
            identifications: 0,
        }
    }

    /// Classifies a single payload (stateless helper): the application
    /// label, or `None` if unrecognized.
    pub fn classify(payload: &[u8], tp_src: u16, tp_dst: u16) -> Option<&'static str> {
        if payload.starts_with(b"GET ")
            || payload.starts_with(b"POST ")
            || payload.starts_with(b"PUT ")
            || payload.starts_with(b"HEAD ")
            || payload.starts_with(b"HTTP/1.")
        {
            return Some("http");
        }
        if payload.starts_with(b"SSH-2.0") || payload.starts_with(b"SSH-1.") {
            return Some("ssh");
        }
        if payload.first() == Some(&0x13) && payload[1..].starts_with(b"BitTorrent protocol") {
            return Some("bittorrent");
        }
        if payload.starts_with(b"220 ") && payload.windows(4).any(|w| w == b"SMTP") {
            return Some("smtp");
        }
        if payload.starts_with(b"EHLO") || payload.starts_with(b"HELO") {
            return Some("smtp");
        }
        if payload.starts_with(b"\x16\x03") {
            return Some("tls");
        }
        if tp_dst == 53 || tp_src == 53 {
            return Some("dns");
        }
        None
    }
}

impl Default for ProtoIdEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl Inspector for ProtoIdEngine {
    fn service(&self) -> ServiceType {
        ServiceType::ProtocolIdentification
    }

    fn inspect(&mut self, flow: &FlowKey, payload: &[u8]) -> Option<Finding> {
        let session = flow.session();
        if self.identified.contains(&session) {
            return None;
        }
        let app = Self::classify(payload, flow.tp_src, flow.tp_dst)?;
        self.identified.insert(session);
        self.identifications += 1;
        Some(Finding {
            flow: *flow,
            verdict: Verdict::Application {
                app: app.to_owned(),
            },
        })
    }

    fn cost_factor(&self) -> f64 {
        // Pattern checks on flow heads only: cheaper than full
        // signature scanning, reflected in the paper's lower aggregate
        // (2 Gbps vs 8 Gbps for IDS at equal VM counts is a capacity
        // configuration; see DESIGN.md E3).
        1.0
    }
}

/// Firewall action for a matched rule.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum FwAction {
    /// Let the flow pass.
    Allow,
    /// Report the flow for blocking.
    Deny,
}

/// One firewall rule over flow-key fields; `None` = any.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FwRule {
    /// Rule name, reported on deny.
    pub name: String,
    /// Source prefix constraint.
    pub src: Option<Ipv4Net>,
    /// Destination prefix constraint.
    pub dst: Option<Ipv4Net>,
    /// IP protocol constraint.
    pub proto: Option<u8>,
    /// Destination port constraint.
    pub dst_port: Option<u16>,
    /// What to do on match.
    pub action: FwAction,
}

impl FwRule {
    /// A deny rule matching anything (useful as a default-deny tail).
    pub fn deny_all(name: &str) -> Self {
        FwRule {
            name: name.to_owned(),
            src: None,
            dst: None,
            proto: None,
            dst_port: None,
            action: FwAction::Deny,
        }
    }

    fn matches(&self, flow: &FlowKey) -> bool {
        self.src.map(|n| n.contains(flow.nw_src)).unwrap_or(true)
            && self.dst.map(|n| n.contains(flow.nw_dst)).unwrap_or(true)
            && self.proto.map(|p| p == flow.nw_proto).unwrap_or(true)
            && self.dst_port.map(|p| p == flow.tp_dst).unwrap_or(true)
    }
}

/// A stateless first-match firewall engine.
#[derive(Debug, Clone)]
pub struct FirewallEngine {
    rules: Vec<FwRule>,
    default_action: FwAction,
    reported: HashSet<SessionKey>,
    /// Flows denied so far (diagnostics).
    pub denials: u64,
}

impl FirewallEngine {
    /// Creates a firewall with the given rule chain and default action.
    pub fn new(rules: Vec<FwRule>, default_action: FwAction) -> Self {
        FirewallEngine {
            rules,
            default_action,
            reported: HashSet::new(),
            denials: 0,
        }
    }

    /// Evaluates a flow (stateless): the matched action.
    pub fn evaluate(&self, flow: &FlowKey) -> (FwAction, Option<&str>) {
        for rule in &self.rules {
            if rule.matches(flow) {
                return (rule.action, Some(&rule.name));
            }
        }
        (self.default_action, None)
    }
}

impl Inspector for FirewallEngine {
    fn service(&self) -> ServiceType {
        ServiceType::Firewall
    }

    fn inspect(&mut self, flow: &FlowKey, _payload: &[u8]) -> Option<Finding> {
        let (action, name) = self.evaluate(flow);
        if action == FwAction::Allow {
            return None;
        }
        let policy = name.unwrap_or("default-deny").to_owned();
        if !self.reported.insert(flow.session()) {
            return None;
        }
        self.denials += 1;
        Some(Finding {
            flow: *flow,
            verdict: Verdict::PolicyViolation { policy },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use livesec_net::MacAddr;

    fn flow(tp_dst: u16) -> FlowKey {
        FlowKey {
            vlan: None,
            dl_src: MacAddr::from_u64(1),
            dl_dst: MacAddr::from_u64(2),
            dl_type: 0x0800,
            nw_src: "10.0.0.1".parse().unwrap(),
            nw_dst: "10.0.0.2".parse().unwrap(),
            nw_proto: 6,
            tp_src: 40000,
            tp_dst,
        }
    }

    #[test]
    fn ids_detects_and_dedups() {
        let mut ids = IdsEngine::engine();
        let f = flow(80);
        let hit = ids.inspect(&f, b"GET /../../etc/passwd HTTP/1.1");
        match hit {
            Some(Finding {
                verdict: Verdict::Malicious { attack, severity },
                ..
            }) => {
                assert!(attack.contains("/etc/passwd"));
                assert_eq!(severity, 8);
            }
            other => panic!("expected malicious finding, got {other:?}"),
        }
        // Same rule, same session: suppressed.
        assert!(ids.inspect(&f, b"/etc/passwd again").is_none());
        // Reverse direction is the same session: still suppressed.
        assert!(ids.inspect(&f.reversed(), b"/etc/passwd").is_none());
        // Different rule on same session: reported.
        assert!(ids.inspect(&f, b"cmd.exe").is_some());
        assert_eq!(ids.findings, 2);
    }

    #[test]
    fn ids_clean_traffic_silent() {
        let mut ids = IdsEngine::engine();
        assert!(ids
            .inspect(&flow(80), b"GET /index.html HTTP/1.1\r\nHost: x\r\n")
            .is_none());
        assert!(ids.inspect(&flow(80), b"").is_none());
    }

    #[test]
    fn nop_sled_detected() {
        let mut ids = IdsEngine::engine();
        let payload = vec![0x90u8; 64];
        let hit = ids.inspect(&flow(4444), &payload).expect("sled found");
        match hit.verdict {
            Verdict::Malicious { severity, .. } => assert_eq!(severity, 9),
            _ => panic!("wrong verdict"),
        }
    }

    #[test]
    fn protoid_classifies_common_apps() {
        assert_eq!(
            ProtoIdEngine::classify(b"GET / HTTP/1.1\r\n", 5000, 80),
            Some("http")
        );
        assert_eq!(
            ProtoIdEngine::classify(b"HTTP/1.1 200 OK\r\n", 80, 5000),
            Some("http")
        );
        assert_eq!(
            ProtoIdEngine::classify(b"SSH-2.0-OpenSSH_5.8", 22, 5000),
            Some("ssh")
        );
        let mut bt = vec![0x13u8];
        bt.extend_from_slice(b"BitTorrent protocol");
        assert_eq!(ProtoIdEngine::classify(&bt, 6881, 6881), Some("bittorrent"));
        assert_eq!(
            ProtoIdEngine::classify(b"EHLO mail", 25, 5000),
            Some("smtp")
        );
        assert_eq!(
            ProtoIdEngine::classify(b"\x16\x03\x01", 443, 5000),
            Some("tls")
        );
        assert_eq!(ProtoIdEngine::classify(b"anything", 5000, 53), Some("dns"));
        assert_eq!(ProtoIdEngine::classify(b"???", 5000, 5001), None);
    }

    #[test]
    fn protoid_reports_once_per_session() {
        let mut engine = ProtoIdEngine::new();
        let f = flow(80);
        let first = engine.inspect(&f, b"GET / HTTP/1.1");
        assert!(matches!(
            first,
            Some(Finding {
                verdict: Verdict::Application { .. },
                ..
            })
        ));
        assert!(engine.inspect(&f, b"GET /2 HTTP/1.1").is_none());
        assert!(engine.inspect(&f.reversed(), b"HTTP/1.1 200").is_none());
        assert_eq!(engine.identifications, 1);
    }

    #[test]
    fn virus_scan_finds_eicar() {
        let mut av = VirusScanEngine::engine();
        let hit = av
            .inspect(&flow(80), b"X5O!P%@AP[4\\PZX54(P^)7CC)7}$EICAR-STANDARD")
            .expect("EICAR");
        assert!(matches!(
            hit.verdict,
            Verdict::Malicious { severity: 10, .. }
        ));
    }

    #[test]
    fn content_inspection_reports_policy() {
        let mut ci = ContentInspectionEngine::engine();
        let hit = ci
            .inspect(&flow(80), b"...BEGIN RSA PRIVATE KEY...")
            .expect("DLP hit");
        assert!(matches!(hit.verdict, Verdict::PolicyViolation { .. }));
    }

    #[test]
    fn firewall_first_match_wins() {
        let fw = FirewallEngine::new(
            vec![
                FwRule {
                    name: "allow-web".into(),
                    src: None,
                    dst: None,
                    proto: Some(6),
                    dst_port: Some(80),
                    action: FwAction::Allow,
                },
                FwRule::deny_all("default-deny"),
            ],
            FwAction::Allow,
        );
        assert_eq!(fw.evaluate(&flow(80)).0, FwAction::Allow);
        assert_eq!(fw.evaluate(&flow(23)).0, FwAction::Deny);
    }

    #[test]
    fn firewall_prefix_rules() {
        let fw = FirewallEngine::new(
            vec![FwRule {
                name: "block-lab-subnet".into(),
                src: Some("10.0.0.0/24".parse().unwrap()),
                dst: None,
                proto: None,
                dst_port: None,
                action: FwAction::Deny,
            }],
            FwAction::Allow,
        );
        assert_eq!(fw.evaluate(&flow(80)).0, FwAction::Deny);
        let mut external = flow(80);
        external.nw_src = "192.168.0.1".parse().unwrap();
        assert_eq!(fw.evaluate(&external).0, FwAction::Allow);
    }

    #[test]
    fn firewall_reports_deny_once() {
        let mut fw = FirewallEngine::new(vec![FwRule::deny_all("deny")], FwAction::Allow);
        assert!(fw.inspect(&flow(80), b"").is_some());
        assert!(fw.inspect(&flow(80), b"").is_none());
        assert_eq!(fw.denials, 1);
    }
}
