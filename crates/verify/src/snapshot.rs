//! The verifier's input: a point-in-time copy of every switch's flow
//! table plus the controller state the invariants are judged against.
//!
//! A [`Snapshot`] is plain data — taking one borrows nothing, so the
//! audit can run while the simulation is paused between events, or on
//! state deserialized from somewhere else entirely.

use livesec::deploy::Campus;
use livesec_net::{FlowKey, MacAddr};
use livesec_openflow::{FlowEntry, Match};
use livesec_services::ServiceType;
use livesec_switch::AsSwitch;
use std::net::Ipv4Addr;

/// One switch's contribution: identity, topology role, and the flow
/// table in install order (the order that decides equal-priority
/// ties).
#[derive(Clone, Debug, Default)]
pub struct SwitchState {
    /// Datapath id.
    pub dpid: u64,
    /// The legacy-fabric-facing port, when discovered.
    pub uplink: Option<u32>,
    /// Physical port count (ports are numbered from 1).
    pub n_ports: u32,
    /// Live flow entries, oldest installation first.
    pub entries: Vec<FlowEntry>,
    /// Whether the switch is in a degraded (controller-less) mode.
    pub degraded: bool,
}

/// A located endpoint (user, gateway, or service element).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HostInfo {
    /// The endpoint's MAC.
    pub mac: MacAddr,
    /// The endpoint's IP.
    pub ip: Ipv4Addr,
    /// The AS switch it attaches to.
    pub dpid: u64,
    /// The port on that switch.
    pub port: u32,
}

/// One active flow as the controller records it.
#[derive(Clone, Debug)]
pub struct FlowView {
    /// The flow's key.
    pub key: FlowKey,
    /// The service chain policy assigned it (empty = plain allow).
    pub chain: Vec<ServiceType>,
    /// Whether an attack verdict blocked it.
    pub blocked: bool,
}

/// One control-plane shard's contribution to a merged snapshot:
/// identity, liveness, and the switches the consistent-hash ring
/// currently assigns to it.
#[derive(Clone, Debug)]
pub struct ShardView {
    /// The shard id.
    pub id: u32,
    /// Whether the shard is alive (dead shards own nothing).
    pub alive: bool,
    /// Dpids of the registered switches this shard owns, ascending.
    pub owned: Vec<u64>,
}

/// Everything the invariants are judged against.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// All switches, sorted by dpid.
    pub switches: Vec<SwitchState>,
    /// All located endpoints (includes service elements).
    pub hosts: Vec<HostInfo>,
    /// Service elements by MAC, with their advertised type.
    pub elements: Vec<(MacAddr, ServiceType)>,
    /// The standing block registry: `(dpid, matcher)` drop state.
    pub blocks: Vec<(u64, Match)>,
    /// Active flow records.
    pub flows: Vec<FlowView>,
    /// Installed fast-passes: key plus the epochs they were compiled
    /// under.
    pub fastpasses: Vec<(FlowKey, u64, u64)>,
    /// The controller's current `(policy_epoch, topology_epoch)`.
    pub epochs: (u64, u64),
    /// On a sharded campus, the per-shard views this merged snapshot
    /// was assembled from (the shared NIB means the switch tables,
    /// hosts and flows above are already the union). Empty when the
    /// controller is unsharded.
    pub shards: Vec<ShardView>,
    /// Dpids the accountability layer has quarantined: deviating
    /// switches evicted from the control plane whose tables were
    /// wiped. They still exist in the dataplane (and so appear in
    /// `switches`), but no controller state may reference them.
    pub quarantined: Vec<u64>,
}

impl Snapshot {
    /// Captures a snapshot of a running [`Campus`]: each AS switch's
    /// flow table plus the controller's policy-relevant state.
    pub fn of_campus(c: &Campus) -> Snapshot {
        let now = c.world.kernel().now();
        let ctl = c.controller();
        let nib = ctl.nib_snapshot(now);

        let mut switches: Vec<SwitchState> = c
            .as_switches
            .iter()
            .map(|&node| {
                let sw = c.world.node::<AsSwitch>(node);
                let dpid = sw.datapath_id();
                SwitchState {
                    dpid,
                    uplink: ctl.topology().uplink_of(dpid),
                    n_ports: sw.n_ports(),
                    entries: sw.table_snapshot(),
                    degraded: sw.is_degraded(),
                }
            })
            .collect();
        switches.sort_by_key(|s| s.dpid);

        let hosts = nib
            .hosts
            .iter()
            .map(|&(mac, ip, dpid, port)| HostInfo {
                mac,
                ip,
                dpid,
                port,
            })
            .collect();
        let elements = nib.elements.iter().map(|e| (e.mac, e.service)).collect();
        let flows = ctl
            .active_records()
            .into_iter()
            .map(|(key, chain, blocked)| FlowView {
                key,
                chain,
                blocked,
            })
            .collect();

        let shards = c
            .shard_plane()
            .map(|plane| {
                plane
                    .shard_stats()
                    .into_iter()
                    .map(|s| ShardView {
                        id: s.id,
                        alive: s.alive,
                        owned: s.owned,
                    })
                    .collect()
            })
            .unwrap_or_default();

        Snapshot {
            switches,
            hosts,
            elements,
            blocks: ctl.standing_blocks(),
            flows,
            fastpasses: ctl.fastpass_records(),
            epochs: ctl.epochs(),
            shards,
            quarantined: ctl.quarantined(),
        }
    }

    /// The switch state for a dpid.
    pub fn switch(&self, dpid: u64) -> Option<&SwitchState> {
        self.switches.iter().find(|s| s.dpid == dpid)
    }

    /// The attachment point of a MAC, if located.
    pub fn host_of(&self, mac: MacAddr) -> Option<&HostInfo> {
        self.hosts.iter().find(|h| h.mac == mac)
    }

    /// The service type of an element MAC, if it is one.
    pub fn element_type(&self, mac: MacAddr) -> Option<ServiceType> {
        self.elements
            .iter()
            .find(|(m, _)| *m == mac)
            .map(|(_, t)| *t)
    }

    /// Total installed entries across all switches.
    pub fn entry_count(&self) -> usize {
        self.switches.iter().map(|s| s.entries.len()).sum()
    }
}
