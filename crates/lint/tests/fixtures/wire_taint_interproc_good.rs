//! GOOD twin of `wire_taint_interproc_bad.rs`: the wire length is
//! clamped against the reader's remaining bytes *before* it enters
//! the helper chain, so no tainted value reaches the allocation.

fn alloc_frames(n: usize) -> Vec<u64> {
    Vec::with_capacity(n)
}

fn deep(n: usize) -> Vec<u64> {
    alloc_frames(n)
}

fn decode(r: &mut Reader) -> Result<Vec<u64>, Error> {
    let n = (r.u32()? as usize).min(r.remaining());
    Ok(deep(n))
}
