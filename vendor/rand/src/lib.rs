//! Offline stand-in for the `rand` crate.
//!
//! Only the surface the simulator uses is provided: a seedable
//! deterministic generator (`rngs::StdRng` + `SeedableRng`) and the
//! `Rng` extension methods `gen_range`, `fill`, `gen`, and `gen_bool`.
//! The stream differs from upstream `rand`'s ChaCha-based `StdRng`,
//! which is fine: the simulator only needs the same seed to reproduce
//! the same run, not bit-compatibility with another implementation.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of 64 random bits at a time.
pub trait RngCore {
    /// Next 64 pseudo-random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 pseudo-random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }

    /// A random value of an implementing type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

macro_rules! uint_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

uint_range_impls!(u8, u16, u32, u64, usize);

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range_impls!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! standard_uint_impls {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_uint_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Named RNG types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator (xoshiro256++ seeded via SplitMix64).
    ///
    /// Statistically strong enough for simulation workloads and fully
    /// reproducible from its seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = r.gen_range(0..64);
            assert!(x < 64);
            let y: u8 = r.gen_range(1..=255);
            assert!(y >= 1);
            let z: i32 = r.gen_range(-5..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn fill_covers_tail() {
        let mut r = StdRng::seed_from_u64(7);
        let mut buf = [0u8; 13];
        r.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
