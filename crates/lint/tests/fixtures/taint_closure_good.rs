//! GOOD twin of `taint_closure_bad.rs`: every wire length is clamped
//! against the reader's remaining bytes *before* it enters the chain
//! or closure, so nothing tainted reaches a sink.

fn via_map(r: &mut Reader) -> Option<Vec<u8>> {
    let n = (r.u32()? as usize).min(r.remaining());
    Some(n).map(|k| Vec::with_capacity(k))
}

fn via_and_then(r: &mut Reader) -> Option<usize> {
    let n = (r.u16()? as usize).min(64);
    Some(n).and_then(|k| Some(k * 8))
}

fn via_capture(r: &mut Reader) -> Vec<u8> {
    let n = (r.u32()? as usize).min(r.remaining());
    let make = || Vec::with_capacity(n);
    make()
}
