//! Simulated time: nanosecond instants and durations.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A duration of simulated time, in nanoseconds.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// Zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `n` nanoseconds.
    pub const fn from_nanos(n: u64) -> Self {
        SimDuration(n)
    }

    /// Creates a duration of `n` microseconds.
    pub const fn from_micros(n: u64) -> Self {
        SimDuration(n * 1_000)
    }

    /// Creates a duration of `n` milliseconds.
    pub const fn from_millis(n: u64) -> Self {
        SimDuration(n * 1_000_000)
    }

    /// Creates a duration of `n` seconds.
    pub const fn from_secs(n: u64) -> Self {
        SimDuration(n * 1_000_000_000)
    }

    /// The whole number of nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in (fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The duration in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The duration in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// The time to transmit `bytes` at `rate_bps` bits per second,
    /// rounded up to the next nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `rate_bps` is zero.
    pub fn transmission(bytes: usize, rate_bps: u64) -> Self {
        assert!(rate_bps > 0, "link rate must be positive");
        let bits = bytes as u128 * 8;
        let nanos = (bits * 1_000_000_000).div_ceil(rate_bps as u128);
        SimDuration(nanos as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// An instant of simulated time, in nanoseconds since simulation start.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `n` nanoseconds after the epoch.
    pub const fn from_nanos(n: u64) -> Self {
        SimTime(n)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Duration since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating duration since `earlier` (zero if `earlier` is later).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.as_nanos())
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_nanos();
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale() {
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_nanos(4).as_nanos(), 4);
    }

    #[test]
    fn transmission_time_gigabit() {
        // 1250 bytes at 1 Gbps = 10 microseconds.
        let t = SimDuration::transmission(1250, 1_000_000_000);
        assert_eq!(t, SimDuration::from_micros(10));
    }

    #[test]
    fn transmission_rounds_up() {
        // 1 byte at 3 bps = 8/3 s, must round up.
        let t = SimDuration::transmission(1, 3);
        assert_eq!(t.as_nanos(), 2_666_666_667);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn transmission_zero_rate_panics() {
        let _ = SimDuration::transmission(1, 0);
    }

    #[test]
    fn instant_arithmetic() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_millis(5);
        assert_eq!(t1.since(t0), SimDuration::from_millis(5));
        assert_eq!(t0.saturating_since(t1), SimDuration::ZERO);
        assert_eq!(t1.max(t0), t1);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }
}
