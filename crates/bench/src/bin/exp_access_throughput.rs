//! E1 — regenerates the §V-B.1 access-throughput numbers.

use livesec_bench::access::{self, Access};
use livesec_bench::{print_header, print_rate_row};
use livesec_sim::SimDuration;

fn main() {
    print_header(
        "E1",
        "access throughput (paper: OvS ~100 Mbps, Pantou ~43 Mbps)",
    );
    let window = SimDuration::from_secs(1);
    for (label, kind, paper) in [
        ("wired user behind OvS", Access::WiredOvs, 100.0e6),
        ("wireless user behind Pantou AP", Access::PantouWifi, 43.0e6),
    ] {
        let r = access::run(kind, 1, window);
        print_rate_row(label, r.goodput_bps);
        println!(
            "{:<44} {:>13.1}%",
            "  vs paper",
            100.0 * r.goodput_bps / paper
        );
    }
}
