//! The determinism rules and the annotation grammar.
//!
//! Every rule guards the simulator's core property: **byte-identical
//! same-seed histories**. See `DESIGN.md` §6 for the rationale and
//! the full allow-annotation grammar.

use crate::lexer::{lex, Comment, Token, TokenKind};

/// The rules `livesec-lint` enforces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Iteration over a `HashMap`/`HashSet` binding without an
    /// in-statement ordering step (sort / collect into an ordered or
    /// unordered collection / order-insensitive terminal fold).
    UnorderedIter,
    /// Wall-clock time source (`Instant`, `SystemTime`): virtual
    /// [`SimTime`] is the only clock the simulator may observe.
    WallClock,
    /// Unseeded or thread-local randomness (`thread_rng`,
    /// `from_entropy`, `OsRng`, `rand::random`).
    UnseededRng,
    /// Float accumulation (`+=` with a float operand, or
    /// `.sum::<f32/f64>()`): metrics must aggregate in integers and
    /// convert to float only at the final division.
    FloatAccum,
    /// `.unwrap()` / `.expect()` outside `#[cfg(test)]` code in the
    /// production crates (`core`, `switch`, `conntrack`): one panic
    /// takes down the whole controller or dataplane. Opt-in via
    /// [`LintOptions::unwrap_in_prod`]; [`crate::lint_files`] enables
    /// it for production-crate paths.
    UnwrapInProd,
    /// A `livesec-lint:` comment that does not parse — unknown rule
    /// name, missing or empty `reason`, or malformed syntax.
    BadAnnotation,
    /// An allow annotation that suppressed nothing; stale allows
    /// must be deleted so the escape hatch stays auditable.
    UnusedAllow,
}

impl Rule {
    /// The kebab-case name used in reports and allow annotations.
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnorderedIter => "unordered-iter",
            Rule::WallClock => "wall-clock",
            Rule::UnseededRng => "unseeded-rng",
            Rule::FloatAccum => "float-accum",
            Rule::UnwrapInProd => "unwrap-in-prod",
            Rule::BadAnnotation => "bad-annotation",
            Rule::UnusedAllow => "unused-allow",
        }
    }

    /// Parses an annotation rule name; only suppressible rules are
    /// legal targets of `allow(...)`.
    fn from_allow_name(s: &str) -> Option<Rule> {
        match s {
            "unordered-iter" => Some(Rule::UnorderedIter),
            "wall-clock" => Some(Rule::WallClock),
            "unseeded-rng" => Some(Rule::UnseededRng),
            "float-accum" => Some(Rule::FloatAccum),
            "unwrap-in-prod" => Some(Rule::UnwrapInProd),
            _ => None,
        }
    }
}

/// Per-file switches for rules that only apply to some of the
/// workspace (today just [`Rule::UnwrapInProd`], which is scoped to
/// the production crates). [`lint_source`] uses the default — every
/// optional rule off — so generic callers keep the old behavior.
#[derive(Clone, Copy, Debug, Default)]
pub struct LintOptions {
    /// Enable the [`Rule::UnwrapInProd`] check.
    pub unwrap_in_prod: bool,
}

/// One violation in one file.
#[derive(Clone, Debug)]
pub struct Finding {
    /// 1-based source line.
    pub line: u32,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable description with a remediation hint.
    pub message: String,
}

/// A parsed `// livesec-lint: allow(rule, reason = "...")` comment.
#[derive(Debug)]
struct Allow {
    rule: Rule,
    /// First line of code this annotation covers.
    target_line: u32,
    /// Last covered line: the same line for a trailing comment; a few
    /// lines of slack for own-line comments, so rustfmt-wrapped
    /// statements stay covered.
    target_end: u32,
    /// Where the annotation itself lives (for unused-allow reports).
    ann_line: u32,
    used: bool,
}

/// Methods whose call on an unordered collection exposes iteration
/// order to the caller.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
    "extract_if",
];

/// Sort-family calls: their presence downstream in the same statement
/// restores a deterministic order.
const SORTERS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "sorted",
];

/// Order-insensitive terminal folds: the statement's value does not
/// depend on iteration order. (`min`/`max` return the extreme *value*
/// — ties are equal values — unlike `min_by_key`/`max_by_key`, which
/// break ties by position and stay flagged.)
const ORDER_FREE_TERMINALS: &[&str] = &[
    "count", "len", "is_empty", "sum", "all", "any", "contains", "min", "max",
];

/// Collections whose `collect` target makes order irrelevant again:
/// ordered ones re-sort, unordered ones never leaked order.
const ORDER_SAFE_COLLECTS: &[&str] = &["BTreeMap", "BTreeSet", "BinaryHeap", "HashMap", "HashSet"];

/// Wall-clock type names.
const WALL_CLOCK_IDENTS: &[&str] = &["Instant", "SystemTime"];

/// Unseeded-randomness identifiers.
const UNSEEDED_RNG_IDENTS: &[&str] = &["thread_rng", "ThreadRng", "from_entropy", "OsRng"];

/// Lints one file's source text with the default options (optional
/// rules off) and returns all unsuppressed findings, sorted by line
/// then rule.
pub fn lint_source(src: &str) -> Vec<Finding> {
    lint_source_with(src, &LintOptions::default())
}

/// Lints one file's source text and returns all unsuppressed
/// findings, sorted by line then rule.
pub fn lint_source_with(src: &str, opts: &LintOptions) -> Vec<Finding> {
    let lexed = lex(src);
    let toks = &lexed.tokens;

    let mut findings = Vec::new();
    let unordered = collect_unordered_bindings(toks);

    check_unordered_iteration(toks, &unordered, &mut findings);
    check_wall_clock(toks, &mut findings);
    check_unseeded_rng(toks, &mut findings);
    check_float_accum(toks, &mut findings);
    if opts.unwrap_in_prod {
        check_unwrap_in_prod(toks, &mut findings);
    }

    // Findings can be produced by more than one detector for the same
    // site (e.g. a `for` over `map.keys()`); dedupe per (line, rule).
    findings.sort_by_key(|f| (f.line, f.rule));
    findings.dedup_by_key(|f| (f.line, f.rule));

    let (mut allows, mut bad) = parse_annotations(&lexed.comments, toks);
    findings.retain(|f| {
        for a in allows.iter_mut() {
            if a.rule == f.rule && f.line >= a.target_line && f.line <= a.target_end {
                a.used = true;
                return false;
            }
        }
        true
    });
    for a in &allows {
        if !a.used {
            findings.push(Finding {
                line: a.ann_line,
                rule: Rule::UnusedAllow,
                message: format!(
                    "allow({}) suppresses nothing on line {}; delete the stale annotation",
                    a.rule.name(),
                    a.target_line
                ),
            });
        }
    }
    findings.append(&mut bad);
    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

/// Parses every `livesec-lint:` comment. Returns well-formed allows
/// plus findings for malformed ones.
fn parse_annotations(comments: &[Comment], toks: &[Token]) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        // Doc comments (`///`, `//!`, `/**`, `/*!`) are prose — they
        // may *describe* the grammar without being annotations.
        if c.text.starts_with("///")
            || c.text.starts_with("//!")
            || c.text.starts_with("/**")
            || c.text.starts_with("/*!")
        {
            continue;
        }
        let Some(pos) = c.text.find("livesec-lint") else {
            continue;
        };
        let rest = &c.text[pos + "livesec-lint".len()..];
        match parse_allow_body(rest) {
            Ok(rule) => {
                // A trailing comment covers its own line; a comment on
                // its own line covers the statement starting on the
                // next code line (with slack for wrapped statements).
                let (target_line, target_end) = if c.own_line {
                    let next = toks
                        .iter()
                        .map(|t| t.line)
                        .find(|&l| l > c.line)
                        .unwrap_or(c.line + 1);
                    (next, next + 3)
                } else {
                    (c.line, c.line)
                };
                allows.push(Allow {
                    rule,
                    target_line,
                    target_end,
                    ann_line: c.line,
                    used: false,
                });
            }
            Err(why) => bad.push(Finding {
                line: c.line,
                rule: Rule::BadAnnotation,
                message: format!(
                    "malformed livesec-lint annotation ({why}); expected \
                     `// livesec-lint: allow(<rule>, reason = \"...\")`"
                ),
            }),
        }
    }
    (allows, bad)
}

/// Parses the `: allow(rule, reason = "...")` tail of an annotation.
fn parse_allow_body(rest: &str) -> Result<Rule, String> {
    let rest = rest.trim_start();
    let rest = rest
        .strip_prefix(':')
        .ok_or_else(|| "missing `:` after livesec-lint".to_string())?
        .trim_start();
    let rest = rest
        .strip_prefix("allow")
        .ok_or_else(|| "expected `allow`".to_string())?
        .trim_start();
    let rest = rest
        .strip_prefix('(')
        .ok_or_else(|| "expected `(` after allow".to_string())?;
    let close = rest.rfind(')').ok_or_else(|| "missing `)`".to_string())?;
    let body = &rest[..close];
    let (rule_name, tail) = body
        .split_once(',')
        .ok_or_else(|| "missing `, reason = ...`".to_string())?;
    let rule = Rule::from_allow_name(rule_name.trim())
        .ok_or_else(|| format!("unknown rule `{}`", rule_name.trim()))?;
    let tail = tail.trim_start();
    let tail = tail
        .strip_prefix("reason")
        .ok_or_else(|| "expected `reason`".to_string())?
        .trim_start();
    let tail = tail
        .strip_prefix('=')
        .ok_or_else(|| "expected `=` after reason".to_string())?
        .trim_start();
    let quoted = tail
        .strip_prefix('"')
        .and_then(|t| t.rfind('"').map(|e| &t[..e]))
        .ok_or_else(|| "reason must be a quoted string".to_string())?;
    if quoted.trim().is_empty() {
        return Err("reason must not be empty".to_string());
    }
    Ok(rule)
}

/// Collects identifiers bound to `HashMap`/`HashSet` in this file:
/// struct fields, typed params/fields (`name: [&][mut] [path::]Hash*`)
/// and `let` bindings whose initializer mentions `Hash*`.
fn collect_unordered_bindings(toks: &[Token]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();

    // Pattern 1: `name : ... HashMap/HashSet` — walk back from the
    // type name over path segments, wrappers, `&`, `mut`, lifetimes
    // and `<` until a *single* colon, then take the ident before it.
    for (k, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        let mut j = k;
        let mut steps = 0;
        while j > 0 && steps < 16 {
            j -= 1;
            steps += 1;
            let p = &toks[j];
            match p.kind {
                TokenKind::Ident | TokenKind::Lifetime => {}
                TokenKind::Punct if p.text == "<" || p.text == "&" => {}
                TokenKind::Punct if p.text == ":" => {
                    // `::` path separator? (adjacent colon on either side)
                    let double =
                        (j > 0 && toks[j - 1].text == ":" && toks[j - 1].start + 1 == p.start)
                            || toks
                                .get(j + 1)
                                .is_some_and(|n| n.text == ":" && p.start + 1 == n.start);
                    if double {
                        continue;
                    }
                    if j > 0 && toks[j - 1].kind == TokenKind::Ident {
                        let name = toks[j - 1].text.clone();
                        if !is_keyword(&name) && !names.contains(&name) {
                            names.push(name);
                        }
                    }
                    break;
                }
                _ => break,
            }
        }
    }

    // Pattern 2: `let [mut] name = ... HashMap/HashSet ... ;`
    let mut k = 0;
    while k < toks.len() {
        if toks[k].kind == TokenKind::Ident && toks[k].text == "let" {
            let mut j = k + 1;
            if toks.get(j).is_some_and(|t| t.text == "mut") {
                j += 1;
            }
            if let Some(name_tok) = toks.get(j) {
                if name_tok.kind == TokenKind::Ident && !is_keyword(&name_tok.text) {
                    // Scan the initializer to the statement-ending `;`.
                    let mut depth = 0i32;
                    let mut m = j + 1;
                    let mut saw_unordered = false;
                    while let Some(t) = toks.get(m) {
                        match t.text.as_str() {
                            "(" | "[" | "{" => depth += 1,
                            ")" | "]" | "}" => depth -= 1,
                            ";" if depth <= 0 => break,
                            "HashMap" | "HashSet" if t.kind == TokenKind::Ident => {
                                saw_unordered = true;
                            }
                            _ => {}
                        }
                        m += 1;
                    }
                    if saw_unordered && !names.contains(&name_tok.text) {
                        names.push(name_tok.text.clone());
                    }
                    k = m;
                    continue;
                }
            }
        }
        k += 1;
    }
    names
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "let"
            | "mut"
            | "fn"
            | "pub"
            | "if"
            | "else"
            | "for"
            | "in"
            | "while"
            | "loop"
            | "match"
            | "return"
            | "self"
            | "Self"
            | "impl"
            | "struct"
            | "enum"
            | "trait"
            | "type"
            | "use"
            | "mod"
            | "where"
            | "move"
            | "ref"
            | "const"
            | "static"
            | "crate"
            | "super"
            | "dyn"
            | "as"
            | "break"
            | "continue"
    )
}

/// Flags order-escaping iteration over known unordered bindings.
fn check_unordered_iteration(toks: &[Token], unordered: &[String], findings: &mut Vec<Finding>) {
    // Detector A: `name.iter()` / `.keys()` / `.drain()` / ... chains.
    for (k, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || !unordered.iter().any(|n| n == &t.text) {
            continue;
        }
        let Some(dot) = toks.get(k + 1) else { continue };
        let Some(method) = toks.get(k + 2) else {
            continue;
        };
        let Some(paren) = toks.get(k + 3) else {
            continue;
        };
        if dot.text != "."
            || method.kind != TokenKind::Ident
            || !ITER_METHODS.contains(&method.text.as_str())
            || paren.text != "("
        {
            continue;
        }
        if statement_restores_order(toks, k + 3) {
            continue;
        }
        findings.push(Finding {
            line: t.line,
            rule: Rule::UnorderedIter,
            message: format!(
                "iteration order of `{}.{}()` is nondeterministic; use a BTree \
                 collection, sort in this statement, or annotate with a reason",
                t.text, method.text
            ),
        });
    }

    // Detector B: `for pat in [&[mut]] [path.]name {` with no call in
    // the iterated expression (calls are handled by detector A).
    let mut k = 0;
    while k < toks.len() {
        if !(toks[k].kind == TokenKind::Ident && toks[k].text == "for") {
            k += 1;
            continue;
        }
        // Find `in` at depth 0 (tuple patterns may contain parens).
        let mut depth = 0i32;
        let mut j = k + 1;
        let mut in_at = None;
        while let Some(t) = toks.get(j) {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" | ";" => break, // not a for-loop header after all
                "in" if depth == 0 && t.kind == TokenKind::Ident => {
                    in_at = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
            if j > k + 40 {
                break;
            }
        }
        let Some(in_at) = in_at else {
            k += 1;
            continue;
        };
        // Iterated expression: tokens until the body `{` at depth 0.
        depth = 0;
        let mut m = in_at + 1;
        let mut expr_end = None;
        while let Some(t) = toks.get(m) {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    expr_end = Some(m);
                    break;
                }
                _ => {}
            }
            m += 1;
            if m > in_at + 60 {
                break;
            }
        }
        let Some(expr_end) = expr_end else {
            k = in_at + 1;
            continue;
        };
        let expr = &toks[in_at + 1..expr_end];
        let has_call = expr.iter().any(|t| t.text == "(");
        let last_ident = expr.iter().rev().find(|t| t.kind == TokenKind::Ident);
        if !has_call {
            if let Some(li) = last_ident {
                if unordered.iter().any(|n| n == &li.text) {
                    findings.push(Finding {
                        line: li.line,
                        rule: Rule::UnorderedIter,
                        message: format!(
                            "`for` over `{}` observes nondeterministic iteration order; \
                             use a BTree collection or annotate with a reason",
                            li.text
                        ),
                    });
                }
            }
        }
        k = expr_end + 1;
    }
}

/// True when the statement containing the iteration (scanning forward
/// from `from`, the opening paren of the iter call) re-establishes a
/// deterministic order: a sort-family call, an order-insensitive
/// terminal fold, or a `collect` into an ordered/unordered target.
fn statement_restores_order(toks: &[Token], from: usize) -> bool {
    let mut depth = 0i32;
    let mut j = from;
    while let Some(t) = toks.get(j) {
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => {
                depth -= 1;
                if depth < 0 {
                    return false; // statement ended inside a call arg
                }
            }
            ";" | "{" | "}" if depth == 0 => return false,
            _ if t.kind == TokenKind::Ident && depth == 0 => {
                // Only chain-level idents count: anything at depth ≥ 1
                // sits inside call parens (closure bodies, arguments)
                // and must not satisfy the ordering requirement.
                let name = t.text.as_str();
                if SORTERS.contains(&name) || ORDER_FREE_TERMINALS.contains(&name) {
                    return true;
                }
                if name == "collect" {
                    // Look for a turbofish naming a safe target.
                    let mut m = j + 1;
                    while let Some(n) = toks.get(m) {
                        if n.kind == TokenKind::Ident {
                            return ORDER_SAFE_COLLECTS.contains(&n.text.as_str());
                        }
                        if n.text == "(" || n.text == ";" {
                            return false; // plain `collect()` — target unknown
                        }
                        m += 1;
                    }
                    return false;
                }
            }
            _ => {}
        }
        j += 1;
    }
    false
}

/// Flags wall-clock sources.
fn check_wall_clock(toks: &[Token], findings: &mut Vec<Finding>) {
    for t in toks {
        if t.kind == TokenKind::Ident && WALL_CLOCK_IDENTS.contains(&t.text.as_str()) {
            findings.push(Finding {
                line: t.line,
                rule: Rule::WallClock,
                message: format!(
                    "`{}` reads the wall clock; simulator code must use virtual SimTime",
                    t.text
                ),
            });
        }
    }
}

/// Flags unseeded / thread-local randomness.
fn check_unseeded_rng(toks: &[Token], findings: &mut Vec<Finding>) {
    for (k, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let hit = UNSEEDED_RNG_IDENTS.contains(&t.text.as_str())
            || (t.text == "random"
                && k >= 3
                && toks[k - 1].text == ":"
                && toks[k - 2].text == ":"
                && toks[k - 3].text == "rand");
        if hit {
            findings.push(Finding {
                line: t.line,
                rule: Rule::UnseededRng,
                message: format!(
                    "`{}` draws unseeded randomness; all RNG must derive from the run seed",
                    t.text
                ),
            });
        }
    }
}

/// Flags float accumulation: `x += <float expr>` and
/// `.sum::<f32/f64>()` / `.product::<f32/f64>()`.
fn check_float_accum(toks: &[Token], findings: &mut Vec<Finding>) {
    for (k, t) in toks.iter().enumerate() {
        // `.sum::<f64>()` / `.product::<f32>()`.
        if t.kind == TokenKind::Ident && (t.text == "sum" || t.text == "product") {
            let mut j = k + 1;
            let mut ok = k > 0 && toks[k - 1].text == ".";
            while ok {
                match toks.get(j) {
                    Some(n) if n.text == ":" || n.text == "<" => j += 1,
                    Some(n) if n.kind == TokenKind::Ident => {
                        if n.text == "f32" || n.text == "f64" {
                            findings.push(Finding {
                                line: t.line,
                                rule: Rule::FloatAccum,
                                message: format!(
                                    "`.{}::<{}>()` accumulates floats whose result depends on \
                                     order and rounding; aggregate in integers and divide once",
                                    t.text, n.text
                                ),
                            });
                        }
                        ok = false;
                    }
                    _ => ok = false,
                }
            }
        }
        // `lhs += <rhs with float evidence>;`
        if t.text == "+"
            && toks
                .get(k + 1)
                .is_some_and(|n| n.text == "=" && n.start == t.start + 1)
        {
            let mut j = k + 2;
            let mut depth = 0i32;
            while let Some(n) = toks.get(j) {
                match n.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    ";" if depth <= 0 => break,
                    "f32" | "f64" if n.kind == TokenKind::Ident => {
                        findings.push(Finding {
                            line: t.line,
                            rule: Rule::FloatAccum,
                            message: "float `+=` accumulation is order- and rounding-sensitive; \
                                      aggregate in integers and divide once"
                                .to_string(),
                        });
                        break;
                    }
                    _ if n.kind == TokenKind::Literal && is_float_literal(&n.text) => {
                        findings.push(Finding {
                            line: t.line,
                            rule: Rule::FloatAccum,
                            message: "float `+=` accumulation is order- and rounding-sensitive; \
                                      aggregate in integers and divide once"
                                .to_string(),
                        });
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
        }
    }
}

/// Token-index ranges belonging to `#[cfg(test)]` items: from the
/// attribute to the end of the item it gates (the matching close of
/// the first `{`, or the first `;` if the item is brace-less).
fn cfg_test_ranges(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut k = 0;
    while k + 6 < toks.len() {
        let is_attr = toks[k].text == "#"
            && toks[k + 1].text == "["
            && toks[k + 2].text == "cfg"
            && toks[k + 3].text == "("
            && toks[k + 4].text == "test"
            && toks[k + 5].text == ")"
            && toks[k + 6].text == "]";
        if !is_attr {
            k += 1;
            continue;
        }
        // Skip to the gated item's body. A `;` at depth 0 before any
        // `{` means a brace-less item (e.g. `#[cfg(test)] use ...;`).
        let mut j = k + 7;
        let mut depth = 0i32;
        let mut end = toks.len().saturating_sub(1);
        while let Some(t) = toks.get(j) {
            match t.text.as_str() {
                ";" if depth == 0 => {
                    end = j;
                    break;
                }
                "{" => {
                    depth += 1;
                    // Brace-match to the item's close.
                    let mut m = j + 1;
                    while let Some(n) = toks.get(m) {
                        match n.text.as_str() {
                            "{" => depth += 1,
                            "}" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        m += 1;
                    }
                    end = m.min(toks.len().saturating_sub(1));
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        ranges.push((k, end));
        k = end + 1;
    }
    ranges
}

/// Flags `.unwrap()` / `.expect(` calls outside `#[cfg(test)]` code.
fn check_unwrap_in_prod(toks: &[Token], findings: &mut Vec<Finding>) {
    let test_ranges = cfg_test_ranges(toks);
    for (k, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || (t.text != "unwrap" && t.text != "expect") {
            continue;
        }
        let is_call =
            k > 0 && toks[k - 1].text == "." && toks.get(k + 1).is_some_and(|n| n.text == "(");
        if !is_call {
            continue;
        }
        if test_ranges.iter().any(|&(s, e)| k >= s && k <= e) {
            continue;
        }
        findings.push(Finding {
            line: t.line,
            rule: Rule::UnwrapInProd,
            message: format!(
                "`.{}()` in production code panics the whole controller/dataplane on \
                 the unexpected case; handle it, or annotate why it is infallible",
                t.text
            ),
        });
    }
}

fn is_float_literal(s: &str) -> bool {
    s.ends_with("f32")
        || s.ends_with("f64")
        || (s.contains('.') && s.chars().next().is_some_and(|c| c.is_ascii_digit()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(src: &str) -> Vec<&'static str> {
        lint_source(src).iter().map(|f| f.rule.name()).collect()
    }

    #[test]
    fn flags_hashmap_field_iteration() {
        let src = "struct S { m: HashMap<u64, u32> }\n\
                   impl S { fn f(&self) { for (k, v) in &self.m { emit(k, v); } } }";
        assert_eq!(rules_of(src), ["unordered-iter"]);
    }

    #[test]
    fn flags_method_chain_without_order() {
        let src = "fn f(m: &HashMap<u64, u32>) -> Vec<u64> {\n\
                   let v: Vec<u64> = m.keys().copied().collect();\nv }";
        assert_eq!(rules_of(src), ["unordered-iter"]);
    }

    #[test]
    fn sorted_in_statement_passes() {
        let src = "fn f(m: &HashMap<u64, u32>) { \
                   let mut v: Vec<_> = m.keys().collect(); }";
        assert_eq!(rules_of(src).len(), 1);
        let ok = "fn f(m: &HashMap<u64, u32>) -> u32 { m.values().copied().sum() }";
        assert!(rules_of(ok).is_empty());
        let ok2 = "fn f(m: &HashMap<u64, u32>) -> BTreeMap<u64, u32> { \
                   m.iter().map(|(k, v)| (*k, *v)).collect::<BTreeMap<u64, u32>>() }";
        assert!(rules_of(ok2).is_empty());
    }

    #[test]
    fn btreemap_is_clean() {
        let src = "struct S { m: BTreeMap<u64, u32> }\n\
                   impl S { fn f(&self) { for (k, v) in &self.m { emit(k, v); } } }";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn allow_annotation_suppresses() {
        let src = "struct S { m: HashMap<u64, u32> }\n\
                   impl S { fn f(&self) -> usize {\n\
                   // livesec-lint: allow(unordered-iter, reason = \"order-free fold\")\n\
                   let mut n = 0; for _ in self.m.drain() { n += 1; } n } }";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn trailing_allow_suppresses_same_line() {
        let src = "struct S { m: HashSet<u32> }\nimpl S { fn f(&mut self) {\n\
                   self.m.retain(|x| *x > 1); // livesec-lint: allow(unordered-iter, reason = \"set-wise\")\n} }";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn allow_without_reason_is_bad() {
        let src = "// livesec-lint: allow(wall-clock)\nlet t = Instant::now();";
        let r = rules_of(src);
        assert!(r.contains(&"bad-annotation"));
        assert!(r.contains(&"wall-clock"));
    }

    #[test]
    fn unused_allow_is_flagged() {
        let src = "// livesec-lint: allow(wall-clock, reason = \"no clock here\")\nlet x = 1;";
        assert_eq!(rules_of(src), ["unused-allow"]);
    }

    #[test]
    fn wall_clock_and_rng() {
        assert_eq!(rules_of("let t = Instant::now();"), ["wall-clock"]);
        assert_eq!(rules_of("let t = SystemTime::now();"), ["wall-clock"]);
        assert_eq!(rules_of("let r = thread_rng();"), ["unseeded-rng"]);
        assert_eq!(
            rules_of("let r = StdRng::from_entropy();"),
            ["unseeded-rng"]
        );
        assert_eq!(rules_of("let x: u8 = rand::random();"), ["unseeded-rng"]);
        assert!(rules_of("let r = StdRng::seed_from_u64(7);").is_empty());
    }

    #[test]
    fn float_accum() {
        assert_eq!(
            rules_of("fn f(xs: &[u64]) { let mut t = 0.0; for x in xs { t += *x as f64; } }"),
            ["float-accum"]
        );
        assert_eq!(
            rules_of("fn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }"),
            ["float-accum"]
        );
        assert!(
            rules_of("fn f(xs: &[u64]) -> u64 { let mut t = 0; for x in xs { t += x; } t }")
                .is_empty()
        );
    }

    #[test]
    fn strings_and_comments_do_not_trip() {
        assert!(
            rules_of("// Instant::now() would be wrong here\nlet s = \"thread_rng\";").is_empty()
        );
    }
}
