//! The declarative policy pipeline end to end: compile a `.lsp`
//! program, install it through the builder, then — mid-traffic —
//! apply revision 2 as a compiled *delta* script and prove the edit
//! with the incremental auditor (DESIGN.md §14).
//!
//! Run with: `cargo run --release --example policy`

use livesec_policy::{compile, compile_delta, PolicyText};
use livesec_suite::prelude::*;
use livesec_verify::{audit_delta, RuleDelta, Snapshot};

const REV1: &str = include_str!("campus.lsp");
const REV2: &str = include_str!("campus_edit.lsp");

fn main() {
    // 1. Compile revision 1 and show what the compiler lowered.
    let rev1 = compile(REV1).expect("campus.lsp compiles");
    println!("campus.lsp: {} rules", rev1.table.len());
    for rule in rev1.table.iter() {
        println!("  {rule:?}");
    }
    for limit in &rev1.rate_limits {
        println!("  advisory: cap `{}` at {} bps", limit.rule, limit.bps);
    }
    for warning in &rev1.warnings {
        println!("  {warning}");
    }

    // A broken edit never reaches the network — the checker rejects
    // it with stable line/column diagnostics.
    let broken = "rule web: proto tcp port 80 via no-such-chain\n";
    if let Err(diags) = compile(broken) {
        println!("\na broken revision is refused:");
        for d in &diags {
            println!("  {d}");
        }
    }

    // 2. Install it on a live campus: one web server behind the
    // gateway, an IDS element for web-chain, two browsing users.
    let mut b = CampusBuilder::new(42, 2)
        .with_policy_text(REV1)
        .expect("campus.lsp compiles");
    let gateway = b.add_gateway_with_app(0, HttpServer::new());
    b.add_service_element(0, ServiceElement::new(IdsEngine::engine()));
    b.add_user(1, HttpClient::new(gateway.ip, 30_000));
    b.add_user(1, HttpClient::new(gateway.ip, 30_000).with_src_port(40_081));
    let mut campus = b.finish();

    campus.world.run_for(SimDuration::from_secs(2));
    let warm = campus.controller().fast_path_stats();
    println!(
        "\nafter 2 s of browsing: {} cached decisions, {} flow setups",
        warm.entries, warm.flow_setups
    );

    // 3. The live edit: diff revision 2 against revision 1 and apply
    // the minimal delta script — no wholesale table swap, no flush.
    let (deltas, _rev2) = compile_delta(REV1, REV2).expect("campus_edit.lsp compiles");
    println!("\nrevision 2 compiles to {} delta(s):", deltas.len());
    for d in &deltas {
        println!("  {d:?}");
    }
    let now = campus.world.kernel().now();
    let cubes = campus.controller_mut().apply_policy_delta(now, &deltas);
    let after = campus.controller().fast_path_stats();
    println!(
        "applied: {} header class(es) touched, warm entries {} -> {}",
        cubes.len(),
        warm.entries,
        after.entries
    );

    // 4. Verify the edit incrementally: re-audit only the classes the
    // controller reported, not the whole dataplane.
    campus.world.run_for(SimDuration::from_secs(1));
    let scoped: Vec<RuleDelta> = cubes.into_iter().map(RuleDelta::network_wide).collect();
    let snapshot = Snapshot::of_campus(&campus);
    let violations = audit_delta(&snapshot, &scoped);
    assert!(
        violations.is_empty(),
        "incremental audit found: {violations:#?}"
    );
    println!("incremental audit of the edit: clean");
    println!(
        "final event summary: {:?}",
        campus.controller().monitor().summary()
    );
}
