//! Analyzer robustness properties, hand-rolled in the proptest style
//! (the lint crate is dependency-free, so the generator is a seeded
//! splitmix64 stream rather than a proptest strategy).
//!
//! Three properties:
//! 1. the parser never panics and always terminates on *arbitrary*
//!    token streams (including delimiter soup the lexer would never
//!    emit in that order);
//! 2. the lexer+parser never panic on arbitrary byte soup fed as
//!    source text;
//! 3. parsing is deterministic — the same input yields the same
//!    recovery list every time.

use livesec_lint::lexer::{Token, TokenKind};
use livesec_lint::parser::{parse, parse_tokens};

/// splitmix64: tiny, seedable, and good enough to shuffle a vocab.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Vocabulary skewed toward the constructs the parser dispatches on:
/// keywords, delimiters, operator chars, plus a few plain tokens.
const VOCAB: &[(&str, TokenKind)] = &[
    ("fn", TokenKind::Ident),
    ("struct", TokenKind::Ident),
    ("enum", TokenKind::Ident),
    ("impl", TokenKind::Ident),
    ("trait", TokenKind::Ident),
    ("mod", TokenKind::Ident),
    ("let", TokenKind::Ident),
    ("if", TokenKind::Ident),
    ("else", TokenKind::Ident),
    ("while", TokenKind::Ident),
    ("for", TokenKind::Ident),
    ("in", TokenKind::Ident),
    ("match", TokenKind::Ident),
    ("loop", TokenKind::Ident),
    ("return", TokenKind::Ident),
    ("break", TokenKind::Ident),
    ("move", TokenKind::Ident),
    ("mut", TokenKind::Ident),
    ("pub", TokenKind::Ident),
    ("const", TokenKind::Ident),
    ("use", TokenKind::Ident),
    ("type", TokenKind::Ident),
    ("as", TokenKind::Ident),
    ("where", TokenKind::Ident),
    ("unsafe", TokenKind::Ident),
    ("self", TokenKind::Ident),
    ("x", TokenKind::Ident),
    ("foo", TokenKind::Ident),
    ("Vec", TokenKind::Ident),
    ("0", TokenKind::Literal),
    ("42usize", TokenKind::Literal),
    ("\"s\"", TokenKind::Literal),
    ("'a", TokenKind::Lifetime),
    ("(", TokenKind::Punct),
    (")", TokenKind::Punct),
    ("[", TokenKind::Punct),
    ("]", TokenKind::Punct),
    ("{", TokenKind::Punct),
    ("}", TokenKind::Punct),
    ("<", TokenKind::Punct),
    (">", TokenKind::Punct),
    (",", TokenKind::Punct),
    (";", TokenKind::Punct),
    (":", TokenKind::Punct),
    ("=", TokenKind::Punct),
    ("&", TokenKind::Punct),
    ("|", TokenKind::Punct),
    ("!", TokenKind::Punct),
    ("#", TokenKind::Punct),
    (".", TokenKind::Punct),
    ("+", TokenKind::Punct),
    ("-", TokenKind::Punct),
    ("*", TokenKind::Punct),
    ("/", TokenKind::Punct),
    ("?", TokenKind::Punct),
    ("@", TokenKind::Punct),
];

/// Builds a random token stream. Tokens are alternately byte-adjacent
/// and spaced so composite-operator reassembly paths are exercised.
fn random_tokens(rng: &mut SplitMix64, max_len: usize) -> Vec<Token> {
    let len = rng.below(max_len + 1);
    let mut toks = Vec::with_capacity(len);
    let mut offset = 0usize;
    for i in 0..len {
        let (text, kind) = VOCAB[rng.below(VOCAB.len())];
        if rng.below(3) == 0 {
            offset += 1; // break adjacency: `:` `:` stays two colons
        }
        toks.push(Token {
            kind,
            text: text.to_string(),
            line: i as u32 / 8 + 1,
            start: offset,
        });
        offset += text.len();
    }
    toks
}

#[test]
fn parser_never_panics_and_terminates_on_arbitrary_token_streams() {
    let mut rng = SplitMix64(0x1175_ec01);
    for case in 0..2000 {
        let toks = random_tokens(&mut rng, 120);
        // Completion IS the termination proof; a hang would trip the
        // test harness timeout, a panic fails the test outright.
        let file = parse_tokens(&toks);
        assert!(
            file.recoveries.len() <= toks.len(),
            "case {case}: more recoveries than tokens"
        );
    }
}

#[test]
fn lexer_and_parser_never_panic_on_byte_soup() {
    let mut rng = SplitMix64(0xdead_beef_cafe_f00d);
    // Printable-ish soup plus quote/backslash/brace clusters that
    // stress string, char and comment scanning.
    let alphabet: Vec<char> = "abc FIN(){}[]<>:;,.&|!#'\"\\/*-+=_0123456789\n\t"
        .chars()
        .collect();
    for _ in 0..500 {
        let len = rng.below(200);
        let src: String = (0..len)
            .map(|_| alphabet[rng.below(alphabet.len())])
            .collect();
        let _ = parse(&src);
    }
}

#[test]
fn parsing_is_deterministic() {
    let mut rng = SplitMix64(7);
    for _ in 0..200 {
        let toks = random_tokens(&mut rng, 100);
        let a = parse_tokens(&toks);
        let b = parse_tokens(&toks);
        let fmt = |f: &livesec_lint::ast::File| {
            f.recoveries
                .iter()
                .map(|r| format!("{}:{}", r.line, r.context))
                .collect::<Vec<_>>()
                .join(",")
        };
        assert_eq!(fmt(&a), fmt(&b));
        assert_eq!(a.items.len(), b.items.len());
    }
}
