//! Micro-benchmark: raw event-loop throughput — frames per second the
//! simulator can move over one saturated link.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use livesec_net::{MacAddr, Packet, PacketBuilder};
use livesec_sim::{Ctx, LinkSpec, Node, PortId, SimDuration, World};
use std::any::Any;

struct Streamer {
    remaining: u32,
    template: Packet,
}

impl Node for Streamer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(SimDuration::from_nanos(1), 1);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        ctx.send(PortId(1), self.template.clone());
        ctx.set_timer(SimDuration::from_micros(12), 1);
    }
    fn on_frame(&mut self, _ctx: &mut Ctx<'_>, _p: PortId, _pkt: Packet) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

struct Sink;
impl Node for Sink {
    fn on_frame(&mut self, _ctx: &mut Ctx<'_>, _p: PortId, _pkt: Packet) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn bench_frames(c: &mut Criterion) {
    const FRAMES: u32 = 10_000;
    let template = PacketBuilder::udp(MacAddr::from_u64(1), MacAddr::from_u64(2))
        .ips("10.0.0.1".parse().unwrap(), "10.0.0.2".parse().unwrap())
        .ports(1, 2)
        .payload_len(1400)
        .build();
    let mut g = c.benchmark_group("event_loop");
    g.throughput(Throughput::Elements(u64::from(FRAMES)));
    g.sample_size(20);
    g.bench_function("stream_10k_frames", |b| {
        b.iter(|| {
            let mut world = World::new(1);
            let tx = world.add_node(Streamer {
                remaining: FRAMES,
                template: template.clone(),
            });
            let rx = world.add_node(Sink);
            world.connect(tx, PortId(1), rx, PortId(1), LinkSpec::gigabit());
            world.run_for(SimDuration::from_millis(200));
            world.kernel().port_counters(rx, PortId(1)).rx_frames
        })
    });
    g.finish();
}

criterion_group!(benches, bench_frames);
criterion_main!(benches);
