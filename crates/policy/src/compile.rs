//! Lowering: a checked program becomes a [`PolicyTable`] plus the
//! advisory rate-limit list.
//!
//! Group references expand into one [`PolicyRule`] per member (cross
//! product with the `to` side), in declaration order; expanded rules
//! are named `name#0`, `name#1`, … so rule identity stays stable for
//! the delta compiler as long as membership is unchanged.

use crate::ast::{DeclKind, Endpoint, Member, Program, Verdict};
use crate::check::{check, shadow_diags};
use crate::diag::{has_errors, Diag};
use crate::parser::parse;
use livesec::policy::{AppAction, PolicyDecision, PolicyRule, PolicyTable};
use livesec_net::{Ipv4Net, MacAddr};
use livesec_services::ServiceType;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An advisory rate cap attached to a compiled rule. The dataplane
/// has no meter abstraction yet, so limits compile to `Allow` plus
/// this record; operators (and the monitor) see the intent.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct RateLimit {
    /// The lowered rule name the cap applies to.
    pub rule: String,
    /// The cap, in bits per second.
    pub bps: u64,
}

/// The result of compiling a `.lsp` program.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct CompiledPolicy {
    /// The controller-ready policy table.
    pub table: PolicyTable,
    /// Advisory rate caps, in rule order.
    pub rate_limits: Vec<RateLimit>,
    /// Non-fatal diagnostics (shadowed-rule redundancy, etc.).
    pub warnings: Vec<Diag>,
}

/// Compiles `.lsp` source text. `Err` carries every diagnostic
/// (errors and warnings, source-ordered) when anything was fatal;
/// `Ok`'s [`CompiledPolicy::warnings`] carries the non-fatal rest.
pub fn compile(src: &str) -> Result<CompiledPolicy, Vec<Diag>> {
    let (program, mut diags) = parse(src);
    diags.extend(check(&program));
    if has_errors(&diags) {
        return Err(diags);
    }
    let (table, rate_limits, lowered) = lower(&program);
    diags.extend(shadow_diags(&lowered));
    if has_errors(&diags) {
        return Err(diags);
    }
    Ok(CompiledPolicy {
        table,
        rate_limits,
        warnings: diags,
    })
}

/// Lowers a *checked* program (unknown references were already
/// rejected; dangling ones fall back to matching nothing or allow).
/// Returns the table, the rate limits, and the lowered rules with
/// their declaration lines (for shadow analysis).
fn lower(program: &Program) -> (PolicyTable, Vec<RateLimit>, Vec<(PolicyRule, u32)>) {
    let mut groups: BTreeMap<&str, &[Member]> = BTreeMap::new();
    let mut chains: BTreeMap<&str, &[ServiceType]> = BTreeMap::new();
    let mut tenants: BTreeMap<&str, Ipv4Net> = BTreeMap::new();
    for decl in &program.decls {
        match &decl.kind {
            DeclKind::Group { name, members } => {
                groups.entry(name).or_insert(members);
            }
            DeclKind::Chain { name, services } => {
                chains.entry(name).or_insert(services);
            }
            DeclKind::Tenant { name, net } => {
                tenants.entry(name).or_insert(*net);
            }
            _ => {}
        }
    }

    let mut table = PolicyTable::allow_all();
    let mut rate_limits = Vec::new();
    let mut lowered = Vec::new();
    for decl in &program.decls {
        match &decl.kind {
            DeclKind::Default { verdict } => {
                table.set_default(decision_of(verdict, &chains));
            }
            DeclKind::OnApp { app, block } => {
                let action = if *block {
                    AppAction::Block
                } else {
                    AppAction::Allow
                };
                table.on_app(app, action);
            }
            DeclKind::Rule(r) => {
                // `from` expands to (source prefix, source MAC) pairs.
                let from_exps: Vec<(Option<Ipv4Net>, Option<MacAddr>)> = match &r.from {
                    None => vec![(None, None)],
                    Some(Endpoint::Net(net)) => vec![(Some(*net), None)],
                    Some(Endpoint::Mac(mac)) => vec![(None, Some(*mac))],
                    Some(Endpoint::Name(g)) => groups
                        .get(g.as_str())
                        .copied()
                        .unwrap_or(&[])
                        .iter()
                        .map(|m| match m {
                            Member::Net(net) => (Some(*net), None),
                            Member::Mac(mac) => (None, Some(*mac)),
                        })
                        .collect(),
                };
                // `to` expands to destination prefixes (the checker
                // rejected MAC destinations).
                let to_exps: Vec<Option<Ipv4Net>> = match &r.to {
                    None => vec![None],
                    Some(Endpoint::Net(net)) => vec![Some(*net)],
                    Some(Endpoint::Mac(_)) => Vec::new(),
                    Some(Endpoint::Name(g)) => groups
                        .get(g.as_str())
                        .copied()
                        .unwrap_or(&[])
                        .iter()
                        .filter_map(|m| match m {
                            Member::Net(net) => Some(Some(*net)),
                            Member::Mac(_) => None,
                        })
                        .collect(),
                };
                let tenant_net = r.tenant.as_deref().and_then(|t| tenants.get(t)).copied();
                let decision = decision_of(&r.verdict, &chains);
                let many = from_exps.len() * to_exps.len() > 1;
                let mut i = 0usize;
                for (src, src_mac) in &from_exps {
                    for dst in &to_exps {
                        let name = if many {
                            format!("{}#{i}", r.name)
                        } else {
                            r.name.clone()
                        };
                        i += 1;
                        let rule = PolicyRule {
                            name: name.clone(),
                            // The tenant prefix stands in when the
                            // member pins no prefix of its own (the
                            // checker proved containment otherwise).
                            src: src.or(tenant_net),
                            dst: *dst,
                            src_mac: *src_mac,
                            proto: r.proto,
                            dst_port: r.port,
                            decision: decision.clone(),
                        };
                        if let Verdict::Limit { bps } = r.verdict {
                            rate_limits.push(RateLimit { rule: name, bps });
                        }
                        lowered.push((rule.clone(), decl.line));
                        table.push(rule);
                    }
                }
            }
            _ => {}
        }
    }
    (table, rate_limits, lowered)
}

fn decision_of(verdict: &Verdict, chains: &BTreeMap<&str, &[ServiceType]>) -> PolicyDecision {
    match verdict {
        Verdict::Allow | Verdict::Limit { .. } => PolicyDecision::Allow,
        Verdict::Deny => PolicyDecision::Deny,
        Verdict::Via(chain) => PolicyDecision::Chain(
            chains
                .get(chain.as_str())
                .map(|s| s.to_vec())
                .unwrap_or_default(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use livesec_net::FlowKey;

    fn key(src_ip: &str, dst_port: u16) -> FlowKey {
        FlowKey {
            vlan: None,
            dl_src: MacAddr::from_u64(1),
            dl_dst: MacAddr::from_u64(2),
            dl_type: 0x0800,
            nw_src: src_ip.parse().unwrap(),
            nw_dst: "8.8.8.8".parse().unwrap(),
            nw_proto: 6,
            tp_src: 40000,
            tp_dst: dst_port,
        }
    }

    #[test]
    fn compiles_decisions_and_defaults() {
        let c = compile(
            "chain web = [ ids, protoid ]\n\
             rule web-ids: proto tcp port 80 via web\n\
             rule no-telnet: port 23 proto tcp deny\n\
             default deny\n\
             on app bittorrent block\n",
        )
        .expect("compiles");
        assert!(c.warnings.is_empty(), "{:?}", c.warnings);
        let (d, name) = c.table.decide(&key("10.0.0.1", 80));
        assert_eq!(name, Some("web-ids"));
        assert_eq!(
            d,
            &PolicyDecision::Chain(vec![
                ServiceType::IntrusionDetection,
                ServiceType::ProtocolIdentification
            ])
        );
        assert_eq!(
            c.table.decide(&key("10.0.0.1", 23)).0,
            &PolicyDecision::Deny
        );
        // Unmatched traffic hits the deny default.
        assert_eq!(
            c.table.decide(&key("10.0.0.1", 443)).0,
            &PolicyDecision::Deny
        );
        assert_eq!(c.table.app_action("bittorrent"), Some(AppAction::Block));
    }

    #[test]
    fn group_expansion_crosses_from_and_to() {
        let c = compile(
            "group clients = { 10.1.0.0/24, 0a:0b:0c:0d:0e:01 }\n\
             group servers = { 10.9.0.0/24, 10.9.1.0/24 }\n\
             rule lock: from clients to servers proto tcp deny\n",
        )
        .expect("compiles");
        assert_eq!(c.table.len(), 4);
        let names: Vec<&str> = c.table.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["lock#0", "lock#1", "lock#2", "lock#3"]);
        // The MAC member carries no src prefix; the net member does.
        let r0 = c.table.get("lock#0").unwrap();
        assert_eq!(r0.src, Some("10.1.0.0/24".parse().unwrap()));
        assert_eq!(r0.src_mac, None);
        let r2 = c.table.get("lock#2").unwrap();
        assert_eq!(r2.src, None);
        assert_eq!(r2.src_mac, Some("0a:0b:0c:0d:0e:01".parse().unwrap()));
    }

    #[test]
    fn tenant_prefix_fills_unpinned_sources() {
        let c = compile(
            "tenant lab 10.2.0.0/16\n\
             rule scoped: proto udp tenant lab deny\n\
             rule narrowed: from 10.2.7.0/24 tenant lab deny\n",
        )
        .expect("compiles");
        let scoped = c.table.get("scoped").unwrap();
        assert_eq!(scoped.src, Some("10.2.0.0/16".parse().unwrap()));
        let narrowed = c.table.get("narrowed").unwrap();
        assert_eq!(narrowed.src, Some("10.2.7.0/24".parse().unwrap()));
    }

    #[test]
    fn limits_compile_to_allow_plus_advisory() {
        let c = compile("rule capped: from 10.3.0.0/24 limit 25 mbps\n").expect("compiles");
        assert_eq!(
            c.table.get("capped").unwrap().decision,
            PolicyDecision::Allow
        );
        assert_eq!(
            c.rate_limits,
            vec![RateLimit {
                rule: "capped".into(),
                bps: 25_000_000
            }]
        );
    }

    #[test]
    fn errors_abort_compilation() {
        let err = compile("rule r: via nowhere\n").unwrap_err();
        assert!(err.iter().any(|d| d.message.contains("unknown chain")));
        // A conflicting full shadow is fatal too.
        let err = compile("rule a: proto tcp deny\nrule b: proto tcp port 80 allow\n").unwrap_err();
        assert!(
            err.iter().any(|d| d.message.contains("can never match")),
            "{err:?}"
        );
    }
}
