//! Micro-benchmarks: on-wire serialization/parsing throughput — the
//! per-packet cost of the OpenFlow packet-in/out boundary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use livesec_net::{wire, MacAddr, PacketBuilder};

fn bench_serialize(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire_serialize");
    for payload in [0u32, 100, 1400] {
        let pkt = PacketBuilder::tcp(MacAddr::from_u64(1), MacAddr::from_u64(2))
            .ips("10.0.0.1".parse().unwrap(), "10.0.0.2".parse().unwrap())
            .ports(555, 80)
            .payload_len(payload)
            .build();
        g.throughput(Throughput::Bytes(pkt.wire_len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(payload), &pkt, |b, pkt| {
            b.iter(|| wire::serialize(pkt))
        });
    }
    g.finish();
}

fn bench_parse(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire_parse");
    for payload in [0u32, 100, 1400] {
        let pkt = PacketBuilder::udp(MacAddr::from_u64(1), MacAddr::from_u64(2))
            .ips("10.0.0.1".parse().unwrap(), "10.0.0.2".parse().unwrap())
            .ports(555, 53)
            .payload_len(payload)
            .build();
        let bytes = wire::serialize(&pkt);
        g.throughput(Throughput::Bytes(bytes.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(payload), &bytes, |b, bytes| {
            b.iter(|| wire::parse(bytes).expect("valid"))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_serialize, bench_parse);
criterion_main!(benches);
