#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]
#![warn(clippy::disallowed_methods, clippy::disallowed_types)]

//! **livesec-lint** — the workspace determinism & invariant
//! static-analysis pass.
//!
//! The LiveSec reproduction rests on one property: the discrete-event
//! simulator is *deterministic* — same seed, byte-identical history.
//! Every chaos, cache and reconciliation test asserts it. Both PR 1
//! (HashMap-order flow eviction) and PR 2 (SE-registry expiry and
//! cleanup order) shipped fixes for latent nondeterminism that was
//! only caught at runtime. v2 of this crate goes further: the
//! hand-rolled lexer ([`lexer`]) feeds a recursive-descent parser
//! ([`parser`]) producing a lightweight AST ([`ast`]), with an
//! intra-procedural taint dataflow pass ([`dataflow`]) on top. The
//! rule engine ([`rules`]) walks every workspace `.rs` file and flags
//!
//! * **unordered-iter** (LS101) — iteration over `HashMap`/`HashSet`
//!   bindings whose order can escape into events, flow-mods or
//!   history (type-alias aware; post-hoc sorts rescue);
//! * **wall-clock** (LS102) — `Instant` / `SystemTime` in expression
//!   or type position (virtual `SimTime` is the only clock);
//! * **unseeded-rng** (LS103) — `thread_rng`, `from_entropy`,
//!   `OsRng`, `rand::random`;
//! * **float-accum** (LS104) — float `+=` accumulation and
//!   `.sum::<f32/f64>()` in aggregation paths;
//! * **unwrap-in-prod** (LS201) — `.unwrap()` / `.expect()` outside
//!   `#[cfg(test)]` code in the production crates;
//! * **panic-path** (LS202) — slice indexes that can panic in
//!   production: unguarded subtraction or caller-controlled integer
//!   parameters;
//! * **wire-taint** (LS301) — wire-controlled values (byte-reader
//!   results, `&[u8]` params in `openflow`/`net`) reaching
//!   allocation, indexing or amplifying arithmetic without a bounds
//!   guard;
//! * **hot-path-alloc** (LS401) — allocation inside the configured
//!   packet-path hot functions.
//!
//! Sites where a rule is genuinely inapplicable carry an explicit,
//! reasoned escape hatch:
//!
//! ```text
//! // livesec-lint: allow(unordered-iter, reason = "order-insensitive fold")
//! ```
//!
//! The grammar and the analyzer architecture live in `DESIGN.md` §6
//! and §13. The binary (`cargo run -p livesec-lint --release`) is a
//! tier-1 gate in `scripts/check.sh` (with `--json` archival);
//! `tests/workspace.rs` additionally asserts the live workspace
//! passes with zero unannotated findings and that the parser handles
//! 100% of workspace files without recoveries.
//!
//! The pass is deliberately dependency-free: no type inference, no
//! HIR. It trades a small annotation burden for a checker that
//! builds in milliseconds and cannot drift out of sync with vendored
//! compiler internals.

pub mod ast;
pub mod dataflow;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod walk;

pub use rules::{lint_source, lint_source_with, Finding, LintOptions, Rule};

use std::path::{Path, PathBuf};

/// Crate source trees where a panic is a controller or dataplane
/// outage, so `unwrap-in-prod` and `panic-path` apply.
const PROD_CRATE_DIRS: &[&str] = &[
    "crates/core/src",
    "crates/switch/src",
    "crates/conntrack/src",
    // The `.lsp` compiler: a panic while compiling an operator's
    // policy edit takes down the control plane, and its parser
    // contract is total (diagnostics, never panics).
    "crates/policy/src",
];

/// Crate source trees that parse attacker-controlled wire bytes, so
/// `wire-taint` applies.
const WIRE_CRATE_DIRS: &[&str] = &["crates/openflow/src", "crates/net/src"];

/// The per-file hot-function sets for `hot-path-alloc`: these
/// functions sit on the per-packet path (dispatch, flow lookup,
/// conntrack state transition, attestation replay) and must stay
/// allocation-free to keep the zero-copy roadmap honest.
const HOT_FNS: &[(&str, &[&str])] = &[
    (
        "crates/openflow/src/table.rs",
        &["lookup", "lookup_counting", "best_candidate", "peek"],
    ),
    ("crates/switch/src/as_switch.rs", &["on_frame"]),
    ("crates/conntrack/src/lib.rs", &["observe"]),
    (
        "crates/core/src/accountability.rs",
        &["observe", "check_hop", "track_chain"],
    ),
    // First-match policy lookup runs on every flow setup; the scan
    // must not allocate per decision.
    ("crates/core/src/policy.rs", &["decide", "matches"]),
];

/// The per-file lint options for a workspace path: production crates
/// get the panic-family rules, wire-parsing crates get taint
/// tracking, and files hosting configured hot functions get the
/// allocation ban.
pub fn options_for(path: &Path) -> LintOptions {
    let p = path.to_string_lossy();
    let prod = PROD_CRATE_DIRS.iter().any(|d| p.contains(d));
    LintOptions {
        unwrap_in_prod: prod,
        panic_path: prod,
        wire_taint: WIRE_CRATE_DIRS.iter().any(|d| p.contains(d)),
        hot_fns: HOT_FNS
            .iter()
            .filter(|(f, _)| p.ends_with(f))
            .flat_map(|(_, fns)| fns.iter().map(|s| s.to_string()))
            .collect(),
    }
}

/// A finding tied to the file it was found in.
#[derive(Clone, Debug)]
pub struct FileFinding {
    /// Path of the offending file (as given to [`lint_files`]).
    pub path: PathBuf,
    /// The finding itself.
    pub finding: Finding,
}

impl std::fmt::Display for FileFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{} {}] {}",
            self.path.display(),
            self.finding.line,
            self.finding.rule.code(),
            self.finding.rule.name(),
            self.finding.message
        )
    }
}

/// Lints every file in `paths`, in order. Unreadable files are
/// reported as an error string rather than silently skipped.
pub fn lint_files(paths: &[PathBuf]) -> Result<Vec<FileFinding>, String> {
    let mut out = Vec::new();
    for path in paths {
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        for finding in lint_source_with(&src, &options_for(path)) {
            out.push(FileFinding {
                path: path.clone(),
                finding,
            });
        }
    }
    Ok(out)
}

/// Walks the workspace at `root` and lints everything, returning
/// findings sorted by path and line.
pub fn lint_workspace(root: &Path) -> Result<Vec<FileFinding>, String> {
    let files =
        walk::workspace_rs_files(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    lint_files(&files)
}
