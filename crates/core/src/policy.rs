//! The global policy table (paper §IV-A).
//!
//! The LiveSec controller keeps a policy table, pre-configured by the
//! network administrator, that decides for each end-to-end flow whether
//! it is allowed, denied, or must traverse a chain of security service
//! elements before delivery.

use livesec_net::{FlowKey, Ipv4Net, MacAddr};
use livesec_openflow::Match;
use livesec_services::ServiceType;
use serde::{Deserialize, Serialize};

/// What the policy table decides for a flow.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum PolicyDecision {
    /// Forward directly (two-hop routing, no services).
    Allow,
    /// Install a drop rule at the ingress switch.
    Deny,
    /// Steer through one element of each listed service type, in
    /// order, then deliver.
    Chain(Vec<ServiceType>),
}

/// What to do when a flow's application protocol is identified.
///
/// This backs the paper's "aggregate flow control" (§IV-C): e.g. block
/// or keep monitoring BitTorrent once the protocol-identification SE
/// labels a flow.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum AppAction {
    /// Leave the flow alone.
    Allow,
    /// Block the flow at its ingress switch.
    Block,
}

/// One policy rule: selectors (all optional, ANDed) plus a decision.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct PolicyRule {
    /// Administrator-facing rule name (shows up in monitor events).
    pub name: String,
    /// Source IP prefix selector.
    pub src: Option<Ipv4Net>,
    /// Destination IP prefix selector.
    pub dst: Option<Ipv4Net>,
    /// Source MAC selector (a specific user).
    pub src_mac: Option<MacAddr>,
    /// IP protocol selector.
    pub proto: Option<u8>,
    /// Destination transport port selector.
    pub dst_port: Option<u16>,
    /// The decision when all selectors match.
    pub decision: PolicyDecision,
}

impl PolicyRule {
    /// Starts a rule with the given name that matches everything and
    /// allows; refine with the builder methods.
    pub fn named(name: &str) -> Self {
        PolicyRule {
            name: name.to_owned(),
            src: None,
            dst: None,
            src_mac: None,
            proto: None,
            dst_port: None,
            decision: PolicyDecision::Allow,
        }
    }

    /// Restricts to flows from this source prefix.
    pub fn src(mut self, net: Ipv4Net) -> Self {
        self.src = Some(net);
        self
    }

    /// Restricts to flows to this destination prefix.
    pub fn dst(mut self, net: Ipv4Net) -> Self {
        self.dst = Some(net);
        self
    }

    /// Restricts to flows from this user (source MAC).
    pub fn src_mac(mut self, mac: MacAddr) -> Self {
        self.src_mac = Some(mac);
        self
    }

    /// Restricts to this IP protocol.
    pub fn proto(mut self, proto: u8) -> Self {
        self.proto = Some(proto);
        self
    }

    /// Restricts to this destination port.
    pub fn dst_port(mut self, port: u16) -> Self {
        self.dst_port = Some(port);
        self
    }

    /// Sets the decision to steer through `services`.
    pub fn chain(mut self, services: Vec<ServiceType>) -> Self {
        self.decision = PolicyDecision::Chain(services);
        self
    }

    /// Sets the decision to deny.
    pub fn deny(mut self) -> Self {
        self.decision = PolicyDecision::Deny;
        self
    }

    /// Sets the decision to allow.
    pub fn allow(mut self) -> Self {
        self.decision = PolicyDecision::Allow;
        self
    }

    /// Whether this rule's selectors all match `key`.
    pub fn matches(&self, key: &FlowKey) -> bool {
        self.src.map(|n| n.contains(key.nw_src)).unwrap_or(true)
            && self.dst.map(|n| n.contains(key.nw_dst)).unwrap_or(true)
            && self.src_mac.map(|m| m == key.dl_src).unwrap_or(true)
            && self.proto.map(|p| p == key.nw_proto).unwrap_or(true)
            && self.dst_port.map(|p| p == key.tp_dst).unwrap_or(true)
    }

    /// The header-space cube this rule's selectors carve out, as an
    /// OpenFlow matcher (in_port wildcarded).
    ///
    /// For every port `p` and key `k`,
    /// `rule.matches(&k) == rule.matcher().matches(p, &k)` — the cube
    /// is exactly the set of flows the rule governs, which is what
    /// scoped cache invalidation and incremental verification key on.
    pub fn matcher(&self) -> Match {
        let mut m = Match::any();
        if let Some(net) = self.src {
            m = m.with_nw_src(net);
        }
        if let Some(net) = self.dst {
            m = m.with_nw_dst(net);
        }
        if let Some(mac) = self.src_mac {
            m = m.with_dl_src(mac);
        }
        if let Some(proto) = self.proto {
            m = m.with_nw_proto(proto);
        }
        if let Some(port) = self.dst_port {
            m = m.with_tp_dst(port);
        }
        m
    }
}

/// One edit to a [`PolicyTable`] — the unit the policy delta compiler
/// emits and [`PolicyTable::apply_delta`] consumes.
///
/// Rule identity is the rule *name*: removes and replaces address the
/// first rule with the given name, so tables driven through deltas
/// should keep names unique (the DSL checker enforces this).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum PolicyDelta {
    /// Insert `rule` so that it evaluates at position `index` in the
    /// resulting table (clamped to the table length).
    Insert {
        /// Evaluation position for the new rule.
        index: usize,
        /// The rule to insert.
        rule: PolicyRule,
    },
    /// Remove the rule named `name`.
    Remove {
        /// Name of the rule to remove.
        name: String,
    },
    /// Replace the same-named rule's selectors and decision in place
    /// (evaluation position is preserved).
    Replace {
        /// The replacement; `rule.name` selects the slot.
        rule: PolicyRule,
    },
    /// Change the table's default decision.
    SetDefault {
        /// The new default decision.
        decision: PolicyDecision,
    },
    /// Set (`Some`) or clear (`None`) the action taken when a flow is
    /// identified as application `app`.
    SetAppAction {
        /// The application label.
        app: String,
        /// The new action, or `None` to remove the entry.
        action: Option<AppAction>,
    },
}

/// The ordered, first-match-wins policy table.
///
/// ```rust
/// use livesec::policy::{PolicyRule, PolicyTable, PolicyDecision};
/// use livesec_services::ServiceType;
///
/// let mut table = PolicyTable::allow_all();
/// table.push(PolicyRule::named("no-telnet").dst_port(23).deny());
/// table.push(PolicyRule::named("ids-web")
///     .dst_port(80)
///     .chain(vec![ServiceType::IntrusionDetection]));
/// assert_eq!(table.len(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct PolicyTable {
    rules: Vec<PolicyRule>,
    default_decision: PolicyDecision,
    /// Actions applied when an application label is reported for a
    /// flow (aggregate flow control).
    app_actions: Vec<(String, AppAction)>,
}

impl PolicyTable {
    /// An empty table that allows everything by default.
    pub fn allow_all() -> Self {
        PolicyTable {
            rules: Vec::new(),
            default_decision: PolicyDecision::Allow,
            app_actions: Vec::new(),
        }
    }

    /// An empty table that denies everything by default.
    pub fn deny_all() -> Self {
        PolicyTable {
            rules: Vec::new(),
            default_decision: PolicyDecision::Deny,
            app_actions: Vec::new(),
        }
    }

    /// A table whose default decision steers every flow through
    /// `services` — the paper's full-mesh security posture.
    pub fn steer_all(services: Vec<ServiceType>) -> Self {
        PolicyTable {
            rules: Vec::new(),
            default_decision: PolicyDecision::Chain(services),
            app_actions: Vec::new(),
        }
    }

    /// Appends a rule (evaluated after all earlier rules).
    pub fn push(&mut self, rule: PolicyRule) -> &mut Self {
        self.rules.push(rule);
        self
    }

    /// Registers an action to take when a flow is identified as
    /// `app`. Re-registering an app replaces its action. The list is
    /// kept sorted by app name so a table's app actions compare equal
    /// whatever order they were registered (or delta-edited) in.
    pub fn on_app(&mut self, app: &str, action: AppAction) -> &mut Self {
        match self
            .app_actions
            .binary_search_by(|(a, _)| a.as_str().cmp(app))
        {
            Ok(at) => self.app_actions[at].1 = action,
            Err(at) => self.app_actions.insert(at, (app.to_owned(), action)),
        }
        self
    }

    /// Looks up the decision for a flow, with the matched rule's name
    /// (`None` for the default decision).
    pub fn decide(&self, key: &FlowKey) -> (&PolicyDecision, Option<&str>) {
        for rule in &self.rules {
            if rule.matches(key) {
                return (&rule.decision, Some(&rule.name));
            }
        }
        (&self.default_decision, None)
    }

    /// The action registered for an identified application, if any.
    pub fn app_action(&self, app: &str) -> Option<AppAction> {
        self.app_actions
            .iter()
            .find(|(a, _)| a == app)
            .map(|(_, act)| *act)
    }

    /// The rule named `name`, if present (first occurrence).
    pub fn get(&self, name: &str) -> Option<&PolicyRule> {
        self.rules.iter().find(|r| r.name == name)
    }

    /// Evaluation position of the rule named `name`, if present.
    pub fn position_of(&self, name: &str) -> Option<usize> {
        self.rules.iter().position(|r| r.name == name)
    }

    /// Inserts `rule` so it evaluates at `index` (clamped to the
    /// table length).
    pub fn insert_at(&mut self, index: usize, rule: PolicyRule) {
        let at = index.min(self.rules.len());
        self.rules.insert(at, rule);
    }

    /// Removes the first rule named `name`; returns whether a rule
    /// was removed.
    pub fn remove_named(&mut self, name: &str) -> bool {
        match self.position_of(name) {
            Some(at) => {
                self.rules.remove(at);
                true
            }
            None => false,
        }
    }

    /// Replaces the same-named rule in place, preserving its
    /// evaluation position; returns whether a slot was found.
    pub fn replace_named(&mut self, rule: PolicyRule) -> bool {
        match self.position_of(&rule.name) {
            Some(at) => {
                self.rules[at] = rule;
                true
            }
            None => false,
        }
    }

    /// Sets the default decision.
    pub fn set_default(&mut self, decision: PolicyDecision) {
        self.default_decision = decision;
    }

    /// The current default decision.
    pub fn default_decision(&self) -> &PolicyDecision {
        &self.default_decision
    }

    /// The registered application actions, sorted by app name.
    pub fn app_actions(&self) -> &[(String, AppAction)] {
        &self.app_actions
    }

    /// Applies one [`PolicyDelta`]; returns whether the table changed
    /// (a `Remove`/`Replace` naming an absent rule is a no-op).
    pub fn apply_delta(&mut self, delta: &PolicyDelta) -> bool {
        match delta {
            PolicyDelta::Insert { index, rule } => {
                self.insert_at(*index, rule.clone());
                true
            }
            PolicyDelta::Remove { name } => self.remove_named(name),
            PolicyDelta::Replace { rule } => self.replace_named(rule.clone()),
            PolicyDelta::SetDefault { decision } => {
                let changed = self.default_decision != *decision;
                self.default_decision = decision.clone();
                changed
            }
            PolicyDelta::SetAppAction { app, action } => match action {
                Some(act) => {
                    let changed = self.app_action(app) != Some(*act);
                    self.on_app(app, *act);
                    changed
                }
                None => {
                    let before = self.app_actions.len();
                    self.app_actions.retain(|(a, _)| a != app);
                    self.app_actions.len() != before
                }
            },
        }
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the table has no explicit rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Iterates over the rules in evaluation order.
    pub fn iter(&self) -> impl Iterator<Item = &PolicyRule> {
        self.rules.iter()
    }
}

impl Default for PolicyTable {
    fn default() -> Self {
        PolicyTable::allow_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(dst_port: u16) -> FlowKey {
        FlowKey {
            vlan: None,
            dl_src: MacAddr::from_u64(1),
            dl_dst: MacAddr::from_u64(2),
            dl_type: 0x0800,
            nw_src: "10.0.0.5".parse().unwrap(),
            nw_dst: "8.8.8.8".parse().unwrap(),
            nw_proto: 6,
            tp_src: 40000,
            tp_dst: dst_port,
        }
    }

    #[test]
    fn default_decisions() {
        assert_eq!(
            PolicyTable::allow_all().decide(&key(80)).0,
            &PolicyDecision::Allow
        );
        assert_eq!(
            PolicyTable::deny_all().decide(&key(80)).0,
            &PolicyDecision::Deny
        );
        let steer = PolicyTable::steer_all(vec![ServiceType::IntrusionDetection]);
        assert_eq!(
            steer.decide(&key(80)).0,
            &PolicyDecision::Chain(vec![ServiceType::IntrusionDetection])
        );
    }

    #[test]
    fn first_match_wins() {
        let mut t = PolicyTable::allow_all();
        t.push(PolicyRule::named("deny-telnet").dst_port(23).deny());
        t.push(PolicyRule::named("ids-all").chain(vec![ServiceType::IntrusionDetection]));
        let (d, name) = t.decide(&key(23));
        assert_eq!(d, &PolicyDecision::Deny);
        assert_eq!(name, Some("deny-telnet"));
        let (d, name) = t.decide(&key(80));
        assert!(matches!(d, PolicyDecision::Chain(_)));
        assert_eq!(name, Some("ids-all"));
    }

    #[test]
    fn selectors_compose() {
        let rule = PolicyRule::named("lab-web-ids")
            .src("10.0.0.0/24".parse().unwrap())
            .proto(6)
            .dst_port(80)
            .chain(vec![ServiceType::IntrusionDetection]);
        assert!(rule.matches(&key(80)));
        assert!(!rule.matches(&key(443)), "wrong port");
        let mut external = key(80);
        external.nw_src = "192.168.1.1".parse().unwrap();
        assert!(!rule.matches(&external), "wrong subnet");
        let mut udp = key(80);
        udp.nw_proto = 17;
        assert!(
            !udp.nw_src.is_unspecified() && !rule.matches(&udp),
            "wrong proto"
        );
    }

    #[test]
    fn per_user_rule() {
        let mut t = PolicyTable::allow_all();
        t.push(
            PolicyRule::named("quarantine-user")
                .src_mac(MacAddr::from_u64(1))
                .deny(),
        );
        assert_eq!(t.decide(&key(80)).0, &PolicyDecision::Deny);
        let mut other = key(80);
        other.dl_src = MacAddr::from_u64(9);
        assert_eq!(t.decide(&other).0, &PolicyDecision::Allow);
    }

    #[test]
    fn app_actions() {
        let mut t = PolicyTable::allow_all();
        t.on_app("bittorrent", AppAction::Block);
        assert_eq!(t.app_action("bittorrent"), Some(AppAction::Block));
        assert_eq!(t.app_action("http"), None);
    }

    #[test]
    fn matcher_agrees_with_matches() {
        let rules = [
            PolicyRule::named("any"),
            PolicyRule::named("net").src("10.0.0.0/24".parse().unwrap()),
            PolicyRule::named("dst").dst("8.8.8.0/24".parse().unwrap()),
            PolicyRule::named("mac").src_mac(MacAddr::from_u64(1)),
            PolicyRule::named("proto").proto(17),
            PolicyRule::named("port").dst_port(443),
            PolicyRule::named("all")
                .src("10.0.0.0/8".parse().unwrap())
                .dst("8.8.8.8/32".parse().unwrap())
                .src_mac(MacAddr::from_u64(1))
                .proto(6)
                .dst_port(80),
        ];
        let keys = [key(80), key(443), key(23)];
        let mut other = key(80);
        other.dl_src = MacAddr::from_u64(9);
        other.nw_src = "192.168.1.1".parse().unwrap();
        other.nw_proto = 17;
        for rule in &rules {
            for k in keys.iter().chain([&other]) {
                for port in [0u32, 1, 7] {
                    assert_eq!(
                        rule.matches(k),
                        rule.matcher().matches(port, k),
                        "rule {} disagrees with its cube on {k:?}",
                        rule.name
                    );
                }
            }
        }
    }

    #[test]
    fn apply_delta_edits_in_place() {
        let mut t = PolicyTable::allow_all();
        t.push(PolicyRule::named("a").dst_port(23).deny());
        t.push(PolicyRule::named("b").dst_port(80).allow());

        // Insert at a clamped position.
        assert!(t.apply_delta(&PolicyDelta::Insert {
            index: 99,
            rule: PolicyRule::named("c").deny(),
        }));
        assert_eq!(t.position_of("c"), Some(2));

        // Replace preserves evaluation order.
        assert!(t.apply_delta(&PolicyDelta::Replace {
            rule: PolicyRule::named("a").dst_port(23).allow(),
        }));
        assert_eq!(t.position_of("a"), Some(0));
        assert_eq!(t.decide(&key(23)).0, &PolicyDecision::Allow);

        // Remove by name; absent names are a no-op.
        assert!(t.apply_delta(&PolicyDelta::Remove { name: "b".into() }));
        assert!(!t.apply_delta(&PolicyDelta::Remove {
            name: "ghost".into()
        }));
        assert!(!t.apply_delta(&PolicyDelta::Replace {
            rule: PolicyRule::named("ghost").deny(),
        }));
        assert_eq!(t.len(), 2);

        // Default + app actions.
        assert!(t.apply_delta(&PolicyDelta::SetDefault {
            decision: PolicyDecision::Deny,
        }));
        assert_eq!(t.default_decision(), &PolicyDecision::Deny);
        assert!(t.apply_delta(&PolicyDelta::SetAppAction {
            app: "bittorrent".into(),
            action: Some(AppAction::Block),
        }));
        assert_eq!(t.app_action("bittorrent"), Some(AppAction::Block));
        assert!(t.apply_delta(&PolicyDelta::SetAppAction {
            app: "bittorrent".into(),
            action: None,
        }));
        assert_eq!(t.app_action("bittorrent"), None);
    }

    #[test]
    fn table_introspection() {
        let mut t = PolicyTable::allow_all();
        assert!(t.is_empty());
        t.push(PolicyRule::named("a").allow());
        t.push(PolicyRule::named("b").deny());
        assert_eq!(t.len(), 2);
        let names: Vec<&str> = t.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
