//! Known-bad fixture for `panic-path`: slice indexes that can panic
//! in production code.

pub fn tail(buf: &[u8], used: usize) -> u8 {
    // Bad: `buf.len() - used` underflows when used > len, and the
    // index itself can be out of range.
    buf[buf.len() - used]
}

pub fn at(table: &[u32], slot: usize) -> u32 {
    // Bad: `slot` is a caller-controlled integer parameter used as an
    // index with no bound check.
    table[slot]
}
