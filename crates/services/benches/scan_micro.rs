//! Micro-benchmarks: payload scanning — the Aho–Corasick core and the
//! full IDS/proto-id engines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use livesec_net::{FlowKey, MacAddr};
use livesec_services::{AhoCorasick, IdsEngine, Inspector, ProtoIdEngine};

fn flow(i: u16) -> FlowKey {
    FlowKey {
        vlan: None,
        dl_src: MacAddr::from_u64(1),
        dl_dst: MacAddr::from_u64(2),
        dl_type: 0x0800,
        nw_src: "10.0.0.1".parse().unwrap(),
        nw_dst: "10.0.0.2".parse().unwrap(),
        nw_proto: 6,
        tp_src: i,
        tp_dst: 80,
    }
}

fn bench_aho(c: &mut Criterion) {
    let patterns: Vec<Vec<u8>> = IdsEngine::default_rules()
        .into_iter()
        .map(|r| r.pattern)
        .collect();
    let ac = AhoCorasick::new(&patterns);
    let mut g = c.benchmark_group("aho_corasick_scan");
    for size in [64usize, 1448, 16 * 1024] {
        // Clean payload: the common case on a production network.
        let hay: Vec<u8> = (0..size).map(|i| b"the quick brown fox "[i % 20]).collect();
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &hay, |b, hay| {
            b.iter(|| ac.find_first(hay))
        });
    }
    g.finish();
}

fn bench_engines(c: &mut Criterion) {
    c.bench_function("ids_engine_clean_packet", |b| {
        let mut ids = IdsEngine::engine();
        let payload = b"GET /index.html HTTP/1.1\r\nHost: example.com\r\n\r\n";
        let mut i = 0u16;
        b.iter(|| {
            i = i.wrapping_add(1);
            ids.inspect(&flow(i), payload)
        })
    });
    c.bench_function("protoid_classify", |b| {
        b.iter(|| ProtoIdEngine::classify(b"GET / HTTP/1.1\r\n", 5000, 80))
    });
}

criterion_group!(benches, bench_aho, bench_engines);
criterion_main!(benches);
