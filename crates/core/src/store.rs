//! The [`StateStore`] trait — the network-state interface the pure
//! flow-setup decision engine ([`crate::engine`]) consumes.
//!
//! Splitting [`crate::Controller`] into a decision engine plus a state
//! store (DESIGN.md §9) is what makes the control plane shardable:
//! every shard runs the same engine, and which store it reads — the
//! live controller NIB, or a standalone [`NetworkState`] in a bench —
//! is an implementation detail. The controller itself implements
//! `StateStore` directly over its NIB, so sharding never copies state.

use crate::balance::{LoadBalancer, SeRegistry};
use crate::policy::{PolicyDecision, PolicyTable};
use crate::routing::Hop;
use livesec_net::{FlowKey, MacAddr};
use livesec_services::ServiceType;
use std::collections::BTreeMap;

/// What the decision engine needs to know about the network, and the
/// one thing it mutates (the stateful balancer pick).
///
/// Method order mirrors the engine's call order on the cold path:
/// policy decision, then per-service picks, then hop lookups, then
/// uplink lookups during path compilation.
pub trait StateStore {
    /// The policy verdict for a flow, with the matching rule's name.
    fn decide_policy(&self, key: &FlowKey) -> (PolicyDecision, Option<String>);

    /// Picks a replica of `service` for the flow. Stateful: dispatch
    /// counters and stickiness advance exactly once per call, so the
    /// engine calls it precisely where the monolithic cold path did.
    fn pick_element(&mut self, service: ServiceType, key: &FlowKey) -> Option<MacAddr>;

    /// Where a MAC is attached, if known.
    fn hop_of(&self, mac: MacAddr) -> Option<Hop>;

    /// The uplink port of a switch, if discovered.
    fn uplink_of(&self, dpid: u64) -> Option<u32>;

    /// Whether a chain with an unavailable service is admitted
    /// (fail-open) or denied (fail-closed, the default).
    fn fail_open(&self) -> bool;
}

/// A self-contained [`StateStore`]: policy, registry, balancer and a
/// static location/topology map, with no controller or simulation
/// around them. This is what the `shard_scaling` bench and the engine
/// unit tests drive — a synthetic 100k-host campus fits in one of
/// these with no per-host simulation cost.
#[derive(Debug)]
pub struct NetworkState {
    /// The policy table consulted by `decide_policy`.
    pub policy: PolicyTable,
    /// The service-element registry the balancer picks from.
    pub registry: SeRegistry,
    /// The (stateful) load balancer.
    pub balancer: LoadBalancer,
    /// MAC → (dpid, port) attachment points. Ordered for determinism.
    pub locations: BTreeMap<MacAddr, (u64, u32)>,
    /// dpid → uplink port. Ordered for determinism.
    pub uplinks: BTreeMap<u64, u32>,
    /// Fail-open admission (see [`StateStore::fail_open`]).
    pub fail_open: bool,
}

impl NetworkState {
    /// An empty store: allow-all policy, minimum-load balancer, no
    /// hosts, fail-closed.
    pub fn new() -> Self {
        NetworkState {
            policy: PolicyTable::allow_all(),
            registry: SeRegistry::new(),
            balancer: LoadBalancer::min_load(),
            locations: BTreeMap::new(),
            uplinks: BTreeMap::new(),
            fail_open: false,
        }
    }

    /// Attaches `mac` at `(dpid, port)`.
    pub fn locate(&mut self, mac: MacAddr, dpid: u64, port: u32) {
        self.locations.insert(mac, (dpid, port));
    }

    /// Declares `port` the uplink of `dpid`.
    pub fn set_uplink(&mut self, dpid: u64, port: u32) {
        self.uplinks.insert(dpid, port);
    }
}

impl Default for NetworkState {
    fn default() -> Self {
        NetworkState::new()
    }
}

impl StateStore for NetworkState {
    fn decide_policy(&self, key: &FlowKey) -> (PolicyDecision, Option<String>) {
        let (decision, rule) = self.policy.decide(key);
        (decision.clone(), rule.map(str::to_owned))
    }

    fn pick_element(&mut self, service: ServiceType, key: &FlowKey) -> Option<MacAddr> {
        self.balancer.pick(&self.registry, service, key)
    }

    fn hop_of(&self, mac: MacAddr) -> Option<Hop> {
        let (dpid, port) = *self.locations.get(&mac)?;
        Some(Hop { mac, dpid, port })
    }

    fn uplink_of(&self, dpid: u64) -> Option<u32> {
        self.uplinks.get(&dpid).copied()
    }

    fn fail_open(&self) -> bool {
        self.fail_open
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standalone_store_answers_like_its_maps() {
        let mut s = NetworkState::new();
        let mac = MacAddr::from_u64(0xa1);
        assert!(s.hop_of(mac).is_none());
        s.locate(mac, 7, 3);
        s.set_uplink(7, 40);
        let hop = s.hop_of(mac).expect("located");
        assert_eq!((hop.dpid, hop.port), (7, 3));
        assert_eq!(s.uplink_of(7), Some(40));
        assert_eq!(s.uplink_of(8), None);
        assert!(!s.fail_open());
    }
}
