//! GOOD twin of `ls501_shared_mut_bad.rs`: test-gated state is
//! exempt, a deliberately shared field carries a reasoned allow, and
//! production functions hand out owned data.

struct Worker {
    // livesec-lint: allow(shared-mut-state, reason = "single consumer; populated before workers start, read-only after")
    table: Mutex<Vec<u32>>,
    snapshot: Vec<u8>,
}

fn expose() -> Vec<u8> {
    Vec::new()
}

#[cfg(test)]
mod tests {
    static mut TEST_HOOK: u64 = 0;

    struct Probe {
        cell: RefCell<u32>,
    }
}
