//! Recursive-descent parser from the [`crate::lexer`] token stream to
//! the lightweight AST in [`crate::ast`].
//!
//! Design goals, in order: **never panic, always terminate** (every
//! loop provably advances the cursor, enforced by recovery bumps),
//! parse the whole workspace without recoveries (a meta-test asserts
//! this), and stay dependency-free. Fidelity is "enough for the
//! rules": types and patterns flatten to identifier lists, while
//! expressions — the thing dataflow walks — are fully structured via
//! a Pratt loop with Rust's operator precedence.
//!
//! Composite operators (`::`, `=>`, `->`, `..`, `&&`, `+=`, ...) are
//! reassembled from adjacent single-char `Punct` tokens using byte
//! offsets, the same trick the v1 pattern rules used.

use crate::ast::{Arm, BinOp, Block, Expr, FieldDef, File, FnItem, Item, Param, Stmt, TypeRef};
use crate::lexer::{lex, Token, TokenKind};

/// Parses one file of Rust source. Never fails; malformed input shows
/// up as [`crate::ast::File::recoveries`] entries instead.
pub fn parse(src: &str) -> File {
    parse_tokens(&lex(src).tokens)
}

/// Parses an arbitrary token stream (the property tests feed this
/// garbage directly, bypassing the lexer).
pub fn parse_tokens(toks: &[Token]) -> File {
    let mut p = Parser {
        toks,
        pos: 0,
        recoveries: Vec::new(),
    };
    let items = p.items_until_end();
    File {
        items,
        recoveries: p.recoveries,
    }
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
    recoveries: Vec<crate::ast::Recovery>,
}

/// Identifiers that cannot be user bindings; pattern/param scans drop
/// these when collecting names.
fn is_pattern_keyword(s: &str) -> bool {
    matches!(
        s,
        "mut"
            | "ref"
            | "box"
            | "_"
            | "if"
            | "in"
            | "as"
            | "const"
            | "move"
            | "dyn"
            | "true"
            | "false"
            | "None" // unit-variant, never a binding in this codebase's patterns
    )
}

impl<'a> Parser<'a> {
    // ---- token helpers ------------------------------------------------

    fn peek(&self) -> Option<&'a Token> {
        self.toks.get(self.pos)
    }

    fn nth(&self, k: usize) -> Option<&'a Token> {
        self.toks.get(self.pos + k)
    }

    fn line(&self) -> u32 {
        self.peek()
            .or_else(|| self.toks.last())
            .map_or(1, |t| t.line)
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skips one token and records that the parser could not place it.
    fn bump_recover(&mut self, context: &'static str) {
        let line = self.line();
        self.recoveries.push(crate::ast::Recovery { line, context });
        self.bump();
    }

    fn at(&self, s: &str) -> bool {
        self.peek().is_some_and(|t| t.text == s)
    }

    fn at_kw(&self, s: &str) -> bool {
        self.peek()
            .is_some_and(|t| t.kind == TokenKind::Ident && t.text == s)
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.at(s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Whether tokens `pos+k` and `pos+k+1` are byte-adjacent (so two
    /// puncts form one composite operator).
    fn joint(&self, k: usize) -> bool {
        match (self.nth(k), self.nth(k + 1)) {
            (Some(a), Some(b)) => a.start + a.text.len() == b.start,
            _ => false,
        }
    }

    /// `at2("&","&")` — two adjacent puncts forming `&&` etc.
    fn at2(&self, a: &str, b: &str) -> bool {
        self.at(a) && self.nth(1).is_some_and(|t| t.text == b) && self.joint(0)
    }

    fn eat2(&mut self, a: &str, b: &str) -> bool {
        if self.at2(a, b) {
            self.pos += 2;
            true
        } else {
            false
        }
    }

    /// Path separator `::`.
    fn at_colons(&self) -> bool {
        self.at2(":", ":")
    }

    /// A *single* `:` (not part of `::`).
    fn at_single_colon(&self) -> bool {
        self.at(":") && !self.at2(":", ":")
    }

    // ---- attributes ---------------------------------------------------

    /// Skips `#[...]` / `#![...]` attributes; returns true when any of
    /// them gates the item to test builds (`#[test]`, `#[cfg(test)]`,
    /// but *not* `#[cfg(not(test))]`).
    fn skip_attrs(&mut self) -> bool {
        let mut cfg_test = false;
        while self.at("#") {
            let mut k = 1;
            if self.nth(k).is_some_and(|t| t.text == "!") {
                k += 1;
            }
            if self.nth(k).is_none_or(|t| t.text != "[") {
                break; // `#` not starting an attribute: leave for expr
            }
            self.pos += k + 1;
            let mut depth = 1i32;
            let mut saw_test = false;
            let mut saw_not = false;
            while let Some(t) = self.bump() {
                match t.text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    "test" if t.kind == TokenKind::Ident => saw_test = true,
                    "not" if t.kind == TokenKind::Ident => saw_not = true,
                    _ => {}
                }
            }
            if saw_test && !saw_not {
                cfg_test = true;
            }
        }
        cfg_test
    }

    // ---- items --------------------------------------------------------

    fn items_until_end(&mut self) -> Vec<Item> {
        let mut items = Vec::new();
        while self.pos < self.toks.len() {
            let before = self.pos;
            items.push(self.parse_item());
            if self.pos == before {
                self.bump_recover("item");
            }
        }
        items
    }

    fn items_until_close(&mut self) -> Vec<Item> {
        let mut items = Vec::new();
        while self.pos < self.toks.len() && !self.at("}") {
            let before = self.pos;
            items.push(self.parse_item());
            if self.pos == before {
                self.bump_recover("item");
            }
        }
        self.eat("}");
        items
    }

    fn parse_item(&mut self) -> Item {
        let cfg_test = self.skip_attrs();
        let line = self.line();
        if self.eat("pub") {
            // `pub(crate)` / `pub(super)` / `pub(in path)`.
            if self.at("(") {
                self.skip_balanced("(", ")");
            }
        }
        // Fn qualifiers (`const fn`, `unsafe fn`, `async fn`,
        // `extern "C" fn`). A bare `const NAME` is a const item.
        if (self.at_kw("const") && self.nth(1).is_some_and(|t| t.text == "fn"))
            || self.at_kw("unsafe") && self.nth(1).is_some_and(|t| t.text == "fn")
            || self.at_kw("async")
        {
            self.bump();
        }
        if self.at_kw("extern") && self.nth(1).is_some_and(|t| t.kind == TokenKind::Literal) {
            self.bump();
            self.bump();
        }

        if self.at_kw("fn") {
            return Item::Fn(self.parse_fn(cfg_test));
        }
        if self.at_kw("struct") {
            return self.parse_struct();
        }
        if self.at_kw("enum") {
            return self.parse_enum();
        }
        if self.at_kw("trait") {
            return self.parse_trait();
        }
        if self.at_kw("impl") {
            return self.parse_impl(cfg_test);
        }
        if self.at_kw("mod") {
            return self.parse_mod(cfg_test);
        }
        if self.at_kw("type") {
            return self.parse_type_alias();
        }
        if self.at_kw("const") || self.at_kw("static") {
            return self.parse_const();
        }
        if self.at_kw("use") || self.at_kw("extern") {
            self.skip_to_semi();
            return Item::Other { line };
        }
        // Item-level macro invocation (`macro_rules!`, `thread_local!`).
        if self.peek().is_some_and(|t| t.kind == TokenKind::Ident)
            && self.nth(1).is_some_and(|t| t.text == "!")
        {
            self.bump(); // name
            self.bump(); // !
            if self.peek().is_some_and(|t| t.kind == TokenKind::Ident) {
                self.bump(); // `macro_rules! name`
            }
            match self.peek().map(|t| t.text.as_str()) {
                Some("{") => self.skip_balanced("{", "}"),
                Some("(") => {
                    self.skip_balanced("(", ")");
                    self.eat(";");
                }
                Some("[") => {
                    self.skip_balanced("[", "]");
                    self.eat(";");
                }
                _ => {}
            }
            return Item::Other { line };
        }
        self.bump_recover("item");
        Item::Other { line }
    }

    fn parse_fn(&mut self, cfg_test: bool) -> FnItem {
        let line = self.line();
        self.eat("fn");
        let name = self.ident_or("_fn");
        if self.at("<") {
            self.skip_angles();
        }
        let params = self.parse_params();
        let ret = if self.eat2("-", ">") {
            Some(self.parse_type(|p| p.at("{") || p.at(";") || p.at_kw("where")))
        } else {
            None
        };
        if self.at_kw("where") {
            self.skip_where();
        }
        let body = if self.eat(";") {
            None
        } else if self.at("{") {
            Some(self.parse_block())
        } else {
            None
        };
        FnItem {
            name,
            line,
            params,
            ret,
            body,
            cfg_test,
        }
    }

    fn parse_params(&mut self) -> Vec<Param> {
        let mut params = Vec::new();
        if !self.eat("(") {
            return params;
        }
        while self.pos < self.toks.len() && !self.at(")") {
            let before = self.pos;
            self.skip_attrs();
            // Self receiver: `self`, `&self`, `&mut self`, `&'a self`,
            // `mut self`, `self: Type`.
            let mut k = 0;
            while self
                .nth(k)
                .is_some_and(|t| t.text == "&" || t.text == "mut" || t.kind == TokenKind::Lifetime)
            {
                k += 1;
            }
            if self.nth(k).is_some_and(|t| t.text == "self") {
                self.pos += k + 1;
                if self.at_single_colon() {
                    self.bump();
                    self.parse_type(|p| p.at(",") || p.at(")"));
                }
                params.push(Param {
                    name: "self".to_string(),
                    ty: TypeRef::default(),
                });
            } else {
                let idents = self.scan_pattern(|p| p.at_single_colon() || p.at(",") || p.at(")"));
                let ty = if self.at_single_colon() {
                    self.bump();
                    self.parse_type(|p| p.at(",") || p.at(")"))
                } else {
                    TypeRef::default()
                };
                let name = idents.last().cloned().unwrap_or_default();
                params.push(Param { name, ty });
            }
            if !self.eat(",") && !self.at(")") && self.pos == before {
                self.bump_recover("param");
            }
        }
        self.eat(")");
        params
    }

    fn parse_struct(&mut self) -> Item {
        let line = self.line();
        self.eat("struct");
        let name = self.ident_or("_struct");
        if self.at("<") {
            self.skip_angles();
        }
        if self.at_kw("where") {
            self.skip_where();
        }
        let mut fields = Vec::new();
        if self.eat(";") {
            // unit struct
        } else if self.eat("(") {
            while self.pos < self.toks.len() && !self.at(")") {
                let before = self.pos;
                self.skip_attrs();
                if self.eat("pub") && self.at("(") {
                    self.skip_balanced("(", ")");
                }
                let fline = self.line();
                let ty = self.parse_type(|p| p.at(",") || p.at(")"));
                fields.push(FieldDef {
                    name: String::new(),
                    ty,
                    line: fline,
                });
                if !self.eat(",") && self.pos == before {
                    self.bump_recover("struct");
                }
            }
            self.eat(")");
            if self.at_kw("where") {
                self.skip_where();
            }
            self.eat(";");
        } else if self.eat("{") {
            while self.pos < self.toks.len() && !self.at("}") {
                let before = self.pos;
                self.skip_attrs();
                if self.eat("pub") && self.at("(") {
                    self.skip_balanced("(", ")");
                }
                let fline = self.line();
                let fname = self.ident_or("");
                let ty = if self.at_single_colon() {
                    self.bump();
                    self.parse_type(|p| p.at(",") || p.at("}"))
                } else {
                    TypeRef::default()
                };
                fields.push(FieldDef {
                    name: fname,
                    ty,
                    line: fline,
                });
                if !self.eat(",") && !self.at("}") && self.pos == before {
                    self.bump_recover("struct");
                }
            }
            self.eat("}");
        }
        Item::Struct { name, fields, line }
    }

    fn parse_enum(&mut self) -> Item {
        let line = self.line();
        self.eat("enum");
        let name = self.ident_or("_enum");
        if self.at("<") {
            self.skip_angles();
        }
        if self.at_kw("where") {
            self.skip_where();
        }
        let mut fields = Vec::new();
        if self.eat("{") {
            while self.pos < self.toks.len() && !self.at("}") {
                let before = self.pos;
                self.skip_attrs();
                let vline = self.line();
                let vname = self.ident_or("");
                if self.eat("(") {
                    while self.pos < self.toks.len() && !self.at(")") {
                        let b2 = self.pos;
                        let ty = self.parse_type(|p| p.at(",") || p.at(")"));
                        fields.push(FieldDef {
                            name: vname.clone(),
                            ty,
                            line: vline,
                        });
                        if !self.eat(",") && self.pos == b2 {
                            self.bump_recover("enum");
                        }
                    }
                    self.eat(")");
                } else if self.eat("{") {
                    while self.pos < self.toks.len() && !self.at("}") {
                        let b2 = self.pos;
                        self.skip_attrs();
                        self.ident_or("");
                        if self.at_single_colon() {
                            self.bump();
                            let ty = self.parse_type(|p| p.at(",") || p.at("}"));
                            fields.push(FieldDef {
                                name: vname.clone(),
                                ty,
                                line: vline,
                            });
                        }
                        if !self.eat(",") && !self.at("}") && self.pos == b2 {
                            self.bump_recover("enum");
                        }
                    }
                    self.eat("}");
                }
                if self.eat("=") {
                    // Explicit discriminant.
                    self.parse_expr(0, false);
                }
                if !self.eat(",") && !self.at("}") && self.pos == before {
                    self.bump_recover("enum");
                }
            }
            self.eat("}");
        } else {
            self.eat(";");
        }
        Item::Enum { name, fields, line }
    }

    fn parse_trait(&mut self) -> Item {
        let line = self.line();
        self.eat("trait");
        let name = self.ident_or("_trait");
        if self.at("<") {
            self.skip_angles();
        }
        // Supertrait bounds and where clause: skip to the body brace.
        while self.pos < self.toks.len() && !self.at("{") && !self.at(";") {
            if self.at("<") {
                self.skip_angles();
            } else {
                self.bump();
            }
        }
        let items = if self.eat("{") {
            self.items_until_close()
        } else {
            self.eat(";");
            Vec::new()
        };
        Item::Trait { name, items, line }
    }

    fn parse_impl(&mut self, cfg_test: bool) -> Item {
        let line = self.line();
        self.eat("impl");
        if self.at("<") {
            self.skip_angles();
        }
        let first = self.parse_type(|p| p.at("{") || p.at_kw("for") || p.at_kw("where"));
        let self_ty = if self.eat("for") {
            self.parse_type(|p| p.at("{") || p.at_kw("where"))
        } else {
            first
        };
        if self.at_kw("where") {
            self.skip_where();
        }
        let items = if self.eat("{") {
            self.items_until_close()
        } else {
            Vec::new()
        };
        Item::Impl {
            type_name: self_ty.head_ident(),
            cfg_test,
            items,
            line,
        }
    }

    fn parse_mod(&mut self, cfg_test: bool) -> Item {
        let line = self.line();
        self.eat("mod");
        let name = self.ident_or("_mod");
        let items = if self.eat("{") {
            self.items_until_close()
        } else {
            self.eat(";");
            Vec::new()
        };
        Item::Mod {
            name,
            cfg_test,
            items,
            line,
        }
    }

    fn parse_type_alias(&mut self) -> Item {
        let line = self.line();
        self.eat("type");
        let name = self.ident_or("_type");
        if self.at("<") {
            self.skip_angles();
        }
        let ty = if self.eat("=") {
            self.parse_type(|p| p.at(";"))
        } else {
            TypeRef::default()
        };
        self.eat(";");
        Item::TypeAlias { name, ty, line }
    }

    fn parse_const(&mut self) -> Item {
        let line = self.line();
        let is_static = self.at("static");
        self.bump(); // const | static
        let mutable = self.eat("mut") && is_static;
        let name = self.ident_or("_const");
        let ty = if self.at_single_colon() {
            self.bump();
            self.parse_type(|p| p.at("=") || p.at(";"))
        } else {
            TypeRef::default()
        };
        let init = if self.eat("=") {
            Some(self.parse_expr(0, false))
        } else {
            None
        };
        self.eat(";");
        Item::Const {
            name,
            ty,
            init,
            mutable,
            line,
        }
    }

    fn ident_or(&mut self, fallback: &str) -> String {
        if self.peek().is_some_and(|t| t.kind == TokenKind::Ident) {
            self.bump().map(|t| t.text.clone()).unwrap_or_default()
        } else {
            fallback.to_string()
        }
    }

    // ---- skipping utilities -------------------------------------------

    fn skip_balanced(&mut self, open: &str, close: &str) {
        if !self.eat(open) {
            return;
        }
        let mut depth = 1i32;
        while let Some(t) = self.bump() {
            if t.text == open {
                depth += 1;
            } else if t.text == close {
                depth -= 1;
                if depth == 0 {
                    return;
                }
            }
        }
    }

    /// Skips a `<...>` generic group, treating `->` as a unit so
    /// `Fn(u32) -> u64` bounds don't corrupt the depth count.
    /// Returns the identifiers seen inside.
    fn skip_angles(&mut self) -> Vec<String> {
        let mut idents = Vec::new();
        if !self.eat("<") {
            return idents;
        }
        let mut depth = 1i32;
        while self.pos < self.toks.len() && depth > 0 {
            if self.at2("-", ">") {
                self.pos += 2;
                continue;
            }
            let Some(t) = self.bump() else { break };
            match t.text.as_str() {
                "<" => depth += 1,
                ">" => depth -= 1,
                "(" => {
                    // Balance parens without angle counting inside.
                    let mut pd = 1i32;
                    while let Some(n) = self.bump() {
                        match n.text.as_str() {
                            "(" => pd += 1,
                            ")" => {
                                pd -= 1;
                                if pd == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                    }
                }
                _ if t.kind == TokenKind::Ident => idents.push(t.text.clone()),
                _ => {}
            }
        }
        idents
    }

    fn skip_where(&mut self) {
        self.eat("where");
        while self.pos < self.toks.len() && !self.at("{") && !self.at(";") {
            if self.at("<") {
                self.skip_angles();
            } else if self.at("(") {
                self.skip_balanced("(", ")");
            } else {
                self.bump();
            }
        }
    }

    fn skip_to_semi(&mut self) {
        while let Some(t) = self.peek() {
            match t.text.as_str() {
                ";" => {
                    self.bump();
                    return;
                }
                "{" => self.skip_balanced("{", "}"),
                "(" => self.skip_balanced("(", ")"),
                _ => {
                    self.bump();
                }
            }
        }
    }

    // ---- types & patterns ---------------------------------------------

    /// Scans a type until `stop` holds at depth 0 (parens, brackets,
    /// braces and angles all tracked; `->` is a unit).
    fn parse_type(&mut self, stop: impl Fn(&Parser) -> bool) -> TypeRef {
        let mut ty = TypeRef::default();
        let mut depth = 0i32;
        while self.pos < self.toks.len() {
            if depth == 0 && stop(self) {
                break;
            }
            if self.at2("-", ">") {
                ty.text.push_str("->");
                self.pos += 2;
                continue;
            }
            let Some(t) = self.bump() else { break };
            match t.text.as_str() {
                "<" | "(" | "[" | "{" => depth += 1,
                ">" | ")" | "]" | "}" => {
                    depth -= 1;
                    if depth < 0 {
                        // Closed a group we did not open: the type
                        // ended one token ago. Put it back.
                        self.pos -= 1;
                        break;
                    }
                }
                _ => {}
            }
            if t.kind == TokenKind::Ident {
                ty.idents.push(t.text.clone());
            }
            ty.text.push_str(&t.text);
        }
        ty
    }

    /// Scans a pattern until `stop` holds at depth 0, collecting the
    /// identifiers that could be bindings.
    fn scan_pattern(&mut self, stop: impl Fn(&Parser) -> bool) -> Vec<String> {
        let mut idents = Vec::new();
        let mut depth = 0i32;
        while self.pos < self.toks.len() {
            if depth == 0 && stop(self) {
                break;
            }
            if self.at2(".", ".") {
                // `..` / `..=` rest patterns and ranges.
                self.pos += 2;
                self.eat("=");
                continue;
            }
            let Some(t) = self.bump() else { break };
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth < 0 {
                        self.pos -= 1;
                        break;
                    }
                }
                _ => {}
            }
            if t.kind == TokenKind::Ident && !is_pattern_keyword(&t.text) {
                idents.push(t.text.clone());
            }
        }
        idents
    }

    // ---- blocks & statements ------------------------------------------

    fn parse_block(&mut self) -> Block {
        let line = self.line();
        let mut block = Block {
            stmts: Vec::new(),
            line,
            end_line: line,
        };
        if !self.eat("{") {
            return block;
        }
        while self.pos < self.toks.len() && !self.at("}") {
            let before = self.pos;
            block.stmts.push(self.parse_stmt());
            if self.pos == before {
                self.bump_recover("stmt");
            }
        }
        block.end_line = self.line();
        self.eat("}");
        block
    }

    /// Looks past any `#[...]` attributes at the cursor and reports
    /// whether an item keyword follows (so `#[cfg(test)] mod tests`
    /// parses as an item but `#[allow(..)] for x in ..` stays a
    /// statement).
    fn attrs_precede_item(&self) -> bool {
        let mut k = 0usize;
        while self.nth(k).is_some_and(|t| t.text == "#")
            && self.nth(k + 1).is_some_and(|t| t.text == "[")
        {
            k += 2;
            let mut depth = 1i32;
            while depth > 0 {
                match self.nth(k) {
                    Some(t) if t.text == "[" => depth += 1,
                    Some(t) if t.text == "]" => depth -= 1,
                    Some(_) => {}
                    None => return false,
                }
                k += 1;
            }
        }
        matches!(
            self.nth(k).map(|t| t.text.as_str()),
            Some(
                "fn" | "struct"
                    | "enum"
                    | "trait"
                    | "impl"
                    | "use"
                    | "mod"
                    | "type"
                    | "static"
                    | "const"
                    | "pub"
                    | "unsafe"
                    | "async"
                    | "extern"
            )
        )
    }

    fn parse_stmt(&mut self) -> Stmt {
        if self.at(";") {
            self.bump();
            return Stmt::Empty;
        }
        // Item starters inside blocks. Attributes are handled by
        // parse_item itself so `#[cfg(test)] mod tests` nests right;
        // an attribute followed by a statement (`#[allow(..)] for ..`)
        // is skipped here and the statement parsed normally.
        let item_start = self.at_kw("fn")
            || self.at_kw("struct")
            || self.at_kw("enum")
            || self.at_kw("trait")
            || self.at_kw("impl")
            || self.at_kw("use")
            || self.at_kw("mod")
            || self.at_kw("type")
            || self.at_kw("static")
            || (self.at_kw("const") && self.nth(1).is_none_or(|t| t.text != "{"))
            || self.at_kw("pub")
            || (self.at("#")
                && self.nth(1).is_some_and(|t| t.text == "[")
                && self.attrs_precede_item());
        if item_start {
            return Stmt::Item(Box::new(self.parse_item()));
        }
        if self.at("#") && self.nth(1).is_some_and(|t| t.text == "[") {
            // Attribute on a plain statement: drop it and continue.
            self.skip_attrs();
            return self.parse_stmt();
        }
        if self.at_kw("let") {
            return self.parse_let();
        }
        let expr = self.parse_expr(0, false);
        let semi = self.eat(";");
        Stmt::Expr { expr, semi }
    }

    fn parse_let(&mut self) -> Stmt {
        let line = self.line();
        self.eat("let");
        let pat_start = self.pos;
        let pat_idents = self
            .scan_pattern(|p| p.at_single_colon() || (p.at("=") && !p.at2("=", "=")) || p.at(";"));
        // Simple binding: `[mut] name` only.
        let pat_toks = &self.toks[pat_start..self.pos];
        let name = match pat_toks {
            [t] if t.kind == TokenKind::Ident => Some(t.text.clone()),
            [m, t] if m.text == "mut" && t.kind == TokenKind::Ident => Some(t.text.clone()),
            _ => None,
        };
        let ty = if self.at_single_colon() {
            self.bump();
            Some(self.parse_type(|p| (p.at("=") && !p.at2("=", "=")) || p.at(";")))
        } else {
            None
        };
        let init = if self.eat("=") {
            Some(self.parse_expr(0, false))
        } else {
            None
        };
        let else_block = if self.at_kw("else") {
            self.bump();
            Some(self.parse_block())
        } else {
            None
        };
        self.eat(";");
        Stmt::Let {
            name,
            pat_idents,
            ty,
            init,
            else_block,
            line,
        }
    }

    // ---- expressions ---------------------------------------------------

    /// Pratt loop. `no_struct` blocks bare `Path { ... }` literals, as
    /// in `if`/`while`/`match`/`for` headers.
    fn parse_expr(&mut self, min_bp: u8, no_struct: bool) -> Expr {
        let mut lhs = self.parse_prefix(no_struct);
        loop {
            let line = self.line();
            // Compound assignment: `op=` (joint).
            if let Some((op, n)) = self.compound_assign_op() {
                if min_bp > 1 {
                    break;
                }
                self.pos += n;
                let rhs = self.parse_expr(1, no_struct);
                lhs = Expr::Assign {
                    op: Some(op),
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                    line,
                };
                continue;
            }
            // Plain `=` (not `==`, not `=>`).
            if self.at("=") && !self.at2("=", "=") && !self.at2("=", ">") {
                if min_bp > 1 {
                    break;
                }
                self.bump();
                let rhs = self.parse_expr(1, no_struct);
                lhs = Expr::Assign {
                    op: None,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                    line,
                };
                continue;
            }
            // Range `..` / `..=`.
            if self.at2(".", ".") {
                if min_bp > 3 {
                    break;
                }
                self.pos += 2;
                self.eat("=");
                let hi = if self.expr_can_start() {
                    Some(Box::new(self.parse_expr(5, no_struct)))
                } else {
                    None
                };
                lhs = Expr::Range {
                    lo: Some(Box::new(lhs)),
                    hi,
                    line,
                };
                continue;
            }
            let Some((op, bp, n)) = self.binary_op() else {
                break;
            };
            if bp < min_bp {
                break;
            }
            self.pos += n;
            let rhs = self.parse_expr(bp + 2, no_struct);
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        lhs
    }

    /// The binary operator at the cursor: (op, binding power, tokens).
    fn binary_op(&self) -> Option<(BinOp, u8, usize)> {
        let t = self.peek()?;
        if t.kind != TokenKind::Punct {
            return None;
        }
        Some(match t.text.as_str() {
            "|" if self.at2("|", "|") => (BinOp::Or, 5, 2),
            "&" if self.at2("&", "&") => (BinOp::And, 7, 2),
            "=" if self.at2("=", "=") => (BinOp::Eq, 9, 2),
            "!" if self.at2("!", "=") => (BinOp::Ne, 9, 2),
            "<" if self.at2("<", "=") => (BinOp::Le, 9, 2),
            ">" if self.at2(">", "=") => (BinOp::Ge, 9, 2),
            "<" if self.at2("<", "<") => (BinOp::Shl, 17, 2),
            ">" if self.at2(">", ">") => (BinOp::Shr, 17, 2),
            "<" => (BinOp::Lt, 9, 1),
            ">" => (BinOp::Gt, 9, 1),
            "|" => (BinOp::BitOr, 11, 1),
            "^" => (BinOp::BitXor, 13, 1),
            "&" => (BinOp::BitAnd, 15, 1),
            "+" => (BinOp::Add, 19, 1),
            "-" if !self.at2("-", ">") => (BinOp::Sub, 19, 1),
            "*" => (BinOp::Mul, 21, 1),
            "/" => (BinOp::Div, 21, 1),
            "%" => (BinOp::Rem, 21, 1),
            _ => return None,
        })
    }

    /// The compound-assign operator at the cursor (`+=`, `<<=`, ...).
    fn compound_assign_op(&self) -> Option<(BinOp, usize)> {
        let t = self.peek()?;
        if t.kind != TokenKind::Punct {
            return None;
        }
        let two = |op| Some((op, 2));
        match t.text.as_str() {
            "+" if self.at2("+", "=") => two(BinOp::Add),
            "-" if self.at2("-", "=") => two(BinOp::Sub),
            "*" if self.at2("*", "=") => two(BinOp::Mul),
            "/" if self.at2("/", "=") => two(BinOp::Div),
            "%" if self.at2("%", "=") => two(BinOp::Rem),
            "^" if self.at2("^", "=") => two(BinOp::BitXor),
            "&" if self.at2("&", "=") => two(BinOp::BitAnd),
            "|" if self.at2("|", "=") => two(BinOp::BitOr),
            "<" if self.at2("<", "<")
                && self.nth(2).is_some_and(|x| x.text == "=")
                && self.joint(1) =>
            {
                Some((BinOp::Shl, 3))
            }
            ">" if self.at2(">", ">")
                && self.nth(2).is_some_and(|x| x.text == "=")
                && self.joint(1) =>
            {
                Some((BinOp::Shr, 3))
            }
            _ => None,
        }
    }

    /// Whether the current token could begin an expression (used to
    /// decide if `return` / `break` / range have an operand).
    fn expr_can_start(&self) -> bool {
        match self.peek() {
            None => false,
            Some(t) => match t.kind {
                TokenKind::Ident => !matches!(t.text.as_str(), "else" | "in"),
                TokenKind::Literal | TokenKind::Lifetime => true,
                TokenKind::Punct => {
                    matches!(
                        t.text.as_str(),
                        "(" | "[" | "{" | "&" | "*" | "-" | "!" | "|" | "<" | "#"
                    ) || self.at2(".", ".")
                }
            },
        }
    }

    fn parse_prefix(&mut self, no_struct: bool) -> Expr {
        let line = self.line();
        // Prefix unary: `&[mut]`, `*`, `-`, `!`.
        if self.at("&") && !self.at2("&", "=") {
            self.bump();
            self.eat("mut");
            return Expr::Unary {
                op: '&',
                expr: Box::new(self.parse_prefix(no_struct)),
                line,
            };
        }
        for op in ['*', '-', '!'] {
            let s = op.to_string();
            if self.at(&s) && !self.at2(&s, "=") && !(op == '-' && self.at2("-", ">")) {
                self.bump();
                return Expr::Unary {
                    op,
                    expr: Box::new(self.parse_prefix(no_struct)),
                    line,
                };
            }
        }
        let e = self.parse_primary(no_struct);
        self.parse_postfix(e, no_struct)
    }

    fn parse_postfix(&mut self, mut e: Expr, _no_struct: bool) -> Expr {
        loop {
            let line = self.line();
            if self.at("?") {
                self.bump();
                e = Expr::Try {
                    expr: Box::new(e),
                    line,
                };
                continue;
            }
            if self.at("(") {
                let args = self.parse_call_args();
                e = Expr::Call {
                    callee: Box::new(e),
                    args,
                    line,
                };
                continue;
            }
            if self.at("[") {
                self.bump();
                let index = self.parse_expr(0, false);
                self.eat("]");
                e = Expr::Index {
                    recv: Box::new(e),
                    index: Box::new(index),
                    line,
                };
                continue;
            }
            if self.at_kw("as") {
                self.bump();
                let ty = self.parse_cast_type();
                e = Expr::Cast {
                    expr: Box::new(e),
                    ty,
                    line,
                };
                continue;
            }
            if self.at(".") && !self.at2(".", ".") {
                self.bump();
                let Some(t) = self.peek() else { break };
                match t.kind {
                    TokenKind::Ident => {
                        let name = t.text.clone();
                        self.bump();
                        let mut generics = Vec::new();
                        if self.at_colons() && self.nth(2).is_some_and(|x| x.text == "<") {
                            self.pos += 2;
                            generics = self.skip_angles();
                        }
                        if self.at("(") {
                            let args = self.parse_call_args();
                            e = Expr::MethodCall {
                                recv: Box::new(e),
                                name,
                                generics,
                                args,
                                line,
                            };
                        } else {
                            e = Expr::Field {
                                recv: Box::new(e),
                                name,
                                line,
                            };
                        }
                    }
                    TokenKind::Literal => {
                        // Tuple index `x.0` (or `x.0.1` lexed as one).
                        let name = t.text.clone();
                        self.bump();
                        e = Expr::Field {
                            recv: Box::new(e),
                            name,
                            line,
                        };
                    }
                    _ => break,
                }
                continue;
            }
            break;
        }
        e
    }

    fn parse_call_args(&mut self) -> Vec<Expr> {
        let mut args = Vec::new();
        if !self.eat("(") {
            return args;
        }
        while self.pos < self.toks.len() && !self.at(")") {
            let before = self.pos;
            args.push(self.parse_expr(0, false));
            if !self.eat(",") && !self.at(")") && self.pos == before {
                self.bump_recover("args");
            }
        }
        self.eat(")");
        args
    }

    fn parse_primary(&mut self, no_struct: bool) -> Expr {
        let line = self.line();
        let Some(t) = self.peek() else {
            return Expr::Opaque { line };
        };
        match t.kind {
            TokenKind::Literal => {
                let text = t.text.clone();
                self.bump();
                Expr::Lit { text, line }
            }
            TokenKind::Lifetime => {
                // Loop label `'a: loop { ... }` or `break 'a`.
                self.bump();
                if self.at_single_colon() {
                    self.bump();
                }
                self.parse_primary(no_struct)
            }
            TokenKind::Punct => self.parse_punct_primary(no_struct, line),
            TokenKind::Ident => self.parse_ident_primary(no_struct, line),
        }
    }

    fn parse_punct_primary(&mut self, _no_struct: bool, line: u32) -> Expr {
        // `#[attr] expr` (attributes on expressions / arm bodies).
        if self.at("#") && self.nth(1).is_some_and(|t| t.text == "[") {
            self.skip_attrs();
            return self.parse_primary(false);
        }
        if self.at2(".", ".") {
            // Leading range `..hi` / `..=hi` / bare `..`.
            self.pos += 2;
            self.eat("=");
            let hi = if self.expr_can_start() {
                Some(Box::new(self.parse_expr(5, false)))
            } else {
                None
            };
            return Expr::Range { lo: None, hi, line };
        }
        if self.at("(") {
            self.bump();
            let mut elems = Vec::new();
            let mut trailing_comma = false;
            while self.pos < self.toks.len() && !self.at(")") {
                let before = self.pos;
                elems.push(self.parse_expr(0, false));
                trailing_comma = self.eat(",");
                if !trailing_comma && !self.at(")") && self.pos == before {
                    self.bump_recover("paren");
                }
            }
            self.eat(")");
            return if elems.len() == 1 && !trailing_comma {
                elems.pop().expect("len checked")
            } else {
                Expr::Tuple { elems, line }
            };
        }
        if self.at("[") {
            self.bump();
            let mut elems = Vec::new();
            while self.pos < self.toks.len() && !self.at("]") {
                let before = self.pos;
                elems.push(self.parse_expr(0, false));
                if !self.eat(",") && !self.eat(";") && !self.at("]") && self.pos == before {
                    self.bump_recover("array");
                }
            }
            self.eat("]");
            return Expr::Array { elems, line };
        }
        if self.at("{") {
            let block = self.parse_block();
            return Expr::Block { block, line };
        }
        if self.at("|") {
            return self.parse_closure(line);
        }
        if self.at("<") {
            // Qualified path `<T as Trait>::seg::seg`.
            let generics = self.skip_angles();
            let mut segs = Vec::new();
            while self.at_colons() {
                self.pos += 2;
                if self.peek().is_some_and(|t| t.kind == TokenKind::Ident) {
                    segs.push(self.bump().map(|t| t.text.clone()).unwrap_or_default());
                } else {
                    break;
                }
            }
            return Expr::Path {
                segs,
                generics,
                line,
            };
        }
        self.bump_recover("expr");
        Expr::Opaque { line }
    }

    fn parse_ident_primary(&mut self, no_struct: bool, line: u32) -> Expr {
        let text = self.peek().map(|t| t.text.clone()).unwrap_or_default();
        match text.as_str() {
            "if" => return self.parse_if(line),
            "while" => {
                self.bump();
                let (pat_idents, cond) = self.parse_cond();
                let body = self.parse_block();
                return Expr::While {
                    pat_idents,
                    cond: Box::new(cond),
                    body,
                    line,
                };
            }
            "loop" => {
                self.bump();
                let body = self.parse_block();
                return Expr::Loop { body, line };
            }
            "for" => {
                self.bump();
                let pat_idents = self.scan_pattern(|p| p.at_kw("in"));
                self.eat("in");
                let iter = self.parse_expr(0, true);
                let body = self.parse_block();
                return Expr::For {
                    pat_idents,
                    iter: Box::new(iter),
                    body,
                    line,
                };
            }
            "match" => return self.parse_match(line),
            "return" => {
                self.bump();
                let value = if self.expr_can_start() {
                    Some(Box::new(self.parse_expr(0, no_struct)))
                } else {
                    None
                };
                return Expr::Return { value, line };
            }
            "break" => {
                self.bump();
                if self.peek().is_some_and(|t| t.kind == TokenKind::Lifetime) {
                    self.bump();
                }
                let value = if self.expr_can_start() {
                    Some(Box::new(self.parse_expr(0, no_struct)))
                } else {
                    None
                };
                return Expr::Break { value, line };
            }
            "continue" => {
                self.bump();
                if self.peek().is_some_and(|t| t.kind == TokenKind::Lifetime) {
                    self.bump();
                }
                return Expr::Continue { line };
            }
            "move" => {
                self.bump();
                if self.at("|") {
                    return self.parse_closure(line);
                }
                if self.at("{") {
                    let block = self.parse_block();
                    return Expr::Block { block, line };
                }
                return Expr::Opaque { line };
            }
            "unsafe" | "async" => {
                self.bump();
                if self.at("{") {
                    let block = self.parse_block();
                    return Expr::Block { block, line };
                }
                return Expr::Opaque { line };
            }
            _ => {}
        }
        // Macro call `name!(...)` / `name![...]` / `name!{...}`.
        if self.nth(1).is_some_and(|t| t.text == "!")
            && self
                .nth(2)
                .is_some_and(|t| matches!(t.text.as_str(), "(" | "[" | "{"))
        {
            let name = text;
            self.pos += 2;
            let (open, close) = match self.peek().map(|t| t.text.as_str()) {
                Some("[") => ("[", "]"),
                Some("{") => ("{", "}"),
                _ => ("(", ")"),
            };
            let body = self.macro_body(open, close);
            let (args, raw_idents) = macro_args(body);
            return Expr::MacroCall {
                name,
                args,
                raw_idents,
                line,
            };
        }
        // Path: `seg (:: seg | ::<T>)*`.
        let mut segs = vec![self.bump().map(|t| t.text.clone()).unwrap_or_default()];
        let mut generics = Vec::new();
        while self.at_colons() {
            if self.nth(2).is_some_and(|t| t.text == "<") {
                self.pos += 2;
                generics.extend(self.skip_angles());
            } else if self.nth(2).is_some_and(|t| t.kind == TokenKind::Ident) {
                self.pos += 2;
                segs.push(self.bump().map(|t| t.text.clone()).unwrap_or_default());
            } else {
                break;
            }
        }
        // Struct literal `Path { field: e, ..base }`.
        if self.at("{") && !no_struct {
            self.bump();
            let mut fields = Vec::new();
            let mut base = None;
            while self.pos < self.toks.len() && !self.at("}") {
                let before = self.pos;
                if self.at2(".", ".") {
                    self.pos += 2;
                    base = Some(Box::new(self.parse_expr(0, false)));
                } else if self.peek().is_some_and(|t| t.kind == TokenKind::Ident) {
                    let fname = self.bump().map(|t| t.text.clone()).unwrap_or_default();
                    let value = if self.at_single_colon() {
                        self.bump();
                        self.parse_expr(0, false)
                    } else {
                        Expr::Path {
                            segs: vec![fname.clone()],
                            generics: Vec::new(),
                            line: self.line(),
                        }
                    };
                    fields.push((fname, value));
                }
                if !self.eat(",") && !self.at("}") && self.pos == before {
                    self.bump_recover("struct-lit");
                }
            }
            self.eat("}");
            return Expr::StructLit {
                segs,
                fields,
                base,
                line,
            };
        }
        Expr::Path {
            segs,
            generics,
            line,
        }
    }

    fn parse_if(&mut self, line: u32) -> Expr {
        self.eat("if");
        let (pat_idents, cond) = self.parse_cond();
        let then = self.parse_block();
        let else_ = if self.at_kw("else") {
            self.bump();
            let eline = self.line();
            if self.at_kw("if") {
                Some(Box::new(self.parse_if(eline)))
            } else {
                let block = self.parse_block();
                Some(Box::new(Expr::Block { block, line: eline }))
            }
        } else {
            None
        };
        Expr::If {
            pat_idents,
            cond: Box::new(cond),
            then,
            else_,
            line,
        }
    }

    /// The condition of an `if`/`while`, handling the `let pat = expr`
    /// form. Struct literals are blocked at the top level.
    fn parse_cond(&mut self) -> (Vec<String>, Expr) {
        if self.at_kw("let") {
            self.bump();
            let pat_idents = self.scan_pattern(|p| p.at("=") && !p.at2("=", "="));
            self.eat("=");
            let cond = self.parse_expr(0, true);
            (pat_idents, cond)
        } else {
            (Vec::new(), self.parse_expr(0, true))
        }
    }

    fn parse_match(&mut self, line: u32) -> Expr {
        self.eat("match");
        let scrutinee = self.parse_expr(0, true);
        let mut arms = Vec::new();
        if self.eat("{") {
            while self.pos < self.toks.len() && !self.at("}") {
                let before = self.pos;
                self.skip_attrs();
                let aline = self.line();
                let pat_idents =
                    self.scan_pattern(|p| p.at2("=", ">") || p.at_kw("if") || p.at("}"));
                let guard = if self.at_kw("if") {
                    self.bump();
                    Some(self.parse_expr(0, true))
                } else {
                    None
                };
                self.eat2("=", ">");
                let body = self.parse_expr(0, false);
                self.eat(",");
                arms.push(Arm {
                    pat_idents,
                    guard,
                    body,
                    line: aline,
                });
                if self.pos == before {
                    self.bump_recover("match-arm");
                }
            }
            self.eat("}");
        }
        Expr::Match {
            scrutinee: Box::new(scrutinee),
            arms,
            line,
        }
    }

    fn parse_closure(&mut self, line: u32) -> Expr {
        let mut params = Vec::new();
        if self.at2("|", "|") {
            self.pos += 2;
        } else if self.eat("|") {
            while self.pos < self.toks.len() && !self.at("|") {
                let before = self.pos;
                let idents = self.scan_pattern(|p| {
                    p.at(",") || (p.at("|") && !p.at2("|", "|")) || p.at_single_colon()
                });
                if let Some(n) = idents.into_iter().next_back() {
                    params.push(n);
                }
                if self.at_single_colon() {
                    self.bump();
                    self.parse_type(|p| p.at(",") || (p.at("|") && !p.at2("|", "|")));
                }
                if !self.eat(",") && self.pos == before && !self.at("|") {
                    self.bump_recover("closure");
                }
            }
            self.eat("|");
        }
        if self.eat2("-", ">") {
            self.parse_type(|p| p.at("{"));
            let block = self.parse_block();
            return Expr::Closure {
                params,
                body: Box::new(Expr::Block { block, line }),
                line,
            };
        }
        let body = self.parse_expr(1, false);
        Expr::Closure {
            params,
            body: Box::new(body),
            line,
        }
    }

    /// Cast target after `as`: `[&] path [<...>]` repeated over `::`.
    fn parse_cast_type(&mut self) -> TypeRef {
        let mut ty = TypeRef::default();
        while self.at("&") {
            ty.text.push('&');
            self.bump();
            if self.eat("mut") {
                ty.text.push_str("mut");
            }
        }
        while self.peek().is_some_and(|t| t.kind == TokenKind::Ident) {
            let t = self.bump().expect("peeked");
            ty.idents.push(t.text.clone());
            ty.text.push_str(&t.text);
            if self.at_colons() {
                ty.text.push_str("::");
                self.pos += 2;
                continue;
            }
            break;
        }
        if self.at("<") {
            for id in self.skip_angles() {
                ty.idents.push(id);
            }
        }
        ty
    }

    /// Consumes a macro body (cursor on the opening delimiter) and
    /// returns the token slice inside it.
    fn macro_body(&mut self, open: &str, close: &str) -> &'a [Token] {
        if !self.eat(open) {
            return &[];
        }
        let start = self.pos;
        let mut depth = 1i32;
        while let Some(t) = self.peek() {
            if t.text == open {
                depth += 1;
            } else if t.text == close {
                depth -= 1;
                if depth == 0 {
                    let body = &self.toks[start..self.pos];
                    self.bump();
                    return body;
                }
            }
            self.bump();
        }
        &self.toks[start..self.pos]
    }
}

/// Splits a macro body on top-level `,`/`;` and parses each segment
/// as an expression where possible; segments that don't parse cleanly
/// contribute their identifiers to `raw_idents` instead.
fn macro_args(body: &[Token]) -> (Vec<Expr>, Vec<String>) {
    let mut args = Vec::new();
    let mut raw = Vec::new();
    let mut depth = 0i32;
    let mut seg_start = 0usize;
    let mut k = 0usize;
    while k <= body.len() {
        let at_sep = k == body.len() || (depth == 0 && matches!(body[k].text.as_str(), "," | ";"));
        if at_sep {
            let seg = &body[seg_start..k];
            if !seg.is_empty() {
                let mut p = Parser {
                    toks: seg,
                    pos: 0,
                    recoveries: Vec::new(),
                };
                let e = p.parse_expr(0, false);
                if p.pos == seg.len() && p.recoveries.is_empty() {
                    args.push(e);
                } else {
                    for t in seg {
                        if t.kind == TokenKind::Ident {
                            raw.push(t.text.clone());
                        }
                    }
                }
            }
            seg_start = k + 1;
        } else {
            match body[k].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                _ => {}
            }
        }
        k += 1;
    }
    (args, raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast;

    fn parse_clean(src: &str) -> File {
        let f = parse(src);
        assert!(
            f.recoveries.is_empty(),
            "recoveries {:?} parsing: {src}",
            f.recoveries
        );
        f
    }

    fn only_fn(f: &File) -> &FnItem {
        fn first_in(items: &[Item]) -> Option<&FnItem> {
            for item in items {
                match item {
                    Item::Fn(func) => return Some(func),
                    Item::Impl { items: i, .. }
                    | Item::Mod { items: i, .. }
                    | Item::Trait { items: i, .. } => {
                        if let Some(func) = first_in(i) {
                            return Some(func);
                        }
                    }
                    _ => {}
                }
            }
            None
        }
        first_in(&f.items).expect("no fn parsed")
    }

    #[test]
    fn parses_fn_with_body() {
        let f = parse_clean("fn add(a: u32, b: u32) -> u32 { a + b }");
        let func = only_fn(&f);
        assert_eq!(func.name, "add");
        assert_eq!(func.params.len(), 2);
        assert_eq!(func.ret.as_ref().map(|t| t.text.as_str()), Some("u32"));
        let body = func.body.as_ref().expect("body");
        assert_eq!(body.stmts.len(), 1);
    }

    #[test]
    fn parses_method_chain_and_turbofish() {
        let f = parse_clean(
            "fn f(m: &HashMap<u64, u32>) -> Vec<u64> { \
             m.keys().copied().collect::<Vec<u64>>() }",
        );
        let func = only_fn(&f);
        let mut methods = Vec::new();
        func.body.as_ref().expect("body").walk_exprs(&mut |e| {
            if let Expr::MethodCall { name, generics, .. } = e {
                methods.push((name.clone(), generics.clone()));
            }
        });
        let names: Vec<_> = methods.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["collect", "copied", "keys"]); // outermost-first
        assert!(methods[0].1.iter().any(|g| g == "Vec"));
    }

    #[test]
    fn parses_if_let_match_loops() {
        let f = parse_clean(
            "fn f(x: Option<u32>) -> u32 {\n\
             if let Some(v) = x { v } else { 0 };\n\
             match x { Some(v) if v > 1 => v, _ => 0 };\n\
             for i in 0..10 { let _ = i; }\n\
             while x.is_some() { break; }\n\
             0 }",
        );
        let func = only_fn(&f);
        let mut kinds = Vec::new();
        func.body
            .as_ref()
            .expect("body")
            .walk_exprs(&mut |e| match e {
                Expr::If { pat_idents, .. } => kinds.push(format!("if:{}", pat_idents.join("+"))),
                Expr::Match { arms, .. } => kinds.push(format!("match:{}", arms.len())),
                Expr::For { .. } => kinds.push("for".to_string()),
                Expr::While { .. } => kinds.push("while".to_string()),
                _ => {}
            });
        assert!(kinds.contains(&"if:Some+v".to_string()), "{kinds:?}");
        assert!(kinds.contains(&"match:2".to_string()), "{kinds:?}");
        assert!(kinds.contains(&"for".to_string()));
        assert!(kinds.contains(&"while".to_string()));
    }

    #[test]
    fn struct_lit_blocked_in_cond() {
        // `if x == S {}` must parse the `{}` as the then-block.
        let f = parse_clean("fn f(x: u32) { if x == LIMIT { go(); } }");
        let func = only_fn(&f);
        let mut saw_if = false;
        func.body.as_ref().expect("body").walk_exprs(&mut |e| {
            if let Expr::If { then, .. } = e {
                saw_if = true;
                assert_eq!(then.stmts.len(), 1);
            }
        });
        assert!(saw_if);
    }

    #[test]
    fn parses_struct_enum_impl_alias() {
        let f = parse_clean(
            "pub struct S { pub m: HashMap<u64, u32>, n: usize }\n\
             enum E { A(u32), B { x: u64 } }\n\
             type Cache = HashMap<u64, Vec<u8>>;\n\
             impl S { fn len(&self) -> usize { self.n } }",
        );
        let mut names = Vec::new();
        for item in &f.items {
            match item {
                Item::Struct { name, fields, .. } => {
                    names.push(name.clone());
                    assert!(fields.iter().any(|fd| fd.ty.mentions("HashMap")));
                }
                Item::Enum { name, fields, .. } => {
                    names.push(name.clone());
                    assert_eq!(fields.len(), 2);
                }
                Item::TypeAlias { name, ty, .. } => {
                    names.push(name.clone());
                    assert!(ty.mentions("HashMap"));
                }
                Item::Impl { type_name, .. } => names.push(format!("impl {type_name}")),
                _ => {}
            }
        }
        assert_eq!(names, ["S", "E", "Cache", "impl S"]);
    }

    #[test]
    fn macro_args_parse_as_exprs() {
        let f = parse_clean("fn f(n: usize) { let v = vec![0u8; n]; assert_eq!(v.len(), n); }");
        let func = only_fn(&f);
        let mut macros = Vec::new();
        func.body.as_ref().expect("body").walk_exprs(&mut |e| {
            if let Expr::MacroCall { name, args, .. } = e {
                macros.push((name.clone(), args.len()));
            }
        });
        assert!(macros.contains(&("vec".to_string(), 2)), "{macros:?}");
        assert!(macros.contains(&("assert_eq".to_string(), 2)), "{macros:?}");
    }

    #[test]
    fn cfg_test_mod_marks_fns() {
        let f = parse_clean(
            "fn prod() {}\n#[cfg(test)]\nmod tests { fn t() {} }\n\
             #[cfg(not(test))] fn also_prod() {}",
        );
        let mut seen = Vec::new();
        ast::for_each_fn(&f, &mut |func, in_test| {
            seen.push((func.name.clone(), in_test));
        });
        assert_eq!(
            seen,
            [
                ("prod".to_string(), false),
                ("t".to_string(), true),
                ("also_prod".to_string(), false)
            ]
        );
    }

    #[test]
    fn closures_and_ranges() {
        let f =
            parse_clean("fn f(v: &mut Vec<u32>) { v.sort_by(|a, b| a.cmp(b)); let _ = &v[1..3]; }");
        let func = only_fn(&f);
        let mut saw_closure = false;
        let mut saw_range_index = false;
        func.body
            .as_ref()
            .expect("body")
            .walk_exprs(&mut |e| match e {
                Expr::Closure { params, .. } => {
                    saw_closure = true;
                    assert_eq!(params, &["a".to_string(), "b".to_string()]);
                }
                Expr::Index { index, .. } => {
                    if matches!(index.as_ref(), Expr::Range { .. }) {
                        saw_range_index = true;
                    }
                }
                _ => {}
            });
        assert!(saw_closure && saw_range_index);
    }

    #[test]
    fn never_panics_on_garbage() {
        for src in [
            "",
            "fn",
            "fn f(",
            "impl { }",
            "let x = ;",
            "match {",
            "(((",
            ")))",
            "fn f() { 1 + }",
            "struct S {",
            "#[",
            "x.",
            "a::",
            "fn f() { m. }",
        ] {
            let _ = parse(src);
        }
    }
}
