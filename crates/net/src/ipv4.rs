//! IPv4 header and packet containers.

use crate::icmp::IcmpMessage;
use crate::packet::Payload;
use crate::tcp::TcpSegment;
use crate::udp::UdpDatagram;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// An IP protocol number.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum IpProto {
    /// ICMP (1).
    Icmp,
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// Any other protocol.
    Other(u8),
}

impl IpProto {
    /// The numeric protocol value.
    pub const fn as_u8(self) -> u8 {
        match self {
            IpProto::Icmp => 1,
            IpProto::Tcp => 6,
            IpProto::Udp => 17,
            IpProto::Other(v) => v,
        }
    }
}

impl From<u8> for IpProto {
    fn from(v: u8) -> Self {
        match v {
            1 => IpProto::Icmp,
            6 => IpProto::Tcp,
            17 => IpProto::Udp,
            other => IpProto::Other(other),
        }
    }
}

impl From<IpProto> for u8 {
    fn from(p: IpProto) -> u8 {
        p.as_u8()
    }
}

impl fmt::Display for IpProto {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpProto::Icmp => write!(f, "icmp"),
            IpProto::Tcp => write!(f, "tcp"),
            IpProto::Udp => write!(f, "udp"),
            IpProto::Other(v) => write!(f, "proto-{v}"),
        }
    }
}

/// An IPv4 header (no options).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Ipv4Header {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Time to live.
    pub ttl: u8,
    /// Differentiated services code point (the paper's flows don't use
    /// QoS marking, but OpenFlow 1.0 matches on it).
    pub dscp: u8,
    /// IP identification field (used only for wire round-trips).
    pub ident: u16,
}

impl Ipv4Header {
    /// On-wire length of an option-less IPv4 header.
    pub const WIRE_LEN: usize = 20;

    /// Creates a header with TTL 64 and zeroed DSCP/ident.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr) -> Self {
        Ipv4Header {
            src,
            dst,
            ttl: 64,
            dscp: 0,
            ident: 0,
        }
    }
}

/// The transport payload of an IPv4 packet.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Transport {
    /// A TCP segment.
    Tcp(TcpSegment),
    /// A UDP datagram.
    Udp(UdpDatagram),
    /// An ICMP message.
    Icmp(IcmpMessage),
    /// Any other protocol, carried opaquely.
    Other {
        /// IP protocol number.
        proto: u8,
        /// Opaque payload.
        payload: Payload,
    },
}

impl Transport {
    /// The IP protocol number of this transport.
    pub fn proto(&self) -> IpProto {
        match self {
            Transport::Tcp(_) => IpProto::Tcp,
            Transport::Udp(_) => IpProto::Udp,
            Transport::Icmp(_) => IpProto::Icmp,
            Transport::Other { proto, .. } => IpProto::Other(*proto),
        }
    }

    /// On-wire length of the transport header plus payload.
    pub fn wire_len(&self) -> usize {
        match self {
            Transport::Tcp(t) => t.wire_len(),
            Transport::Udp(u) => u.wire_len(),
            Transport::Icmp(i) => i.wire_len(),
            Transport::Other { payload, .. } => payload.len(),
        }
    }

    /// The application payload carried by this transport, if any.
    pub fn payload(&self) -> Option<&Payload> {
        match self {
            Transport::Tcp(t) => Some(&t.payload),
            Transport::Udp(u) => Some(&u.payload),
            Transport::Icmp(_) => None,
            Transport::Other { payload, .. } => Some(payload),
        }
    }

    /// Source and destination transport ports, if the protocol has them.
    pub fn ports(&self) -> Option<(u16, u16)> {
        match self {
            Transport::Tcp(t) => Some((t.src_port, t.dst_port)),
            Transport::Udp(u) => Some((u.src_port, u.dst_port)),
            _ => None,
        }
    }
}

/// A full IPv4 packet: header plus transport.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Ipv4Packet {
    /// The IPv4 header.
    pub header: Ipv4Header,
    /// The transport-layer contents.
    pub transport: Transport,
}

impl Ipv4Packet {
    /// Creates a packet from a header and transport.
    pub fn new(header: Ipv4Header, transport: Transport) -> Self {
        Ipv4Packet { header, transport }
    }

    /// Total on-wire length (IPv4 header + transport).
    pub fn wire_len(&self) -> usize {
        Ipv4Header::WIRE_LEN + self.transport.wire_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::TcpFlags;

    #[test]
    fn proto_roundtrip() {
        for v in [1u8, 6, 17, 89] {
            assert_eq!(IpProto::from(v).as_u8(), v);
        }
        assert_eq!(IpProto::from(6), IpProto::Tcp);
        assert_eq!(IpProto::from(17), IpProto::Udp);
        assert_eq!(IpProto::from(1), IpProto::Icmp);
    }

    #[test]
    fn transport_lengths() {
        let tcp = Transport::Tcp(TcpSegment {
            src_port: 1,
            dst_port: 2,
            seq: 0,
            ack: 0,
            flags: TcpFlags::SYN,
            payload: Payload::Synthetic(100),
        });
        assert_eq!(tcp.wire_len(), 20 + 100);
        assert_eq!(tcp.proto(), IpProto::Tcp);
        assert_eq!(tcp.ports(), Some((1, 2)));

        let other = Transport::Other {
            proto: 89,
            payload: Payload::Synthetic(8),
        };
        assert_eq!(other.wire_len(), 8);
        assert_eq!(other.ports(), None);
    }

    #[test]
    fn packet_wire_len_includes_header() {
        let pkt = Ipv4Packet::new(
            Ipv4Header::new("10.0.0.1".parse().unwrap(), "10.0.0.2".parse().unwrap()),
            Transport::Other {
                proto: 50,
                payload: Payload::Synthetic(30),
            },
        );
        assert_eq!(pkt.wire_len(), 50);
    }
}
