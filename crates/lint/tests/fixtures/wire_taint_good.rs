//! Known-good fixture for `wire-taint`: the same shapes with the
//! length clamped, checked, or bounded before it reaches a sink.

pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn u16(&mut self) -> u16 {
        let v = u16::from_be_bytes([self.buf[self.pos], self.buf[self.pos + 1]]);
        self.pos += 2;
        v
    }

    pub fn u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.buf[self.pos..self.pos + 4]);
        self.pos += 4;
        u32::from_be_bytes(b)
    }
}

pub fn decode_actions(r: &mut Reader<'_>) -> Vec<u64> {
    // Good: the claimed count is clamped against what the frame can
    // actually hold before it sizes anything.
    let n = (r.u32() as usize).min(r.remaining() / 4);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.u32() as u64);
    }
    out
}

pub fn payload(frame: &[u8]) -> Option<&[u8]> {
    // Good: the prefix length is compared against the frame size
    // before it bounds the slice.
    if frame.len() < 2 {
        return None;
    }
    let len = u16::from_be_bytes([frame[0], frame[1]]) as usize;
    if len > frame.len() - 2 {
        return None;
    }
    Some(&frame[2..2 + len])
}

pub fn table_bytes(r: &mut Reader<'_>) -> Option<usize> {
    // Good: checked arithmetic turns overflow into a decode error.
    let rows = r.u16() as usize;
    rows.checked_mul(4096)
}
