//! Known-good twin of `unwrap_in_prod_bad.rs`: handled fallibility in
//! production code, unwraps confined to `#[cfg(test)]` items, and a
//! reasoned allow for a documented contract.

pub fn lookup(map: &std::collections::BTreeMap<u64, u32>, k: u64) -> u32 {
    map.get(&k).copied().unwrap_or_default()
}

pub fn parse(port: &str) -> Option<u16> {
    port.parse().ok()
}

pub fn contract(v: &[u32]) -> u32 {
    // livesec-lint: allow(unwrap-in-prod, reason = "documented contract: callers never pass an empty slice")
    *v.first().expect("caller guarantees non-empty input")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v = vec![1u32];
        assert_eq!(*v.first().unwrap(), 1);
        let p: u16 = "80".parse().expect("test data is valid");
        assert_eq!(p, 80);
    }
}

#[cfg(test)]
fn test_helper() -> u32 {
    "7".parse().unwrap()
}
