//! On-wire serialization and parsing of [`Packet`]s.
//!
//! The simulator moves structured [`Packet`]s for speed, but OpenFlow
//! `PacketIn`/`PacketOut` messages carry real frame bytes, exactly as
//! on a physical network. This module is that boundary: a faithful
//! Ethernet/ARP/IPv4/TCP/UDP/ICMP/LLDP codec with real IPv4 and
//! transport checksums.
//!
//! Serialization does **not** pad to the 64-byte Ethernet minimum;
//! padding is a link-accounting concern handled by
//! [`Packet::wire_len`].
//!
//! A [`Payload::Synthetic`] payload serializes as zeros and parses back
//! as [`Payload::Data`] of the same length, so round-trips preserve
//! flow keys and lengths but not the synthetic marker.

use crate::arp::{ArpOp, ArpPacket};
use crate::ethernet::{EtherType, EthernetHeader, VlanTag};
use crate::icmp::{IcmpMessage, IcmpType};
use crate::ipv4::{Ipv4Header, Ipv4Packet, Transport};
use crate::lldp::LldpFrame;
use crate::mac::MacAddr;
use crate::packet::{Body, Packet, Payload};
use crate::tcp::{TcpFlags, TcpSegment};
use crate::udp::UdpDatagram;
use bytes::Bytes;
use std::fmt;
use std::net::Ipv4Addr;

/// Error returned when a byte buffer cannot be parsed as a packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The buffer ended before the indicated structure was complete.
    Truncated,
    /// The IPv4 version field was not 4, or the IHL was below 5.
    BadIpHeader,
    /// A checksum did not verify.
    BadChecksum {
        /// Which layer failed ("ipv4", "tcp", "udp", "icmp").
        layer: &'static str,
    },
    /// The ARP body was not Ethernet/IPv4 or had an unknown opcode.
    BadArp,
    /// The LLDP TLV structure was malformed.
    BadLldp,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Truncated => write!(f, "unexpected end of packet"),
            ParseError::BadIpHeader => write!(f, "invalid IPv4 header"),
            ParseError::BadChecksum { layer } => write!(f, "bad {layer} checksum"),
            ParseError::BadArp => write!(f, "unsupported ARP body"),
            ParseError::BadLldp => write!(f, "malformed LLDP frame"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Computes the Internet checksum (RFC 1071) of `data`.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

fn checksum_with_pseudo(src: Ipv4Addr, dst: Ipv4Addr, proto: u8, segment: &[u8]) -> u16 {
    let mut buf = Vec::with_capacity(12 + segment.len());
    buf.extend_from_slice(&src.octets());
    buf.extend_from_slice(&dst.octets());
    buf.push(0);
    buf.push(proto);
    buf.extend_from_slice(&(segment.len() as u16).to_be_bytes());
    buf.extend_from_slice(segment);
    internet_checksum(&buf)
}

fn put_payload(out: &mut Vec<u8>, payload: &Payload) {
    match payload {
        Payload::Empty => {}
        Payload::Synthetic(n) => out.resize(out.len() + *n as usize, 0),
        Payload::Data(b) => out.extend_from_slice(b),
    }
}

/// Serializes a packet to its on-wire byte form (without FCS/padding).
pub fn serialize(pkt: &Packet) -> Vec<u8> {
    let mut out = Vec::with_capacity(pkt.wire_len());
    out.extend_from_slice(&pkt.eth.dst.octets());
    out.extend_from_slice(&pkt.eth.src.octets());
    if let Some(tag) = pkt.eth.vlan {
        out.extend_from_slice(&EtherType::Vlan.as_u16().to_be_bytes());
        out.extend_from_slice(&tag.tci().to_be_bytes());
    }
    out.extend_from_slice(&pkt.eth.ethertype.as_u16().to_be_bytes());
    match &pkt.body {
        Body::Arp(arp) => serialize_arp(&mut out, arp),
        Body::Ipv4(ip) => serialize_ipv4(&mut out, ip),
        Body::Lldp(lldp) => serialize_lldp(&mut out, lldp),
        Body::Raw(payload) => put_payload(&mut out, payload),
    }
    out
}

fn serialize_arp(out: &mut Vec<u8>, arp: &ArpPacket) {
    out.extend_from_slice(&1u16.to_be_bytes()); // htype: Ethernet
    out.extend_from_slice(&0x0800u16.to_be_bytes()); // ptype: IPv4
    out.push(6); // hlen
    out.push(4); // plen
    out.extend_from_slice(&arp.op.as_u16().to_be_bytes());
    out.extend_from_slice(&arp.sha.octets());
    out.extend_from_slice(&arp.spa.octets());
    out.extend_from_slice(&arp.tha.octets());
    out.extend_from_slice(&arp.tpa.octets());
}

fn serialize_ipv4(out: &mut Vec<u8>, ip: &Ipv4Packet) {
    let start = out.len();
    let total_len = ip.wire_len() as u16;
    out.push(0x45); // version 4, IHL 5
    out.push(ip.header.dscp << 2);
    out.extend_from_slice(&total_len.to_be_bytes());
    out.extend_from_slice(&ip.header.ident.to_be_bytes());
    out.extend_from_slice(&0x4000u16.to_be_bytes()); // DF, no fragment
    out.push(ip.header.ttl);
    out.push(ip.transport.proto().as_u8());
    out.extend_from_slice(&[0, 0]); // checksum placeholder
    out.extend_from_slice(&ip.header.src.octets());
    out.extend_from_slice(&ip.header.dst.octets());
    let csum = internet_checksum(&out[start..start + Ipv4Header::WIRE_LEN]);
    out[start + 10..start + 12].copy_from_slice(&csum.to_be_bytes());

    let tstart = out.len();
    match &ip.transport {
        Transport::Tcp(tcp) => {
            out.extend_from_slice(&tcp.src_port.to_be_bytes());
            out.extend_from_slice(&tcp.dst_port.to_be_bytes());
            out.extend_from_slice(&tcp.seq.to_be_bytes());
            out.extend_from_slice(&tcp.ack.to_be_bytes());
            out.push(5 << 4); // data offset 5 words
            out.push(tcp.flags.bits());
            out.extend_from_slice(&0xffffu16.to_be_bytes()); // window
            out.extend_from_slice(&[0, 0]); // checksum placeholder
            out.extend_from_slice(&[0, 0]); // urgent pointer
            put_payload(out, &tcp.payload);
            let csum = checksum_with_pseudo(ip.header.src, ip.header.dst, 6, &out[tstart..]);
            out[tstart + 16..tstart + 18].copy_from_slice(&csum.to_be_bytes());
        }
        Transport::Udp(udp) => {
            out.extend_from_slice(&udp.src_port.to_be_bytes());
            out.extend_from_slice(&udp.dst_port.to_be_bytes());
            out.extend_from_slice(&(udp.wire_len() as u16).to_be_bytes());
            out.extend_from_slice(&[0, 0]); // checksum placeholder
            put_payload(out, &udp.payload);
            let csum = checksum_with_pseudo(ip.header.src, ip.header.dst, 17, &out[tstart..]);
            out[tstart + 6..tstart + 8].copy_from_slice(&csum.to_be_bytes());
        }
        Transport::Icmp(icmp) => {
            out.push(icmp.kind.as_u8());
            out.push(0); // code
            out.extend_from_slice(&[0, 0]); // checksum placeholder
            out.extend_from_slice(&icmp.ident.to_be_bytes());
            out.extend_from_slice(&icmp.seq.to_be_bytes());
            out.resize(out.len() + icmp.data_len as usize, 0);
            let csum = internet_checksum(&out[tstart..]);
            out[tstart + 2..tstart + 4].copy_from_slice(&csum.to_be_bytes());
        }
        Transport::Other { payload, .. } => put_payload(out, payload),
    }
}

fn serialize_lldp(out: &mut Vec<u8>, lldp: &LldpFrame) {
    // Chassis-id TLV: type 1, length 9 (subtype 7 "locally assigned" + 8 id bytes).
    out.extend_from_slice(&(((1u16) << 9) | 9).to_be_bytes());
    out.push(7);
    out.extend_from_slice(&lldp.chassis_id.to_be_bytes());
    // Port-id TLV: type 2, length 5 (subtype 7 + 4 port bytes).
    out.extend_from_slice(&(((2u16) << 9) | 5).to_be_bytes());
    out.push(7);
    out.extend_from_slice(&lldp.port_id.to_be_bytes());
    // TTL TLV: type 3, length 2.
    out.extend_from_slice(&(((3u16) << 9) | 2).to_be_bytes());
    out.extend_from_slice(&120u16.to_be_bytes());
    // End TLV.
    out.extend_from_slice(&[0, 0]);
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ParseError> {
        if self.pos + n > self.buf.len() {
            return Err(ParseError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ParseError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ParseError> {
        let s = self.take(2)?;
        Ok(u16::from_be_bytes([s[0], s[1]]))
    }

    fn u32(&mut self) -> Result<u32, ParseError> {
        let s = self.take(4)?;
        Ok(u32::from_be_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn mac(&mut self) -> Result<MacAddr, ParseError> {
        let s = self.take(6)?;
        Ok(MacAddr::new(s.try_into().expect("length checked")))
    }

    fn ipv4(&mut self) -> Result<Ipv4Addr, ParseError> {
        let s = self.take(4)?;
        Ok(Ipv4Addr::new(s[0], s[1], s[2], s[3]))
    }

    fn rest(&mut self) -> &'a [u8] {
        // `pos <= len` is a Reader invariant, but checked slicing
        // keeps a wire-driven cursor from ever panicking.
        let s = self.buf.get(self.pos..).unwrap_or(&[]);
        self.pos = self.buf.len();
        s
    }
}

/// Parses an on-wire frame back into a [`Packet`].
///
/// # Errors
///
/// Returns [`ParseError`] for truncated buffers, malformed headers or
/// checksum failures.
pub fn parse(bytes: &[u8]) -> Result<Packet, ParseError> {
    let mut r = Reader::new(bytes);
    let dst = r.mac()?;
    let src = r.mac()?;
    let mut ethertype = EtherType::from(r.u16()?);
    let mut vlan = None;
    if ethertype == EtherType::Vlan {
        vlan = Some(VlanTag::from_tci(r.u16()?));
        ethertype = EtherType::from(r.u16()?);
    }
    let mut eth = EthernetHeader::new(src, dst, ethertype);
    eth.vlan = vlan;
    let body = match ethertype {
        EtherType::Arp => Body::Arp(parse_arp(&mut r)?),
        EtherType::Ipv4 => Body::Ipv4(parse_ipv4(&mut r)?),
        EtherType::Lldp => Body::Lldp(parse_lldp(&mut r)?),
        _ => Body::Raw(Payload::Data(Bytes::copy_from_slice(r.rest()))),
    };
    Ok(Packet::new(eth, body))
}

fn parse_arp(r: &mut Reader<'_>) -> Result<ArpPacket, ParseError> {
    let htype = r.u16()?;
    let ptype = r.u16()?;
    let hlen = r.u8()?;
    let plen = r.u8()?;
    if htype != 1 || ptype != 0x0800 || hlen != 6 || plen != 4 {
        return Err(ParseError::BadArp);
    }
    let op = ArpOp::from_u16(r.u16()?).ok_or(ParseError::BadArp)?;
    Ok(ArpPacket {
        op,
        sha: r.mac()?,
        spa: r.ipv4()?,
        tha: r.mac()?,
        tpa: r.ipv4()?,
    })
}

fn parse_ipv4(r: &mut Reader<'_>) -> Result<Ipv4Packet, ParseError> {
    let header_start = r.pos;
    let ver_ihl = r.u8()?;
    if ver_ihl >> 4 != 4 || ver_ihl & 0x0f < 5 {
        return Err(ParseError::BadIpHeader);
    }
    let ihl = (ver_ihl & 0x0f) as usize * 4;
    let dscp = r.u8()? >> 2;
    let total_len = r.u16()? as usize;
    let ident = r.u16()?;
    let _flags_frag = r.u16()?;
    let ttl = r.u8()?;
    let proto = r.u8()?;
    let _checksum = r.u16()?;
    let src = r.ipv4()?;
    let dst = r.ipv4()?;
    if ihl > Ipv4Header::WIRE_LEN {
        r.take(ihl - Ipv4Header::WIRE_LEN)?; // skip options
    }
    let header = r
        .buf
        .get(header_start..header_start + ihl)
        .ok_or(ParseError::Truncated)?;
    if internet_checksum(header) != 0 {
        return Err(ParseError::BadChecksum { layer: "ipv4" });
    }
    if total_len < ihl || header_start + total_len > r.buf.len() {
        return Err(ParseError::Truncated);
    }
    let seg_len = total_len - ihl;
    let seg = r
        .buf
        .get(r.pos..r.pos + seg_len)
        .ok_or(ParseError::Truncated)?;
    r.take(seg_len)?;

    let transport = match proto {
        6 => {
            if seg.len() < TcpSegment::HEADER_LEN {
                return Err(ParseError::Truncated);
            }
            if checksum_with_pseudo(src, dst, 6, seg) != 0 {
                return Err(ParseError::BadChecksum { layer: "tcp" });
            }
            let mut t = Reader::new(seg);
            let src_port = t.u16()?;
            let dst_port = t.u16()?;
            let seq = t.u32()?;
            let ack = t.u32()?;
            // livesec-lint: allow(wire-taint, reason = "u8 >> 4 is at most 15, so *4 is at most 60; cannot overflow usize")
            let offset = (t.u8()? >> 4) as usize * 4;
            let flags = TcpFlags::from_bits(t.u8()?);
            let _window = t.u16()?;
            let _csum = t.u16()?;
            let _urg = t.u16()?;
            if offset > seg.len() || offset < TcpSegment::HEADER_LEN {
                return Err(ParseError::Truncated);
            }
            let payload = Bytes::copy_from_slice(&seg[offset..]);
            Transport::Tcp(TcpSegment {
                src_port,
                dst_port,
                seq,
                ack,
                flags,
                payload: if payload.is_empty() {
                    Payload::Empty
                } else {
                    Payload::Data(payload)
                },
            })
        }
        17 => {
            if seg.len() < UdpDatagram::HEADER_LEN {
                return Err(ParseError::Truncated);
            }
            if checksum_with_pseudo(src, dst, 17, seg) != 0 {
                return Err(ParseError::BadChecksum { layer: "udp" });
            }
            let mut u = Reader::new(seg);
            let src_port = u.u16()?;
            let dst_port = u.u16()?;
            let len = u.u16()? as usize;
            let _csum = u.u16()?;
            if len < UdpDatagram::HEADER_LEN || len > seg.len() {
                return Err(ParseError::Truncated);
            }
            let payload = Bytes::copy_from_slice(&seg[8..len]);
            Transport::Udp(UdpDatagram::new(
                src_port,
                dst_port,
                if payload.is_empty() {
                    Payload::Empty
                } else {
                    Payload::Data(payload)
                },
            ))
        }
        1 => {
            if seg.len() < IcmpMessage::HEADER_LEN {
                return Err(ParseError::Truncated);
            }
            if internet_checksum(seg) != 0 {
                return Err(ParseError::BadChecksum { layer: "icmp" });
            }
            let mut i = Reader::new(seg);
            let kind = IcmpType::from(i.u8()?);
            let _code = i.u8()?;
            let _csum = i.u16()?;
            let ident = i.u16()?;
            let seq = i.u16()?;
            Transport::Icmp(IcmpMessage {
                kind,
                ident,
                seq,
                data_len: (seg.len() - IcmpMessage::HEADER_LEN) as u16,
            })
        }
        other => Transport::Other {
            proto: other,
            payload: Payload::Data(Bytes::copy_from_slice(seg)),
        },
    };
    Ok(Ipv4Packet {
        header: Ipv4Header {
            src,
            dst,
            ttl,
            dscp,
            ident,
        },
        transport,
    })
}

fn parse_lldp(r: &mut Reader<'_>) -> Result<LldpFrame, ParseError> {
    let mut chassis_id = None;
    let mut port_id = None;
    loop {
        let header = r.u16()?;
        let tlv_type = header >> 9;
        let tlv_len = (header & 0x1ff) as usize;
        if tlv_type == 0 {
            break;
        }
        let value = r.take(tlv_len)?;
        match tlv_type {
            1 => {
                if value.len() != 9 {
                    return Err(ParseError::BadLldp);
                }
                chassis_id = Some(u64::from_be_bytes(
                    value[1..9].try_into().expect("length checked"),
                ));
            }
            2 => {
                if value.len() != 5 {
                    return Err(ParseError::BadLldp);
                }
                port_id = Some(u32::from_be_bytes(
                    value[1..5].try_into().expect("length checked"),
                ));
            }
            _ => {} // TTL and anything else: skip
        }
    }
    match (chassis_id, port_id) {
        (Some(c), Some(p)) => Ok(LldpFrame::new(c, p)),
        _ => Err(ParseError::BadLldp),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowKey;
    use crate::packet::{arp_frame, icmp_frame, lldp_frame, PacketBuilder};

    fn mac(v: u64) -> MacAddr {
        MacAddr::from_u64(v)
    }

    #[test]
    fn tcp_roundtrip_exact() {
        let pkt = PacketBuilder::tcp(mac(1), mac(2))
            .ips("10.0.0.1".parse().unwrap(), "10.0.0.2".parse().unwrap())
            .ports(1234, 80)
            .seq_ack(5, 6)
            .tcp_flags(TcpFlags::SYN)
            .payload_bytes(b"GET / HTTP/1.1\r\n".as_ref())
            .build();
        let back = parse(&serialize(&pkt)).unwrap();
        assert_eq!(back, pkt);
    }

    #[test]
    fn udp_vlan_roundtrip() {
        let pkt = PacketBuilder::udp(mac(3), mac(4))
            .ips("10.1.0.1".parse().unwrap(), "10.1.0.2".parse().unwrap())
            .ports(5353, 53)
            .vlan(100)
            .payload_bytes(b"query".as_ref())
            .build();
        let back = parse(&serialize(&pkt)).unwrap();
        assert_eq!(back, pkt);
        assert_eq!(back.eth.vlan.unwrap().vid, 100);
    }

    #[test]
    fn synthetic_payload_preserves_key_and_len() {
        let pkt = PacketBuilder::udp(mac(1), mac(2))
            .ips("10.0.0.1".parse().unwrap(), "10.0.0.2".parse().unwrap())
            .ports(9, 10)
            .payload_len(777)
            .build();
        let back = parse(&serialize(&pkt)).unwrap();
        assert_eq!(FlowKey::of(&back), FlowKey::of(&pkt));
        assert_eq!(back.wire_len(), pkt.wire_len());
    }

    #[test]
    fn arp_roundtrip() {
        let pkt = arp_frame(ArpPacket::request(
            mac(9),
            "10.0.0.9".parse().unwrap(),
            "10.0.0.1".parse().unwrap(),
        ));
        assert_eq!(parse(&serialize(&pkt)).unwrap(), pkt);
    }

    #[test]
    fn lldp_roundtrip() {
        let pkt = lldp_frame(mac(77), LldpFrame::new(0xabcdef, 12));
        assert_eq!(parse(&serialize(&pkt)).unwrap(), pkt);
        assert_eq!(serialize(&pkt).len(), 14 + LldpFrame::WIRE_LEN);
    }

    #[test]
    fn icmp_roundtrip() {
        let pkt = icmp_frame(
            mac(1),
            mac(2),
            "10.0.0.1".parse().unwrap(),
            "8.8.8.8".parse().unwrap(),
            IcmpMessage::echo_request(42, 7, 56),
        );
        assert_eq!(parse(&serialize(&pkt)).unwrap(), pkt);
    }

    #[test]
    fn corrupt_ip_checksum_rejected() {
        let pkt = PacketBuilder::tcp(mac(1), mac(2))
            .ips("10.0.0.1".parse().unwrap(), "10.0.0.2".parse().unwrap())
            .ports(1, 2)
            .build();
        let mut bytes = serialize(&pkt);
        bytes[16] ^= 0xff; // flip a byte in the IPv4 header (total_len area)
        assert!(parse(&bytes).is_err());
    }

    #[test]
    fn corrupt_tcp_payload_rejected() {
        let pkt = PacketBuilder::tcp(mac(1), mac(2))
            .ips("10.0.0.1".parse().unwrap(), "10.0.0.2".parse().unwrap())
            .ports(1, 2)
            .payload_bytes(b"hello".as_ref())
            .build();
        let mut bytes = serialize(&pkt);
        let n = bytes.len();
        bytes[n - 1] ^= 0xff;
        assert_eq!(parse(&bytes), Err(ParseError::BadChecksum { layer: "tcp" }));
    }

    #[test]
    fn truncated_rejected() {
        let pkt = PacketBuilder::udp(mac(1), mac(2))
            .ips("10.0.0.1".parse().unwrap(), "10.0.0.2".parse().unwrap())
            .ports(1, 2)
            .payload_len(100)
            .build();
        let bytes = serialize(&pkt);
        for cut in [0, 5, 13, 20, 40] {
            assert!(parse(&bytes[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn checksum_known_vector() {
        // RFC 1071 example-style check: sum of a buffer and its checksum is 0.
        let data = [0x45u8, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11];
        let c = internet_checksum(&data);
        let mut with = data.to_vec();
        with.extend_from_slice(&c.to_be_bytes());
        assert_eq!(internet_checksum(&with), 0);
    }
}
